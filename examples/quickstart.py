#!/usr/bin/env python3
"""Quickstart: build a FluidMem stack by hand and watch a fault resolve.

This walks the library's layers explicitly — the same wiring
``repro.bench.platform.build_platform`` does for you — so you can see
where each piece of the paper's Figure 1 lives:

    unmodified VM  ->  userfaultfd  ->  monitor  ->  key-value store

Run:  python examples/quickstart.py
"""

from repro.core import FluidMemConfig, FluidMemoryPort, Monitor
from repro.kernel import UffdLatency, UffdOps, Userfaultfd
from repro.kv import RamCloudServer, RamCloudStore
from repro.mem import MIB, PAGE_SIZE, FrameAllocator
from repro.net import Fabric, RDMA_FDR
from repro.sim import Environment, RandomStreams
from repro.vm import BootProfile, GuestVM, QemuProcess


def main() -> None:
    # 1. The simulated world: a clock and deterministic randomness.
    env = Environment()
    streams = RandomStreams(seed=7)

    # 2. The cluster: hypervisor and a RAMCloud server on FDR IB.
    fabric = Fabric(env, streams)
    fabric.add_host("hypervisor")
    fabric.add_host("ramcloud")
    fabric.connect("hypervisor", "ramcloud", RDMA_FDR)
    server = RamCloudServer(memory_bytes=64 * MIB)
    store = RamCloudStore(env, fabric, "hypervisor", "ramcloud", server)

    # 3. The kernel mechanism and the monitor (the paper's core).
    uffd = Userfaultfd(env, UffdLatency(), streams.stream("uffd"))
    ops = UffdOps(env, UffdLatency(), streams.stream("ops"),
                  FrameAllocator.for_bytes(64 * MIB))
    monitor = Monitor(
        env, uffd, ops,
        config=FluidMemConfig(lru_capacity_pages=64),
        rng=streams.stream("monitor"),
    )
    monitor.start()

    # 4. An unmodified VM whose memory is registered with FluidMem.
    vm = GuestVM(env, "demo", memory_bytes=32 * MIB,
                 boot_profile=BootProfile(total_pages=32))
    qemu = QemuProcess(vm)
    registration = monitor.register_vm(qemu, store)
    port = FluidMemoryPort(env, vm, qemu, monitor, registration)
    vm.attach_port(port)

    # 5. Boot, then touch more pages than the DRAM budget allows.
    def workload(env):
        yield from vm.boot()
        base = vm.first_free_guest_addr()
        for index in range(128):           # 128 pages > 64-page budget
            yield from port.access(base + index * PAGE_SIZE,
                                   is_write=True)
        # Touch the very first page again: it was evicted to RAMCloud
        # and comes back through the read path.
        start = env.now
        yield from port.access(base, is_write=False)
        return env.now - start

    process = env.process(workload(env))
    env.run()

    counters = monitor.counters
    print("simulated time:        "
          f"{env.now / 1000.0:8.1f} ms")
    print(f"faults handled:        {counters['faults']:8d}")
    print(f"first-touch (zero):    {counters['zero_page_faults']:8d}")
    print(f"evictions:             {counters['evictions']:8d}")
    print(f"remote reads:          {counters['remote_reads']:8d}")
    print(f"write-list steals:     "
          f"{counters['steals_resolved_locally']:8d}")
    print(f"pages now in RAMCloud: {store.stored_keys():8d}")
    print(f"resident (LRU) pages:  {len(monitor.lru):8d} "
          f"/ {monitor.lru.capacity}")
    print(f"re-fault of evicted page took {process.value:.1f} us "
          "(remote read, hidden behind an interleaved eviction)")


if __name__ == "__main__":
    main()
