#!/usr/bin/env python3
"""The provider's console: shares, caps, and autoscaling (paper §III).

Because the FluidMem monitor owns every page decision, the provider can
implement policy that swap never could:

* weighted shares between tenants on one hypervisor,
* a hard residency cap for an abusive tenant,
* automatic grow/shrink of the whole DRAM budget with demand (the
  abstract's "flexibly and efficiently grow and shrink").

Run:  python examples/provider_console.py
"""

from repro.core import (
    AutoscaleConfig,
    Autoscaler,
    FluidMemConfig,
    FluidMemoryPort,
    Monitor,
    SharePolicy,
    ShareSpec,
)
from repro.kernel import UffdLatency, UffdOps, Userfaultfd
from repro.kv import RamCloudServer, RamCloudStore
from repro.mem import MIB, PAGE_SIZE, FrameAllocator
from repro.net import Fabric, RDMA_FDR
from repro.sim import Environment, RandomStreams
from repro.vm import BootProfile, GuestVM, QemuProcess


def build(env, streams):
    fabric = Fabric(env, streams)
    fabric.add_host("hypervisor")
    fabric.add_host("ramcloud")
    fabric.connect("hypervisor", "ramcloud", RDMA_FDR)
    server = RamCloudServer(memory_bytes=256 * MIB)
    uffd = Userfaultfd(env, UffdLatency(), streams.stream("uffd"))
    ops = UffdOps(env, UffdLatency(), streams.stream("ops"),
                  FrameAllocator.for_bytes(256 * MIB))
    monitor = Monitor(env, uffd, ops,
                      config=FluidMemConfig(lru_capacity_pages=96),
                      rng=streams.stream("monitor"))
    monitor.start()
    return fabric, server, monitor


def add_tenant(env, monitor, fabric, server, name, table_id):
    vm = GuestVM(env, name, memory_bytes=32 * MIB,
                 boot_profile=BootProfile(total_pages=16))
    qemu = QemuProcess(vm)
    store = RamCloudStore(env, fabric, "hypervisor", "ramcloud", server,
                          table_id=table_id)
    registration = monitor.register_vm(qemu, store)
    vm.attach_port(FluidMemoryPort(env, vm, qemu, monitor, registration))
    return vm, registration


def tenant_loop(env, vm, pages, rounds):
    port = vm.require_port()
    base = vm.first_free_guest_addr()
    for _ in range(rounds):
        for index in range(pages):
            yield from port.access(base + index * PAGE_SIZE,
                                   is_write=True)
        yield env.timeout(200.0)


def main() -> None:
    env = Environment()
    streams = RandomStreams(seed=17)
    fabric, server, monitor = build(env, streams)

    policy = SharePolicy()
    monitor.victim_policy = policy

    gold, reg_gold = add_tenant(env, monitor, fabric, server, "gold", 1)
    silver, reg_silver = add_tenant(env, monitor, fabric, server,
                                    "silver", 2)
    noisy, reg_noisy = add_tenant(env, monitor, fabric, server,
                                  "noisy", 3)

    # The console: gold pays for weight 3 + a 24-page guarantee; the
    # noisy neighbour gets capped at 20 resident pages.
    policy.set_share(reg_gold, ShareSpec(weight=3.0, min_pages=24))
    policy.set_share(reg_silver, ShareSpec(weight=1.0))
    policy.set_share(reg_noisy, ShareSpec(weight=1.0, max_pages=20))

    # Boot everyone first (the autoscaler's timer would keep a plain
    # env.run() alive forever, so start it only for the bounded phase).
    for vm in (gold, silver, noisy):
        env.process(vm.boot())
        env.run()

    scaler = Autoscaler(env, monitor, AutoscaleConfig(
        interval_us=2_000.0, grow_threshold=3.0, shrink_threshold=0.05,
        step_pages=32, min_pages=64, max_pages=512,
    ))
    scaler.start()
    for vm, pages, rounds in ((gold, 40, 8), (silver, 40, 8),
                              (noisy, 120, 8)):
        env.process(tenant_loop(env, vm, pages, rounds))
    env.run(until=env.now + 100_000.0)
    scaler.stop()
    env.run()

    lru = monitor.lru
    print(f"DRAM budget after autoscaling: {lru.capacity} pages "
          f"(grows={monitor.counters['autoscale_grows']}, "
          f"shrinks={monitor.counters['autoscale_shrinks']})")
    print(f"resident split of {len(lru)} pages:")
    for name, registration in (("gold", reg_gold),
                               ("silver", reg_silver),
                               ("noisy", reg_noisy)):
        print(f"  {name:7s} {lru.count_for(registration):4d} pages")
    print(f"cap evictions against 'noisy': "
          f"{monitor.counters['cap_evictions']}")
    print(f"remote memory in RAMCloud: {server.live_bytes >> 10} KiB")


if __name__ == "__main__":
    main()
