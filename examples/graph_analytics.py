#!/usr/bin/env python3
"""Graph analytics beyond DRAM: Graph500 BFS on FluidMem vs swap.

The intro's motivating scenario: a memory-bound analytics job whose
working set outgrows local DRAM.  We run the same Kronecker graph BFS
on a FluidMem-backed VM (remote memory via RAMCloud) and a swap-backed
VM (remote memory via NVMeoF), with the working set at ~240% of DRAM.

Run:  python examples/graph_analytics.py
"""

from repro.bench.fig4_graph500 import memory_scale_for
from repro.bench.platform import build_platform
from repro.workloads import Graph500, Graph500Config, KroneckerGraph


def main() -> None:
    graph = KroneckerGraph(scale=11, edgefactor=16, seed=11)
    print(
        f"graph: 2^11 vertices, {graph.num_directed_edges} directed "
        f"edges, {graph.memory_bytes() >> 10} KiB traced working set"
    )
    memory_scale = memory_scale_for(graph, 2.4)

    for name in ("fluidmem-ramcloud", "swap-nvmeof"):
        platform = build_platform(
            name, memory_scale=memory_scale, seed=11, remote_factor=6
        )
        bench = Graph500(
            platform.env,
            platform.port,
            platform.workload_base,
            Graph500Config(scale=11, edgefactor=16, num_bfs_roots=4,
                           seed=11),
            graph=graph,
        )
        result = platform.run(bench.run())
        print(
            f"{name:20s} {result.mean_teps_millions:6.2f} MTEPS "
            f"(harmonic mean over {len(result.teps)} BFS roots, "
            f"DRAM holds ~42% of the working set)"
        )
    print(
        "\nFluidMem wins because it also moves untouched guest-OS pages "
        "to remote memory, and its monitor hides the network read under "
        "the eviction (paper Fig. 4c)."
    )


if __name__ == "__main__":
    main()
