#!/usr/bin/env python3
"""A document store that cannot use swap — but thrives on FluidMem.

MongoDB's WiredTiger engine manages its own record cache in anonymous
memory.  Configure that cache larger than DRAM and, under swap, the
kernel and the engine fight: engine "cache hits" silently become
swap-ins (paper §VI-D2).  FluidMem gives the engine real (remote)
capacity instead.  This example reruns a small Figure-5 point.

Run:  python examples/document_store.py
"""

import random

from repro.bench.fig5_mongodb import _build_mongo
from repro.bench.platform import build_platform
from repro.workloads import YcsbClient, YcsbConfig


def main() -> None:
    cache_fraction = 2.0  # WiredTiger cache = 2x local DRAM
    for name in ("swap-nvmeof", "fluidmem-ramcloud"):
        platform = build_platform(
            name,
            memory_scale=1.0 / 1024,
            seed=21,
            with_data_disk=True,
            remote_factor=6,
        )
        records = int(platform.shape.local_dram_bytes * 5 / 1024)
        server = _build_mongo(platform, cache_fraction, records, seed=21)
        client = YcsbClient(
            platform.env,
            server,
            YcsbConfig(record_count=records, operation_count=8000),
            rng=random.Random(22),
        )
        result = platform.run(client.run())
        hits = server.counters["wt_cache_hits"]
        misses = server.counters["wt_cache_misses"]
        print(
            f"{name:20s} avg read {result.average_latency_us:7.0f} us | "
            f"engine cache hit rate "
            f"{100 * hits / (hits + misses):5.1f}% | "
            f"p99 {result.read_latency.percentile(99):7.0f} us"
        )
    print(
        "\nSame engine, same cache size, same data: only the memory "
        "substrate differs."
    )


if __name__ == "__main__":
    main()
