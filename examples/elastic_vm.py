#!/usr/bin/env python3
"""Elastic VM footprints: the cloud provider's view (paper §VI-E).

A provider hosts an idle-but-reachable VM and wants its DRAM back.
Ballooning bottoms out at tens of MB and needs guest cooperation;
FluidMem shrinks the same VM to under a megabyte — while it still
answers pings — and restores it instantly when the tenant returns.

Run:  python examples/elastic_vm.py
"""

from repro.bench.platform import build_platform
from repro.mem import MIB, PAGE_SIZE
from repro.vm import BootProfile, IcmpService, SshService


def probe(platform, vm):
    def attempt(service):
        def gen(env):
            result = yield from service.attempt()
            return result

        return platform.run(gen(platform.env))

    ssh = attempt(SshService(platform.env, vm))
    icmp = attempt(IcmpService(platform.env, vm))
    return ssh, icmp


def shrink_to(platform, pages):
    platform.monitor.set_lru_capacity(pages)

    def gen(env):
        yield from platform.monitor.shrink_to_capacity()

    platform.run(gen(platform.env))


def footprint_mib(platform):
    return platform.monitor.resident_pages * PAGE_SIZE / MIB


def main() -> None:
    platform = build_platform(
        "fluidmem-ramcloud",
        memory_scale=1.0 / 16,
        seed=3,
        boot_profile=BootProfile(total_pages=5000),
    )
    vm = platform.vm
    print(f"booted VM resident footprint: {footprint_mib(platform):.2f} "
          f"MiB ({platform.monitor.resident_pages} pages)")

    for target in (1024, 180, 80):
        shrink_to(platform, target)
        ssh, icmp = probe(platform, vm)
        print(
            f"shrunk to {target:5d} pages "
            f"({footprint_mib(platform):6.2f} MiB): "
            f"SSH {'ok' if ssh else 'TIMES OUT':9s} "
            f"ICMP {'ok' if icmp else 'DROPS'}"
        )

    # The tenant logs back in: give the VM its memory back.
    platform.monitor.set_lru_capacity(5000)
    ssh, icmp = probe(platform, vm)
    print(
        "footprint restored: SSH "
        f"{'ok' if ssh else 'TIMES OUT'} — the VM revived instantly "
        "(paper Table III, 'Revived by increasing footprint')"
    )
    store = platform.store
    print(
        f"remote memory now holds {store.stored_keys()} pages "
        f"({store.used_bytes / MIB:.1f} MiB) in RAMCloud"
    )


if __name__ == "__main__":
    main()
