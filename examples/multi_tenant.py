#!/usr/bin/env python3
"""Multi-tenant FluidMem: several VMs, one monitor, one shared store.

The paper's architecture (§III-IV): the monitor's LRU budget covers
*all* registered VMs, the key-value store is shared, and tenants are
isolated by partitions — RAMCloud tables natively, or 12-bit virtual
partitions coordinated through ZooKeeper for stores without them
(Memcached).

Run:  python examples/multi_tenant.py
"""

from repro.coord import ZooKeeperEnsemble
from repro.core import FluidMemConfig, FluidMemoryPort, Monitor
from repro.kernel import UffdLatency, UffdOps, Userfaultfd
from repro.kv import (
    MemcachedServer,
    MemcachedStore,
    PartitionOwner,
    VirtualPartitionRegistry,
)
from repro.mem import MIB, PAGE_SIZE, FrameAllocator
from repro.net import Fabric, IPOIB
from repro.sim import Environment, RandomStreams
from repro.vm import BootProfile, GuestVM, QemuProcess


def main() -> None:
    env = Environment()
    streams = RandomStreams(seed=5)
    fabric = Fabric(env, streams)
    fabric.add_host("hypervisor")
    fabric.add_host("memcached")
    fabric.connect("hypervisor", "memcached", IPOIB)

    # One Memcached (no native partitions) shared by every tenant.
    server = MemcachedServer(memory_bytes=64 * MIB)

    # Virtual partitions: global uniqueness via the ZooKeeper table.
    zk = ZooKeeperEnsemble(replica_count=3)
    registry = VirtualPartitionRegistry(zk.connect())

    uffd = Userfaultfd(env, UffdLatency(), streams.stream("uffd"))
    ops = UffdOps(env, UffdLatency(), streams.stream("ops"),
                  FrameAllocator.for_bytes(64 * MIB))
    monitor = Monitor(env, uffd, ops,
                      config=FluidMemConfig(lru_capacity_pages=96),
                      rng=streams.stream("monitor"))
    monitor.start()

    tenants = []
    for tenant in ("alice", "bob", "carol"):
        vm = GuestVM(env, tenant, memory_bytes=16 * MIB,
                     boot_profile=BootProfile(total_pages=16))
        qemu = QemuProcess(vm)
        owner = PartitionOwner(hypervisor_id="hv-1", pid=qemu.pid,
                               nonce=1)
        partition = registry.register(owner)
        store = MemcachedStore(env, fabric, "hypervisor", "memcached",
                               server)
        registration = monitor.register_vm(qemu, store,
                                           partition=partition)
        vm.attach_port(FluidMemoryPort(env, vm, qemu, monitor,
                                       registration))
        tenants.append((tenant, vm, partition))
        print(f"tenant {tenant!r}: pid {qemu.pid}, "
              f"virtual partition {partition}")

    def workload(env):
        for _name, vm, _partition in tenants:
            yield from vm.boot()
        # Each tenant touches 64 pages; 3 x (16 + 64) > the 96-page
        # shared budget, so the monitor evicts across tenants.
        for _name, vm, _partition in tenants:
            base = vm.first_free_guest_addr()
            for index in range(64):
                port = vm.require_port()
                yield from port.access(base + index * PAGE_SIZE,
                                       is_write=True)
        yield from monitor.writeback.drain()

    env.process(workload(env))
    env.run()

    print(f"\nshared LRU: {len(monitor.lru)}/{monitor.lru.capacity} "
          "pages across all tenants")
    print(f"memcached now holds {len(server)} pages "
          f"({server.used_bytes >> 10} KiB); evictions={server.evictions}")
    print(f"partitions allocated in ZooKeeper: "
          f"{registry.allocated_count()}")
    for name, vm, _partition in tenants:
        print(f"  {name}: {vm.require_port().resident_pages} pages "
              "still in DRAM")


if __name__ == "__main__":
    main()
