#!/usr/bin/env python3
"""FluidMem-assisted VM migration (extension; paper §VII).

With full memory disaggregation, most of a VM's memory already lives in
a key-value store every hypervisor can reach.  "Migrating" the VM then
means pushing only its *resident* pages (the LRU slice) and switching
which monitor handles its faults — the post-copy pattern userfaultfd
was originally designed for.

The provider can even shrink the footprint first: a near-zero-footprint
VM migrates with almost zero blackout.

Run:  python examples/live_migration.py
"""

from repro.core import (
    FluidMemConfig,
    Monitor,
    migrate_vm,
)
from repro.kernel import UffdLatency, UffdOps, Userfaultfd
from repro.mem import MIB, FrameAllocator
from repro.sim import RandomStreams

from repro.bench.platform import build_platform


def make_dest_monitor(env, lru_pages):
    streams = RandomStreams(seed=123)
    uffd = Userfaultfd(env, UffdLatency(), streams.stream("uffd-b"))
    ops = UffdOps(env, UffdLatency(), streams.stream("ops-b"),
                  FrameAllocator.for_bytes(64 * MIB))
    monitor = Monitor(env, uffd, ops,
                      config=FluidMemConfig(lru_capacity_pages=lru_pages),
                      rng=streams.stream("monitor-b"),
                      name="hypervisor-B")
    monitor.start()
    return monitor


def main() -> None:
    platform = build_platform("fluidmem-ramcloud",
                              memory_scale=1.0 / 64, seed=9)
    vm = platform.vm
    source = platform.monitor
    print(f"VM booted on hypervisor-A: "
          f"{source.resident_pages} pages resident, "
          f"{platform.store.stored_keys()} already in RAMCloud")

    dest = make_dest_monitor(platform.env, platform.shape.local_pages)

    def do_migration(env):
        report = yield from migrate_vm(
            vm, source, platform.registration, dest
        )
        return report

    process = platform.env.process(do_migration(platform.env))
    platform.env.run()
    report = process.value

    print(
        f"migrated to hypervisor-B: pushed {report.pages_pushed} "
        f"resident pages, blackout {report.blackout_ms:.2f} ms, "
        f"{report.seen_pages} pages reachable on demand"
    )

    # The guest keeps running: touch its boot pages on the new host.
    def warm_up(env):
        port = vm.require_port()
        started = env.now
        for vaddr in vm.boot_page_addresses()[:200]:
            yield from port.access(vaddr)
        return env.now - started

    process = platform.env.process(warm_up(platform.env))
    platform.env.run()
    print(
        f"first 200 pages warmed on hypervisor-B in "
        f"{process.value / 1000.0:.2f} ms "
        f"({dest.counters['remote_reads']} post-copy reads, "
        f"0 pages lost: zero-page faults = "
        f"{dest.counters['zero_page_faults']})"
    )

    # Second migration trick: squeeze first, then move.
    source2, dest2 = dest, make_dest_monitor(
        platform.env, platform.shape.local_pages
    )
    source2.set_lru_capacity(32)

    def squeeze_and_move(env):
        yield from source2.shrink_to_capacity()
        report = yield from migrate_vm(
            vm, source2, report_registration(), dest2
        )
        return report

    def report_registration():
        return report.dest_registration

    process = platform.env.process(squeeze_and_move(platform.env))
    platform.env.run()
    second = process.value
    print(
        f"squeeze-then-migrate: only {second.pages_pushed} pages to "
        f"push, blackout {second.blackout_ms:.2f} ms "
        f"({report.blackout_ms / max(second.blackout_ms, 1e-9):.1f}x "
        "smaller)"
    )


if __name__ == "__main__":
    main()
