"""Benchmark: design-choice ablations (DESIGN.md §6)."""

from repro.bench.ablations import (
    run_batch_size_ablation,
    run_compression_ablation,
    run_lru_reorder_ablation,
    run_prefetch_ablation,
    run_steal_ablation,
    run_tracker_ablation,
)


def test_ablation_lru_reorder(once):
    result = once(run_lru_reorder_ablation, graph_scale=11, seed=42)
    print()
    print(result.table_text())
    insertion, reordered = result.data
    # True LRU ordering is no worse than the paper's static order.
    assert reordered[1] >= insertion[1] * 0.95


def test_ablation_tracker(once):
    result = once(run_tracker_ablation, seed=42)
    print()
    print(result.table_text())
    with_tracker, without = result.data
    assert with_tracker[3] == 0
    assert without[3] > 0


def test_ablation_steal(once):
    result = once(run_steal_ablation, seed=42)
    print()
    print(result.table_text())
    steal, no_steal = result.data
    assert steal[1] < no_steal[1]      # lower average latency
    assert steal[3] < no_steal[3]      # fewer remote reads


def test_ablation_batch_size(once):
    result = once(run_batch_size_ablation, seed=42)
    print()
    print(result.table_text())
    ramcloud = [row for row in result.data if row[0] == "ramcloud"]
    # On RAMCloud, batches collapse write round trips: the multi-write
    # count shrinks as batch size grows.
    assert ramcloud[0][3] > ramcloud[-1][3]


def test_ablation_prefetch(once):
    result = once(run_prefetch_ablation, seed=42)
    print()
    print(result.table_text())
    rows = {(row[0], row[1]): row for row in result.data}
    # Sequential scans get much faster with prefetch...
    assert rows[("sequential", 4)][2] < 0.7 * rows[("sequential", 0)][2]
    assert rows[("sequential", 4)][3] < rows[("sequential", 0)][3]
    # ...random access does not benefit (most prefetches are wasted).
    assert rows[("random", 4)][2] > 0.9 * rows[("random", 0)][2]


def test_ablation_compression(once):
    result = once(run_compression_ablation, seed=42)
    print()
    print(result.table_text())
    raw, compressed = result.data
    # Compression roughly halves remote bytes at a CPU latency cost.
    assert compressed[2] < 0.6 * raw[2]
    assert compressed[1] > raw[1]
    assert compressed[1] < 1.5 * raw[1]
