"""Benchmark: the extension features (migration, policy, autoscaler)."""

from repro.core import (
    AutoscaleConfig,
    Autoscaler,
    FluidMemConfig,
    Monitor,
    SharePolicy,
    ShareSpec,
    migrate_vm,
)
from repro.kernel import UffdLatency, UffdOps, Userfaultfd
from repro.mem import MIB, PAGE_SIZE, FrameAllocator
from repro.sim import RandomStreams

from repro.bench.platform import build_platform


def _dest_monitor(env, lru_pages, seed=321):
    streams = RandomStreams(seed=seed)
    uffd = Userfaultfd(env, UffdLatency(), streams.stream("uffd-b"))
    ops = UffdOps(env, UffdLatency(), streams.stream("ops-b"),
                  FrameAllocator.for_bytes(64 * MIB))
    monitor = Monitor(env, uffd, ops,
                      config=FluidMemConfig(lru_capacity_pages=lru_pages),
                      rng=streams.stream("monitor-b"), name="dest")
    monitor.start()
    return monitor


def _migrate_once(squeeze_to=None):
    platform = build_platform("fluidmem-ramcloud",
                              memory_scale=1.0 / 64, seed=5)
    if squeeze_to is not None:
        platform.monitor.set_lru_capacity(squeeze_to)

        def shrink(env):
            yield from platform.monitor.shrink_to_capacity()

        platform.run(shrink(platform.env))
    dest = _dest_monitor(platform.env, platform.shape.local_pages)

    def gen(env):
        report = yield from migrate_vm(
            platform.vm, platform.monitor, platform.registration, dest
        )
        return report

    return platform.run(gen(platform.env))


def test_migration_blackout_scales_with_residency(once):
    def experiment():
        full = _migrate_once()
        squeezed = _migrate_once(squeeze_to=64)
        return full, squeezed

    full, squeezed = once(experiment)
    print(f"\nfull-footprint migration: {full.pages_pushed} pages, "
          f"blackout {full.blackout_ms:.2f} ms")
    print(f"squeezed-first migration: {squeezed.pages_pushed} pages, "
          f"blackout {squeezed.blackout_ms:.2f} ms")
    assert squeezed.pages_pushed < full.pages_pushed / 4
    assert squeezed.blackout_us < full.blackout_us / 4
    assert full.seen_pages > 0


def test_policy_isolation_under_noisy_neighbour(once):
    def experiment():
        platform = build_platform("fluidmem-ramcloud",
                                  memory_scale=1.0 / 256, seed=5)
        monitor = platform.monitor
        policy = SharePolicy()
        monitor.victim_policy = policy
        policy.set_share(platform.registration,
                         ShareSpec(weight=1.0, min_pages=96))
        # A noisy co-tenant floods the shared budget.
        from repro.kv import DramStore
        from repro.vm import BootProfile, GuestVM, QemuProcess
        from repro.core import FluidMemoryPort

        noisy_vm = GuestVM(platform.env, "noisy", memory_bytes=16 * MIB,
                           boot_profile=BootProfile(total_pages=16))
        noisy_qemu = QemuProcess(noisy_vm)
        noisy_reg = monitor.register_vm(noisy_qemu,
                                        DramStore(platform.env))
        noisy_vm.attach_port(FluidMemoryPort(
            platform.env, noisy_vm, noisy_qemu, monitor, noisy_reg))

        def flood(env):
            yield from noisy_vm.boot()
            base = noisy_vm.first_free_guest_addr()
            for index in range(1500):
                yield from noisy_vm.require_port().access(
                    base + index * PAGE_SIZE, is_write=True)

        platform.run(flood(platform.env))
        return monitor.lru.count_for(platform.registration)

    protected_pages = once(experiment)
    print(f"\nprotected tenant kept {protected_pages} pages under flood")
    assert protected_pages >= 96  # the guarantee held


def test_autoscaler_tracks_demand(once):
    def experiment():
        platform = build_platform("fluidmem-ramcloud",
                                  memory_scale=1.0 / 256, seed=5)
        monitor = platform.monitor
        monitor.set_lru_capacity(64)
        scaler = Autoscaler(platform.env, monitor, AutoscaleConfig(
            interval_us=1000.0, grow_threshold=1.0,
            shrink_threshold=0.05, step_pages=64,
            min_pages=64, max_pages=4096,
        ))
        scaler.start()
        vm = platform.vm
        base = vm.first_free_guest_addr()
        port = vm.require_port()

        def phases(env):
            # Phase 1: thrash over 512 pages.
            for _ in range(6):
                for index in range(512):
                    yield from port.access(base + index * PAGE_SIZE,
                                           True)
            # Phase 2: idle.
            yield env.timeout(60_000.0)

        platform.env.process(phases(platform.env))
        platform.env.run(until=platform.env.now + 300_000.0)
        scaler.stop()
        platform.env.run()
        peak = max(capacity for _t, capacity, _r in scaler.history)
        return peak, monitor.lru.capacity

    peak, final = once(experiment)
    print(f"\nautoscaler: peak budget {peak} pages, "
          f"harvested back to {final}")
    assert peak >= 256    # grew toward the 512-page working set
    assert final == 64    # gave the idle DRAM back