"""Benchmark: regenerate Figure 3 (pmbench latency CDFs, 6 backends)."""

from repro.bench.fig3_latency_cdf import PAPER_FIG3_AVERAGES_US, run_fig3


def test_fig3_latency_cdf(once):
    result = once(run_fig3, measured_accesses=12000, seed=42)
    print()
    print(result.table_text())
    # Every backend within 25% of the paper's average.
    for name, paper in PAPER_FIG3_AVERAGES_US.items():
        measured = result.average(name)
        assert 0.75 <= measured / paper <= 1.25, (name, measured, paper)
    # Headline claims (§I): ~40% and ~77% faster.
    assert 0.30 <= result.speedup_over(
        "fluidmem-ramcloud", "swap-nvmeof"
    ) <= 0.55
    assert 0.65 <= result.speedup_over(
        "fluidmem-ramcloud", "swap-ssd"
    ) <= 0.88
