"""Benchmark: regenerate Figure 4 (Graph500 TEPS, 6 configs x 4 WSS)."""

from repro.bench.fig4_graph500 import run_fig4


def test_fig4_graph500(once):
    result = once(run_fig4, graph_scale=12, num_bfs_roots=1, seed=42)
    print()
    print(result.table_text())

    # (a) all-local: FluidMem's overhead is small (paper: 2.6%).
    assert abs(result.overhead_at_local()) < 0.08

    # (b) WSS 120%: FluidMem dominates; even the Memcached backend
    # beats NVMeoF and SSD swap.
    assert result.value(1.2, "fluidmem-dram") > \
        result.value(1.2, "swap-dram")
    assert result.value(1.2, "fluidmem-memcached") > \
        result.value(1.2, "swap-nvmeof")
    assert result.value(1.2, "fluidmem-memcached") > \
        result.value(1.2, "swap-ssd")

    # (c)/(d): FluidMem->RAMCloud keeps beating swap->NVMeoF.
    for fraction in (2.4, 4.8):
        assert result.value(fraction, "fluidmem-ramcloud") > \
            result.value(fraction, "swap-nvmeof")
