"""Benchmark: regenerate Table I (code-path latencies)."""

import pytest

from repro.bench.table1_codepaths import PAPER_TABLE1_US, run_table1


def test_table1_codepaths(once):
    result = once(run_table1, measured_accesses=8000, seed=42)
    print()
    print(result.table_text())
    for path in ("UPDATE_PAGE_CACHE", "INSERT_PAGE_HASH_NODE",
                 "INSERT_LRU_CACHE_NODE", "UFFD_ZEROPAGE", "UFFD_COPY",
                 "READ_PAGE", "WRITE_PAGE"):
        _n, avg, _s, _p = result.row_for(path)
        assert avg == pytest.approx(PAPER_TABLE1_US[path][0], rel=0.2), path
    # REMAP's heavy IPI tail (Table I: p99 18us vs 1.65 avg).
    _n, avg, _s, p99 = result.row_for("UFFD_REMAP")
    assert p99 > 2.5 * avg
