"""pytest-benchmark configuration for the experiment harness.

Each benchmark regenerates one of the paper's tables/figures at a
reduced-but-faithful scale and prints the comparison table.  One round
each: these are end-to-end experiment replications, not microbenchmarks
that need statistical repetition.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
        warmup_rounds=0,
    )


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
