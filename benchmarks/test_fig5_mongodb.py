"""Benchmark: regenerate Figure 5 (MongoDB/YCSB read latency)."""

from repro.bench.fig5_mongodb import run_fig5


def test_fig5_mongodb(once):
    result = once(run_fig5, operations=12000, seed=42)
    print()
    print(result.table_text())

    for fraction in (1.0, 2.0, 3.0):
        swap = result.average("swap-nvmeof", fraction)
        fluid = result.average("fluidmem-ramcloud", fraction)
        # Swap is always slower than FluidMem (paper: 36-95% slower;
        # our compressed gap is documented in EXPERIMENTS.md).
        assert swap > fluid

    # Average latency falls as the WiredTiger cache grows (both rows).
    assert result.average("swap-nvmeof", 3.0) < \
        result.average("swap-nvmeof", 1.0)
    assert result.average("fluidmem-ramcloud", 3.0) < \
        result.average("fluidmem-ramcloud", 1.0) * 1.05
