"""Benchmark: regenerate Table II (optimization ablation)."""

from repro.bench.table2_optimizations import run_table2


def test_table2_optimizations(once):
    result = once(run_table2, accesses=3000, seed=42)
    print()
    print(result.table_text())
    # Fully optimized beats Default on both backends and patterns.
    for backend in ("dram", "ramcloud"):
        for pattern in ("seq", "rand"):
            assert result.value(backend, "async-rw", pattern) < \
                result.value(backend, "default", pattern)
    # The paper's flagship delta: RAMCloud Default -> Async R/W cuts
    # latency roughly in half (66.7 -> 29.5).
    default = result.value("ramcloud", "default", "rand")
    optimized = result.value("ramcloud", "async-rw", "rand")
    assert optimized / default < 0.65
