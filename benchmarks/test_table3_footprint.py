"""Benchmark: regenerate Table III (footprint minimization)."""

from repro.bench.table3_footprint import (
    kvm_deadlocks_at_one_page,
    run_table3,
)


def test_table3_footprint(once):
    result = once(run_table3, boot_scale=1.0 / 8, seed=42)
    print()
    print(result.table_text())

    assert result.row("After startup", 81042).footprint_pages == 81042
    balloon = [r for r in result.rows_data
               if r.configuration == "Max VM balloon size"][0]
    assert balloon.footprint_pages == 20480  # the balloon's floor

    at_180 = result.row("FluidMem (KVM)", 180)
    assert (at_180.ssh, at_180.icmp, at_180.revived) == (True, True, True)
    at_80 = result.row("FluidMem (KVM)", 80)
    assert (at_80.ssh, at_80.icmp, at_80.revived) == (False, True, True)
    at_1 = result.row("FluidMem (full virtualization)", 1)
    assert (at_1.ssh, at_1.icmp, at_1.revived) == (False, False, True)


def test_kvm_deadlock_footnote(once):
    assert once(kvm_deadlocks_at_one_page, seed=42)
