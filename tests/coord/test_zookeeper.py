"""Tests for the mini-ZooKeeper ensemble."""

import pytest

from repro.coord import ZooKeeperEnsemble
from repro.errors import (
    CoordinationError,
    NodeExistsError,
    NoNodeError,
    QuorumLostError,
    SessionExpiredError,
)


@pytest.fixture
def zk():
    return ZooKeeperEnsemble(replica_count=3)


@pytest.fixture
def client(zk):
    return zk.connect()


def test_even_replica_count_rejected():
    with pytest.raises(CoordinationError):
        ZooKeeperEnsemble(replica_count=2)


def test_create_and_get(client):
    client.create("/a", b"hello")
    data, version = client.get("/a")
    assert data == b"hello"
    assert version == 0


def test_create_duplicate_rejected(client):
    client.create("/a")
    with pytest.raises(NodeExistsError):
        client.create("/a")


def test_create_needs_parent(client):
    with pytest.raises(NoNodeError):
        client.create("/a/b")


def test_ensure_path_builds_ancestors(client):
    client.ensure_path("/a/b/c")
    assert client.exists("/a/b/c")
    client.ensure_path("/a/b/c")  # idempotent


def test_invalid_paths_rejected(client):
    for bad in ("a", "/a//b", "/a/", ""):
        with pytest.raises(CoordinationError):
            client.create(bad)


def test_set_bumps_version(client):
    client.create("/a", b"v0")
    assert client.set("/a", b"v1") == 1
    data, version = client.get("/a")
    assert data == b"v1" and version == 1


def test_set_with_version_cas(client):
    client.create("/a", b"v0")
    client.set("/a", b"v1", version=0)
    with pytest.raises(CoordinationError):
        client.set("/a", b"v2", version=0)  # stale version


def test_delete(client):
    client.create("/a")
    client.delete("/a")
    assert not client.exists("/a")
    with pytest.raises(NoNodeError):
        client.get("/a")


def test_delete_with_children_rejected(client):
    client.create("/a")
    client.create("/a/b")
    with pytest.raises(CoordinationError):
        client.delete("/a")


def test_children_sorted(client):
    client.create("/a")
    for name in ("zed", "alpha", "mid"):
        client.create(f"/a/{name}")
    assert client.children("/a") == ["alpha", "mid", "zed"]


def test_sequence_nodes_monotonic(client):
    client.create("/q")
    first = client.create("/q/n-", sequence=True)
    second = client.create("/q/n-", sequence=True)
    assert first == "/q/n-0000000000"
    assert second == "/q/n-0000000001"
    assert first < second


def test_ephemeral_nodes_vanish_on_session_close(zk):
    owner = zk.connect()
    other = zk.connect()
    owner.create("/lock", ephemeral=True)
    assert other.exists("/lock")
    owner.close()
    assert not other.exists("/lock")


def test_expired_session_rejected(zk):
    client = zk.connect()
    client.close()
    with pytest.raises(SessionExpiredError):
        client.create("/x")


def test_persistent_nodes_survive_session_close(zk):
    owner = zk.connect()
    owner.create("/durable", b"d")
    owner.close()
    assert zk.connect().get("/durable")[0] == b"d"


def test_replicas_consistent_after_ops(zk, client):
    client.create("/a", b"1")
    client.set("/a", b"2")
    for replica in zk.replicas:
        node = replica.walk(["a"])
        assert node.data == b"2"
        assert node.version == 1


def test_quorum_loss_blocks_operations(zk, client):
    zk.stop_replica(0)
    client.create("/still-works", b"")  # 2/3 alive: fine
    zk.stop_replica(1)
    with pytest.raises(QuorumLostError):
        client.create("/nope")
    with pytest.raises(QuorumLostError):
        client.get("/still-works")


def test_restarted_replica_catches_up(zk, client):
    client.create("/a", b"before")
    zk.stop_replica(0)
    client.set("/a", b"after")
    zk.start_replica(0)
    # Replica 0 must now hold the committed state.
    assert zk.replicas[0].walk(["a"]).data == b"after"
    # And future ops keep it in sync.
    client.set("/a", b"final")
    assert zk.replicas[0].walk(["a"]).data == b"final"


def test_single_replica_ensemble_works():
    zk = ZooKeeperEnsemble(replica_count=1)
    client = zk.connect()
    client.create("/a", b"solo")
    assert client.get("/a")[0] == b"solo"
    zk.stop_replica(0)
    with pytest.raises(QuorumLostError):
        client.get("/a")
