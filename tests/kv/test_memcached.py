"""Memcached-specific behaviour: slabs, LRU eviction, IPoIB latency."""

import pytest

from repro.errors import KeyNotFoundError, KVError
from repro.kv import MemcachedServer, SLAB_BYTES
from repro.kv.memcached import chunk_class_for

from .conftest import run_op


def test_chunk_class_powers_of_two():
    assert chunk_class_for(10) == 128
    assert chunk_class_for(128) == 256  # 128 + overhead > 128
    assert chunk_class_for(4096) == 8192


def test_value_too_big_rejected():
    with pytest.raises(KVError):
        chunk_class_for(SLAB_BYTES * 2)


def test_server_minimum_memory():
    with pytest.raises(KVError):
        MemcachedServer(memory_bytes=1000)


def test_basic_set_get_delete():
    server = MemcachedServer(memory_bytes=SLAB_BYTES)
    server.set(1, "v", 4096)
    assert server.get(1) == ("v", 4096)
    server.delete(1)
    with pytest.raises(KeyNotFoundError):
        server.get(1)


def test_lru_eviction_when_full():
    server = MemcachedServer(memory_bytes=SLAB_BYTES)
    chunk = chunk_class_for(4096)
    capacity = SLAB_BYTES // chunk
    for key in range(capacity + 1):
        server.set(key, f"v{key}", 4096)
    assert server.evictions == 1
    assert 0 not in server           # key 0 was the LRU victim
    assert capacity in server


def test_get_touch_protects_from_eviction():
    server = MemcachedServer(memory_bytes=SLAB_BYTES)
    chunk = chunk_class_for(4096)
    capacity = SLAB_BYTES // chunk
    for key in range(capacity):
        server.set(key, "v", 4096)
    server.get(0)                    # touch key 0 to MRU
    server.set(capacity, "v", 4096)  # forces one eviction
    assert 0 in server               # survived
    assert 1 not in server           # key 1 became the victim


def test_size_class_change_on_overwrite():
    server = MemcachedServer(memory_bytes=2 * SLAB_BYTES)
    server.set(1, "small", 64)
    server.set(1, "big", 4096)
    assert server.get(1) == ("big", 4096)
    assert len(server) == 1


def test_used_bytes_accounting():
    server = MemcachedServer(memory_bytes=SLAB_BYTES)
    server.set(1, "v", 4096)
    server.set(2, "v", 4096)
    assert server.used_bytes == 8192


def test_memcached_slower_than_ramcloud(env, ipoib_fabric, memcached_store,
                                        request):
    """The IPoIB TCP stack must make memcached reads several times
    slower than RAMCloud's RDMA reads (Fig. 3b vs 3c)."""
    run_op(env, memcached_store.put(1, "page"))
    samples = []
    for _ in range(200):
        start = env.now
        run_op(env, memcached_store.get(1))
        samples.append(env.now - start)
    avg = sum(samples) / len(samples)
    assert avg > 30.0  # RAMCloud sits near 10us


def test_store_has_no_native_partitions(memcached_store):
    assert not memcached_store.supports_partitions
