"""Tests for batched reads: RAMCloud's multiRead, and the wrappers and
cluster store that must preserve the batching end to end."""

import pytest

from repro.cluster import ClusterStore
from repro.errors import KeyNotFoundError
from repro.kv import CompressedStore, DramStore, ReplicatedStore

from .conftest import run_op


def test_multiread_returns_in_key_order(env, ramcloud_store):
    for key in range(8):
        run_op(env, ramcloud_store.put(key, f"v{key}"))
    values = run_op(env, ramcloud_store.multi_read([5, 1, 3]))
    assert values == ["v5", "v1", "v3"]
    assert ramcloud_store.counters["multi_reads"] == 1


def test_multiread_single_round_trip(env, ramcloud_store):
    for key in range(16):
        run_op(env, ramcloud_store.put(key, "v"))
    start = env.now
    run_op(env, ramcloud_store.multi_read(list(range(16))))
    batch_time = env.now - start

    start = env.now
    for key in range(16):
        run_op(env, ramcloud_store.get(key))
    sequential_time = env.now - start
    assert batch_time < sequential_time / 3


def test_multiread_missing_key_raises(env, ramcloud_store):
    run_op(env, ramcloud_store.put(1, "v"))

    def attempt(env):
        yield from ramcloud_store.multi_read([1, 404])

    env.process(attempt(env))
    with pytest.raises(KeyNotFoundError):
        env.run()


def test_multiread_empty_is_noop(env, ramcloud_store):
    start = env.now
    assert run_op(env, ramcloud_store.multi_read([])) == []
    assert env.now == start


def test_default_multiread_matches_gets(env, dram_store):
    """Backends without a native batch still honor the API contract."""
    for key in range(6):
        run_op(env, dram_store.put(key, f"v{key}"))
    assert run_op(env, dram_store.multi_read([4, 0, 2])) == \
        ["v4", "v0", "v2"]
    assert dram_store.counters["multi_reads"] == 1


def test_compressed_store_delegates_the_batch(env, fabric, ramcloud_store):
    """The wrapper must hand the whole batch down — one inner
    multi_read, one round trip — not decay to per-key gets."""
    store = CompressedStore(env, ramcloud_store)
    for key in range(16):
        run_op(env, store.put(key, f"v{key}"))
    before = ramcloud_store.counters["multi_reads"]
    start = env.now
    values = run_op(env, store.multi_read(list(range(16))))
    batch_time = env.now - start
    assert values == [f"v{key}" for key in range(16)]
    assert ramcloud_store.counters["multi_reads"] == before + 1

    start = env.now
    for key in range(16):
        run_op(env, store.get(key))
    assert batch_time < (env.now - start) / 3


def test_replicated_store_batches_and_fails_over(env):
    replicas = [DramStore(env), DramStore(env)]
    store = ReplicatedStore(env, replicas)
    for key in range(8):
        run_op(env, store.put(key, f"v{key}"))
    assert run_op(env, store.multi_read([7, 0, 3])) == \
        ["v7", "v0", "v3"]
    assert replicas[0].counters["multi_reads"] == 1
    assert replicas[1].counters["multi_reads"] == 0
    # First replica down: the whole batch fails over to the second.
    store.fail_replica(0)
    assert run_op(env, store.multi_read([1, 2])) == ["v1", "v2"]
    assert replicas[1].counters["multi_reads"] == 1


def test_replicated_multiread_missing_key_raises(env):
    store = ReplicatedStore(env, [DramStore(env), DramStore(env)])
    run_op(env, store.put(1, "v"))

    def attempt(env):
        yield from store.multi_read([1, 404])

    env.process(attempt(env))
    with pytest.raises(KeyNotFoundError):
        env.run()


def test_cluster_store_batches_per_shard(env):
    """A cluster multi-read groups keys by shard and issues one
    batched read per node, in parallel."""
    store = ClusterStore(env, replication=1)
    nodes = {name: DramStore(env) for name in ("a", "b", "c")}
    for name, backend in nodes.items():
        store.add_node(name, backend)
    for key in range(30):
        run_op(env, store.put(key, f"v{key}"))
    values = run_op(env, store.multi_read(list(range(30))))
    assert values == [f"v{key}" for key in range(30)]
    # Every shard holding >1 of the requested keys saw one batch.
    batched = sum(
        backend.counters["multi_reads"] for backend in nodes.values()
    )
    assert batched >= 2
    assert store.counters["reads"] == 30
