"""Tests for RAMCloud's multiRead."""

import pytest

from repro.errors import KeyNotFoundError

from .conftest import run_op


def test_multiread_returns_in_key_order(env, ramcloud_store):
    for key in range(8):
        run_op(env, ramcloud_store.put(key, f"v{key}"))
    values = run_op(env, ramcloud_store.multi_read([5, 1, 3]))
    assert values == ["v5", "v1", "v3"]
    assert ramcloud_store.counters["multi_reads"] == 1


def test_multiread_single_round_trip(env, ramcloud_store):
    for key in range(16):
        run_op(env, ramcloud_store.put(key, "v"))
    start = env.now
    run_op(env, ramcloud_store.multi_read(list(range(16))))
    batch_time = env.now - start

    start = env.now
    for key in range(16):
        run_op(env, ramcloud_store.get(key))
    sequential_time = env.now - start
    assert batch_time < sequential_time / 3


def test_multiread_missing_key_raises(env, ramcloud_store):
    run_op(env, ramcloud_store.put(1, "v"))

    def attempt(env):
        yield from ramcloud_store.multi_read([1, 404])

    env.process(attempt(env))
    with pytest.raises(KeyNotFoundError):
        env.run()


def test_multiread_empty_is_noop(env, ramcloud_store):
    start = env.now
    assert run_op(env, ramcloud_store.multi_read([])) == []
    assert env.now == start
