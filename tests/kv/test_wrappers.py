"""Tests for the compression and replication store wrappers."""

import pytest

from repro.errors import KeyNotFoundError, KVError
from repro.kv import (
    CompressedStore,
    CompressionModel,
    DramStore,
    ReplicatedStore,
)
from repro.mem import PAGE_SIZE, Page
from repro.sim import Environment

from .conftest import run_op


@pytest.fixture
def env():
    return Environment()


# ---------------------------------------------------------- CompressedStore

def make_compressed(env):
    inner = DramStore(env)
    return CompressedStore(env, inner), inner


def test_compressed_roundtrip_metadata(env):
    store, inner = make_compressed(env)
    run_op(env, store.put(1, "token"))
    assert run_op(env, store.get(1)) == "token"
    assert store.contains(1)
    assert store.stored_keys() == 1


def test_compressed_roundtrip_real_bytes(env):
    store, _inner = make_compressed(env)
    page = Page(vaddr=0x1000)
    page.write(b"A" * PAGE_SIZE)           # highly compressible
    run_op(env, store.put(1, page))
    restored = run_op(env, store.get(1))
    assert restored is page
    assert restored.data == b"A" * PAGE_SIZE


def test_compressed_saves_remote_bytes(env):
    store, inner = make_compressed(env)
    page = Page(vaddr=0x1000)
    page.write(bytes(PAGE_SIZE))            # zeros: compresses hard
    run_op(env, store.put(1, page))
    assert inner.used_bytes < PAGE_SIZE
    assert store.bytes_saved > 0


def test_compressed_model_sizes(env):
    model = CompressionModel(ratio=4.0)
    assert model.compressed_bytes(4096) == 1024
    assert model.compressed_bytes(100) == 64  # floor


def test_compressed_multiwrite(env):
    store, inner = make_compressed(env)
    run_op(env, store.multi_write([(k, f"v{k}", PAGE_SIZE)
                                   for k in range(5)]))
    assert store.stored_keys() == 5
    assert inner.used_bytes < 5 * PAGE_SIZE
    for k in range(5):
        assert run_op(env, store.get(k)) == f"v{k}"


def test_compressed_costs_cpu_time(env):
    store, _inner = make_compressed(env)
    bare = DramStore(env)
    start = env.now
    run_op(env, store.put(1, "x"))
    compressed_cost = env.now - start
    start = env.now
    run_op(env, bare.put(1, "x"))
    assert compressed_cost > env.now - start


def test_compressed_remove(env):
    store, _inner = make_compressed(env)
    run_op(env, store.put(1, "x"))
    run_op(env, store.remove(1))
    assert not store.contains(1)


# ---------------------------------------------------------- ReplicatedStore

def make_replicated(env, n=3):
    replicas = [DramStore(env) for _ in range(n)]
    return ReplicatedStore(env, replicas), replicas


def test_replicated_requires_replicas(env):
    with pytest.raises(KVError):
        ReplicatedStore(env, [])


def test_replicated_writes_everywhere(env):
    store, replicas = make_replicated(env)
    run_op(env, store.put(1, "v"))
    for replica in replicas:
        assert replica.contains(1)


def test_replicated_parallel_write_cost(env):
    """3-way replication costs ~one write, not three (parallel)."""
    store, _replicas = make_replicated(env)
    start = env.now
    run_op(env, store.put(1, "v"))
    replicated_cost = env.now - start
    solo = DramStore(env)
    start = env.now
    run_op(env, solo.put(1, "v"))
    solo_cost = env.now - start
    assert replicated_cost < 2.5 * solo_cost


def test_replicated_survives_replica_failure(env):
    store, replicas = make_replicated(env)
    run_op(env, store.put(1, "precious"))
    store.fail_replica(0)
    assert store.live_count == 2
    assert run_op(env, store.get(1)) == "precious"
    # Writes keep going to the survivors.
    run_op(env, store.put(2, "more"))
    assert replicas[1].contains(2)
    assert not replicas[0].contains(2)


def test_replicated_all_down_raises(env):
    store, _replicas = make_replicated(env, n=1)
    store.fail_replica(0)

    def attempt(env):
        yield from store.put(1, "x")

    env.process(attempt(env))
    with pytest.raises(KVError):
        env.run()


def test_replicated_failover_counts(env):
    """A key missing on replica 0 (it recovered empty) fails over."""
    store, replicas = make_replicated(env)
    run_op(env, store.put(1, "v"))
    # Simulate replica 0 losing its data (crash + empty recovery).
    run_op(env, replicas[0].remove(1))
    assert run_op(env, store.get(1)) == "v"
    assert store.counters["failovers"] == 1


def test_replicated_get_missing(env):
    store, _replicas = make_replicated(env)

    def attempt(env):
        yield from store.get(404)

    env.process(attempt(env))
    with pytest.raises(KeyNotFoundError):
        env.run()


def test_replicated_remove(env):
    store, replicas = make_replicated(env)
    run_op(env, store.put(1, "v"))
    run_op(env, store.remove(1))
    for replica in replicas:
        assert not replica.contains(1)

    def attempt(env):
        yield from store.remove(1)

    env.process(attempt(env))
    with pytest.raises(KeyNotFoundError):
        env.run()


def test_replicated_liveness_consults_replica_is_alive(env):
    """The fixed latent bug: "read from the first live one" must see a
    replica's own is_alive (fault windows), not just fail_replica."""

    class DeadStore(DramStore):
        is_alive = False

    dead = DeadStore(env)
    healthy = DramStore(env)
    store = ReplicatedStore(env, [dead, healthy])
    # Data lives on both replicas; only replica 1 is reachable.
    dead._insert(1, "v", PAGE_SIZE)
    run_op(env, healthy.put(1, "v"))

    assert store.live_count == 1
    assert store.is_alive
    assert run_op(env, store.get(1)) == "v"
    assert store.counters["replicas_skipped"] == 1
    # The dead replica was never asked.
    assert dead.counters["reads"] == 0
    # Writes also skip it.
    run_op(env, store.put(2, "w"))
    assert healthy.contains(2)
    assert not dead.contains(2)


def test_replicated_all_unreachable_is_transient(env):
    """All replicas unreachable raises a retryable error (a crashed
    node can come back), not a plain KVError."""
    from repro.errors import TransientStoreError

    class DeadStore(DramStore):
        is_alive = False

    store = ReplicatedStore(env, [DeadStore(env), DeadStore(env)])
    assert not store.is_alive

    def attempt(env):
        yield from store.get(1)

    env.process(attempt(env))
    with pytest.raises(TransientStoreError):
        env.run()


def test_replicated_write_survives_mid_write_failure(env):
    """A replica that errors mid-write is tolerated: the write commits
    on the survivors and the failure is counted."""
    from repro.errors import TransientStoreError

    class ExplodingStore(DramStore):
        def put(self, key, value, nbytes=PAGE_SIZE):
            yield self.env.timeout(self.COPY_US)
            raise TransientStoreError("boom")

        def multi_write(self, items):
            yield self.env.timeout(self.COPY_US)
            raise TransientStoreError("boom")

    exploding = ExplodingStore(env)
    healthy = DramStore(env)
    store = ReplicatedStore(env, [exploding, healthy])
    run_op(env, store.put(1, "v"))
    assert healthy.contains(1)
    assert store.counters["replica_write_failures"] == 1
    assert run_op(env, store.get(1)) == "v"


def test_composition_compressed_over_replicated(env):
    """Wrappers compose: compression in front of replication."""
    replicated, replicas = make_replicated(env)
    store = CompressedStore(env, replicated)
    run_op(env, store.put(1, "deep"))
    assert run_op(env, store.get(1)) == "deep"
    replicated.fail_replica(0)
    assert run_op(env, store.get(1)) == "deep"
