"""RAMCloud-specific behaviour: log structure, multiwrite, latency scale."""

import pytest

from repro.errors import KeyNotFoundError, KVError
from repro.kv import RamCloudServer, RamCloudStore, SEGMENT_BYTES

from .conftest import run_op


def test_server_needs_a_segment():
    with pytest.raises(KVError):
        RamCloudServer(memory_bytes=100)


def test_table_lifecycle():
    server = RamCloudServer(memory_bytes=SEGMENT_BYTES)
    server.create_table(5)
    with pytest.raises(KVError):
        server.create_table(5)
    server.write(5, 1, "x", 4096)
    assert server.live_bytes == 4096
    server.drop_table(5)
    assert server.live_bytes == 0
    with pytest.raises(KVError):
        server.drop_table(5)
    with pytest.raises(KVError):
        server.write(5, 1, "x", 4096)


def test_overwrite_keeps_live_bytes_but_appends():
    server = RamCloudServer(memory_bytes=SEGMENT_BYTES)
    server.create_table(1)
    server.write(1, 1, "a", 4096)
    server.write(1, 1, "b", 4096)
    assert server.live_bytes == 4096
    # Log utilization halves: one live object, two appended.
    assert server.log_utilization == pytest.approx(0.5)


def test_memory_limit_enforced():
    server = RamCloudServer(memory_bytes=SEGMENT_BYTES)
    server.create_table(1)
    pages = SEGMENT_BYTES // 4096
    for i in range(pages):
        server.write(1, i, "x", 4096)
    with pytest.raises(KVError):
        server.write(1, pages, "x", 4096)


def test_delete_appends_tombstone():
    server = RamCloudServer(memory_bytes=SEGMENT_BYTES)
    server.create_table(1)
    server.write(1, 1, "x", 4096)
    server.delete(1, 1)
    assert server.live_bytes == 0
    with pytest.raises(KeyNotFoundError):
        server.read(1, 1)


def test_segments_roll_over():
    server = RamCloudServer(memory_bytes=4 * SEGMENT_BYTES)
    server.create_table(1)
    pages_per_segment = SEGMENT_BYTES // 4096
    for i in range(pages_per_segment + 1):
        server.write(1, i, "x", 4096)
    assert server._segments_live == 2


def test_multiwrite_single_round_trip(env, fabric, ramcloud_store):
    """A 32-page multiwrite must cost far less than 32 sequential puts."""
    items = [(k, "v", 4096) for k in range(32)]
    start = env.now
    run_op(env, ramcloud_store.multi_write(list(items)))
    batch_time = env.now - start

    start = env.now
    for key, value, nbytes in items:
        run_op(env, ramcloud_store.put(key + 100, value, nbytes))
    sequential_time = env.now - start

    assert batch_time < sequential_time / 3
    assert ramcloud_store.counters["multi_writes"] == 1


def test_empty_multiwrite_is_noop(env, ramcloud_store):
    start = env.now
    run_op(env, ramcloud_store.multi_write([]))
    assert env.now == start


def test_read_latency_near_paper_10us(env, ramcloud_store):
    """Paper V-B: a RAMCloud page read waits ~10us on the network."""
    run_op(env, ramcloud_store.put(1, "page"))
    samples = []
    for _ in range(300):
        start = env.now
        run_op(env, ramcloud_store.get(1))
        samples.append(env.now - start)
    avg = sum(samples) / len(samples)
    assert 7.0 <= avg <= 16.0


def test_native_partitions_isolate_tables(env, fabric):
    server = RamCloudServer(memory_bytes=SEGMENT_BYTES)
    store_a = RamCloudStore(env, fabric, "hypervisor", "kv-server", server,
                            table_id=1)
    store_b = RamCloudStore(env, fabric, "hypervisor", "kv-server", server,
                            table_id=2)
    run_op(env, store_a.put(1, "from-a"))
    assert store_a.contains(1)
    assert not store_b.contains(1)
    assert store_a.supports_partitions
