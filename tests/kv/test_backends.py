"""Backend-generic contract tests run against all three stores."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KeyNotFoundError
from repro.kv import DramStore
from repro.sim import Environment

from .conftest import run_op


BACKENDS = ["dram_store", "ramcloud_store", "memcached_store"]


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.getfixturevalue(request.param)


def test_put_get_roundtrip(env, backend):
    run_op(env, backend.put(1, "page-a"))
    assert run_op(env, backend.get(1)) == "page-a"


def test_get_missing_raises(env, backend):
    def attempt(env):
        yield from backend.get(404)

    proc = env.process(attempt(env))
    with pytest.raises(KeyNotFoundError):
        env.run()


def test_overwrite_replaces(env, backend):
    run_op(env, backend.put(1, "old"))
    run_op(env, backend.put(1, "new"))
    assert run_op(env, backend.get(1)) == "new"
    assert backend.stored_keys() == 1


def test_remove(env, backend):
    run_op(env, backend.put(1, "x"))
    run_op(env, backend.remove(1))
    assert not backend.contains(1)
    def attempt(env):
        yield from backend.remove(1)
    env.process(attempt(env))
    with pytest.raises(KeyNotFoundError):
        env.run()


def test_multi_write_stores_all(env, backend):
    items = [(key, f"v{key}", 4096) for key in range(10)]
    run_op(env, backend.multi_write(items))
    for key in range(10):
        assert backend.contains(key)
    assert backend.stored_keys() == 10


def test_operations_cost_time(env, backend):
    before = env.now
    run_op(env, backend.put(1, "x"))
    t_put = env.now - before
    assert t_put > 0
    before = env.now
    run_op(env, backend.get(1))
    assert env.now - before > 0


def test_read_async_top_bottom_halves(env, backend):
    run_op(env, backend.put(7, "async-value"))
    results = []

    def monitor(env):
        handle = backend.read_async(7)
        issued = env.now
        # Top half returns without any time passing.
        assert env.now == issued
        value = yield handle.event
        results.append((env.now - issued, value))

    env.process(monitor(env))
    env.run()
    elapsed, value = results[0]
    assert value == "async-value"
    assert elapsed > 0


def test_read_async_missing_key_fails_event(env, backend):
    def monitor(env):
        handle = backend.read_async(404)
        yield handle.event

    env.process(monitor(env))
    with pytest.raises(KeyNotFoundError):
        env.run()


def test_write_async_completes(env, backend):
    results = []

    def monitor(env):
        handle = backend.write_async([(1, "a", 4096), (2, "b", 4096)])
        count = yield handle.event
        results.append(count)

    env.process(monitor(env))
    env.run()
    assert results == [2]
    assert backend.contains(1) and backend.contains(2)


def test_counters_track_operations(env, backend):
    run_op(env, backend.put(1, "x"))
    run_op(env, backend.get(1))
    assert backend.counters["writes"] == 1
    assert backend.counters["reads"] == 1


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(
    st.tuples(st.sampled_from(["put", "get", "remove"]),
              st.integers(0, 5)),
    max_size=40,
))
def test_dram_store_matches_dict_model(ops):
    """Property: DramStore behaves exactly like a dict (latency aside)."""
    env = Environment()
    store = DramStore(env)
    model = {}
    for op, key in ops:
        if op == "put":
            run_op(env, store.put(key, f"v{key}"))
            model[key] = f"v{key}"
        elif op == "get":
            if key in model:
                assert run_op(env, store.get(key)) == model[key]
            else:
                assert not store.contains(key)
        else:
            if key in model:
                run_op(env, store.remove(key))
                del model[key]
    assert store.stored_keys() == len(model)
    for key, value in model.items():
        assert store.contains(key)
