"""Shared fixtures for key-value backend tests."""

import pytest

from repro.kv import (
    DramStore,
    MemcachedServer,
    MemcachedStore,
    RamCloudServer,
    RamCloudStore,
)
from repro.net import Fabric, IPOIB, RDMA_FDR
from repro.sim import Environment, RandomStreams


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def fabric(env):
    fabric = Fabric(env, RandomStreams(seed=99))
    fabric.add_host("hypervisor")
    fabric.add_host("kv-server")
    fabric.connect("hypervisor", "kv-server", RDMA_FDR)
    return fabric


@pytest.fixture
def ipoib_fabric(env):
    fabric = Fabric(env, RandomStreams(seed=99))
    fabric.add_host("hypervisor")
    fabric.add_host("kv-server")
    fabric.connect("hypervisor", "kv-server", IPOIB)
    return fabric


@pytest.fixture
def dram_store(env):
    return DramStore(env)


@pytest.fixture
def ramcloud_store(env, fabric):
    server = RamCloudServer(memory_bytes=64 * 1024 * 1024)
    return RamCloudStore(env, fabric, "hypervisor", "kv-server", server)


@pytest.fixture
def memcached_store(env, ipoib_fabric):
    server = MemcachedServer(memory_bytes=8 * 1024 * 1024)
    return MemcachedStore(env, ipoib_fabric, "hypervisor", "kv-server", server)


def run_op(env, generator):
    """Drive one backend operation to completion; returns its value."""
    proc = env.process(generator)
    env.run()
    return proc.value
