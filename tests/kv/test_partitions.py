"""Tests for virtual-partition registry, leases, and key codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coord import ZooKeeperEnsemble
from repro.errors import PartitionError
from repro.kv import (
    PartitionLease,
    PartitionedKeyCodec,
    PartitionOwner,
    VirtualPartitionRegistry,
)
from repro.mem import MAX_PARTITION, decode_page_key


@pytest.fixture
def registry():
    zk = ZooKeeperEnsemble(replica_count=3)
    return VirtualPartitionRegistry(zk.connect())


def owner(pid=100, hypervisor="hv-1", nonce=1):
    return PartitionOwner(hypervisor_id=hypervisor, pid=pid, nonce=nonce)


def test_register_returns_valid_index(registry):
    index = registry.register(owner())
    assert 0 <= index <= MAX_PARTITION
    assert registry.owner_of(index) == owner()


def test_distinct_owners_distinct_indexes(registry):
    indexes = {
        registry.register(owner(pid=pid, nonce=pid)) for pid in range(50)
    }
    assert len(indexes) == 50


def test_reregistration_idempotent(registry):
    first = registry.register(owner())
    second = registry.register(owner())
    assert first == second
    assert registry.allocated_count() == 1


def test_release_frees_index(registry):
    index = registry.register(owner())
    registry.release(index, owner())
    assert registry.owner_of(index) is None
    assert registry.allocated_count() == 0


def test_release_wrong_owner_rejected(registry):
    index = registry.register(owner())
    with pytest.raises(PartitionError):
        registry.release(index, owner(pid=999))


def test_release_unallocated_rejected(registry):
    with pytest.raises(PartitionError):
        registry.release(0, owner())


def test_owner_of_range_checked(registry):
    with pytest.raises(PartitionError):
        registry.owner_of(-1)
    with pytest.raises(PartitionError):
        registry.owner_of(MAX_PARTITION + 1)


def test_two_hypervisors_never_collide():
    """Two registries sharing one ZooKeeper must allocate disjoint slots."""
    zk = ZooKeeperEnsemble(replica_count=3)
    reg_a = VirtualPartitionRegistry(zk.connect())
    reg_b = VirtualPartitionRegistry(zk.connect())
    taken = set()
    for pid in range(20):
        idx_a = reg_a.register(owner(pid=pid, hypervisor="hv-a", nonce=pid))
        idx_b = reg_b.register(owner(pid=pid, hypervisor="hv-b", nonce=pid))
        assert idx_a not in taken
        taken.add(idx_a)
        assert idx_b not in taken
        taken.add(idx_b)


def test_ephemeral_release_on_session_expiry():
    """A crashed hypervisor's partitions are reclaimed automatically."""
    zk = ZooKeeperEnsemble(replica_count=3)
    session = zk.connect()
    registry = VirtualPartitionRegistry(session)
    index = registry.register(owner())
    zk.expire_session(session.session_id)

    fresh = VirtualPartitionRegistry(zk.connect())
    assert fresh.owner_of(index) is None


def test_lease_wraps_register_and_release(registry):
    lease = registry.lease(owner())
    assert isinstance(lease, PartitionLease)
    assert 0 <= lease.index <= MAX_PARTITION
    assert registry.owner_of(lease.index) == owner()
    assert not lease.released
    lease.release()
    assert lease.released
    assert registry.owner_of(lease.index) is None
    lease.release()  # idempotent: second release is a no-op
    assert registry.allocated_count() == 0


def test_lease_release_after_session_expiry_is_silent():
    """The ephemeral znode already vanished with the session; a late
    release must not raise (the cleanup it wanted already happened)."""
    zk = ZooKeeperEnsemble(replica_count=3)
    session = zk.connect()
    registry = VirtualPartitionRegistry(session)
    lease = registry.lease(owner())
    zk.expire_session(session.session_id)
    lease.release()
    assert lease.released


def test_allocate_free_cycles_never_exhaust_the_index_space():
    """Leak regression: VM churn far beyond 4096 teardowns must keep
    working because every released index returns to the pool."""
    zk = ZooKeeperEnsemble(replica_count=1)
    registry = VirtualPartitionRegistry(zk.connect())
    cycles = (MAX_PARTITION + 1) + 200  # > the whole index space
    for nonce in range(cycles):
        lease = registry.lease(owner(pid=nonce % 97, nonce=nonce))
        lease.release()
    assert registry.allocated_count() == 0
    # And the space is genuinely reusable afterwards.
    survivors = [
        registry.lease(owner(pid=pid, nonce=cycles + pid))
        for pid in range(16)
    ]
    assert len({lease.index for lease in survivors}) == 16


def test_owner_codec_roundtrip():
    original = PartitionOwner("hv-x", 4242, 7)
    assert PartitionOwner.decode(original.encode()) == original


def test_owner_codec_with_colons_in_hypervisor_id():
    original = PartitionOwner("rack:3:hv", 1, 2)
    assert PartitionOwner.decode(original.encode()) == original


def test_key_codec_packs_partition():
    codec = PartitionedKeyCodec(partition=42)
    key = codec.key_for(0x7000)
    base, partition = decode_page_key(key)
    assert base == 0x7000
    assert partition == 42


def test_key_codec_range_check():
    with pytest.raises(PartitionError):
        PartitionedKeyCodec(partition=MAX_PARTITION + 1)


@settings(max_examples=20, deadline=None)
@given(st.sets(st.integers(0, 10_000), min_size=1, max_size=60))
def test_registry_uniqueness_property(pids):
    """Property: any set of distinct owners gets distinct partitions."""
    zk = ZooKeeperEnsemble(replica_count=1)
    registry = VirtualPartitionRegistry(zk.connect())
    seen = set()
    for pid in pids:
        index = registry.register(owner(pid=pid, nonce=pid))
        assert index not in seen
        seen.add(index)
