"""Tests for the userfaultfd emulation."""

import random

import pytest

from repro.errors import UffdError, UffdRegionError
from repro.kernel import UffdLatency, UffdOps, Userfaultfd
from repro.mem import (
    PAGE_SIZE,
    FrameAllocator,
    MemoryRegion,
    PageKind,
    PageTable,
)
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def uffd(env):
    return Userfaultfd(env, UffdLatency(), random.Random(1))


@pytest.fixture
def ops(env):
    return UffdOps(env, UffdLatency(), random.Random(2),
                   FrameAllocator(1024))


def region(start=0x100000, pages=16):
    return MemoryRegion(start, pages * PAGE_SIZE)


def test_register_and_find(uffd):
    table = PageTable()
    handle = uffd.register(region(), pid=42, page_table=table)
    assert uffd.find_region(0x100000, pid=42) is handle
    assert uffd.find_region(0x100000, pid=7) is None
    assert uffd.find_region(0x100000 + 16 * PAGE_SIZE, pid=42) is None


def test_register_overlap_rejected(uffd):
    table = PageTable()
    uffd.register(region(), pid=42, page_table=table)
    with pytest.raises(UffdRegionError):
        uffd.register(region(start=0x100000 + PAGE_SIZE, pages=2),
                      pid=42, page_table=table)
    # A different process may overlap addresses freely.
    uffd.register(region(), pid=43, page_table=PageTable())


def test_unregister_invalidates(uffd):
    table = PageTable()
    handle = uffd.register(region(), pid=42, page_table=table)
    uffd.unregister(handle)
    assert uffd.find_region(0x100000, pid=42) is None
    assert handle not in uffd.registered_regions
    with pytest.raises(UffdRegionError):
        uffd.unregister(handle)


def test_fault_outside_region_rejected(env, uffd):
    with pytest.raises(UffdError):
        uffd.raise_fault(0xDEAD000, pid=42, is_write=False)


def test_fault_unaligned_rejected(env, uffd):
    table = PageTable()
    uffd.register(region(), pid=42, page_table=table)
    with pytest.raises(UffdError):
        uffd.raise_fault(0x100001, pid=42, is_write=False)


def test_fault_event_reaches_monitor_and_wakes_vcpu(env, uffd, ops):
    """Full rendezvous: vCPU faults, monitor resolves, vCPU resumes."""
    table = PageTable()
    uffd.register(region(), pid=42, page_table=table)
    timeline = []

    def vcpu(env):
        fault = uffd.raise_fault(0x100000, pid=42, is_write=False)
        yield fault.resolved
        timeline.append(("vcpu-resumed", env.now))

    def monitor(env):
        fault = yield uffd.events.get()
        timeline.append(("monitor-got-event", env.now))
        yield from ops.zeropage(fault.region.page_table, fault.addr)
        yield from ops.wake(fault)

    env.process(vcpu(env))
    env.process(monitor(env))
    env.run()
    assert [name for name, _t in timeline] == \
        ["monitor-got-event", "vcpu-resumed"]
    # The vCPU was blocked for delivery + zeropage + wake.
    assert timeline[1][1] > timeline[0][1]
    assert table.present_pages == 1


def test_zeropage_maps_anonymous_zero(env, ops):
    table = PageTable()

    def run(env):
        page = yield from ops.zeropage(table, 0x5000)
        assert page.kind is PageKind.ANONYMOUS
        assert not page.dirty

    env.process(run(env))
    env.run()
    assert 0x5000 in table
    assert ops.counters["zeropage"] == 1


def test_copy_maps_existing_page(env, ops):
    from repro.mem import Page
    table = PageTable()
    page = Page(vaddr=0x5000)
    page.write()

    def run(env):
        yield from ops.copy(table, 0x5000, page)

    env.process(run(env))
    env.run()
    assert table.entry(0x5000).page is page


def test_remap_moves_between_tables_zero_copy(env, ops):
    vm_table = PageTable("vm")
    buffer_table = PageTable("monitor-buffer")

    def run(env):
        page_in = yield from ops.zeropage(vm_table, 0x5000)
        page_out = yield from ops.remap_out(
            vm_table, 0x5000, buffer_table, 0x900000
        )
        assert page_out is page_in  # zero copy

    env.process(run(env))
    env.run()
    assert 0x5000 not in vm_table
    assert 0x900000 in buffer_table


def test_remap_interleaved_cheaper_than_sync(env):
    """Paper V-B: interleaved REMAP ~2us vs 4-5us synchronous."""
    latency = UffdLatency()
    rng = random.Random(9)
    sync = sum(latency.sample_remap(rng, interleaved=False)
               for _ in range(3000)) / 3000
    inter = sum(latency.sample_remap(rng, interleaved=True)
                for _ in range(3000)) / 3000
    assert 3.5 <= sync <= 5.5
    assert 1.5 <= inter <= 2.6
    assert inter < sync


def test_remap_has_ipi_tail(env):
    """Table I: UFFD_REMAP p99 is ~18us due to TLB-shootdown IPIs."""
    latency = UffdLatency()
    rng = random.Random(10)
    samples = sorted(latency.sample_remap(rng, interleaved=False)
                     for _ in range(10_000))
    p99 = samples[int(len(samples) * 0.99)]
    median = samples[len(samples) // 2]
    assert p99 > 2 * median


def test_double_wake_rejected(env, uffd, ops):
    table = PageTable()
    uffd.register(region(), pid=42, page_table=table)

    def vcpu(env):
        fault = uffd.raise_fault(0x100000, pid=42, is_write=False)
        yield fault.resolved

    def monitor(env):
        fault = yield uffd.events.get()
        yield from ops.zeropage(fault.region.page_table, fault.addr)
        yield from ops.wake(fault)
        with pytest.raises(UffdError):
            yield from ops.wake(fault)

    env.process(vcpu(env))
    proc = env.process(monitor(env))
    env.run()
    assert proc.value is None  # monitor generator completed


def test_table_i_ioctl_costs(env):
    """UFFD_ZEROPAGE ~2.61us, UFFD_COPY ~3.89us on average (Table I)."""
    latency = UffdLatency()
    rng = random.Random(4)
    zero = sum(latency.sample_zeropage(rng) for _ in range(3000)) / 3000
    copy = sum(latency.sample_copy(rng) for _ in range(3000)) / 3000
    assert zero == pytest.approx(2.61, abs=0.25)
    assert copy == pytest.approx(3.89, abs=0.35)
