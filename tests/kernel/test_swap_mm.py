"""Tests for the swap subsystem, kswapd, and the guest memory manager."""

import random

import pytest

from repro.blockdev import PmemDisk
from repro.errors import KernelError, OutOfSwapError, SwapError
from repro.kernel import GuestMemoryManager, SwapPathLatency, SwapSubsystem
from repro.mem import PAGE_SIZE, FrameAllocator, Page, PageKind, PageTable
from repro.sim import Environment


def run(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


@pytest.fixture
def env():
    return Environment()


def make_swap(env, mib=4):
    device = PmemDisk(env, mib * 1024 * 1024, random.Random(0))
    return SwapSubsystem(env, device, SwapPathLatency())


def make_mm(env, dram_pages=64, swap_mib=4, data_disk=False, **kw):
    swap_device = PmemDisk(env, swap_mib * 1024 * 1024, random.Random(1))
    disk = PmemDisk(env, 16 * 1024 * 1024, random.Random(2)) if data_disk \
        else None
    return GuestMemoryManager(
        env,
        random.Random(3),
        dram_bytes=dram_pages * PAGE_SIZE,
        swap_device=swap_device,
        data_disk=disk,
        swappiness=100,
        **kw,
    )


# ------------------------------------------------------------ SwapSubsystem

def test_swap_out_requires_swappable(env):
    swap = make_swap(env)
    table = PageTable()
    frames = FrameAllocator(16)
    for kind in (PageKind.FILE_BACKED, PageKind.KERNEL,
                 PageKind.UNEVICTABLE):
        page = Page(vaddr=0, kind=kind)
        with pytest.raises(SwapError):
            run(env, swap.swap_out(page, table, frames))
    locked = Page(vaddr=0, mlocked=True)
    with pytest.raises(SwapError):
        run(env, swap.swap_out(locked, table, frames))


def test_swap_out_in_roundtrip(env):
    swap = make_swap(env)
    table = PageTable()
    frames = FrameAllocator(16)
    frame = frames.allocate()
    page = Page(vaddr=0x4000)
    table.map(0x4000, frame, page)

    run(env, swap.swap_out(page, table, frames))
    assert 0x4000 not in table
    assert swap.has_entry(0x4000)
    assert frames.free_frames == 16  # frame returned after writeback
    assert swap.counters["swapped_out"] == 1

    result = run(env, swap.swap_in(0x4000))
    restored, frame, prefetched = result
    assert frame is None            # device path: caller allocates
    assert prefetched == []         # nothing adjacent to read ahead
    assert restored.vaddr == 0x4000
    assert not swap.has_entry(0x4000)
    assert swap.counters["swapped_in"] == 1


def test_swap_cache_hit_during_writeback(env):
    """A fault racing the writeback gets the page without device I/O."""
    swap = make_swap(env)
    table = PageTable()
    frames = FrameAllocator(16)
    frame = frames.allocate()
    page = Page(vaddr=0x4000)
    table.map(0x4000, frame, page)

    results = {}

    def evictor(env):
        yield from swap.swap_out(page, table, frames)

    def faulter(env):
        yield env.timeout(1.0)  # while the write is still in flight
        got, got_frame, _pf = yield from swap.swap_in(0x4000)
        results["page"] = got
        results["frame"] = got_frame
        results["time"] = env.now

    env.process(evictor(env))
    env.process(faulter(env))
    env.run()
    assert results["page"] is page       # same object, no device read
    assert results["frame"] == frame     # original frame came back
    assert swap.counters["swap_cache_hits"] == 1
    assert frames.free_frames == 15      # frame still owned by the page


def test_swap_device_fills_up(env):
    device = PmemDisk(env, 1024 * 1024, random.Random(0))  # 256 slots
    swap = SwapSubsystem(env, device, SwapPathLatency())
    table = PageTable()
    frames = FrameAllocator(300)

    def fill(env):
        for i in range(256):
            frame = frames.allocate()
            page = Page(vaddr=i * PAGE_SIZE)
            table.map(page.vaddr, frame, page)
            yield from swap.swap_out(page, table, frames)

    run(env, fill(env))
    assert swap.slots.free_slots == 0
    overflow = Page(vaddr=0x7777000)
    table.map(overflow.vaddr, frames.allocate(), overflow)
    with pytest.raises(OutOfSwapError):
        run(env, swap.swap_out(overflow, table, frames))


def test_swap_in_without_entry_rejected(env):
    swap = make_swap(env)
    with pytest.raises(SwapError):
        run(env, swap.swap_in(0x4000))


def test_drop_entry(env):
    swap = make_swap(env)
    table = PageTable()
    frames = FrameAllocator(4)
    page = Page(vaddr=0)
    table.map(0, frames.allocate(), page)
    run(env, swap.swap_out(page, table, frames))
    swap.drop_entry(0)
    assert not swap.has_entry(0)
    with pytest.raises(SwapError):
        swap.drop_entry(0)


# ------------------------------------------------------- GuestMemoryManager

def test_first_touch_minor_fault(env):
    mm = make_mm(env)
    page = run(env, mm.access_fault(0x10000, is_write=True))
    assert mm.is_resident(0x10000)
    assert page.dirty
    assert mm.counters["minor_faults"] == 1


def test_touch_fast_path(env):
    mm = make_mm(env)
    run(env, mm.access_fault(0x10000, is_write=False))
    before = env.now
    mm.touch(0x10000, is_write=True)
    assert env.now == before  # no simulated time on the fast path
    assert mm.table.entry(0x10000).page.dirty


def test_pressure_triggers_reclaim_and_swap(env):
    """Filling DRAM twice over must swap out and faults must swap in."""
    mm = make_mm(env, dram_pages=32)

    def workload(env):
        for i in range(64):
            addr = 0x100000 + i * PAGE_SIZE
            yield from mm.access_fault(addr, is_write=True)
        # Touch an early page again: it was reclaimed, so this is a
        # major fault through swap.
        assert not mm.is_resident(0x100000)
        yield from mm.access_fault(0x100000, is_write=False)

    run(env, workload(env))
    assert mm.counters["major_faults"] >= 1
    assert mm.swap.counters["swapped_out"] >= 16
    assert mm.frames.used_frames <= 32


def test_unevictable_pages_pin_dram(env):
    """Kernel/unevictable pages never reach swap: partial disaggregation."""
    mm = make_mm(env, dram_pages=32)

    def workload(env):
        for i in range(8):
            mm.populate_resident(0x900000 + i * PAGE_SIZE,
                                 kind=PageKind.KERNEL)
        for i in range(64):
            yield from mm.access_fault(0x100000 + i * PAGE_SIZE, True)

    run(env, workload(env))
    # All 8 kernel pages are still resident.
    for i in range(8):
        assert mm.is_resident(0x900000 + i * PAGE_SIZE)
    assert mm.swap.counters["swapped_out"] > 0


def test_no_swap_means_anonymous_never_reclaimed(env):
    mm = GuestMemoryManager(
        env, random.Random(0), dram_bytes=32 * PAGE_SIZE, swap_device=None
    )

    def workload(env):
        for i in range(32):
            yield from mm.access_fault(0x100000 + i * PAGE_SIZE, True)

    run(env, workload(env))
    assert len(mm.lru) == 0  # nothing reclaimable was ever listed

    def one_more(env):
        yield from mm.access_fault(0x900000, True)

    env.process(one_more(env))
    with pytest.raises(KernelError):  # guest OOM
        env.run()


def test_file_page_cache_hit_miss(env):
    mm = make_mm(env, dram_pages=64, data_disk=True)
    hit = run(env, mm.read_file_page(file_id=1, page_index=0))
    assert hit is False
    assert mm.counters["pagecache_misses"] == 1
    hit = run(env, mm.read_file_page(file_id=1, page_index=0))
    assert hit is True
    assert mm.counters["pagecache_hits"] == 1


def test_file_pages_dropped_under_pressure_not_swapped(env):
    """File pages are dropped/written back to their file, never to swap."""
    mm = make_mm(env, dram_pages=32, data_disk=True)

    def workload(env):
        for i in range(24):
            yield from mm.read_file_page(file_id=1, page_index=i)
        for i in range(40):
            yield from mm.access_fault(0x100000 + i * PAGE_SIZE, True)

    run(env, workload(env))
    dropped = mm.counters["file_dropped"] + mm.counters["file_writeback"]
    assert dropped > 0
    # No file page ever got a swap slot.
    from repro.kernel.mm import FILE_REGION_BASE
    for vaddr in list(mm.swap._entries):
        assert vaddr < FILE_REGION_BASE


def test_major_fault_latency_exceeds_minor(env):
    mm = make_mm(env, dram_pages=16)

    def workload(env):
        for i in range(32):
            yield from mm.access_fault(0x100000 + i * PAGE_SIZE, True)
        yield from mm.access_fault(0x100000, False)

    run(env, workload(env))
    lat = mm.fault_latency
    assert lat.count == 33
    assert lat.maximum > lat.minimum


def test_swappiness_range_checked(env):
    with pytest.raises(KernelError):
        GuestMemoryManager(env, random.Random(0), dram_bytes=PAGE_SIZE * 8,
                           swappiness=101)


def test_file_vaddr_bounds():
    with pytest.raises(KernelError):
        GuestMemoryManager.file_vaddr(-1, 0)
    a = GuestMemoryManager.file_vaddr(0, 0)
    b = GuestMemoryManager.file_vaddr(1, 0)
    assert a != b
