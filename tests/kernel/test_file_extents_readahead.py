"""Tests for file-extent reads and swap readahead mechanics."""

import random

import pytest

from repro.blockdev import PmemDisk
from repro.errors import KernelError, SwapError
from repro.kernel import GuestMemoryManager, SwapPathLatency
from repro.mem import PAGE_SIZE
from repro.sim import Environment


def run(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


@pytest.fixture
def env():
    return Environment()


def make_mm(env, dram_pages=256, page_cluster=1, data_disk=True):
    return GuestMemoryManager(
        env,
        random.Random(3),
        dram_bytes=dram_pages * PAGE_SIZE,
        latency=SwapPathLatency(page_cluster=page_cluster),
        swap_device=PmemDisk(env, 8 << 20, random.Random(1)),
        data_disk=PmemDisk(env, 32 << 20, random.Random(2))
        if data_disk else None,
        swappiness=100,
    )


# ------------------------------------------------------------ file extents

def test_extent_reads_whole_run(env):
    mm = make_mm(env)
    hit = run(env, mm.read_file_extent(1, 0, 8))
    assert hit is False
    for index in range(8):
        assert mm.is_file_page_cached(1, index)
    # Re-read: all cached.
    assert run(env, mm.read_file_extent(1, 0, 8)) is True
    assert mm.counters["pagecache_hits"] == 1


def test_extent_partial_hit_reads_only_missing(env):
    mm = make_mm(env)
    run(env, mm.read_file_page(1, 2))
    before = mm.data_disk.counters["reads"]
    run(env, mm.read_file_extent(1, 0, 4))
    assert mm.data_disk.counters["reads"] == before + 1
    for index in range(4):
        assert mm.is_file_page_cached(1, index)


def test_extent_cheaper_than_page_by_page(env):
    mm_extent = make_mm(env)
    start = env.now
    run(env, mm_extent.read_file_extent(1, 0, 8))
    extent_cost = env.now - start

    env2 = Environment()
    mm_pages = make_mm(env2)
    start = env2.now
    for index in range(8):
        run(env2, mm_pages.read_file_page(1, index))
    assert extent_cost < (env2.now - start) / 2


def test_extent_validation(env):
    mm = make_mm(env)
    with pytest.raises(KernelError):
        run(env, mm.read_file_extent(1, 0, 0))
    mm_nodisk = GuestMemoryManager(
        env, random.Random(0), dram_bytes=64 * PAGE_SIZE
    )
    with pytest.raises(KernelError):
        run(env, mm_nodisk.read_file_extent(1, 0, 4))


# ---------------------------------------------------------- swap readahead

def fill_and_reclaim(env, mm, pages):
    def gen(env):
        for index in range(pages):
            yield from mm.access_fault(0x100000 + index * PAGE_SIZE,
                                       is_write=True)
        # Push everything out deterministically.  The first scan only
        # clears referenced bits (second chance), so iterate.
        for _ in range(20):
            yield from mm.reclaim_pages(64)
            if mm.swap.entries_count >= pages:
                break

    run(env, gen(env))
    assert mm.swap.entries_count >= pages


def test_readahead_pulls_neighbours(env):
    mm = make_mm(env, dram_pages=256, page_cluster=8)
    fill_and_reclaim(env, mm, 32)
    assert mm.swap.entries_count == 32

    def fault_one(env):
        yield from mm.access_fault(0x100000, is_write=False)

    run(env, fault_one(env))
    # The fault brought in its slot-run neighbours too.
    assert mm.counters["prefetched_mapped"] > 0
    assert mm.swap.counters["readahead_reads"] > 0
    mapped = sum(
        1 for index in range(8)
        if mm.is_resident(0x100000 + index * PAGE_SIZE)
    )
    assert mapped >= 2


def test_page_cluster_one_disables_readahead(env):
    mm = make_mm(env, page_cluster=1)
    fill_and_reclaim(env, mm, 16)

    def fault_one(env):
        yield from mm.access_fault(0x100000, is_write=False)

    run(env, fault_one(env))
    assert mm.counters["prefetched_mapped"] == 0
    assert mm.swap.counters["readahead_reads"] == 0


def test_unconsumed_prefetch_is_never_data_loss(env):
    """Readahead reads whose pages can't be mapped keep their entries."""
    mm = make_mm(env, dram_pages=40, page_cluster=8)
    fill_and_reclaim(env, mm, 32)
    entries_before = mm.swap.entries_count

    # Fill DRAM so prefetches cannot be mapped.
    while mm.frames.try_allocate() is not None:
        pass

    def fault_one(env):
        yield from mm.access_fault(0x100000, is_write=False)

    # The fault itself needs a frame: give it exactly one via direct
    # reclaim being impossible -> use a fresh mm instead.
    env2 = Environment()
    mm2 = make_mm(env2, dram_pages=64, page_cluster=8)
    fill_and_reclaim(env2, mm2, 32)

    def nearly_fill(env):
        # Leave very few free frames so most prefetches are dropped.
        while mm2.frames.free_frames > 2:
            mm2.populate_resident(
                0x900000 + mm2.frames.used_frames * PAGE_SIZE,
                kind=__import__("repro.mem", fromlist=["PageKind"])
                .PageKind.KERNEL,
            )
        yield from mm2.access_fault(0x100000, is_write=False)

    run(env2, nearly_fill(env2))
    # Every swapped page is either resident now or still has its entry.
    for index in range(32):
        vaddr = 0x100000 + index * PAGE_SIZE
        assert mm2.is_resident(vaddr) or mm2.swap.has_entry(vaddr)


def test_take_prefetched_requires_entry(env):
    mm = make_mm(env)
    with pytest.raises(SwapError):
        mm.swap.take_prefetched(0x100000)


def test_swap_in_page_cluster_validation(env):
    mm = make_mm(env)
    with pytest.raises(SwapError):
        run(env, mm.swap.swap_in(0x100000, page_cluster=0))
