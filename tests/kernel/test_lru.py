"""Tests for the active/inactive list mechanism."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KernelError
from repro.kernel import ActiveInactiveLists
from repro.mem import PAGE_SIZE, Page


def page(index):
    return Page(vaddr=index * PAGE_SIZE)


def test_insert_goes_inactive():
    lists = ActiveInactiveLists()
    lists.insert(page(0))
    assert lists.inactive_count == 1
    assert lists.active_count == 0


def test_double_insert_rejected():
    lists = ActiveInactiveLists()
    p = page(0)
    lists.insert(p)
    with pytest.raises(KernelError):
        lists.insert(p)


def test_remove_and_discard():
    lists = ActiveInactiveLists()
    p = page(0)
    lists.insert(p)
    lists.remove(p)
    assert p not in lists
    with pytest.raises(KernelError):
        lists.remove(p)
    lists.discard(p)  # silent


def test_victims_come_oldest_first():
    lists = ActiveInactiveLists()
    pages = [page(i) for i in range(5)]
    for p in pages:
        lists.insert(p)
    victims = lists.select_victims(2)
    assert victims == pages[:2]
    assert len(lists) == 3


def test_referenced_page_gets_second_chance():
    lists = ActiveInactiveLists()
    cold, hot = page(0), page(1)
    lists.insert(cold)
    lists.insert(hot)
    hot.read()          # sets the referenced bit
    cold_first = lists.select_victims(2)
    # Hot was promoted to active, not evicted; cold went first.
    assert cold in cold_first
    assert hot not in cold_first
    assert lists.active_count >= 1


def test_hot_page_survives_many_rounds():
    """A repeatedly touched page outlives a stream of cold pages."""
    lists = ActiveInactiveLists()
    hot = page(9999)
    lists.insert(hot)
    hot.read()
    for i in range(100):
        cold = page(i)
        lists.insert(cold)
        hot.read()  # keep touching
        lists.select_victims(1)
    assert hot in lists


def test_refill_moves_active_tail_to_inactive():
    lists = ActiveInactiveLists()
    pages = [page(i) for i in range(4)]
    for p in pages:
        lists.insert(p)
        p.read()
    # All referenced: first scan promotes everything, returns nothing...
    none = lists.select_victims(4)
    assert none == []
    # ...but a second scan (bits now cleared, refilled) finds victims.
    victims = lists.select_victims(4)
    assert len(victims) > 0


def test_victim_count_positive():
    lists = ActiveInactiveLists()
    with pytest.raises(KernelError):
        lists.select_victims(0)


def test_oldest_inactive():
    lists = ActiveInactiveLists()
    assert lists.oldest_inactive() is None
    first, second = page(0), page(1)
    lists.insert(first)
    lists.insert(second)
    assert lists.oldest_inactive() is first


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 30), st.booleans()),
                min_size=1, max_size=120))
def test_lists_conserve_pages(ops):
    """Property: pages only leave via select_victims; counts stay sane."""
    lists = ActiveInactiveLists()
    live = {}
    for index, should_touch in ops:
        if index not in live:
            p = page(index)
            lists.insert(p)
            live[index] = p
        if should_touch:
            live[index].read()
        assert len(lists) == len(live)
    # Evict everything: each selection round removes only what it returns.
    for _ in range(200):
        if not live:
            break
        for victim in lists.select_victims(4):
            del live[victim.vaddr // PAGE_SIZE]
        assert len(lists) == len(live)
    assert len(live) == 0
