"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import InterruptError, SimulationError
from repro.sim import Environment


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_initial_time():
    env = Environment(initial_time=42.0)
    assert env.now == 42.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(10.0)

    env.process(proc(env))
    env.run()
    assert env.now == 10.0


def test_timeout_value_delivered():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(1.0, value="hello")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3.0)
        return "done"

    p = env.process(proc(env))
    env.run()
    assert p.value == "done"
    assert not p.is_alive


def test_processes_interleave_in_time_order():
    env = Environment()
    order = []

    def proc(env, name, delay):
        yield env.timeout(delay)
        order.append((name, env.now))

    env.process(proc(env, "b", 2.0))
    env.process(proc(env, "a", 1.0))
    env.process(proc(env, "c", 3.0))
    env.run()
    assert order == [("a", 1.0), ("b", 2.0), ("c", 3.0)]


def test_ties_fire_in_schedule_order():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1.0)
        order.append(name)

    for name in "abcde":
        env.process(proc(env, name))
    env.run()
    assert order == list("abcde")


def test_process_waits_on_process():
    env = Environment()

    def inner(env):
        yield env.timeout(5.0)
        return 99

    def outer(env):
        value = yield env.process(inner(env))
        return value + 1

    p = env.process(outer(env))
    env.run()
    assert p.value == 100


def test_yield_already_processed_event_continues_immediately():
    env = Environment()

    def inner(env):
        yield env.timeout(1.0)
        return "x"

    results = []

    def outer(env):
        child = env.process(inner(env))
        yield env.timeout(10.0)
        # child finished long ago; yielding it must not block forever
        value = yield child
        results.append((env.now, value))

    env.process(outer(env))
    env.run()
    assert results == [(10.0, "x")]


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    seen = []

    def waiter(env):
        value = yield gate
        seen.append((env.now, value))

    def opener(env):
        yield env.timeout(7.0)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert seen == [(7.0, "open")]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_failed_event_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter(env):
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer(env):
        yield env.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    env.process(waiter(env))
    env.process(failer(env))
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_failure_propagates_to_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("oops")

    env.process(bad(env))
    with pytest.raises(ValueError, match="oops"):
        env.run()


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(10.0)

    env.process(proc(env))
    env.run(until=35.0)
    assert env.now == 35.0


def test_run_until_past_time_rejected():
    env = Environment(initial_time=100.0)
    with pytest.raises(SimulationError):
        env.run(until=50.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(4.0)
        return "finished"

    p = env.process(proc(env))
    assert env.run(until=p) == "finished"
    assert env.now == 4.0


def test_run_until_event_never_fires_raises():
    env = Environment()
    orphan = env.event()

    def proc(env):
        yield env.timeout(1.0)

    env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run(until=orphan)


def test_interrupt_delivers_cause():
    env = Environment()
    caught = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except InterruptError as exc:
            caught.append((env.now, exc.cause))

    def interrupter(env, victim):
        yield env.timeout(5.0)
        victim.interrupt(cause="wakeup")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert caught == [(5.0, "wakeup")]


def test_interrupt_detaches_from_timeout():
    """After interruption the old timeout must not resume the process."""
    env = Environment()
    resumed = []

    def sleeper(env):
        try:
            yield env.timeout(10.0)
            resumed.append("timeout")
        except InterruptError:
            yield env.timeout(100.0)
            resumed.append("after-interrupt")

    def interrupter(env, victim):
        yield env.timeout(1.0)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert resumed == ["after-interrupt"]
    assert env.now == 101.0


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_self_interrupt_rejected():
    env = Environment()
    errors = []

    def selfish(env):
        me = env.active_process
        try:
            me.interrupt()
        except SimulationError:
            errors.append(True)
        yield env.timeout(1.0)

    env.process(selfish(env))
    env.run()
    assert errors == [True]


def test_yield_non_event_raises_in_process():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_any_of_fires_on_first():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(5.0, value="slow")
        t2 = env.timeout(2.0, value="fast")
        done = yield env.any_of([t1, t2])
        results.append((env.now, sorted(done.values())))

    env.process(proc(env))
    env.run()
    assert results == [(2.0, ["fast"])]


def test_all_of_waits_for_all():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(5.0, value="slow")
        t2 = env.timeout(2.0, value="fast")
        done = yield env.all_of([t1, t2])
        results.append((env.now, sorted(done.values())))

    env.process(proc(env))
    env.run()
    assert results == [(5.0, ["fast", "slow"])]


def test_all_of_empty_fires_immediately():
    env = Environment()
    results = []

    def proc(env):
        yield env.all_of([])
        results.append(env.now)

    env.process(proc(env))
    env.run()
    assert results == [0.0]


def test_advance_moves_clock():
    env = Environment()
    env.advance(12.5)
    assert env.now == 12.5


def test_advance_cannot_jump_scheduled_event():
    env = Environment()
    env.timeout(5.0)
    with pytest.raises(SimulationError):
        env.advance(10.0)


def test_advance_negative_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.advance(-1.0)


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(3.0)
    assert env.peek() == 3.0


def test_step_on_empty_schedule_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_deep_process_chain():
    """Many processes waiting on each other complete in order."""
    env = Environment()

    def link(env, upstream):
        if upstream is None:
            yield env.timeout(1.0)
            return 0
        value = yield upstream
        return value + 1

    proc = None
    for _ in range(200):
        proc = env.process(link(env, proc))
    env.run()
    assert proc.value == 199


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok
