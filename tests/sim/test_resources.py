"""Unit tests for Resource, Store, and Container."""

import pytest

from repro.errors import SimulationError
from repro.sim import Container, Environment, Resource, Store


# ---------------------------------------------------------------- Resource

def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    granted = []

    def user(env, name):
        req = res.request()
        yield req
        granted.append((name, env.now))
        yield env.timeout(10.0)
        res.release(req)

    for name in ("a", "b", "c"):
        env.process(user(env, name))
    env.run()
    assert granted == [("a", 0.0), ("b", 0.0), ("c", 10.0)]


def test_resource_fifo_ordering():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, name, arrive):
        yield env.timeout(arrive)
        req = res.request()
        yield req
        order.append(name)
        yield env.timeout(5.0)
        res.release(req)

    env.process(user(env, "first", 1.0))
    env.process(user(env, "second", 2.0))
    env.process(user(env, "third", 3.0))
    env.run()
    assert order == ["first", "second", "third"]


def test_resource_counts():
    env = Environment()
    res = Resource(env, capacity=1)
    observed = []

    def holder(env):
        req = res.request()
        yield req
        observed.append((res.count, res.queue_length))
        yield env.timeout(1.0)
        res.release(req)

    def waiter(env):
        req = res.request()
        yield req
        res.release(req)

    env.process(holder(env))
    env.process(waiter(env))
    env.run()
    assert observed == [(1, 0)] or observed == [(1, 1)]


def test_resource_bad_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_release_unknown_request_rejected():
    env = Environment()
    res = Resource(env)
    other = Resource(env)
    req = other.request()
    with pytest.raises(SimulationError):
        res.release(req)


def test_release_waiting_request_cancels_it():
    env = Environment()
    res = Resource(env, capacity=1)
    got = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(10.0)
        res.release(req)

    def canceller(env):
        yield env.timeout(1.0)
        req = res.request()  # queued behind holder
        res.release(req)     # cancel before grant
        got.append("cancelled")

    def third(env):
        yield env.timeout(2.0)
        req = res.request()
        yield req
        got.append(("granted", env.now))
        res.release(req)

    env.process(holder(env))
    env.process(canceller(env))
    env.process(third(env))
    env.run()
    assert got == ["cancelled", ("granted", 10.0)]


# ------------------------------------------------------------------- Store

def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        yield store.put("item-1")
        yield env.timeout(5.0)
        yield store.put("item-2")

    def consumer(env):
        for _ in range(2):
            item = yield store.get()
            received.append((env.now, item))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == [(0.0, "item-1"), (5.0, "item-2")]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    received = []

    def consumer(env):
        item = yield store.get()
        received.append((env.now, item))

    def producer(env):
        yield env.timeout(9.0)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert received == [(9.0, "late")]


def test_store_fifo():
    env = Environment()
    store = Store(env)

    def producer(env):
        for i in range(5):
            yield store.put(i)

    out = []

    def consumer(env):
        for _ in range(5):
            item = yield store.get()
            out.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert out == [0, 1, 2, 3, 4]


def test_bounded_store_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer(env):
        yield store.put("a")
        times.append(("a", env.now))
        yield store.put("b")
        times.append(("b", env.now))

    def consumer(env):
        yield env.timeout(7.0)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert times == [("a", 0.0), ("b", 7.0)]


def test_store_predicate_get():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for item in ("apple", "banana", "cherry"):
            yield store.put(item)

    def consumer(env):
        item = yield store.get(lambda x: x.startswith("b"))
        got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == ["banana"]
    assert list(store.items) == ["apple", "cherry"]


def test_store_try_get():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None
    store.put("x")
    env.run()
    assert store.try_get() == "x"
    assert store.try_get() is None


def test_store_len():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    env.run()
    assert len(store) == 2


# --------------------------------------------------------------- Container

def test_container_levels():
    env = Environment()
    tank = Container(env, capacity=100.0, init=50.0)
    assert tank.level == 50.0

    def proc(env):
        yield tank.get(30.0)
        yield tank.put(10.0)

    env.process(proc(env))
    env.run()
    assert tank.level == 30.0


def test_container_get_blocks_until_available():
    env = Environment()
    tank = Container(env, capacity=10.0, init=0.0)
    times = []

    def getter(env):
        yield tank.get(5.0)
        times.append(env.now)

    def putter(env):
        yield env.timeout(4.0)
        yield tank.put(5.0)

    env.process(getter(env))
    env.process(putter(env))
    env.run()
    assert times == [4.0]


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10.0, init=10.0)
    times = []

    def putter(env):
        yield tank.put(3.0)
        times.append(env.now)

    def getter(env):
        yield env.timeout(6.0)
        yield tank.get(5.0)

    env.process(putter(env))
    env.process(getter(env))
    env.run()
    assert times == [6.0]


def test_container_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Container(env, capacity=0.0)
    with pytest.raises(SimulationError):
        Container(env, capacity=5.0, init=6.0)
    tank = Container(env, capacity=5.0)
    with pytest.raises(SimulationError):
        tank.get(0.0)
    with pytest.raises(SimulationError):
        tank.put(-1.0)
