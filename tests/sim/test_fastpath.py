"""The engine fast paths: ``try_advance``, Timeout pooling, inline
resource grants — and the invariants that keep them safe.

Every fast path here must be *invisible*: same simulated clock, same
event outcomes, and automatic shutdown whenever a schedule-exploration
policy is installed (the explorer must see every scheduling decision).
The byte-identical ``--metrics`` pins live in
``tests/bench/test_wallclock_determinism.py``; these are the unit-level
contracts.
"""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    Environment,
    Event,
    Resource,
    Store,
    fastpath_enabled,
    set_fastpath,
)
from repro.check.explorer import FifoSchedule


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def no_fastpath():
    previous = set_fastpath(False)
    yield
    set_fastpath(previous)


# -- satellite bugfixes ------------------------------------------------------


def test_trigger_from_untriggered_event_raises_clearly(env):
    target = Event(env)
    source = Event(env)
    with pytest.raises(SimulationError, match="untriggered"):
        target.trigger(source)
    # The failed trigger must leave the target untouched and usable.
    assert not target.triggered
    target.trigger(source.succeed("payload"))
    env.run()
    assert target.value == "payload"


def test_trigger_propagates_failure(env):
    target = Event(env)
    source = Event(env)
    source.fail(RuntimeError("boom"))
    source._defused = True
    target.trigger(source)
    target._defused = True
    env.run()
    assert not target.ok
    assert isinstance(target.value, RuntimeError)


def test_run_until_event_leaves_no_callbacks_behind(env):
    """A drained heap must not leave stop-flag state on the event."""
    never = Event(env)

    def ticker(env):
        yield env.timeout(5.0)

    env.process(ticker(env))
    with pytest.raises(SimulationError, match="drained"):
        env.run(until=never)
    assert never.callbacks == []

    # Repeated runs against the same pending event must not accumulate
    # anything on it either.
    for _ in range(3):
        env.process(ticker(env))
        with pytest.raises(SimulationError, match="drained"):
            env.run(until=never)
    assert never.callbacks == []


def test_run_until_event_returns_its_value(env):
    done = Event(env)

    def firer(env):
        yield env.timeout(2.0)
        done.succeed("finished")

    env.process(firer(env))
    assert env.run(until=done) == "finished"
    assert env.now == 2.0


# -- try_advance semantics ---------------------------------------------------


def test_try_advance_bumps_the_clock_when_nothing_is_earlier(env):
    assert env.try_advance(5.0)
    assert env.now == 5.0
    assert env.try_advance(0.0)
    assert env.now == 5.0


def test_try_advance_refuses_when_an_event_is_due_first(env):
    def sleeper(env):
        yield env.timeout(3.0)

    env.process(sleeper(env))
    # Process-start event sits at t=0: nothing may jump past it.
    assert not env.try_advance(1.0)
    env.run()
    assert env.now == 3.0


def test_try_advance_refuses_equal_time_head(env):
    """An equal-time event would have fired first (FIFO): no advance."""

    def sleeper(env):
        yield env.timeout(4.0)

    env.process(sleeper(env))
    env.run(until=0.0)  # consume the process-start event; head is t=4
    assert not env.try_advance(4.0)
    assert env.try_advance(3.999)
    assert env.now == 3.999


def test_try_advance_refuses_negative_delta(env):
    assert not env.try_advance(-0.001)


def test_try_advance_disabled_by_switch(env, no_fastpath):
    assert not fastpath_enabled()
    assert not env.try_advance(1.0)
    assert env.now == 0.0


def test_try_advance_disabled_under_scheduler(env):
    env.scheduler = FifoSchedule(seed=0)
    assert not env.try_advance(1.0)
    env.scheduler = None
    assert env.try_advance(1.0)


def test_try_advance_respects_run_until_cap(env):
    seen = []

    def prober(env):
        yield env.timeout(1.0)
        # Inside run(until=10): a bump past the stop time must refuse.
        seen.append(env.try_advance(100.0))
        seen.append(env.try_advance(2.0))
        yield env.timeout(0.5)

    env.process(prober(env))
    env.run(until=10.0)
    assert seen == [False, True]
    assert env.now == 10.0


def test_set_fastpath_returns_previous_state():
    original = fastpath_enabled()
    try:
        assert set_fastpath(False) == original
        assert set_fastpath(True) is False
    finally:
        set_fastpath(original)


# -- pooling and ordering safety ---------------------------------------------


def test_pooled_timeouts_preserve_interleaving(env):
    """Recycled Timeout objects must not change event order."""
    log = []

    def worker(env, name, delay):
        for step in range(50):
            yield env.timeout(delay)
            log.append((env.now, name, step))

    env.process(worker(env, "a", 1.0))
    env.process(worker(env, "b", 1.5))
    env.run()
    assert log == sorted(log, key=lambda item: item[0])
    assert sum(1 for _, name, _ in log if name == "a") == 50
    assert sum(1 for _, name, _ in log if name == "b") == 50
    assert env.now == 75.0


def test_fastpath_off_produces_identical_timeline():
    def workload(env, log):
        for step in range(20):
            yield env.timeout(1.0 + (step % 3) * 0.25)
            log.append(env.now)

    timelines = []
    for enabled in (True, False):
        previous = set_fastpath(enabled)
        try:
            env = Environment()
            log = []
            env.process(workload(env, log))
            env.run()
            timelines.append((env.now, tuple(log)))
        finally:
            set_fastpath(previous)
    assert timelines[0] == timelines[1]


# -- Resource.try_acquire ----------------------------------------------------


def test_try_acquire_grants_a_free_slot(env):
    resource = Resource(env, capacity=1)
    token = resource.try_acquire()
    assert token is not None
    assert resource.count == 1
    resource.release(token)
    assert resource.count == 0


def test_try_acquire_refuses_when_full_or_queued(env):
    resource = Resource(env, capacity=1)
    first = resource.try_acquire()
    assert first is not None
    assert resource.try_acquire() is None  # full

    waiter = resource.request()  # queue a real waiter
    resource.release(first)
    env.run()
    assert waiter.ok  # FIFO: the queued waiter got the slot
    assert resource.try_acquire() is None or resource.count <= 1
    resource.release(waiter)


def test_try_acquire_refuses_under_scheduler_or_switch(env, no_fastpath):
    resource = Resource(env, capacity=1)
    assert resource.try_acquire() is None


def test_try_acquire_token_release_wakes_waiters(env):
    resource = Resource(env, capacity=1)
    order = []

    def fast_holder(env):
        token = resource.try_acquire()
        assert token is not None
        yield env.timeout(2.0)
        order.append("fast-release")
        resource.release(token)

    def queued_waiter(env):
        request = resource.request()
        yield request
        order.append("queued-granted")
        resource.release(request)

    env.process(fast_holder(env))
    env.process(queued_waiter(env))
    env.run()
    assert order == ["fast-release", "queued-granted"]


# -- Store.put_nowait --------------------------------------------------------


def test_put_nowait_appends_and_serves_getters(env):
    store = Store(env)
    store.put_nowait("first")
    assert len(store) == 1

    got = []

    def getter(env):
        item = yield store.get()
        got.append(item)
        item = yield store.get()
        got.append(item)

    env.process(getter(env))
    env.run()
    assert got == ["first"]  # second get still pending
    store.put_nowait("second")
    env.run()
    assert got == ["first", "second"]


def test_put_nowait_rejects_bounded_stores(env):
    store = Store(env, capacity=2)
    with pytest.raises(SimulationError, match="unbounded"):
        store.put_nowait("item")
