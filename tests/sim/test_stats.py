"""Unit and property tests for measurement utilities."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim import (
    Cdf,
    CounterSet,
    LatencyRecorder,
    TimeSeries,
    harmonic_mean,
    percentile,
)


# ------------------------------------------------------------- percentile

def test_percentile_simple():
    assert percentile([1.0, 2.0, 3.0, 4.0, 5.0], 50) == 3.0
    assert percentile([1.0, 2.0, 3.0, 4.0, 5.0], 0) == 1.0
    assert percentile([1.0, 2.0, 3.0, 4.0, 5.0], 100) == 5.0


def test_percentile_interpolates():
    assert percentile([1.0, 2.0], 50) == 1.5


def test_percentile_empty_rejected():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_percentile_range_check():
    with pytest.raises(ValueError):
        percentile([1.0], 101)


@given(st.lists(st.floats(0, 1e6), min_size=1, max_size=200),
       st.floats(0, 100))
def test_percentile_within_bounds(samples, q):
    result = percentile(samples, q)
    assert min(samples) <= result <= max(samples)


@given(st.lists(st.floats(0, 1e6), min_size=2, max_size=100))
def test_percentile_monotone_in_q(samples):
    values = [percentile(samples, q) for q in (0, 25, 50, 75, 100)]
    for lower, higher in zip(values, values[1:]):
        # Interpolation of adjacent denormals can round a hair below
        # exact monotonicity; allow that epsilon.
        assert higher >= lower or math.isclose(
            lower, higher, rel_tol=1e-12, abs_tol=1e-300
        )


def test_percentile_matches_numpy():
    numpy = pytest.importorskip("numpy")
    samples = [3.1, 0.2, 9.9, 4.4, 4.4, 7.0, 1.5]
    for q in (0, 10, 25, 50, 75, 90, 99, 100):
        assert percentile(samples, q) == pytest.approx(
            float(numpy.percentile(samples, q))
        )


# ---------------------------------------------------------- harmonic mean

def test_harmonic_mean_basic():
    assert harmonic_mean([1.0, 1.0]) == 1.0
    assert harmonic_mean([2.0, 6.0]) == 3.0


def test_harmonic_mean_rejects_nonpositive():
    with pytest.raises(ValueError):
        harmonic_mean([1.0, 0.0])
    with pytest.raises(ValueError):
        harmonic_mean([])


@given(st.lists(st.floats(0.001, 1e6), min_size=1, max_size=50))
def test_harmonic_le_arithmetic(values):
    hm = harmonic_mean(values)
    am = sum(values) / len(values)
    assert hm <= am * (1 + 1e-9)


# --------------------------------------------------------------------- Cdf

def test_cdf_fraction_below():
    cdf = Cdf([1.0, 2.0, 3.0, 4.0])
    assert cdf.fraction_below(0.5) == 0.0
    assert cdf.fraction_below(1.0) == 0.25
    assert cdf.fraction_below(2.5) == 0.5
    assert cdf.fraction_below(10.0) == 1.0


def test_cdf_quantile():
    cdf = Cdf([10.0, 20.0, 30.0, 40.0])
    assert cdf.quantile(0.25) == 10.0
    assert cdf.quantile(0.5) == 20.0
    assert cdf.quantile(1.0) == 40.0


def test_cdf_points_monotone():
    cdf = Cdf([5.0, 1.0, 3.0, 2.0, 4.0])
    points = cdf.points(count=10)
    values = [p[0] for p in points]
    fracs = [p[1] for p in points]
    assert values == sorted(values)
    assert fracs == sorted(fracs)
    assert fracs[-1] == 1.0


def test_cdf_empty_rejected():
    with pytest.raises(ValueError):
        Cdf([])


@given(st.lists(st.floats(0, 1e6), min_size=1, max_size=200),
       st.floats(0, 1e6))
def test_cdf_fraction_consistent_with_count(samples, x):
    cdf = Cdf(samples)
    expected = sum(1 for s in samples if s <= x) / len(samples)
    assert cdf.fraction_below(x) == pytest.approx(expected)


# --------------------------------------------------------- LatencyRecorder

def test_recorder_summary():
    rec = LatencyRecorder("fault")
    rec.extend([1.0, 2.0, 3.0])
    assert rec.count == 3
    assert rec.mean == 2.0
    assert rec.minimum == 1.0
    assert rec.maximum == 3.0
    assert rec.stdev == pytest.approx(1.0)


def test_recorder_rejects_negative():
    rec = LatencyRecorder("x")
    with pytest.raises(ValueError):
        rec.record(-1.0)


def test_recorder_empty_mean_raises():
    rec = LatencyRecorder("x")
    with pytest.raises(ValueError):
        _ = rec.mean


def test_recorder_sample_cap_keeps_exact_aggregates():
    rec = LatencyRecorder("x", max_samples=10)
    rec.extend(float(i) for i in range(100))
    assert rec.count == 100
    assert rec.mean == pytest.approx(49.5)
    assert len(rec.samples) == 10


def test_recorder_summary_dict_keys():
    rec = LatencyRecorder("x")
    rec.extend([5.0] * 10)
    summary = rec.summary()
    assert set(summary) == {"count", "avg", "stdev", "p99", "min", "max"}
    assert summary["avg"] == 5.0
    assert summary["stdev"] == 0.0


@given(st.lists(st.floats(0, 1e5), min_size=2, max_size=300))
def test_recorder_stdev_matches_direct_computation(samples):
    rec = LatencyRecorder("x")
    rec.extend(samples)
    mean = sum(samples) / len(samples)
    var = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
    assert rec.stdev == pytest.approx(math.sqrt(var), abs=1e-6, rel=1e-6)


# --------------------------------------------------------------- TimeSeries

def test_timeseries_records_in_order():
    ts = TimeSeries("lat")
    ts.record(0.0, 100.0)
    ts.record(1.0, 200.0)
    assert ts.mean() == 150.0
    assert len(ts) == 2


def test_timeseries_rejects_backwards_time():
    ts = TimeSeries("lat")
    ts.record(5.0, 1.0)
    with pytest.raises(ValueError):
        ts.record(4.0, 1.0)


def test_timeseries_bucketed():
    ts = TimeSeries("lat")
    for t, v in [(0.0, 10.0), (0.5, 20.0), (1.2, 30.0)]:
        ts.record(t, v)
    buckets = ts.bucketed(1.0)
    assert buckets == [(0.0, 15.0), (1.0, 30.0)]


def test_timeseries_empty_mean_raises():
    ts = TimeSeries("lat")
    with pytest.raises(ValueError):
        ts.mean()


# --------------------------------------------------------------- CounterSet

def test_counterset():
    counters = CounterSet()
    counters.incr("faults")
    counters.incr("faults", by=2)
    assert counters["faults"] == 3
    assert counters["missing"] == 0
    assert counters.as_dict() == {"faults": 3}


def test_counterset_monotonic():
    counters = CounterSet()
    with pytest.raises(ValueError):
        counters.incr("x", by=-1)
