"""Tests for deterministic RNG streams."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import RandomStreams, derive_seed


def test_same_seed_same_sequence():
    a = RandomStreams(seed=7).stream("faults")
    b = RandomStreams(seed=7).stream("faults")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_independent():
    streams = RandomStreams(seed=7)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_stream_is_cached():
    streams = RandomStreams(seed=1)
    assert streams.stream("x") is streams.stream("x")


def test_adding_consumer_does_not_perturb_existing():
    solo = RandomStreams(seed=3)
    expected = [solo.stream("net").random() for _ in range(5)]

    mixed = RandomStreams(seed=3)
    mixed.stream("other")  # new consumer registered first
    got = [mixed.stream("net").random() for _ in range(5)]
    assert got == expected


def test_fork_is_deterministic():
    a = RandomStreams(seed=9).fork("vm1").stream("s")
    b = RandomStreams(seed=9).fork("vm1").stream("s")
    assert a.random() == b.random()


def test_negative_seed_rejected():
    with pytest.raises(ValueError):
        RandomStreams(seed=-1)


@given(st.integers(0, 2**32), st.text(min_size=1, max_size=20))
def test_derive_seed_in_64bit_range(seed, name):
    child = derive_seed(seed, name)
    assert 0 <= child < 2**64


@given(st.integers(0, 2**32))
def test_derive_seed_distinct_names(seed):
    assert derive_seed(seed, "alpha") != derive_seed(seed, "beta")
