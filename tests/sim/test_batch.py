"""Unit contracts for the burst-resolution layer (DESIGN.md §17).

``try_advance_batch`` / ``batch_window`` / ``Store.try_get_batch`` are
the primitives the monitor's flat fault path stands on.  Every one of
them must refuse to act — returning False/None and mutating nothing —
unless it can prove equivalence to the granular path: both the
fast-path and batch switches on, no schedule-exploration policy, and
the heap shape that guarantees nothing else could have run.  The
byte-identical ``--metrics`` pins live in
``tests/bench/test_wallclock_determinism.py``; these are the unit-level
guards.
"""

import pytest

from repro.check.explorer import SCHEDULES
from repro.sim import (
    Environment,
    Store,
    batch_enabled,
    set_batch,
    set_fastpath,
)


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def no_batch():
    previous = set_batch(False)
    yield
    set_batch(previous)


@pytest.fixture
def no_fastpath():
    previous = set_fastpath(False)
    yield
    set_fastpath(previous)


# -- the switch itself -------------------------------------------------------


def test_set_batch_returns_previous_state():
    first = set_batch(False)
    try:
        assert not batch_enabled()
        assert set_batch(True) is False
        assert batch_enabled()
    finally:
        set_batch(first)


# -- batch_window ------------------------------------------------------------


def test_batch_window_open_on_idle_env(env):
    assert env.batch_window()


def test_batch_window_closed_by_heap_entry(env):
    env.timeout(5.0)
    assert not env.batch_window()


def test_batch_window_closed_by_batch_switch(env, no_batch):
    assert not env.batch_window()


def test_batch_window_closed_by_fastpath_switch(env, no_fastpath):
    # BATCH_ON layers on FASTPATH_ON: disabling the fast paths
    # disables batching too.
    assert not env.batch_window()


@pytest.mark.parametrize("name", sorted(SCHEDULES))
def test_batch_window_closed_under_every_schedule_policy(env, name):
    env.scheduler = SCHEDULES[name](seed=0)
    assert not env.batch_window()


def test_batch_window_closed_by_until_cap(env):
    done = []

    def prober():
        done.append(env.batch_window())
        yield env.timeout(1.0)

    env.process(prober())
    # Inside run(until=<time>) the cap is set, closing the window even
    # though the heap is momentarily empty when the process starts.
    env.run(until=10.0)
    assert done == [False]


# -- try_advance_batch -------------------------------------------------------


def test_try_advance_batch_commits_absolute_target(env):
    assert env.try_advance_batch(12.5)
    assert env.now == 12.5
    # Equal-to-now targets are legal (an empty cohort commits nothing).
    assert env.try_advance_batch(12.5)
    assert env.now == 12.5


def test_try_advance_batch_refuses_backwards_target(env):
    assert env.try_advance_batch(4.0)
    assert not env.try_advance_batch(3.0)
    assert env.now == 4.0


def test_try_advance_batch_refuses_with_heap_entry(env):
    # Even an entry *after* the target closes the window: the window
    # proof requires an empty heap, not merely a far-away head.
    env.timeout(100.0)
    assert not env.try_advance_batch(1.0)
    assert env.now == 0.0


def test_try_advance_batch_refuses_when_batch_off(env, no_batch):
    assert not env.try_advance_batch(1.0)
    assert env.now == 0.0


def test_try_advance_batch_refuses_when_fastpath_off(env, no_fastpath):
    assert not env.try_advance_batch(1.0)
    assert env.now == 0.0


@pytest.mark.parametrize("name", sorted(SCHEDULES))
def test_try_advance_batch_refuses_under_every_schedule_policy(env, name):
    env.scheduler = SCHEDULES[name](seed=0)
    assert not env.try_advance_batch(1.0)
    assert env.now == 0.0


def test_cohort_accumulation_matches_granular_advances(env):
    """The absolute-target rule: accumulate in cohort order, commit
    once — bit-identical to N granular try_advance calls."""
    costs = [0.1, 0.2, 0.3, 0.07]
    granular = Environment()
    for cost in costs:
        assert granular.try_advance(cost)
    clock = env.now
    for cost in costs:
        clock += cost
    assert env.try_advance_batch(clock)
    # Bit-identical, not just approximately equal: the batch layer's
    # whole contract is that --metrics bytes cannot move.
    assert env.now == granular.now


# -- Store.try_get_batch -----------------------------------------------------


def test_try_get_batch_takes_fifo_order(env):
    store = Store(env)
    store.put_nowait("a")
    store.put_nowait("b")
    assert store.try_get_batch() == "a"
    assert store.try_get_batch() == "b"
    assert store.try_get_batch() is None  # empty


def test_try_get_batch_refuses_with_competing_getter(env):
    store = Store(env)
    store.put_nowait("x")
    # A pending getter with a predicate that matches nothing yet: the
    # granular get would have to rendezvous through the event, so the
    # synchronous take must refuse.
    store.get(predicate=lambda item: False)
    assert store.try_get_batch() is None


def test_try_get_batch_refuses_with_blocked_putter(env):
    store = Store(env, capacity=1)
    store.put("first")
    env.run()
    store.put("blocked")  # over capacity: parks as a putter
    assert store._putters
    assert store.try_get_batch() is None


def test_try_get_batch_refuses_with_due_heap_event(env):
    store = Store(env)
    store.put_nowait("x")
    env.timeout(0.0)  # due *now*: would have fired before the get
    assert store.try_get_batch() is None


def test_try_get_batch_allows_future_heap_event(env):
    store = Store(env)
    store.put_nowait("x")
    env.timeout(5.0)  # strictly later: the get's success fires first
    assert store.try_get_batch() == "x"


def test_try_get_batch_refuses_when_batch_off(env, no_batch):
    store = Store(env)
    store.put_nowait("x")
    assert store.try_get_batch() is None
    assert list(store.items) == ["x"]  # untouched


def test_try_get_batch_refuses_when_fastpath_off(env, no_fastpath):
    store = Store(env)
    store.put_nowait("x")
    assert store.try_get_batch() is None


@pytest.mark.parametrize("name", sorted(SCHEDULES))
def test_try_get_batch_refuses_under_every_schedule_policy(env, name):
    store = Store(env)
    store.put_nowait("x")
    env.scheduler = SCHEDULES[name](seed=0)
    assert store.try_get_batch() is None
    assert list(store.items) == ["x"]


# -- put_nowait single-getter hand-off ---------------------------------------


def test_put_nowait_serves_single_waiting_getter(env):
    store = Store(env)
    received = []

    def consumer():
        item = yield store.get()
        received.append(item)

    env.process(consumer())
    env.run()  # parks the consumer on the empty store
    store.put_nowait("payload")
    env.run()
    assert received == ["payload"]
    assert not store.items


def test_put_nowait_hand_off_matches_general_dispatch(env):
    """Two getters (the non-fast shape) drain in FIFO order, same as
    the single-getter hand-off would chain."""
    store = Store(env)
    received = []

    def consumer(tag):
        item = yield store.get()
        received.append((tag, item))

    env.process(consumer("first"))
    env.process(consumer("second"))
    env.run()
    store.put_nowait(1)
    store.put_nowait(2)
    env.run()
    assert received == [("first", 1), ("second", 2)]
