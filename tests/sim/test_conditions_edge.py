"""Edge cases for composite events and store/resource internals."""

import pytest

from repro.errors import SimulationError
from repro.sim import AnyOf, Environment, Store


def test_any_of_with_failed_event_propagates():
    env = Environment()
    caught = []

    def proc(env):
        good = env.timeout(10.0, value="slow")
        bad = env.event()
        bad.fail(RuntimeError("boom"))
        try:
            yield env.any_of([good, bad])
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(proc(env))
    env.run()
    assert caught == ["boom"]


def test_all_of_with_failed_event_propagates():
    env = Environment()
    caught = []

    def proc(env):
        good = env.timeout(1.0)
        bad = env.event()

        def failer(env):
            yield env.timeout(2.0)
            bad.fail(ValueError("late failure"))

        env.process(failer(env))
        try:
            yield env.all_of([good, bad])
        except ValueError as exc:
            caught.append(str(exc))

    env.process(proc(env))
    env.run()
    assert caught == ["late failure"]


def test_condition_includes_already_processed_events():
    env = Environment()
    results = []

    def proc(env):
        first = env.timeout(1.0, value="a")
        yield env.timeout(5.0)  # first is long processed
        second = env.timeout(1.0, value="b")
        done = yield env.all_of([first, second])
        results.append(sorted(done.values()))

    env.process(proc(env))
    env.run()
    assert results == [["a", "b"]]


def test_condition_rejects_cross_environment_events():
    env_a, env_b = Environment(), Environment()
    foreign = env_b.timeout(1.0)
    with pytest.raises(SimulationError):
        AnyOf(env_a, [env_a.timeout(1.0), foreign])


def test_any_of_empty_fires_vacuously():
    env = Environment()
    fired = []

    def proc(env):
        done = yield env.any_of([])
        fired.append(done)

    env.process(proc(env))
    env.run()
    assert fired == [{}]


def test_bounded_store_with_predicate_unblocks_producer():
    """A predicate getter draining the buffer makes room for a blocked
    put — and a predicate waiting for a value that cannot enter a full
    buffer would deadlock, which is the expected bounded-buffer rule."""
    env = Environment()
    store = Store(env, capacity=2)
    got = []

    def consumer(env):
        item = yield store.get(lambda x: x == 1)
        got.append(item)

    def producer(env):
        for value in (1, 3, 4):
            yield store.put(value)
        got.append("produced-all")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [1, "produced-all"]
    assert list(store.items) == [3, 4]


def test_store_many_getters_fifo_service():
    env = Environment()
    store = Store(env)
    order = []

    def consumer(env, name):
        item = yield store.get()
        order.append((name, item))

    for name in ("a", "b", "c"):
        env.process(consumer(env, name))

    def producer(env):
        yield env.timeout(1.0)
        for value in (1, 2, 3):
            yield store.put(value)

    env.process(producer(env))
    env.run()
    assert order == [("a", 1), ("b", 2), ("c", 3)]


def test_peek_and_advance_interplay():
    env = Environment()
    env.timeout(10.0)
    env.advance(10.0)  # exactly up to the event is allowed
    assert env.now == 10.0
