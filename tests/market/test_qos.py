"""Per-tenant QoS: windowed p99, violations, throttling, priorities."""

import pytest

from repro.errors import MarketError
from repro.market import QosManager, TenantSlo
from repro.obs import Observability


def _manager(obs=None, min_samples=1):
    qos = QosManager(obs=obs, min_samples=min_samples)
    qos.register("premium", TenantSlo(50.0, priority=2))
    qos.register("standard", TenantSlo(200.0, priority=1))
    qos.register("spot", TenantSlo(1_000.0, priority=0))
    return qos


def test_windowed_p99_is_nearest_rank_and_resets_each_window():
    qos = _manager()
    for latency in range(1, 101):  # 1..100: p99 (nearest rank) = 99
        qos.record_fault("premium", float(latency))
    p99s = qos.evaluate()
    assert p99s["premium"] == 99.0
    assert qos.violating["premium"]  # 99 > 50
    # The window reset: one fast fault now owns the whole next window.
    qos.record_fault("premium", 10.0)
    assert qos.evaluate()["premium"] == 10.0
    assert not qos.violating["premium"]
    assert qos.violation_counts["premium"] == 1
    assert qos.p99_history[-2:] == [
        {"premium": 99.0}, {"premium": 10.0},
    ]


def test_no_faults_is_not_a_violation():
    qos = _manager()
    assert qos.evaluate() == {}
    assert not any(qos.violating.values())
    assert qos.total_violations() == 0


def test_min_samples_suppresses_straggler_verdicts():
    qos = _manager(min_samples=5)
    for _ in range(4):
        qos.record_fault("premium", 400.0)  # 4 slow faults: no verdict
    assert qos.evaluate() == {}
    assert not qos.violating["premium"]
    for _ in range(5):
        qos.record_fault("premium", 400.0)  # 5: now it counts
    assert qos.evaluate() == {"premium": 400.0}
    assert qos.violating["premium"]


def test_protected_violation_throttles_spot_with_escalation_and_decay():
    qos = _manager()
    assert qos.throttle_delay_us("spot") == 0.0
    # Premium (protected) violates -> spot pays the base throttle.
    qos.record_fault("premium", 500.0)
    qos.evaluate()
    first = qos.throttle_delay_us("spot")
    assert first == QosManager.BASE_THROTTLE_US
    # Protected tenants are never throttled.
    assert qos.throttle_delay_us("premium") == 0.0
    assert qos.throttle_delay_us("standard") == 0.0
    # Still violating -> the throttle doubles, up to the ceiling.
    qos.record_fault("premium", 500.0)
    qos.evaluate()
    assert qos.throttle_delay_us("spot") == 2 * first
    for _ in range(8):
        qos.record_fault("premium", 500.0)
        qos.evaluate()
    assert qos.throttle_delay_us("spot") == QosManager.MAX_THROTTLE_US
    # Violation clears -> the throttle halves, then releases.
    qos.record_fault("premium", 1.0)
    qos.evaluate()
    assert qos.throttle_delay_us("spot") == QosManager.MAX_THROTTLE_US / 2
    while qos.throttle_delay_us("spot") > 0.0:
        qos.evaluate()
    assert qos.throttle_delay_us("spot") == 0.0


def test_spot_violations_do_not_throttle_anyone():
    qos = _manager()
    qos.record_fault("spot", 5_000.0)  # spot violates its own SLO
    qos.evaluate()
    assert qos.violating["spot"]
    assert qos.throttle_delay_us("spot") == 0.0


def test_metrics_are_tenant_keyed():
    obs = Observability(enabled=True)
    qos = _manager(obs=obs)
    qos.record_fault("premium", 500.0)
    qos.record_fault("spot", 500.0)
    qos.evaluate()
    snapshot = obs.registry.snapshot()
    assert "tenant_fault_latency_us{tenant=premium}" \
        in snapshot["histograms"]
    assert snapshot["counters"][
        "slo_violations{tenant=premium}"
    ] == 1
    # Spot's 500us is under its 1000us SLO: no violation counter.
    assert "slo_violations{tenant=spot}" not in snapshot["counters"]
    assert snapshot["gauges"]["qos_spot_throttle_us"] \
        == QosManager.BASE_THROTTLE_US


def test_priority_of_feeds_broker_revocation_order():
    qos = _manager()
    assert qos.priority_of("premium") == 2
    assert qos.priority_of("standard") == 1
    assert qos.priority_of("spot") == 0
    assert qos.priority_of("unknown") == 1  # unregistered: standard


def test_registration_is_guarded():
    qos = _manager()
    with pytest.raises(MarketError):
        qos.register("premium", TenantSlo(10.0))
    with pytest.raises(MarketError):
        TenantSlo(0.0)
    with pytest.raises(MarketError):
        TenantSlo(10.0, priority=-1)
    with pytest.raises(MarketError):
        QosManager(min_samples=0)
    qos.deregister("premium")
    qos.record_fault("premium", 1.0)  # silently ignored once gone
    assert qos.evaluate() == {}
