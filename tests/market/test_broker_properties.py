"""Broker-ledger conservation under random operation sequences.

The property: no interleaving of offers, grants, releases, reclaims,
crashes, and deregistrations — however adversarial — may break the
market's conservation laws.  Each seed drives a random op sequence
against a broker wired to a live :class:`MarketInvariants` shadow
ledger; the hooks raise on the first violation, and a steady-state
audit cross-checks the broker's own books at every step boundary.

50+ seeds per run; ``FAULT_SEED`` (environment variable) offsets the
seed range so the CI chaos matrix sweeps independent universes with
the same test code.
"""

import os
import random

import pytest

from repro.check import CorrectnessChecker
from repro.errors import MarketError
from repro.market import Broker, SpotPricing
from repro.sim import Environment, derive_seed

SEED_BASE = int(os.environ.get("FAULT_SEED", "0")) * 1000
SEEDS = range(SEED_BASE, SEED_BASE + 55)
OPS_PER_SEED = 120


def _audited_broker():
    env = Environment()
    check = CorrectnessChecker(enabled=True)
    return env, check, Broker(env, obs=None, check=check)


class _Driver:
    """Random but seed-deterministic op generator over a VM population."""

    def __init__(self, seed):
        self.rng = random.Random(derive_seed(seed, "broker-props"))
        self.producers = [f"prod{index}" for index in range(6)]
        self.consumers = [f"cons{index}" for index in range(6)]
        self.removed = set()

    def alive(self, names):
        return [name for name in names if name not in self.removed]

    def step(self, env, broker):
        ops = ("offer", "offer", "request", "request", "release",
               "reclaim", "vm_died", "deregister", "revive")
        op = self.rng.choice(ops)
        if op == "offer":
            producers = self.alive(self.producers)
            if producers:
                broker.offer(self.rng.choice(producers),
                             self.rng.randint(1, 64))
        elif op == "request":
            consumers = self.alive(self.consumers)
            if consumers:
                broker.request(
                    self.rng.choice(consumers),
                    self.rng.randint(1, 96),
                    max_price_per_page=self.rng.choice(
                        (15.0, 40.0, float("inf"))
                    ),
                    priority=self.rng.randint(0, 2),
                )
        elif op == "release":
            leases = broker.active_leases()
            if leases:
                broker.release(self.rng.choice(leases))
        elif op == "reclaim":
            producers = self.alive(self.producers)
            if producers:
                broker.reclaim(self.rng.choice(producers),
                               self.rng.randint(1, 80))
        elif op == "vm_died":
            everyone = self.alive(self.producers + self.consumers)
            if everyone:
                victim = self.rng.choice(everyone)
                broker.vm_died(victim)
                self.removed.add(victim)
        elif op == "deregister":
            everyone = self.alive(self.producers + self.consumers)
            if everyone:
                victim = self.rng.choice(everyone)
                broker.deregister(victim)
                self.removed.add(victim)
        elif op == "revive" and self.removed:
            self.removed.discard(sorted(self.removed)[0])
        env._now += 10.0  # distinct grant timestamps for priority ties


@pytest.mark.parametrize("seed", SEEDS)
def test_random_op_sequences_conserve_the_ledger(seed):
    env, check, broker = _audited_broker()
    driver = _Driver(seed)
    for _ in range(OPS_PER_SEED):
        driver.step(env, broker)
        # Conservation holds after every single operation, not just at
        # quiesce: the shadow hooks have already audited the mutation,
        # and the steady sweep cross-checks the broker's own books.
        assert 0 <= broker.total_granted <= broker.total_harvested
        check.check_steady_state(broker=broker)
    assert not check.violations


@pytest.mark.parametrize("seed", SEEDS[:10])
def test_vm_death_frees_every_lease_and_account(seed):
    env, check, broker = _audited_broker()
    driver = _Driver(seed)
    for _ in range(OPS_PER_SEED // 2):
        driver.step(env, broker)
    for name in driver.alive(driver.producers + driver.consumers):
        broker.vm_died(name)
    assert broker.total_harvested == 0
    assert broker.total_granted == 0
    assert broker.active_leases() == []
    check.check_steady_state(broker=broker)
    assert not check.violations


def test_admission_control_never_oversells():
    env, check, broker = _audited_broker()
    broker.offer("prod0", 100)
    lease = broker.request("cons0", 100)
    assert lease is not None and lease.pages == 100
    assert broker.request("cons1", 1) is None  # sold out
    assert broker.counters["rejects_capacity"] == 1
    check.check_steady_state(broker=broker)


def test_spot_price_rises_with_utilization_and_prices_out_low_bids():
    env, check, broker = _audited_broker()
    pricing = SpotPricing(base_millicredits=10.0, slope=9.0)
    assert pricing.quote(0.0) == 10.0
    assert pricing.quote(1.0) == 100.0
    broker.offer("prod0", 100)
    assert broker.spot_price() == 10.0
    assert broker.request("cons0", 90) is not None
    assert broker.spot_price() > 70.0
    assert broker.request("cons1", 5, max_price_per_page=20.0) is None
    assert broker.counters["rejects_price"] == 1


def test_reclaim_revokes_spot_before_premium():
    env, check, broker = _audited_broker()
    broker.offer("prod0", 90)
    premium = broker.request("cons-premium", 30, priority=2)
    env._now = 10.0
    spot = broker.request("cons-spot", 30, priority=0)
    env._now = 20.0
    standard = broker.request("cons-std", 30, priority=1)
    reclaimed, revoked = broker.reclaim("prod0", 40)
    assert reclaimed == 40
    assert [lease.consumer for lease in revoked] == [
        "cons-spot", "cons-std"
    ]
    assert premium.active and not spot.active and not standard.active
    check.check_steady_state(broker=broker)


def test_revocation_listeners_fire_on_revoke_but_not_release():
    env, check, broker = _audited_broker()
    events = []
    broker.revocation_listeners.append(
        lambda lease, reason: events.append((lease.consumer, reason))
    )
    broker.offer("prod0", 40)
    kept = broker.request("cons0", 10)
    lost = broker.request("cons1", 10)
    broker.release(kept)
    broker.reclaim("prod0", 40)
    assert events == [("cons1", "revoked")]
    assert not lost.active


def test_invalid_operations_are_rejected():
    env, check, broker = _audited_broker()
    with pytest.raises(MarketError):
        broker.offer("prod0", 0)
    with pytest.raises(MarketError):
        broker.request("cons0", -1)
    with pytest.raises(MarketError):
        broker.reclaim("prod0", 0)
    broker.offer("prod0", 10)
    lease = broker.request("cons0", 5)
    broker.release(lease)
    with pytest.raises(MarketError):
        broker.release(lease)  # double release
