"""Harvester give-back: a fault-rate spike mid-harvest must heal.

The scenario the whole marketplace hinges on: a producer VM has been
harvested down toward its working set when its demand surges (here a
:class:`~repro.faults.FaultPlan` SLOW window on the fleet's
``surge:<vm>`` convention nodes — the VM's Zipf head shifts phase and
its fault rate spikes).  The harvester must detect the spike, reclaim
everything it offered (revoking consumer leases, spot first), and give
the DRAM back — and the producer tenant's windowed p99 fault latency
must return to its SLO *within the scenario window*, not eventually.

Also covers the layer hooks the harvester stands on: the kernel's
non-destructive WSS estimate, the monitor's harvest/give-back budget
accounting, and the balloon-driver wrappers.

``FAULT_SEED`` offsets the seeds so the CI chaos matrix sweeps
independent universes.
"""

import os
import random

import pytest

from repro.core import FluidMemConfig
from repro.faults import FaultKind, FaultPlan, FaultWindow
from repro.kernel import ActiveInactiveLists, GuestMemoryManager
from repro.market import (
    Broker,
    HarvestConfig,
    Harvester,
    MarketFleet,
    MonitorHarvestTarget,
    QosManager,
    TenantSlo,
    TenantSpec,
)
from repro.mem import PAGE_SIZE, Page
from repro.sim import Environment, RandomStreams
from repro.vm import BalloonDriver

from tests.conftest import build_stack

SEED_BASE = int(os.environ.get("FAULT_SEED", "0")) * 100

TICK_US = 10_000.0
MARKET_EVERY = 3
TICKS = 90
#: Surge covers market rounds ~10..16 of 30.
SURGE_START = 30 * TICK_US
SURGE_END = 50 * TICK_US
PRODUCER_SLO_US = 100.0


def _build_surge_fleet(seed):
    env = Environment()
    broker = Broker(env)
    # SLO verdicts need evidence: a window with a handful of straggler
    # faults (a p99 of two samples is their max) is not a breach.
    qos = QosManager(min_samples=8)
    specs = [
        TenantSpec(
            "prod", 4, "producer",
            footprint_pages=160, capacity_pages=160,
            slo=TenantSlo(PRODUCER_SLO_US, priority=1),
            accesses_per_tick=24,
        ),
        TenantSpec(
            "cons", 2, "consumer",
            footprint_pages=256, capacity_pages=96,
            slo=TenantSlo(2_000.0, priority=0),
            accesses_per_tick=12,
        ),
    ]
    plan = FaultPlan(
        [
            FaultWindow(
                FaultKind.SLOW, f"surge:prod-{index:03d}",
                SURGE_START, SURGE_END, param=10.0,
            )
            for index in range(4)
        ],
        seed=seed,
    )
    fleet = MarketFleet(
        env, specs, RandomStreams(seed), broker, qos,
        fault_plan=plan,
        harvest_config=HarvestConfig(
            interval_us=MARKET_EVERY * TICK_US,
            reserve_pages=16,
            min_harvest_pages=8,
            max_step_pages=256,
            spike_rate_per_ms=0.6,
            calm_rate_per_ms=0.3,
            # Fast give-back, slow re-entry: after a spike the VM keeps
            # its DRAM for the rest of the scenario, so recovery is not
            # immediately re-broken by a fresh harvest.
            cooldown_ticks=1_000,
        ),
    )
    return env, broker, qos, fleet


@pytest.mark.parametrize("seed", [SEED_BASE + offset for offset in
                                  (0, 1, 2)])
def test_give_back_restores_producer_p99_within_the_window(seed):
    env, broker, qos, fleet = _build_surge_fleet(seed)
    env.process(fleet.run(TICKS, tick_us=TICK_US,
                          market_every=MARKET_EVERY))
    env.run()

    producers = [vm for vm in fleet.vms if vm.spec.role == "producer"]
    surge_rounds = range(
        int(SURGE_START / (MARKET_EVERY * TICK_US)),
        int(SURGE_END / (MARKET_EVERY * TICK_US)),
    )
    history = qos.p99_history
    # 1. Harvesting happened before the surge: pages were offered.
    assert broker.counters["pages_offered"] > 0
    # 2. The surge spiked the producer tenant past its SLO.
    spiked = [
        index for index in surge_rounds
        if history[index].get("prod", 0.0) > PRODUCER_SLO_US
    ]
    assert spiked, "surge never drove producer p99 over its SLO"
    # 3. The harvesters gave back *during the surge*, not at drain:
    #    each producer had pages on the market before the surge and
    #    zero outstanding at some market tick inside the window.
    for name in sorted(fleet.harvesters):
        ticks = fleet.harvesters[name].history
        assert any(
            outstanding > 0 for now, _, outstanding in ticks
            if now < SURGE_START
        ), f"{name} never harvested before the surge"
        assert any(
            outstanding == 0 for now, _, outstanding in ticks
            if SURGE_START <= now < SURGE_END
        ), f"{name} never gave back during the surge"
    assert broker.counters["pages_reclaimed"] \
        == broker.counters["pages_offered"]
    assert all(vm.capacity == vm.spec.capacity_pages for vm in producers)
    assert all(vm.harvested_pages == 0 for vm in producers)
    # 4. Recovery *within the scenario window*: from the first
    #    post-spike round on, some round ends with the producer back at
    #    or under its SLO — and it stays there for the rest of the run.
    recovery = [
        history[index].get("prod")
        for index in range(max(spiked) + 1, len(history))
    ]
    assert recovery, "no market rounds left after the spike"
    healed_at = next(
        (
            offset for offset, p99 in enumerate(recovery)
            if p99 is None or p99 <= PRODUCER_SLO_US
        ),
        None,
    )
    assert healed_at is not None, (
        f"producer p99 never recovered: {recovery}"
    )
    for p99 in recovery[healed_at:]:
        assert p99 is None or p99 <= PRODUCER_SLO_US, (
            f"producer p99 regressed after healing: {recovery}"
        )


def test_spike_suppresses_harvesting_during_cooldown():
    env = Environment()
    broker = Broker(env)

    class FakeTarget:
        capacity = 512
        dead = False

        def __init__(self):
            self.faults = 0

        def wss_estimate(self):
            return 64

        def fault_count(self):
            return self.faults

        def harvest(self, pages):
            self.capacity -= pages
            yield env.timeout(1.0)
            return pages

        def give_back(self, pages):
            self.capacity += pages
            return pages

    target = FakeTarget()
    config = HarvestConfig(
        interval_us=1_000.0, spike_rate_per_ms=2.0,
        calm_rate_per_ms=0.5, cooldown_ticks=2,
        reserve_pages=0, min_harvest_pages=1, max_step_pages=64,
    )
    harvester = Harvester(env, "vm0", target, broker, config=config)

    def scenario():
        yield from harvester.tick()  # calm: harvests 64
        assert broker.outstanding_of("vm0") == 64
        target.faults += 5_000  # spike: 5 faults/µs
        yield from harvester.tick()
        assert broker.outstanding_of("vm0") == 0  # gave everything back
        assert target.capacity == 512
        # Cooldown: two calm ticks with no harvesting.
        for _ in range(config.cooldown_ticks):
            yield from harvester.tick()
            assert broker.outstanding_of("vm0") == 0
        yield from harvester.tick()  # cooldown over: harvests again
        assert broker.outstanding_of("vm0") == 64

    proc = env.process(scenario())
    env.run()
    assert proc.ok


# -- the layer hooks the harvester stands on -----------------------------------


def test_kernel_wss_estimate_counts_hot_pages_non_destructively():
    lists = ActiveInactiveLists()
    pages = [Page(index * PAGE_SIZE) for index in range(8)]
    for page in pages:
        lists.insert(page)
    for page in pages[:3]:  # 3 referenced on the inactive list
        page.read()
    assert lists.wss_estimate() == 3
    assert lists.referenced_inactive_count() == 3
    # Non-destructive: the referenced bits survive the estimate, so
    # reclaim still gives those pages their second chance.
    assert lists.wss_estimate() == 3
    victims = lists.select_victims(5)
    assert all(not victim.referenced for victim in victims)
    assert lists.active_count == 3  # the hot three were promoted


def test_monitor_harvest_and_give_back_round_trip():
    stack = build_stack(
        config=FluidMemConfig(lru_capacity_pages=64), seed=7
    )
    monitor = stack.monitor
    target = MonitorHarvestTarget(monitor)

    def scenario():
        taken = yield from target.harvest(16)
        assert taken == 16
        assert monitor.lru.capacity == 48
        assert monitor.harvested_pages == 16
        # Give-back is capped at what harvest took.
        assert target.give_back(100) == 16
        assert monitor.lru.capacity == 64
        assert monitor.harvested_pages == 0
        assert target.give_back(1) == 0

    proc = stack.env.process(scenario())
    stack.env.run()
    assert proc.ok
    assert target.capacity == 64
    assert target.fault_count() == monitor.counters["faults"]


def test_monitor_harvest_never_shrinks_below_one_page():
    stack = build_stack(
        config=FluidMemConfig(lru_capacity_pages=4), seed=7
    )
    monitor = stack.monitor

    def scenario():
        taken = yield from monitor.harvest(100)
        assert taken == 3
        assert monitor.lru.capacity == 1

    proc = stack.env.process(scenario())
    stack.env.run()
    assert proc.ok


def test_balloon_harvest_give_back_is_bounded_by_harvested():
    env = Environment()
    mm = GuestMemoryManager(env, random.Random(0),
                            dram_bytes=64 * PAGE_SIZE)
    balloon = BalloonDriver(mm, floor_pages=16)
    taken = balloon.harvest(32)
    assert taken == 32
    assert balloon.harvested_pages == 32
    # An operator balloon inflated outside the market is untouchable
    # by market give-backs.
    balloon.inflate(8)
    assert balloon.give_back(100) == 32
    assert balloon.harvested_pages == 0
    assert balloon.inflated_pages == 8
