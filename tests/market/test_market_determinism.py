"""Determinism pin for the market experiment.

The marketplace's invariants are only auditable if its runs are
reproducible: the seed-42 quick ``market --metrics`` document must be
byte-identical run over run, and identical again with the engine fast
paths forced off (the PR 5 contract: fast paths may change wall-clock
speed, never simulated results).  Every decision path in
:mod:`repro.market` draws from named RNG streams and iterates sorted
collections — this test is the tripwire for anyone who breaks that.
"""

import contextlib
import io

from repro.bench.cli import main as bench_main
from repro.sim import set_fastpath


def _metrics_bytes(tmp_path, tag):
    path = tmp_path / f"market-metrics-{tag}.json"
    with contextlib.redirect_stdout(io.StringIO()):
        code = bench_main([
            "market", "--quick", "--seed", "42", "--metrics", str(path),
        ])
    assert code == 0
    return path.read_bytes()


def test_market_metrics_byte_identical_across_runs(tmp_path):
    first = _metrics_bytes(tmp_path, "run1")
    second = _metrics_bytes(tmp_path, "run2")
    assert first == second


def test_market_metrics_byte_identical_with_fastpath_forced_off(tmp_path):
    with_fastpath = _metrics_bytes(tmp_path, "on")
    previous = set_fastpath(False)
    try:
        without_fastpath = _metrics_bytes(tmp_path, "off")
    finally:
        set_fastpath(previous)
    assert with_fastpath == without_fastpath


def test_market_metrics_differ_across_seeds(tmp_path):
    """The pin is meaningful only if the seed actually steers the run."""
    path_a = tmp_path / "seed42.json"
    path_b = tmp_path / "seed43.json"
    with contextlib.redirect_stdout(io.StringIO()):
        assert bench_main(
            ["market", "--quick", "--seed", "42",
             "--metrics", str(path_a)]
        ) == 0
        assert bench_main(
            ["market", "--quick", "--seed", "43",
             "--metrics", str(path_b)]
        ) == 0
    assert path_a.read_bytes() != path_b.read_bytes()
