"""Tests for PageTable remap semantics and AddressSpace invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PageTableError, RegionError
from repro.mem import (
    PAGE_SIZE,
    AddressSpace,
    MemoryRegion,
    Page,
    PageTable,
)


# --------------------------------------------------------------- PageTable

def make_mapped(table, vaddr, frame=0):
    page = Page(vaddr=vaddr)
    table.map(vaddr, frame, page)
    return page


def test_map_lookup_unmap():
    table = PageTable()
    page = make_mapped(table, 0x1000, frame=3)
    assert 0x1000 in table
    pte = table.lookup(0x1000)
    assert pte.frame == 3
    assert pte.page is page
    removed = table.unmap(0x1000)
    assert removed.page is page
    assert 0x1000 not in table


def test_lookup_absent_returns_none():
    table = PageTable()
    assert table.lookup(0x1000) is None
    with pytest.raises(PageTableError):
        table.entry(0x1000)


def test_double_map_rejected():
    table = PageTable()
    make_mapped(table, 0x1000)
    with pytest.raises(PageTableError):
        make_mapped(table, 0x1000)


def test_unmap_absent_rejected():
    table = PageTable()
    with pytest.raises(PageTableError):
        table.unmap(0x1000)


def test_unaligned_rejected():
    table = PageTable()
    with pytest.raises(PageTableError):
        table.map(123, 0, Page(vaddr=0))
    with pytest.raises(PageTableError):
        table.lookup(123)


def test_present_pages_counts_footprint():
    table = PageTable()
    for i in range(5):
        make_mapped(table, i * PAGE_SIZE, frame=i)
    assert table.present_pages == 5
    table.unmap(0)
    assert table.present_pages == 4


def test_remap_moves_mapping_without_copy():
    """UFFD_REMAP semantics: same frame + page object, new table/addr."""
    vm = PageTable("vm")
    buf = PageTable("buffer")
    page = make_mapped(vm, 0x5000, frame=9)
    vm.remap_to(0x5000, buf, 0xA000)
    assert 0x5000 not in vm
    pte = buf.entry(0xA000)
    assert pte.frame == 9
    assert pte.page is page  # zero-copy: identical object


def test_remap_conflict_rolls_back():
    vm = PageTable("vm")
    buf = PageTable("buffer")
    make_mapped(vm, 0x5000, frame=1)
    make_mapped(buf, 0xA000, frame=2)
    with pytest.raises(PageTableError):
        vm.remap_to(0x5000, buf, 0xA000)
    # Source mapping must be intact after the failed remap.
    assert vm.entry(0x5000).frame == 1


# ------------------------------------------------------------ MemoryRegion

def test_region_bounds():
    region = MemoryRegion(0x1000, 3 * PAGE_SIZE)
    assert region.end == 0x1000 + 3 * PAGE_SIZE
    assert region.num_pages == 3
    assert 0x1000 in region
    assert region.end not in region
    assert list(region.pages()) == [0x1000, 0x2000, 0x3000]


def test_region_validation():
    with pytest.raises(RegionError):
        MemoryRegion(123, PAGE_SIZE)
    with pytest.raises(RegionError):
        MemoryRegion(0, 100)
    with pytest.raises(RegionError):
        MemoryRegion(0, 0)


def test_region_overlap_detection():
    a = MemoryRegion(0, 2 * PAGE_SIZE)
    b = MemoryRegion(PAGE_SIZE, 2 * PAGE_SIZE)
    c = MemoryRegion(2 * PAGE_SIZE, PAGE_SIZE)
    assert a.overlaps(b)
    assert not a.overlaps(c)


# ------------------------------------------------------------ AddressSpace

def test_addrspace_add_and_find():
    space = AddressSpace()
    region = space.add(MemoryRegion(0x10000, 4 * PAGE_SIZE, name="guest-ram"))
    assert space.find(0x10000) is region
    assert space.find(0x10000 + 4 * PAGE_SIZE - 1) is region
    assert space.find(0x10000 + 4 * PAGE_SIZE) is None
    assert space.find(0) is None


def test_addrspace_rejects_overlap():
    space = AddressSpace()
    space.add(MemoryRegion(0x10000, 4 * PAGE_SIZE))
    with pytest.raises(RegionError):
        space.add(MemoryRegion(0x10000 + PAGE_SIZE, PAGE_SIZE))
    with pytest.raises(RegionError):
        space.add(MemoryRegion(0x10000 - PAGE_SIZE, 2 * PAGE_SIZE))


def test_addrspace_adjacent_ok():
    space = AddressSpace()
    space.add(MemoryRegion(0x10000, PAGE_SIZE))
    space.add(MemoryRegion(0x10000 + PAGE_SIZE, PAGE_SIZE))
    assert len(space) == 2


def test_addrspace_remove():
    space = AddressSpace()
    region = space.add(MemoryRegion(0x10000, PAGE_SIZE))
    space.remove(region)
    assert space.find(0x10000) is None
    with pytest.raises(RegionError):
        space.remove(region)


def test_addrspace_total_pages():
    space = AddressSpace()
    space.add(MemoryRegion(0x10000, 2 * PAGE_SIZE))
    space.add(MemoryRegion(0x40000, 3 * PAGE_SIZE))
    assert space.total_pages() == 5


def test_allocate_gap_finds_space():
    space = AddressSpace()
    space.add(MemoryRegion(PAGE_SIZE, PAGE_SIZE))  # occupies [1p, 2p)
    start = space.allocate_gap(2 * PAGE_SIZE)
    region = MemoryRegion(start, 2 * PAGE_SIZE)
    space.add(region)  # must not overlap
    assert len(space) == 2


@given(st.lists(st.tuples(st.integers(0, 100), st.integers(1, 8)),
                min_size=1, max_size=40))
def test_addrspace_never_overlapping(specs):
    """Property: whatever sequence of adds, accepted regions never overlap."""
    space = AddressSpace()
    accepted = []
    for start_page, npages in specs:
        region = MemoryRegion(start_page * PAGE_SIZE, npages * PAGE_SIZE)
        try:
            space.add(region)
            accepted.append(region)
        except RegionError:
            pass
    for i, a in enumerate(accepted):
        for b in accepted[i + 1:]:
            assert not a.overlaps(b)
    # find() agrees with membership
    for region in accepted:
        assert space.find(region.start) is region
