"""Tests for Page, PageKind, and FrameAllocator."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import OutOfFramesError
from repro.mem import PAGE_SIZE, FrameAllocator, Page, PageKind, ZERO_PAGE_DATA


# -------------------------------------------------------------------- Page

def test_page_requires_alignment():
    with pytest.raises(ValueError):
        Page(vaddr=123)


def test_page_data_size_checked():
    with pytest.raises(ValueError):
        Page(vaddr=0, data=b"short")
    page = Page(vaddr=0, data=bytes(PAGE_SIZE))
    assert page.data == ZERO_PAGE_DATA


def test_page_kind_swappability():
    """Only anonymous pages are swappable — the heart of partial vs full."""
    assert PageKind.ANONYMOUS.swappable
    assert not PageKind.FILE_BACKED.swappable
    assert not PageKind.KERNEL.swappable
    assert not PageKind.UNEVICTABLE.swappable


def test_mlocked_page_not_swap_evictable():
    page = Page(vaddr=0, kind=PageKind.ANONYMOUS, mlocked=True)
    assert not page.evictable_by_swap
    free_page = Page(vaddr=0, kind=PageKind.ANONYMOUS)
    assert free_page.evictable_by_swap


def test_write_marks_dirty_and_bumps_version():
    page = Page(vaddr=4096)
    assert not page.dirty
    assert page.version == 0
    page.write()
    assert page.dirty
    assert page.referenced
    assert page.version == 1
    page.write()
    assert page.version == 2


def test_write_with_data():
    page = Page(vaddr=0)
    payload = b"\xab" * PAGE_SIZE
    page.write(payload)
    assert page.read() == payload
    with pytest.raises(ValueError):
        page.write(b"tiny")


def test_read_sets_referenced():
    page = Page(vaddr=0)
    assert not page.referenced
    page.read()
    assert page.referenced


def test_clear_referenced_second_chance():
    page = Page(vaddr=0)
    page.read()
    assert page.clear_referenced() is True
    assert page.clear_referenced() is False


def test_repr_is_informative():
    page = Page(vaddr=0x2000, kind=PageKind.KERNEL)
    page.write()
    text = repr(page)
    assert "0x2000" in text and "kernel" in text


# ---------------------------------------------------------- FrameAllocator

def test_allocator_capacity():
    alloc = FrameAllocator(total_frames=2)
    a = alloc.allocate()
    b = alloc.allocate()
    assert a != b
    with pytest.raises(OutOfFramesError):
        alloc.allocate()
    assert alloc.try_allocate() is None


def test_allocator_free_and_reuse():
    alloc = FrameAllocator(total_frames=1)
    frame = alloc.allocate()
    alloc.free(frame)
    assert alloc.allocate() == frame


def test_allocator_double_free_rejected():
    alloc = FrameAllocator(total_frames=1)
    frame = alloc.allocate()
    alloc.free(frame)
    with pytest.raises(OutOfFramesError):
        alloc.free(frame)


def test_allocator_counts():
    alloc = FrameAllocator(total_frames=10)
    frames = [alloc.allocate() for _ in range(4)]
    assert alloc.used_frames == 4
    assert alloc.free_frames == 6
    assert alloc.used_bytes == 4 * PAGE_SIZE
    assert alloc.is_allocated(frames[0])
    alloc.free(frames[0])
    assert not alloc.is_allocated(frames[0])


def test_allocator_for_bytes():
    alloc = FrameAllocator.for_bytes(10 * PAGE_SIZE)
    assert alloc.total_frames == 10
    with pytest.raises(ValueError):
        FrameAllocator.for_bytes(100)


def test_allocator_validation():
    with pytest.raises(ValueError):
        FrameAllocator(total_frames=0)


@given(st.lists(st.booleans(), min_size=1, max_size=300))
def test_allocator_never_double_allocates(ops):
    """Property: live handles are always unique; counts are consistent."""
    alloc = FrameAllocator(total_frames=50)
    live = []
    for do_alloc in ops:
        if do_alloc:
            frame = alloc.try_allocate()
            if frame is not None:
                assert frame not in live
                live.append(frame)
        elif live:
            alloc.free(live.pop())
        assert alloc.used_frames == len(live)
        assert alloc.used_frames + alloc.free_frames == 50
    assert sorted(alloc.allocated_frames()) == sorted(live)
