"""Tests for address arithmetic and 52+12-bit page-key encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.mem import (
    MAX_PARTITION,
    PAGE_SIZE,
    decode_page_key,
    encode_page_key,
    is_page_aligned,
    page_address,
    page_align_down,
    page_align_up,
    page_number,
    pages_for_bytes,
)

addresses = st.integers(0, 2**64 - 1)
partitions = st.integers(0, MAX_PARTITION)


def test_page_size_is_4k():
    assert PAGE_SIZE == 4096


def test_align_down():
    assert page_align_down(0) == 0
    assert page_align_down(1) == 0
    assert page_align_down(4096) == 4096
    assert page_align_down(4097) == 4096
    assert page_align_down(8191) == 4096


def test_align_up():
    assert page_align_up(0) == 0
    assert page_align_up(1) == 4096
    assert page_align_up(4096) == 4096
    assert page_align_up(4097) == 8192


def test_is_page_aligned():
    assert is_page_aligned(0)
    assert is_page_aligned(4096)
    assert not is_page_aligned(2048)


def test_page_number_roundtrip():
    assert page_number(page_address(5)) == 5
    assert page_number(4096 * 5 + 123) == 5


def test_pages_for_bytes():
    assert pages_for_bytes(0) == 0
    assert pages_for_bytes(1) == 1
    assert pages_for_bytes(4096) == 1
    assert pages_for_bytes(4097) == 2
    with pytest.raises(ValueError):
        pages_for_bytes(-1)


def test_address_range_checked():
    with pytest.raises(ValueError):
        page_align_down(-1)
    with pytest.raises(ValueError):
        page_align_down(2**64)


def test_encode_key_paper_layout():
    """Upper 52 bits = VPN, lower 12 = partition (paper section IV)."""
    addr = 0xDEAD_BEEF_F000
    key = encode_page_key(addr, partition=7)
    assert key & 0xFFF == 7
    assert key >> 12 == addr >> 12


def test_encode_key_partition_bounds():
    with pytest.raises(ValueError):
        encode_page_key(0, partition=-1)
    with pytest.raises(ValueError):
        encode_page_key(0, partition=MAX_PARTITION + 1)


def test_decode_key_bounds():
    with pytest.raises(ValueError):
        decode_page_key(-1)
    with pytest.raises(ValueError):
        decode_page_key(2**64)


@given(addresses, partitions)
def test_key_roundtrip(addr, partition):
    key = encode_page_key(addr, partition)
    base, part = decode_page_key(key)
    assert part == partition
    assert base == page_align_down(addr)
    assert 0 <= key < 2**64


@given(addresses)
def test_align_down_le_up(addr):
    down = page_align_down(addr)
    assert down <= addr
    assert down % PAGE_SIZE == 0


@given(st.integers(0, 2**52 - 1), partitions)
def test_distinct_pages_distinct_keys(vpn, partition):
    a = encode_page_key(page_address(vpn), partition)
    other_vpn = (vpn + 1) % (2**52)
    b = encode_page_key(page_address(other_vpn), partition)
    assert a != b
