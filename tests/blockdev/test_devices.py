"""Tests for the block-device layer."""

import random

import pytest

from repro.blockdev import NvmeofDisk, PmemDisk, SECTOR_BYTES, SsdDisk
from repro.errors import OutOfRangeError
from repro.sim import Environment


def run(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


@pytest.fixture
def env():
    return Environment()


def make(env, cls, mib=16, **kwargs):
    return cls(env, mib * 1024 * 1024, random.Random(7), **kwargs)


def test_capacity_minimum(env):
    with pytest.raises(OutOfRangeError):
        PmemDisk(env, 100, random.Random(0))


def test_sector_count(env):
    disk = make(env, PmemDisk, mib=1)
    assert disk.num_sectors == 256  # 1 MiB / 4 KiB


def test_read_write_advance_time(env):
    disk = make(env, PmemDisk)
    run(env, disk.read(0))
    t_read = env.now
    assert t_read > 0
    run(env, disk.write(1))
    assert env.now > t_read
    assert disk.counters["reads"] == 1
    assert disk.counters["writes"] == 1


def test_out_of_range_io_rejected(env):
    disk = make(env, PmemDisk, mib=1)

    def bad(env):
        yield from disk.read(disk.num_sectors)

    env.process(bad(env))
    with pytest.raises(OutOfRangeError):
        env.run()
    with pytest.raises(OutOfRangeError):
        disk._check(0, 100)      # non-sector-multiple size
    with pytest.raises(OutOfRangeError):
        disk._check(-1, SECTOR_BYTES)


def test_multi_sector_io_amortizes(env):
    """Contiguous multi-page reads cost base + marginal per page, far
    less than independent reads (what swap readahead exploits)."""
    disk = make(env, PmemDisk)
    run(env, disk.read(0, 8 * SECTOR_BYTES))
    eight_page = disk.read_latency.samples[0]
    env2 = Environment()
    disk2 = make(env2, PmemDisk)
    run(env2, disk2.read(0, SECTOR_BYTES))
    one_page = disk2.read_latency.samples[0]
    assert eight_page > one_page          # more data costs more...
    assert eight_page < 4 * one_page      # ...but amortizes well


def test_latency_ordering_pmem_nvmeof_ssd(env):
    """Device service times must order DRAM < NVMeoF < SSD (Fig. 3)."""
    rng = random.Random(3)
    pmem = PmemDisk(env, 1 << 24, rng)
    nvmeof = NvmeofDisk(env, 1 << 24, rng)
    ssd = SsdDisk(env, 1 << 24, rng)

    def avg_read(disk):
        return sum(
            disk.read_service_us(SECTOR_BYTES) for _ in range(500)
        ) / 500

    pmem_avg, nvmeof_avg, ssd_avg = map(avg_read, (pmem, nvmeof, ssd))
    assert pmem_avg < nvmeof_avg < ssd_avg
    assert 10 <= pmem_avg <= 24
    assert 28 <= nvmeof_avg <= 48
    assert 100 <= ssd_avg <= 170


def test_queue_depth_causes_waiting(env):
    disk = make(env, SsdDisk)
    # Saturate a queue of depth 32 with 64 concurrent reads: the last
    # completion must be later than any single service time.
    done = []

    def reader(env, i):
        yield from disk.read(i % disk.num_sectors)
        done.append(env.now)

    for i in range(64):
        env.process(reader(env, i))
    env.run()
    assert len(done) == 64
    assert max(done) > 2 * min(done)


def test_latency_recorders_populate(env):
    disk = make(env, PmemDisk)
    for i in range(10):
        run(env, disk.read(i))
    assert disk.read_latency.count == 10
    assert disk.read_latency.mean > 0


def test_ssd_writes_faster_than_reads(env):
    """SSD writes land in the device buffer: cheaper than flash reads."""
    rng = random.Random(11)
    ssd = SsdDisk(env, 1 << 24, rng)
    reads = sum(ssd.read_service_us(SECTOR_BYTES) for _ in range(300)) / 300
    writes = sum(ssd.write_service_us(SECTOR_BYTES) for _ in range(300)) / 300
    assert writes < reads
