"""End-to-end data-integrity tests with real page contents.

The benchmarks run metadata-only for speed; these tests attach real
bytes to pages and verify that eviction → remote store → restore never
corrupts or loses data, across every backend and under every
optimization mix.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FluidMemConfig
from repro.mem import PAGE_SIZE

from tests.conftest import build_stack


def fill_pattern(index: int) -> bytes:
    return bytes([(index * 37 + offset) % 256 for offset in range(64)]) \
        * (PAGE_SIZE // 64)


def write_read_cycle(stack, store, pages=24, lru=6):
    """Write distinct contents, force eviction, read everything back."""
    stack.monitor.set_lru_capacity(lru)
    vm, qemu, port, _reg = stack.make_vm(store=store)
    base = vm.first_free_guest_addr()

    def workload(env):
        # First touch, then write real bytes through the page objects.
        for index in range(pages):
            yield from port.access(base + index * PAGE_SIZE,
                                   is_write=True)
            host = qemu.guest_to_host(base + index * PAGE_SIZE)
            page = qemu.page_table.entry(host).page
            page.write(fill_pattern(index))
        # Everything beyond the LRU budget is now remote.  Read all
        # pages back and check their contents.
        for index in range(pages):
            yield from port.access(base + index * PAGE_SIZE)
            host = qemu.guest_to_host(base + index * PAGE_SIZE)
            page = qemu.page_table.entry(host).page
            assert page.read() == fill_pattern(index), index

    stack.run(workload(stack.env))
    return vm, qemu


@pytest.mark.parametrize("backend", ["dram", "ramcloud"])
def test_contents_survive_eviction(backend):
    stack = build_stack()
    store = (stack.make_dram_store() if backend == "dram"
             else stack.make_ramcloud_store())
    write_read_cycle(stack, store)
    assert stack.monitor.counters["evictions"] > 0


@pytest.mark.parametrize(
    "async_read,async_write,steal",
    [
        (False, False, False),
        (True, False, False),
        (False, True, True),
        (True, True, True),
        (True, True, False),
    ],
)
def test_contents_survive_all_optimization_mixes(async_read, async_write,
                                                 steal):
    config = FluidMemConfig(
        lru_capacity_pages=6,
        async_read=async_read,
        async_writeback=async_write,
        write_list_steal=steal,
        writeback_batch_pages=4,
    )
    stack = build_stack(config=config)
    write_read_cycle(stack, stack.make_ramcloud_store())


def test_contents_survive_footprint_squeeze():
    """Shrink to 2 pages, grow back: all data intact."""
    stack = build_stack()
    store = stack.make_ramcloud_store()
    vm, qemu = write_read_cycle(stack, store, pages=16, lru=8)
    stack.monitor.set_lru_capacity(2)

    def shrink(env):
        yield from stack.monitor.shrink_to_capacity()

    stack.run(shrink(stack.env))
    assert qemu.page_table.present_pages == 2

    stack.monitor.set_lru_capacity(64)
    base = vm.first_free_guest_addr()

    def verify(env):
        port = vm.require_port()
        for index in range(16):
            yield from port.access(base + index * PAGE_SIZE)
            host = qemu.guest_to_host(base + index * PAGE_SIZE)
            assert qemu.page_table.entry(host).page.read() == \
                fill_pattern(index)

    stack.run(verify(stack.env))


@settings(max_examples=10, deadline=None)
@given(
    order=st.permutations(list(range(12))),
    lru=st.integers(2, 10),
)
def test_random_access_order_integrity(order, lru):
    """Property: any access order over any budget preserves versions."""
    stack = build_stack()
    stack.monitor.set_lru_capacity(lru)
    vm, qemu, port, _reg = stack.make_vm(store=stack.make_dram_store())
    base = vm.first_free_guest_addr()
    versions = {}

    def workload(env):
        for index in range(12):
            yield from port.access(base + index * PAGE_SIZE,
                                   is_write=True)
            host = qemu.guest_to_host(base + index * PAGE_SIZE)
            versions[index] = qemu.page_table.entry(host).page.version
        for index in order:
            yield from port.access(base + index * PAGE_SIZE)
            host = qemu.guest_to_host(base + index * PAGE_SIZE)
            page = qemu.page_table.entry(host).page
            # The restored page object is the original one: version
            # must never regress.
            assert page.version >= versions[index]

    stack.run(workload(stack.env))
