"""Reproducibility: the same seed must give bit-identical results.

Every number in EXPERIMENTS.md should be regenerable exactly; these
tests pin that property at the experiment level (not just the RNG
level), catching any accidental use of global random state, dict
ordering dependence, or wall-clock leakage.
"""

import random

import pytest

from repro.bench.fig3_latency_cdf import run_fig3
from repro.bench.table2_optimizations import _measure
from repro.workloads import ZipfianGenerator


def test_fig3_is_deterministic():
    first = run_fig3(measured_accesses=1500, seed=11,
                     platforms=["fluidmem-ramcloud", "swap-nvmeof"])
    second = run_fig3(measured_accesses=1500, seed=11,
                      platforms=["fluidmem-ramcloud", "swap-nvmeof"])
    for name in first.results:
        assert first.results[name].average_latency_us == \
            second.results[name].average_latency_us
        assert first.results[name].hits == second.results[name].hits


def test_fig3_seed_changes_results():
    a = run_fig3(measured_accesses=1500, seed=11,
                 platforms=["fluidmem-ramcloud"])
    b = run_fig3(measured_accesses=1500, seed=12,
                 platforms=["fluidmem-ramcloud"])
    assert a.results["fluidmem-ramcloud"].average_latency_us != \
        b.results["fluidmem-ramcloud"].average_latency_us


def test_table2_cell_deterministic():
    a = _measure("ramcloud", "async-rw", "rand", lru_pages=64,
                 accesses=800, seed=3)
    b = _measure("ramcloud", "async-rw", "rand", lru_pages=64,
                 accesses=800, seed=3)
    assert a == b


def test_zipfian_matches_theory():
    """The generator's head mass tracks the analytic zipf(0.99) CDF."""
    n = 2000
    rng = random.Random(17)
    gen = ZipfianGenerator(n, rng)
    samples = [gen.next() for _ in range(60_000)]

    def zeta(upto):
        return sum(1.0 / (i ** 0.99) for i in range(1, upto + 1))

    total = zeta(n)
    for head in (1, 10, 100, 1000):
        expected = zeta(head) / total
        observed = sum(1 for s in samples if s < head) / len(samples)
        assert observed == pytest.approx(expected, abs=0.04), head
