"""Reproducibility: the same seed must give bit-identical results.

Every number in EXPERIMENTS.md should be regenerable exactly; these
tests pin that property at the experiment level (not just the RNG
level), catching any accidental use of global random state, dict
ordering dependence, or wall-clock leakage.
"""

import random

import pytest

from repro.bench.fig3_latency_cdf import run_fig3
from repro.bench.table2_optimizations import _measure
from repro.core import FluidMemConfig
from repro.faults import FaultyStore, named_plan
from repro.kv import DramStore, ReplicatedStore
from repro.mem import PAGE_SIZE
from repro.workloads import ZipfianGenerator

from tests.conftest import build_stack


def test_fig3_is_deterministic():
    first = run_fig3(measured_accesses=1500, seed=11,
                     platforms=["fluidmem-ramcloud", "swap-nvmeof"])
    second = run_fig3(measured_accesses=1500, seed=11,
                      platforms=["fluidmem-ramcloud", "swap-nvmeof"])
    for name in first.results:
        assert first.results[name].average_latency_us == \
            second.results[name].average_latency_us
        assert first.results[name].hits == second.results[name].hits


def test_fig3_seed_changes_results():
    a = run_fig3(measured_accesses=1500, seed=11,
                 platforms=["fluidmem-ramcloud"])
    b = run_fig3(measured_accesses=1500, seed=12,
                 platforms=["fluidmem-ramcloud"])
    assert a.results["fluidmem-ramcloud"].average_latency_us != \
        b.results["fluidmem-ramcloud"].average_latency_us


def test_table2_cell_deterministic():
    a = _measure("ramcloud", "async-rw", "rand", lru_pages=64,
                 accesses=800, seed=3)
    b = _measure("ramcloud", "async-rw", "rand", lru_pages=64,
                 accesses=800, seed=3)
    assert a == b


def _chaos_run(seed, plan_name="chaos"):
    """One fault-injected run; returns everything observable."""
    plan = named_plan(plan_name, seed=seed)
    stack = build_stack(
        config=FluidMemConfig(lru_capacity_pages=4,
                              writeback_batch_pages=4),
        seed=seed,
    )
    replicas = [
        FaultyStore(stack.env, DramStore(stack.env), plan,
                    node=f"replica{i}")
        for i in range(2)
    ]
    store = ReplicatedStore(stack.env, replicas)
    vm, _qemu, port, _reg = stack.make_vm(store=store)
    base = vm.first_free_guest_addr()

    def workload(env):
        for step in range(60):
            index = (step * 7) % 16
            yield from port.access(base + index * PAGE_SIZE,
                                   is_write=step < 16)
        yield from stack.monitor.writeback.drain()

    stack.run(workload(stack.env))
    # Keys are host vaddrs whose base comes from a process-global
    # allocator: normalize to offsets so two runs are comparable.
    origin = min(
        (key for replica in replicas for key in replica.inner._table),
        default=0,
    )
    contents = {
        replica.node: sorted(key - origin for key in replica.inner._table)
        for replica in replicas
    }
    return {
        "now": stack.env.now,
        "monitor": dict(stack.monitor.counters.as_dict()),
        "store": dict(store.counters.as_dict()),
        "plan": dict(plan.counters.as_dict()),
        "writeback": dict(stack.monitor.writeback.counters.as_dict()),
        "contents": contents,
    }


def test_chaos_run_is_deterministic():
    """Same seed + same fault plan => identical counters, identical
    final store contents, identical simulated clock."""
    assert _chaos_run(seed=19) == _chaos_run(seed=19)


def test_chaos_seed_changes_fault_sequence():
    a = _chaos_run(seed=19, plan_name="flaky-fabric")
    b = _chaos_run(seed=20, plan_name="flaky-fabric")
    assert a["plan"] != b["plan"] or a["monitor"] != b["monitor"]


def test_zipfian_matches_theory():
    """The generator's head mass tracks the analytic zipf(0.99) CDF."""
    n = 2000
    rng = random.Random(17)
    gen = ZipfianGenerator(n, rng)
    samples = [gen.next() for _ in range(60_000)]

    def zeta(upto):
        return sum(1.0 / (i ** 0.99) for i in range(1, upto + 1))

    total = zeta(n)
    for head in (1, 10, 100, 1000):
        expected = zeta(head) / total
        observed = sum(1 for s in samples if s < head) / len(samples)
        assert observed == pytest.approx(expected, abs=0.04), head
