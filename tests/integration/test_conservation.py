"""The conservation invariant: no page is ever lost or duplicated.

For every page the monitor has ever seen (tracker key), exactly one of
these must hold at any quiescent point:

  * resident — mapped in its VM's page table and in the LRU buffer,
  * in transit — parked in the monitor's write list (pending/in-flight),
  * remote — stored in the key-value backend.

Hypothesis drives random interleavings of accesses, resizes, squeezes,
and drains, then audits the books.  This is the test that would catch a
lost-page bug anywhere in the eviction / writeback / steal / prefetch
machinery.
"""

from hypothesis import given, settings, strategies as st

from repro.core import FluidMemConfig
from repro.mem import PAGE_SIZE

from tests.conftest import build_stack


def audit(stack, vm, qemu, registration, pages):
    """Assert the conservation invariant for every touched page."""
    monitor = stack.monitor
    store = registration.store
    base = vm.first_free_guest_addr()
    for index in range(pages):
        guest = base + index * PAGE_SIZE
        host = qemu.guest_to_host(guest)
        key = registration.key_for(host)
        if monitor.tracker.is_first_access(key):
            continue  # never touched
        resident = host in qemu.page_table
        in_lru = host in monitor.lru
        in_writeback = monitor.writeback.holds(key)
        in_store = store.contains(key)
        assert resident == in_lru, (
            f"page {index}: table/LRU disagree "
            f"(resident={resident}, lru={in_lru})"
        )
        assert resident or in_writeback or in_store, (
            f"page {index} LOST: not resident, not in writeback, "
            "not in store"
        )
        if resident:
            assert not in_writeback, (
                f"page {index} duplicated: resident AND in writeback"
            )
    # Frame accounting: every LRU entry and buffered page owns exactly
    # one frame; the allocator agrees.
    expected_frames = (
        qemu.page_table.present_pages
        + monitor.buffer_table.present_pages
    )
    assert stack.ops.frames.used_frames == expected_frames


operations = st.lists(
    st.one_of(
        st.tuples(st.just("access"), st.integers(0, 23),
                  st.booleans()),
        st.tuples(st.just("resize"), st.integers(2, 20),
                  st.booleans()),
        # >= 2 pages: capacity 1 is the intended KVM deadlock (Tab. III).
        st.tuples(st.just("squeeze"), st.integers(2, 6),
                  st.booleans()),
        st.tuples(st.just("drain"), st.just(0), st.booleans()),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=30, deadline=None)
@given(ops=operations, prefetch=st.integers(0, 3),
       steal=st.booleans(), async_write=st.booleans())
def test_conservation_under_random_operations(ops, prefetch, steal,
                                              async_write):
    config = FluidMemConfig(
        lru_capacity_pages=8,
        prefetch_pages=prefetch,
        write_list_steal=steal,
        async_writeback=async_write,
        writeback_batch_pages=4,
    )
    stack = build_stack(config=config)
    store = stack.make_dram_store()
    vm, qemu, port, registration = stack.make_vm(store=store)

    def script(env):
        for op, arg, flag in ops:
            if op == "access":
                yield from port.access(
                    vm.first_free_guest_addr() + arg * PAGE_SIZE,
                    is_write=flag,
                )
            elif op == "resize":
                stack.monitor.set_lru_capacity(arg)
            elif op == "squeeze":
                stack.monitor.set_lru_capacity(arg)
                yield from stack.monitor.shrink_to_capacity()
            else:
                yield from stack.monitor.writeback.drain()
        # Quiesce: flush in-transit state before auditing.
        yield from stack.monitor.writeback.drain()

    stack.run(script(stack.env))
    audit(stack, vm, qemu, registration, pages=24)


@settings(max_examples=10, deadline=None)
@given(ops=operations)
def test_conservation_with_ramcloud_backend(ops):
    stack = build_stack(config=FluidMemConfig(
        lru_capacity_pages=6, writeback_batch_pages=4,
    ))
    store = stack.make_ramcloud_store()
    vm, qemu, port, registration = stack.make_vm(store=store)

    def script(env):
        for op, arg, flag in ops:
            if op == "access":
                yield from port.access(
                    vm.first_free_guest_addr() + arg * PAGE_SIZE,
                    is_write=flag,
                )
            elif op in ("resize", "squeeze"):
                stack.monitor.set_lru_capacity(max(2, arg))
                if op == "squeeze":
                    yield from stack.monitor.shrink_to_capacity()
            else:
                yield from stack.monitor.writeback.drain()
        yield from stack.monitor.writeback.drain()

    stack.run(script(stack.env))
    audit(stack, vm, qemu, registration, pages=24)
