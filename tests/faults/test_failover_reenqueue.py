"""Failover and write-back re-enqueue under injected faults.

The latent bug this module pins down: ``ReplicatedStore`` used to "read
from the first live one" with liveness meaning only the *manual*
``fail_replica`` switch — a replica inside a crash/partition window was
still considered live, so reads hit the dead node and errored instead
of failing over.  Wiring each replica's ``is_alive`` to its fault plan
(and failing over on transient errors) fixes both halves.
"""

import pytest

from repro.core import FluidMemConfig
from repro.errors import (
    StoreUnavailableError,
    TransientStoreError,
)
from repro.faults import (
    FaultKind,
    FaultPlan,
    FaultWindow,
    FaultyStore,
    RetryPolicy,
)
from repro.kv import DramStore, ReplicatedStore
from repro.mem import PAGE_SIZE
from repro.sim import Environment

from tests.conftest import build_stack


def run(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


def sleeper(env, delay):
    yield env.timeout(delay)


def make_replicated(env, windows, seed=0, n=2):
    """N replicas of DRAM behind one fault plan."""
    plan = FaultPlan(windows, seed=seed)
    replicas = [
        FaultyStore(env, DramStore(env), plan, node=f"replica{i}")
        for i in range(n)
    ]
    return ReplicatedStore(env, replicas), replicas, plan


# --------------------------------------------- ReplicatedStore + FaultPlan

def test_read_skips_crashed_replica_without_timeout():
    """The latent-bug regression: a replica in a crash window must be
    skipped by liveness — no request-timeout stall, no error."""
    env = Environment()
    store, replicas, _plan = make_replicated(
        env, [FaultWindow(FaultKind.CRASH, "replica0", 100.0, 10_000.0)]
    )
    run(env, store.put(1, "precious"))
    run(env, sleeper(env, 500.0))

    assert not replicas[0].is_alive
    assert store.live_count == 1
    start = env.now
    assert run(env, store.get(1)) == "precious"
    # Skipped via liveness: never paid replica0's crash stall.
    assert env.now - start < replicas[0].crash_stall_us
    assert store.counters["replicas_skipped"] == 1
    assert replicas[0].counters["crash_errors"] == 0


def test_read_fails_over_past_flaky_replica():
    """Liveness cannot see flakiness; the error-driven failover must."""
    env = Environment()
    store, _replicas, _plan = make_replicated(
        env,
        [FaultWindow(FaultKind.FLAKY, "replica0", 0.0, param=1.0)],
    )
    run(env, store.put(1, "v"))  # replica0 write fails; replica1 holds it
    assert run(env, store.get(1)) == "v"
    assert store.counters["failovers"] >= 1


def test_writes_survive_one_crashed_replica_and_reads_recover():
    env = Environment()
    store, replicas, _plan = make_replicated(
        env, [FaultWindow(FaultKind.CRASH, "replica0", 0.0, 5_000.0)]
    )
    run(env, store.put(1, "v"))
    assert not replicas[0].contains(1)
    assert replicas[1].contains(1)

    # After the window, replica0 is schedulable again (though empty:
    # failover covers the gap until re-replication).
    run(env, sleeper(env, 6_000.0))
    assert store.live_count == 2
    assert run(env, store.get(1)) == "v"


def test_all_replicas_crashed_is_transient():
    env = Environment()
    store, _replicas, _plan = make_replicated(
        env, [FaultWindow(FaultKind.CRASH, f"replica{i}", 0.0, 1_000.0)
              for i in range(2)]
    )
    assert not store.is_alive

    def attempt(env):
        yield from store.get(1)

    env.process(attempt(env))
    with pytest.raises(TransientStoreError):
        env.run()


# ---------------------------------------------------- WritebackQueue retry

def _fault_stack(windows, seed=7, batch=4, **config_kwargs):
    config = FluidMemConfig(
        lru_capacity_pages=4,
        writeback_batch_pages=batch,
        retry_policy=config_kwargs.pop("retry_policy", RetryPolicy()),
        **config_kwargs,
    )
    stack = build_stack(config=config, seed=seed)
    plan = FaultPlan(windows, seed=seed)
    replicas = [
        FaultyStore(env=stack.env, inner=DramStore(stack.env), plan=plan,
                    node=f"replica{i}")
        for i in range(2)
    ]
    store = ReplicatedStore(stack.env, replicas)
    vm, qemu, port, reg = stack.make_vm(store=store)
    return stack, store, replicas, vm, qemu, port, reg


def test_flush_retries_through_a_crash_window():
    """Kill replica 0 mid-run: flushes retry/fail over, the queue
    drains, and nothing is lost."""
    stack, store, replicas, vm, _qemu, port, _reg = _fault_stack(
        [FaultWindow(FaultKind.CRASH, "replica0", 200.0, 3_000.0)],
    )
    base = vm.first_free_guest_addr()

    def workload(env):
        for index in range(12):
            yield from port.access(base + index * PAGE_SIZE,
                                   is_write=True)
        yield from stack.monitor.writeback.drain()
        # Read everything back through the store (causing further
        # evictions), then drain those too.
        for index in range(12):
            yield from port.access(base + index * PAGE_SIZE)
        yield from stack.monitor.writeback.drain()

    stack.run(workload(stack.env))
    queue = stack.monitor.writeback
    assert queue.pending_count == 0
    assert queue.in_flight_count == 0
    assert queue.counters["flushed"] == queue.counters["enqueued"]
    # Every flushed page is durable on the surviving replica.
    assert replicas[1].stored_keys() >= 8
    assert stack.monitor.stats()["quarantined_vms"] == 0


def test_flush_reenqueues_when_every_replica_is_down():
    """Retries exhaust against a dead store: the batch goes back on the
    write list (no page dropped) and the failure surfaces."""
    env = Environment()
    stack, store, replicas, vm, _qemu, port, _reg = _fault_stack(
        [FaultWindow(FaultKind.CRASH, f"replica{i}", 0.0)
         for i in range(2)],
        retry_policy=RetryPolicy(max_attempts=2, jitter=0.0),
    )
    base = vm.first_free_guest_addr()

    def workload(env):
        for index in range(8):
            yield from port.access(base + index * PAGE_SIZE,
                                   is_write=True)
        yield from stack.monitor.writeback.drain()

    stack.env.process(workload(stack.env))
    with pytest.raises(StoreUnavailableError):
        stack.env.run()
    queue = stack.monitor.writeback
    assert queue.counters["reenqueued"] >= 1
    assert queue.counters["flushed"] == 0
    # The failed batch is back on the list, still buffered.
    assert queue.pending_count >= 1
    assert queue.in_flight_count == 0


def test_writeback_counts_retries():
    stack, _store, _replicas, vm, _qemu, port, _reg = _fault_stack(
        [FaultWindow(FaultKind.FLAKY, "replica0", 0.0, param=1.0),
         FaultWindow(FaultKind.FLAKY, "replica1", 0.0, param=0.6)],
        retry_policy=RetryPolicy(max_attempts=10, jitter=0.0),
        seed=3,
    )
    base = vm.first_free_guest_addr()

    def workload(env):
        for index in range(8):
            yield from port.access(base + index * PAGE_SIZE,
                                   is_write=True)
        yield from stack.monitor.writeback.drain()

    stack.run(workload(stack.env))
    queue = stack.monitor.writeback
    assert queue.pending_count == 0
    assert queue.counters["flush_retries"] >= 1


# ------------------------------------------------------ monitor quarantine

def test_monitor_quarantines_vm_when_store_dies():
    """Reads against a permanently dead store fail fast: the VM is
    quarantined and later faults raise immediately (no hang)."""
    stack, store, _replicas, vm, _qemu, port, _reg = _fault_stack(
        [FaultWindow(FaultKind.CRASH, f"replica{i}", 1_000.0)
         for i in range(2)],
        retry_policy=RetryPolicy(max_attempts=2, jitter=0.0),
        async_read=False, async_writeback=False, write_list_steal=False,
    )
    base = vm.first_free_guest_addr()

    def fill(env):
        for index in range(10):
            yield from port.access(base + index * PAGE_SIZE,
                                   is_write=True)

    stack.run(fill(stack.env))  # evictions land before t=1000us

    def read_remote(env):
        yield from sleeper(env, 2_000.0)
        yield from port.access(base, is_write=False)

    stack.env.process(read_remote(stack.env))
    with pytest.raises(StoreUnavailableError):
        stack.env.run()

    stats = stack.monitor.stats()
    assert stats["quarantined_vms"] == 1
    assert stack.monitor.counters["vms_quarantined"] == 1

    # Subsequent faults on the quarantined VM fail fast.
    def touch_again(env):
        yield from port.access(base + PAGE_SIZE, is_write=False)

    stack.env.process(touch_again(stack.env))
    with pytest.raises(StoreUnavailableError, match="quarantined"):
        stack.env.run()
