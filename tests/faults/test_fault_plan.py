"""FaultPlan / FaultWindow: schedules, queries, determinism."""

import math

import pytest

from repro.errors import KVError
from repro.faults import (
    DEFAULT_NODES,
    FaultKind,
    FaultPlan,
    FaultWindow,
    NAMED_PLANS,
    named_plan,
)


# ------------------------------------------------------------- FaultWindow

def test_window_covers_half_open_interval():
    window = FaultWindow(FaultKind.CRASH, "replica0", 100.0, 200.0)
    assert not window.covers(99.9)
    assert window.covers(100.0)
    assert window.covers(199.9)
    assert not window.covers(200.0)


def test_window_defaults_to_permanent():
    window = FaultWindow(FaultKind.CRASH, "replica0", 100.0)
    assert window.end_us == math.inf
    assert window.covers(1e12)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(kind=FaultKind.CRASH, node="n", start_us=-1.0),
        dict(kind=FaultKind.CRASH, node="n", start_us=5.0, end_us=5.0),
        dict(kind=FaultKind.FLAKY, node="n", start_us=0.0, param=0.0),
        dict(kind=FaultKind.FLAKY, node="n", start_us=0.0, param=1.5),
        dict(kind=FaultKind.CORRUPT, node="n", start_us=0.0, param=-0.1),
        dict(kind=FaultKind.SLOW, node="n", start_us=0.0, param=0.0),
    ],
)
def test_window_validation(kwargs):
    with pytest.raises(KVError):
        FaultWindow(**kwargs)


# --------------------------------------------------------------- FaultPlan

def test_plan_liveness_queries():
    plan = FaultPlan(
        [
            FaultWindow(FaultKind.CRASH, "replica0", 100.0, 200.0),
            FaultWindow(FaultKind.PARTITION, "replica1", 150.0, 250.0),
        ]
    )
    assert plan.is_reachable("replica0", 0.0)
    assert not plan.is_reachable("replica0", 150.0)
    assert plan.is_crashed("replica0", 150.0)
    assert not plan.is_crashed("replica1", 150.0)
    assert plan.is_partitioned("replica1", 150.0)
    assert not plan.is_reachable("replica1", 200.0)
    assert plan.is_reachable("replica0", 200.0)
    assert plan.is_reachable("replica1", 250.0)


def test_plan_slow_windows_stack():
    plan = FaultPlan(
        [
            FaultWindow(FaultKind.SLOW, "replica0", 0.0, 100.0, param=30.0),
            FaultWindow(FaultKind.SLOW, "replica0", 50.0, 150.0, param=20.0),
        ]
    )
    assert plan.extra_latency_us("replica0", 25.0) == 30.0
    assert plan.extra_latency_us("replica0", 75.0) == 50.0
    assert plan.extra_latency_us("replica0", 125.0) == 20.0
    assert plan.extra_latency_us("replica1", 75.0) == 0.0


def test_plan_probability_queries_take_max():
    plan = FaultPlan(
        [
            FaultWindow(FaultKind.FLAKY, "n", 0.0, param=0.1),
            FaultWindow(FaultKind.FLAKY, "n", 0.0, param=0.3),
            FaultWindow(FaultKind.CORRUPT, "n", 0.0, param=0.2),
        ]
    )
    assert plan.flaky_probability("n", 1.0) == 0.3
    assert plan.corrupt_probability("n", 1.0) == 0.2
    assert plan.flaky_probability("n", 1.0) != \
        plan.flaky_probability("other", 1.0)


def test_plan_draws_are_seed_deterministic():
    a = FaultPlan([], seed=5)
    b = FaultPlan([], seed=5)
    c = FaultPlan([], seed=6)
    draws_a = [a.draw() for _ in range(10)]
    draws_b = [b.draw() for _ in range(10)]
    draws_c = [c.draw() for _ in range(10)]
    assert draws_a == draws_b
    assert draws_a != draws_c


def test_plan_random_is_seed_deterministic():
    a = FaultPlan.random(seed=21, horizon_us=50_000.0)
    b = FaultPlan.random(seed=21, horizon_us=50_000.0)
    assert a.windows == b.windows
    assert a.windows != FaultPlan.random(seed=22, horizon_us=50_000.0).windows


def test_plan_random_protected_nodes_never_lose_data():
    for seed in range(40):
        plan = FaultPlan.random(
            seed=seed,
            horizon_us=50_000.0,
            nodes=("replica0", "replica1"),
            protected=("replica1",),
        )
        for window in plan.windows:
            if window.node == "replica1":
                assert window.kind in (FaultKind.SLOW, FaultKind.FLAKY)
                if window.kind is FaultKind.FLAKY:
                    assert window.param <= 0.15


def test_plan_random_validation():
    with pytest.raises(KVError):
        FaultPlan.random(seed=1, horizon_us=0.0)
    with pytest.raises(KVError):
        FaultPlan.random(seed=1, horizon_us=100.0, nodes=())


# -------------------------------------------------------------- named plans

def test_named_plans_build():
    for name in NAMED_PLANS:
        plan = named_plan(name, seed=3)
        assert plan.windows, name
        assert set(plan.nodes) <= set(DEFAULT_NODES), name


def test_named_plan_unknown_name():
    with pytest.raises(KVError, match="unknown fault plan"):
        named_plan("definitely-not-a-plan")


def test_rolling_outage_keeps_one_replica_alive():
    plan = named_plan("rolling-outage")
    horizon = plan.horizon_us()
    step = 500.0
    t = 0.0
    while t < horizon + step:
        assert any(
            plan.is_reachable(node, t) for node in DEFAULT_NODES
        ), t
        t += step


def test_blackout_kills_everything():
    plan = named_plan("blackout")
    assert all(plan.is_reachable(node, 0.0) for node in DEFAULT_NODES)
    assert not any(plan.is_reachable(node, 5_000.0)
                   for node in DEFAULT_NODES)
