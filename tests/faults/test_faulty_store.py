"""FaultyStore: the fault gate, liveness, and checksum verification."""

import pytest

from repro.errors import DataCorruptionError, TransientStoreError
from repro.faults import FaultKind, FaultPlan, FaultWindow, FaultyStore
from repro.kv import DramStore
from repro.mem import PAGE_SIZE, Page
from repro.sim import Environment


def run(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


def make_store(env, windows, seed=0, node="replica0"):
    plan = FaultPlan(windows, seed=seed)
    return FaultyStore(env, DramStore(env), plan, node=node), plan


def advance(env, until):
    def sleeper(env, delay):
        yield env.timeout(delay)

    run(env, sleeper(env, until - env.now))


# ------------------------------------------------------------------ crash

def test_crash_window_errors_then_recovers():
    env = Environment()
    store, _plan = make_store(
        env, [FaultWindow(FaultKind.CRASH, "replica0", 100.0, 500.0)]
    )
    run(env, store.put(1, "v"))
    assert store.is_alive

    advance(env, 200.0)
    assert not store.is_alive
    before = env.now

    def attempt(env):
        yield from store.get(1)

    env.process(attempt(env))
    with pytest.raises(TransientStoreError, match="crashed"):
        env.run()
    # The client pays a request timeout discovering the dead node.
    assert env.now - before >= store.crash_stall_us
    assert store.counters["crash_errors"] == 1

    advance(env, 600.0)
    assert store.is_alive
    assert run(env, store.get(1)) == "v"


def test_partition_window_is_transient_too():
    env = Environment()
    store, _plan = make_store(
        env, [FaultWindow(FaultKind.PARTITION, "replica0", 0.0, 500.0)]
    )

    def attempt(env):
        yield from store.put(1, "v")

    env.process(attempt(env))
    with pytest.raises(TransientStoreError, match="partition"):
        env.run()
    assert not store.is_alive
    assert not store.contains(1)  # write never reached the backend


def test_only_named_node_is_affected():
    env = Environment()
    store, _plan = make_store(
        env,
        [FaultWindow(FaultKind.CRASH, "replica1", 0.0)],
        node="replica0",
    )
    assert store.is_alive
    run(env, store.put(1, "v"))
    assert run(env, store.get(1)) == "v"


# ------------------------------------------------------------------ flaky

def test_flaky_window_fails_a_seeded_fraction():
    env = Environment()
    store, _plan = make_store(
        env, [FaultWindow(FaultKind.FLAKY, "replica0", 0.0, param=0.3)],
        seed=13,
    )
    run(env, store.put(1, "v"))

    failures = 0
    for _ in range(200):
        try:
            assert run(env, store.get(1)) == "v"
        except TransientStoreError:
            failures += 1
    # ~30% of 201 gated ops (1 put + 200 gets); wide tolerance.
    assert 30 <= failures <= 90
    assert store.counters["transient_errors"] == failures
    assert store.is_alive  # flaky nodes stay schedulable


def test_flaky_failures_are_seed_deterministic():
    def trace(seed):
        env = Environment()
        store, _plan = make_store(
            env,
            [FaultWindow(FaultKind.FLAKY, "replica0", 0.0, param=0.3)],
            seed=seed,
        )
        while True:  # the seeding write itself may flake
            try:
                run(env, store.put(1, "v"))
                break
            except TransientStoreError:
                continue
        outcomes = []
        for _ in range(50):
            try:
                run(env, store.get(1))
                outcomes.append(True)
            except TransientStoreError:
                outcomes.append(False)
        return outcomes

    assert trace(4) == trace(4)
    assert trace(4) != trace(5)


# ------------------------------------------------------------------- slow

def test_slow_window_adds_latency():
    env = Environment()
    store, _plan = make_store(
        env,
        [FaultWindow(FaultKind.SLOW, "replica0", 0.0, 1_000.0,
                     param=150.0)],
    )
    start = env.now
    run(env, store.put(1, "v"))
    slow_cost = env.now - start

    advance(env, 2_000.0)
    start = env.now
    run(env, store.put(2, "w"))
    normal_cost = env.now - start
    assert slow_cost - normal_cost == pytest.approx(150.0)
    assert store.counters["slowed_ops"] == 1


# ---------------------------------------------------------------- corrupt

def test_corrupt_window_raises_data_corruption():
    env = Environment()
    store, _plan = make_store(
        env,
        [FaultWindow(FaultKind.CORRUPT, "replica0", 0.0, param=1.0)],
    )
    run(env, store.put(1, "v"))

    def attempt(env):
        yield from store.get(1)

    env.process(attempt(env))
    with pytest.raises(DataCorruptionError, match="checksum mismatch"):
        env.run()
    assert store.counters["corrupt_reads_detected"] == 1
    # DataCorruptionError is retryable: a replica can serve the page.
    assert issubclass(DataCorruptionError, TransientStoreError)


def test_checksum_catches_silent_backend_corruption():
    """Even with no fault window, a mangled stored page is detected."""
    env = Environment()
    inner = DramStore(env)
    store = FaultyStore(env, inner, FaultPlan([]))
    page = Page(vaddr=0x1000)
    page.write(b"A" * PAGE_SIZE)
    run(env, store.put(1, page))

    # The backend silently loses a bit while the page is remote.
    page.data = b"B" + page.data[1:]

    def attempt(env):
        yield from store.get(1)

    env.process(attempt(env))
    with pytest.raises(DataCorruptionError, match="stored data changed"):
        env.run()
    assert store.counters["integrity_violations"] == 1


def test_healthy_roundtrip_with_real_bytes():
    env = Environment()
    store, _plan = make_store(env, [])
    page = Page(vaddr=0x1000)
    page.write(bytes(range(256)) * (PAGE_SIZE // 256))
    run(env, store.put(1, page))
    restored = run(env, store.get(1))
    assert restored is page
    assert restored.data == bytes(range(256)) * (PAGE_SIZE // 256)
    run(env, store.remove(1))
    assert not store.contains(1)


def test_multi_write_tracks_checksums():
    env = Environment()
    store, _plan = make_store(env, [])
    items = [(k, f"value-{k}", PAGE_SIZE) for k in range(4)]
    run(env, store.multi_write(items))
    assert store.stored_keys() == 4
    for k in range(4):
        assert run(env, store.get(k)) == f"value-{k}"
    assert store.counters["writes"] == 4
