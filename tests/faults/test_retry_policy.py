"""RetryPolicy backoff math and the shared retry_call loop."""

import random

import pytest

from repro.errors import (
    KVError,
    StoreUnavailableError,
    TransientStoreError,
)
from repro.faults import RetryPolicy, retry_call
from repro.sim import Environment


def run(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


# ------------------------------------------------------------- RetryPolicy

def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(base_backoff_us=50.0, backoff_multiplier=2.0,
                         max_backoff_us=300.0, jitter=0.0)
    assert policy.backoff_us(1) == 50.0
    assert policy.backoff_us(2) == 100.0
    assert policy.backoff_us(3) == 200.0
    assert policy.backoff_us(4) == 300.0   # capped
    assert policy.backoff_us(9) == 300.0


def test_backoff_jitter_stays_in_bounds():
    policy = RetryPolicy(base_backoff_us=100.0, jitter=0.25)
    rng = random.Random(7)
    values = [policy.backoff_us(1, rng) for _ in range(200)]
    assert all(75.0 <= v <= 125.0 for v in values)
    assert len(set(values)) > 1  # actually jittered


def test_backoff_deterministic_given_seed():
    policy = RetryPolicy()
    a = [policy.backoff_us(i, random.Random(3)) for i in range(1, 5)]
    b = [policy.backoff_us(i, random.Random(3)) for i in range(1, 5)]
    assert a == b


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(max_attempts=0),
        dict(base_backoff_us=-1.0),
        dict(backoff_multiplier=0.5),
        dict(deadline_us=0.0),
        dict(jitter=1.0),
        dict(jitter=-0.1),
    ],
)
def test_policy_validation(kwargs):
    with pytest.raises(KVError):
        RetryPolicy(**kwargs)


def test_backoff_rejects_bad_attempt():
    with pytest.raises(KVError):
        RetryPolicy().backoff_us(0)


# -------------------------------------------------------------- retry_call

class FlakyOp:
    """Fails the first ``failures`` calls, then succeeds."""

    def __init__(self, env, failures, result="ok"):
        self.env = env
        self.failures = failures
        self.result = result
        self.calls = 0

    def __call__(self):
        return self._op()

    def _op(self):
        self.calls += 1
        yield self.env.timeout(1.0)
        if self.calls <= self.failures:
            raise TransientStoreError(f"flake #{self.calls}")
        return self.result


def test_retry_succeeds_after_transients():
    env = Environment()
    op = FlakyOp(env, failures=2)
    policy = RetryPolicy(max_attempts=4, jitter=0.0)
    retries = []
    value = run(env, retry_call(
        env, op, policy,
        on_retry=lambda attempt, delay, exc: retries.append((attempt, delay)),
    ))
    assert value == "ok"
    assert op.calls == 3
    assert [r[0] for r in retries] == [1, 2]
    # Exponential spacing with jitter off.
    assert retries[0][1] == 50.0
    assert retries[1][1] == 100.0


def test_retry_exhaustion_raises_store_unavailable():
    env = Environment()
    op = FlakyOp(env, failures=100)
    policy = RetryPolicy(max_attempts=3, jitter=0.0)

    with pytest.raises(StoreUnavailableError, match="after 3 attempt"):
        run(env, retry_call(env, op, policy, what="test op"))
    assert op.calls == 3


def test_retry_deadline_enforced():
    env = Environment()
    op = FlakyOp(env, failures=100)
    policy = RetryPolicy(max_attempts=50, base_backoff_us=400.0,
                         max_backoff_us=400.0, deadline_us=1_000.0,
                         jitter=0.0)
    with pytest.raises(StoreUnavailableError, match="deadline"):
        run(env, retry_call(env, op, policy))
    # Two sleeps of 400us fit inside 1ms; the third would not.
    assert op.calls < 5


def test_retry_non_transient_errors_propagate():
    env = Environment()

    def op():
        yield env.timeout(1.0)
        raise ValueError("not retryable")

    with pytest.raises(ValueError):
        run(env, retry_call(env, op, RetryPolicy()))


def test_retry_prior_attempts_backs_off_first():
    """A failed async top half counts against the budget and pays a
    backoff before the first synchronous retry."""
    env = Environment()
    op = FlakyOp(env, failures=0)
    policy = RetryPolicy(max_attempts=4, jitter=0.0)
    retries = []
    start = env.now
    value = run(env, retry_call(
        env, op, policy, prior_attempts=1,
        initial_error=TransientStoreError("async half failed"),
        on_retry=lambda attempt, delay, exc: retries.append(attempt),
    ))
    assert value == "ok"
    assert op.calls == 1
    assert retries == [1]
    assert env.now - start >= 50.0  # paid the first backoff


def test_retry_prior_attempts_already_exhausted():
    env = Environment()
    op = FlakyOp(env, failures=0)
    policy = RetryPolicy(max_attempts=2, jitter=0.0)
    with pytest.raises(StoreUnavailableError):
        run(env, retry_call(
            env, op, policy, prior_attempts=2,
            initial_error=TransientStoreError("boom"),
        ))
    assert op.calls == 0  # never even tried


def test_retry_is_deterministic_with_seeded_rng():
    def trace(seed):
        env = Environment()
        op = FlakyOp(env, failures=3)
        policy = RetryPolicy(max_attempts=5, jitter=0.25)
        delays = []
        run(env, retry_call(
            env, op, policy, rng=random.Random(seed),
            on_retry=lambda attempt, delay, exc: delays.append(delay),
        ))
        return delays

    assert trace(11) == trace(11)
    assert trace(11) != trace(12)
