"""The chaos harness: data integrity under randomized fault plans.

Property: as long as at least one replica survives (the randomized
plans *protect* replica 1 — it may degrade but never loses data), every
page read back after recovery is byte-identical to what the guest
wrote, no matter what crashes, partitions, flakes, slowdowns, or
corrupted reads the other replica suffered in between.

``FAULT_SEED`` (environment variable) offsets the seed range so CI can
sweep several independent chaos universes with the same test code.
"""

import os

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core import FluidMemConfig
from repro.errors import StoreUnavailableError
from repro.faults import (
    FaultPlan,
    FaultyStore,
    RetryPolicy,
    named_plan,
)
from repro.kv import DramStore, ReplicatedStore
from repro.mem import PAGE_SIZE

from tests.conftest import build_stack

SEED_BASE = int(os.environ.get("FAULT_SEED", "0"))
PAGES = 18
LRU = 4


def fill_pattern(index: int) -> bytes:
    return bytes([(index * 41 + offset) % 256 for offset in range(64)]) \
        * (PAGE_SIZE // 64)


def chaos_stack(plan, seed=7, retry_policy=None):
    """A full FluidMem stack over two fault-injected replicas."""
    config = FluidMemConfig(
        lru_capacity_pages=LRU,
        writeback_batch_pages=4,
        retry_policy=retry_policy or RetryPolicy(),
    )
    stack = build_stack(config=config, seed=seed)
    replicas = [
        FaultyStore(stack.env, DramStore(stack.env), plan,
                    node=f"replica{i}")
        for i in range(2)
    ]
    store = ReplicatedStore(stack.env, replicas)
    vm, qemu, port, reg = stack.make_vm(store=store)
    return stack, store, replicas, vm, qemu, port


def chaos_workload(stack, vm, qemu, port, pages=PAGES):
    """Write distinct bytes, churn under faults, read everything back."""
    base = vm.first_free_guest_addr()
    mismatches = []

    def workload(env):
        for index in range(pages):
            yield from port.access(base + index * PAGE_SIZE,
                                   is_write=True)
            host = qemu.guest_to_host(base + index * PAGE_SIZE)
            qemu.page_table.entry(host).page.write(fill_pattern(index))
        # Churn: re-touch in a shuffled-ish order so pages bounce
        # between DRAM and the (faulty) store while windows open/close.
        for index in [(i * 7) % pages for i in range(2 * pages)]:
            yield from port.access(base + index * PAGE_SIZE)
        yield from stack.monitor.writeback.drain()
        # Recovery read: every byte must match.
        for index in range(pages):
            yield from port.access(base + index * PAGE_SIZE)
            host = qemu.guest_to_host(base + index * PAGE_SIZE)
            data = qemu.page_table.entry(host).page.read()
            if data != fill_pattern(index):
                mismatches.append(index)

    stack.run(workload(stack.env))
    return mismatches


@settings(max_examples=12, deadline=None)
@given(plan_seed=st.integers(0, 10_000))
def test_integrity_under_random_chaos(plan_seed):
    """Property: randomized fault schedules never corrupt or lose a
    page while replica 1 (protected) survives."""
    plan = FaultPlan.random(
        seed=SEED_BASE * 1_000_003 + plan_seed,
        horizon_us=40_000.0,
        nodes=("replica0", "replica1"),
        protected=("replica1",),
        max_windows=5,
    )
    stack, _store, _replicas, vm, qemu, port = chaos_stack(
        plan, seed=SEED_BASE + 7
    )
    try:
        mismatches = chaos_workload(stack, vm, qemu, port)
    except StoreUnavailableError:
        # Rare (~1 seed in 2000): a replica0 crash/partition window
        # overlaps a flaky window on the *protected* replica1, so both
        # are transiently unreachable and a read exhausts its retry
        # budget. No data is lost — the property's precondition (one
        # replica reachable) doesn't hold, so discard the example.
        assume(False)
    assert mismatches == []
    assert stack.monitor.stats()["quarantined_vms"] == 0


@pytest.mark.parametrize(
    "plan_name",
    ["replica-crash", "rolling-outage", "flaky-fabric", "slow-replica",
     "corrupt-reads", "chaos"],
)
def test_integrity_under_named_plans(plan_name):
    """Every named plan except blackout keeps one replica alive —
    zero integrity violations end to end."""
    plan = named_plan(plan_name, seed=SEED_BASE + 11)
    stack, _store, replicas, vm, qemu, port = chaos_stack(
        plan, seed=SEED_BASE + 3
    )
    mismatches = chaos_workload(stack, vm, qemu, port)
    assert mismatches == []
    # The wrapper's own end-to-end checksum never fired: injected
    # corruption is caught as DataCorruptionError before delivery.
    for replica in replicas:
        assert replica.counters["integrity_violations"] == 0


def test_blackout_fails_fast_with_quarantine():
    """All replicas dead forever: the run must surface
    StoreUnavailableError quickly and quarantine the VM — not hang."""
    plan = named_plan("blackout", seed=SEED_BASE + 1)
    stack, _store, _replicas, vm, qemu, port = chaos_stack(
        plan,
        retry_policy=RetryPolicy(max_attempts=3, jitter=0.0),
    )
    base = vm.first_free_guest_addr()

    def workload(env):
        for index in range(PAGES):
            yield from port.access(base + index * PAGE_SIZE,
                                   is_write=True)
        # Sleep into the blackout window, then fault on remote pages.
        yield env.timeout(5_000.0)
        for index in range(PAGES):
            yield from port.access(base + index * PAGE_SIZE)

    stack.env.process(workload(stack.env))
    with pytest.raises(StoreUnavailableError):
        stack.env.run()
    assert stack.monitor.stats()["quarantined_vms"] == 1
    # Fail fast: bounded by the retry deadline, not an unbounded hang.
    assert stack.env.now < 100_000.0
