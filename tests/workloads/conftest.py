"""Shared fixtures: both memory worlds, small scale."""

import random

import pytest

from repro.blockdev import PmemDisk, SsdDisk
from repro.core import FluidMemConfig, FluidMemoryPort, Monitor
from repro.kernel import GuestMemoryManager, UffdLatency, UffdOps, Userfaultfd
from repro.kv import DramStore
from repro.mem import MIB, PAGE_SIZE, FrameAllocator
from repro.sim import Environment, RandomStreams
from repro.vm import BootProfile, GuestVM, QemuProcess, SwapMemoryPort


class World:
    """One memory world ready to run a workload."""

    def __init__(self, env, vm, port, monitor=None, mm=None):
        self.env = env
        self.vm = vm
        self.port = port
        self.monitor = monitor
        self.mm = mm

    def run(self, gen):
        proc = self.env.process(gen)
        self.env.run()
        return proc.value

    @property
    def base_addr(self):
        return self.vm.first_free_guest_addr()


def make_fluidmem_world(lru_pages=128, vm_mib=64, boot_pages=16, seed=5):
    env = Environment()
    streams = RandomStreams(seed=seed)
    uffd = Userfaultfd(env, UffdLatency(), streams.stream("uffd"))
    ops = UffdOps(env, UffdLatency(), streams.stream("ops"),
                  FrameAllocator.for_bytes(256 * MIB))
    monitor = Monitor(env, uffd, ops,
                      config=FluidMemConfig(lru_capacity_pages=lru_pages),
                      rng=streams.stream("monitor"))
    monitor.start()
    vm = GuestVM(env, "fm-vm", memory_bytes=vm_mib * MIB,
                 boot_profile=BootProfile(total_pages=boot_pages))
    qemu = QemuProcess(vm)
    store = DramStore(env)
    registration = monitor.register_vm(qemu, store)
    port = FluidMemoryPort(env, vm, qemu, monitor, registration)
    vm.attach_port(port)
    world = World(env, vm, port, monitor=monitor)
    world.run(vm.boot())
    return world


def make_swap_world(dram_pages=128, vm_mib=64, boot_pages=16, seed=5,
                    data_disk=False, swap_mib=32):
    env = Environment()
    rng = random.Random(seed)
    swap_device = PmemDisk(env, swap_mib * MIB, random.Random(seed + 1))
    disk = SsdDisk(env, 64 * MIB, random.Random(seed + 2)) if data_disk \
        else None
    mm = GuestMemoryManager(
        env, rng,
        dram_bytes=dram_pages * PAGE_SIZE,
        swap_device=swap_device,
        data_disk=disk,
        swappiness=100,
    )
    vm = GuestVM(env, "swap-vm", memory_bytes=vm_mib * MIB,
                 boot_profile=BootProfile(total_pages=boot_pages))
    port = SwapMemoryPort(mm)
    vm.attach_port(port)
    world = World(env, vm, port, mm=mm)
    world.run(vm.boot())
    return world


@pytest.fixture
def fluid_world():
    return make_fluidmem_world()


@pytest.fixture
def swap_world():
    return make_swap_world()
