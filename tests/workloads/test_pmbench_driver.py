"""Tests for the access driver and pmbench."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import AccessDriver, Pmbench, PmbenchConfig

from .conftest import make_fluidmem_world, make_swap_world


# ------------------------------------------------------------- AccessDriver

def test_driver_counts_hits_and_faults(fluid_world):
    world = fluid_world
    driver = AccessDriver(world.env, world.port)

    def gen(env):
        yield from driver.access(world.base_addr, is_write=True)  # fault
        yield from driver.access(world.base_addr)                 # hit
        yield from driver.flush()

    world.run(gen(world.env))
    assert driver.faults == 1
    assert driver.hits == 1


def test_driver_hits_are_cheap(fluid_world):
    """1000 hits must produce far fewer events than 1000 faults would."""
    world = fluid_world
    driver = AccessDriver(world.env, world.port)

    def gen(env):
        yield from driver.access(world.base_addr, is_write=True)
        before = env.now
        for _ in range(1000):
            yield from driver.access(world.base_addr)
        yield from driver.flush()
        return env.now - before

    elapsed = world.run(gen(world.env))
    # ~0.15us per hit, all accounted.
    assert elapsed == pytest.approx(1000 * 0.15, rel=0.1)


def test_driver_flush_every_validation(fluid_world):
    with pytest.raises(ValueError):
        AccessDriver(fluid_world.env, fluid_world.port, flush_every=0)


# ----------------------------------------------------------------- Pmbench

def test_pmbench_config_validation():
    with pytest.raises(WorkloadError):
        PmbenchConfig(wss_pages=0)
    with pytest.raises(WorkloadError):
        PmbenchConfig(read_ratio=1.5)
    with pytest.raises(WorkloadError):
        PmbenchConfig(measured_accesses=0)


def run_pmbench(world, wss_pages, accesses=2000):
    bench = Pmbench(
        world.env, world.port, world.base_addr,
        PmbenchConfig(wss_pages=wss_pages, measured_accesses=accesses),
    )
    return world.run(bench.run())


def test_pmbench_all_local_is_fast():
    """WSS below the LRU budget: everything hits after warm-up."""
    world = make_fluidmem_world(lru_pages=256)
    result = run_pmbench(world, wss_pages=64)
    assert result.hit_fraction == 1.0
    assert result.average_latency_us < 5.0


def test_pmbench_hit_fraction_tracks_local_remote_ratio():
    """Paper VI-B: sub-10us faults ~= the local:total memory ratio."""
    world = make_fluidmem_world(lru_pages=64)
    result = run_pmbench(world, wss_pages=256, accesses=4000)
    # 64 local / 256 WSS = 25% expected hits (boot pages add noise).
    assert 0.12 <= result.hit_fraction <= 0.40
    cdf = result.cdf()
    assert cdf.fraction_below(10.0) == pytest.approx(
        result.hit_fraction, abs=0.08
    )


def test_pmbench_read_write_split():
    world = make_fluidmem_world(lru_pages=64)
    result = run_pmbench(world, wss_pages=128, accesses=1000)
    assert result.read_latency.count + result.write_latency.count == 1000
    # 50/50 mix within statistical noise.
    assert 350 <= result.read_latency.count <= 650


def test_pmbench_swap_world_runs():
    world = make_swap_world(dram_pages=96)
    result = run_pmbench(world, wss_pages=256, accesses=1500)
    assert result.faults > 0
    assert result.average_latency_us > 1.0
    # kswapd actually reclaimed into swap.
    assert world.mm.swap.counters["swapped_out"] > 0


def test_pmbench_remote_slower_than_local():
    local = make_fluidmem_world(lru_pages=512)
    remote = make_fluidmem_world(lru_pages=64)
    fast = run_pmbench(local, wss_pages=128, accesses=1500)
    slow = run_pmbench(remote, wss_pages=256, accesses=1500)
    assert slow.average_latency_us > 2 * fast.average_latency_us
