"""Tests for the YCSB generators and the MongoDB/WiredTiger model."""

import random

import pytest

from repro.blockdev import SsdDisk
from repro.errors import WorkloadError
from repro.mem import MIB, PAGE_SIZE
from repro.workloads import (
    GuestCacheFileReader,
    KernelFileReader,
    MongoConfig,
    MongoServer,
    ScrambledZipfianGenerator,
    UniformGenerator,
    WiredTigerCache,
    YcsbClient,
    YcsbConfig,
    ZipfianGenerator,
)

from .conftest import make_fluidmem_world, make_swap_world


# ----------------------------------------------------------- distributions

def test_zipfian_skew():
    rng = random.Random(1)
    gen = ZipfianGenerator(1000, rng)
    samples = [gen.next() for _ in range(20_000)]
    assert all(0 <= s < 1000 for s in samples)
    # Key 0 is the hottest by a wide margin.
    frac_zero = samples.count(0) / len(samples)
    assert frac_zero > 0.05
    top10 = sum(1 for s in samples if s < 10) / len(samples)
    assert top10 > 0.3


def test_scrambled_zipfian_spreads_hot_keys():
    rng = random.Random(2)
    gen = ScrambledZipfianGenerator(1000, rng)
    samples = [gen.next() for _ in range(20_000)]
    assert all(0 <= s < 1000 for s in samples)
    # Still skewed (a few keys dominate)...
    counts = {}
    for s in samples:
        counts[s] = counts.get(s, 0) + 1
    hottest = max(counts.values())
    assert hottest > 20 * (len(samples) / 1000)
    # ...but the hottest keys are not the low ids.
    hot_keys = sorted(counts, key=counts.get, reverse=True)[:5]
    assert any(k > 100 for k in hot_keys)


def test_uniform_generator():
    rng = random.Random(3)
    gen = UniformGenerator(100, rng)
    samples = [gen.next() for _ in range(5000)]
    assert min(samples) >= 0 and max(samples) < 100
    counts = [samples.count(k) for k in range(0, 100, 17)]
    assert max(counts) < 3 * min(counts)


def test_generator_validation():
    rng = random.Random(0)
    with pytest.raises(WorkloadError):
        ZipfianGenerator(0, rng)
    with pytest.raises(WorkloadError):
        UniformGenerator(0, rng)
    with pytest.raises(WorkloadError):
        YcsbConfig(request_distribution="latest")


# ---------------------------------------------------------- WiredTigerCache

def make_cache(cache_pages=4):
    config = MongoConfig(
        record_count=1000, wt_cache_bytes=cache_pages * PAGE_SIZE
    )
    return config, WiredTigerCache(config, region_base=0x100000)


def test_cache_insert_lookup():
    _config, cache = make_cache()
    slot = cache.insert(5)
    assert cache.lookup(5) == slot
    assert cache.lookup(6) is None
    assert cache.counters["hits"] == 1
    assert cache.counters["misses"] == 1


def test_cache_packs_records_per_page():
    config, cache = make_cache()
    slots = {cache.insert(i) for i in range(config.records_per_page)}
    assert len(slots) == 1  # 4 x 1KB records share one page


def test_cache_evicts_lru_page():
    config, cache = make_cache(cache_pages=2)
    per_page = config.records_per_page
    for i in range(3 * per_page):  # needs 3 pages, capacity 2
        cache.insert(i)
    assert cache.counters["evictions"] == 1
    # The first page's records are gone.
    assert cache.lookup(0) is None
    assert cache.lookup(3 * per_page - 1) is not None


def test_cache_double_insert_rejected():
    _config, cache = make_cache()
    cache.insert(1)
    with pytest.raises(WorkloadError):
        cache.insert(1)


def test_mongo_config_validation():
    with pytest.raises(WorkloadError):
        MongoConfig(record_count=0)
    with pytest.raises(WorkloadError):
        MongoConfig(record_bytes=0)
    with pytest.raises(WorkloadError):
        MongoConfig(wt_cache_bytes=100)


# ------------------------------------------------------------- MongoServer

def make_fluid_mongo(lru_pages=512, cache_pages=64, records=2000):
    world = make_fluidmem_world(lru_pages=lru_pages, vm_mib=128)
    disk = SsdDisk(world.env, 64 * MIB, random.Random(11))
    config = MongoConfig(
        record_count=records,
        wt_cache_bytes=cache_pages * PAGE_SIZE,
        base_op_mean_us=100.0,
        base_op_sigma_us=10.0,
    )
    cache_base = world.base_addr
    index_base = cache_base + (cache_pages + 8) * PAGE_SIZE
    pagecache_base = index_base + config.index_pages * PAGE_SIZE
    reader = GuestCacheFileReader(
        world.env, world.port, disk,
        region_base=pagecache_base, capacity_pages=128,
    )
    server = MongoServer(
        world.env, world.port, reader,
        cache_region_base=cache_base,
        index_region_base=index_base,
        config=config,
        rng=random.Random(12),
    )
    return world, server, reader


def test_mongo_read_miss_then_hit():
    world, server, reader = make_fluid_mongo()

    def gen(env):
        yield from server.read_record(42)
        yield from server.read_record(42)

    world.run(gen(world.env))
    assert server.counters["wt_cache_misses"] == 1
    assert server.counters["wt_cache_hits"] == 1
    assert reader.counters["misses"] == 1


def test_mongo_record_bounds():
    world, server, _reader = make_fluid_mongo()

    def gen(env):
        yield from server.read_record(999_999)

    world.env.process(gen(world.env))
    with pytest.raises(WorkloadError):
        world.env.run()


def test_mongo_cache_hit_faster_than_disk_miss():
    world, server, _reader = make_fluid_mongo()

    def timed(env, record):
        start = env.now
        yield from server.read_record(record)
        return env.now - start

    miss = world.run(timed(world.env, 7))
    hit = world.run(timed(world.env, 7))
    assert hit < miss


def test_ycsb_client_against_mongo():
    world, server, _reader = make_fluid_mongo()
    client = YcsbClient(
        world.env, server,
        YcsbConfig(record_count=2000, operation_count=300),
        rng=random.Random(13),
    )
    result = world.run(client.run())
    assert result.read_latency.count == 300
    assert result.average_latency_us > 100.0
    assert len(result.timeline) == 300
    # Zipfian skew produces WT cache hits even with a small cache.
    assert server.counters["wt_cache_hits"] > 0


def test_mongo_swap_world_uses_kernel_page_cache():
    world = make_swap_world(dram_pages=1024, vm_mib=64, data_disk=True)
    config = MongoConfig(
        record_count=1000,
        wt_cache_bytes=32 * PAGE_SIZE,
        base_op_mean_us=100.0,
    )
    cache_base = world.base_addr
    index_base = cache_base + 64 * PAGE_SIZE
    reader = KernelFileReader(world.mm)
    server = MongoServer(
        world.env, world.port, reader,
        cache_region_base=cache_base,
        index_region_base=index_base,
        config=config,
        rng=random.Random(14),
    )
    client = YcsbClient(
        world.env, server,
        YcsbConfig(record_count=1000, operation_count=200),
        rng=random.Random(15),
    )
    result = world.run(client.run())
    assert result.read_latency.count == 200
    assert world.mm.counters["pagecache_misses"] > 0


def test_kernel_reader_requires_data_disk():
    world = make_swap_world(data_disk=False)
    with pytest.raises(WorkloadError):
        KernelFileReader(world.mm)
