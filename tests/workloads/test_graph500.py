"""Tests for the Kronecker generator and traced BFS."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    Graph500,
    Graph500Config,
    KroneckerGraph,
    generate_kronecker_edges,
)

from .conftest import make_fluidmem_world


def test_generator_shape_and_range():
    rng = np.random.default_rng(0)
    edges = generate_kronecker_edges(scale=8, edgefactor=4, rng=rng)
    assert edges.shape == (4 * 256, 2)
    assert edges.min() >= 0
    assert edges.max() < 256


def test_generator_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(WorkloadError):
        generate_kronecker_edges(0, 4, rng)
    with pytest.raises(WorkloadError):
        generate_kronecker_edges(4, 0, rng)


def test_generator_skewed_degrees():
    """R-MAT graphs have heavy-tailed degree distributions."""
    graph = KroneckerGraph(scale=10, edgefactor=8, seed=3)
    degrees = np.diff(graph.xadj)
    assert degrees.max() > 8 * degrees.mean()


def test_csr_consistency():
    graph = KroneckerGraph(scale=7, edgefactor=4, seed=1)
    assert graph.xadj[0] == 0
    assert graph.xadj[-1] == len(graph.adjacency)
    assert (np.diff(graph.xadj) >= 0).all()
    # Undirected: every edge appears in both directions.
    for v in range(0, graph.num_vertices, 13):
        for w in graph.neighbors(v):
            assert v in graph.neighbors(int(w))


def test_csr_has_no_self_loops():
    graph = KroneckerGraph(scale=7, edgefactor=4, seed=2)
    for v in range(graph.num_vertices):
        assert v not in graph.neighbors(v)


def test_bfs_tree_validates():
    """The traced BFS produces a valid BFS tree (Graph500 validation)."""
    world = make_fluidmem_world(lru_pages=4096, vm_mib=128)
    config = Graph500Config(scale=7, edgefactor=4, num_bfs_roots=1, seed=2)
    bench = Graph500(world.env, world.port, world.base_addr, config)

    def gen(env):
        yield from bench.load_graph()
        from repro.workloads.driver import AccessDriver
        driver = AccessDriver(env, world.port)
        root = bench.pick_roots()[0]
        edges, parent = yield from bench.bfs(root, driver)
        return root, edges, parent

    root, edges, parent = world.run(gen(world.env))
    assert edges > 0
    assert bench.validate_bfs(root, parent)


def test_bfs_distances_match_networkx():
    networkx = pytest.importorskip("networkx")
    world = make_fluidmem_world(lru_pages=4096, vm_mib=128)
    config = Graph500Config(scale=6, edgefactor=4, num_bfs_roots=1, seed=4)
    bench = Graph500(world.env, world.port, world.base_addr, config)
    graph = bench.graph

    nx_graph = networkx.Graph()
    nx_graph.add_nodes_from(range(graph.num_vertices))
    for v in range(graph.num_vertices):
        for w in graph.neighbors(v):
            nx_graph.add_edge(v, int(w))

    def gen(env):
        yield from bench.load_graph()
        from repro.workloads.driver import AccessDriver
        driver = AccessDriver(env, world.port)
        root = bench.pick_roots()[0]
        _edges, parent = yield from bench.bfs(root, driver)
        return root, parent

    root, parent = world.run(gen(world.env))
    reachable_model = set(
        networkx.single_source_shortest_path_length(nx_graph, root)
    )
    reachable_ours = {v for v in range(graph.num_vertices)
                      if parent[v] != -1}
    assert reachable_ours == reachable_model


def test_full_run_reports_teps():
    world = make_fluidmem_world(lru_pages=4096, vm_mib=128)
    config = Graph500Config(scale=7, edgefactor=4, num_bfs_roots=2, seed=5)
    bench = Graph500(world.env, world.port, world.base_addr, config)
    result = world.run(bench.run())
    assert len(result.teps) == 2
    assert result.harmonic_mean_teps > 0
    assert result.mean_teps_millions > 0


def test_teps_degrades_with_less_local_memory():
    """The Figure 4 mechanism: less DRAM -> remote faults -> lower TEPS."""
    # Scale 10 x edgefactor 8 -> ~40 traced pages of CSR arrays; a
    # 24-page budget forces remote faults, 8192 keeps it all local.
    config = Graph500Config(scale=10, edgefactor=8, num_bfs_roots=1, seed=6)

    big = make_fluidmem_world(lru_pages=8192, vm_mib=128)
    bench_big = Graph500(big.env, big.port, big.base_addr, config)
    fast = big.run(bench_big.run())

    small = make_fluidmem_world(lru_pages=24, vm_mib=128)
    bench_small = Graph500(small.env, small.port, small.base_addr, config)
    slow = small.run(bench_small.run())

    assert fast.harmonic_mean_teps > 2 * slow.harmonic_mean_teps


def test_config_validation():
    with pytest.raises(WorkloadError):
        Graph500Config(num_bfs_roots=0)


def test_memory_bytes_accounting():
    graph = KroneckerGraph(scale=8, edgefactor=4, seed=0)
    expected = (257 * 8) + len(graph.adjacency) * 8 + 256 * 9
    # scale 8 -> 256 vertices... num_vertices is 256.
    expected = (graph.num_vertices + 1) * 8 \
        + len(graph.adjacency) * 8 + graph.num_vertices * 9
    assert graph.memory_bytes() == expected
