"""Tests for workload result objects and misc generator pieces."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sim import LatencyRecorder
from repro.workloads import (
    Graph500,
    Graph500Config,
    KroneckerGraph,
    PmbenchResult,
    YcsbConfig,
)
from repro.workloads.graph500 import Graph500Result
from repro.workloads.ycsb import YcsbResult, fnv_hash64

from .conftest import make_fluidmem_world


# ------------------------------------------------------------ PmbenchResult

def make_pmbench_result():
    reads = LatencyRecorder("r")
    writes = LatencyRecorder("w")
    reads.extend([1.0, 2.0, 30.0])
    writes.extend([4.0])
    return PmbenchResult(reads, writes, warmup_time_us=100.0,
                         measured_time_us=37.0, hits=2, faults=2)


def test_pmbench_result_average_weighted():
    result = make_pmbench_result()
    assert result.average_latency_us == pytest.approx((33.0 + 4.0) / 4)


def test_pmbench_result_cdf_and_hits():
    result = make_pmbench_result()
    assert result.hit_fraction == 0.5
    assert result.cdf().fraction_below(10.0) == 0.75
    assert len(result.all_samples) == 4


# ----------------------------------------------------------- Graph500Result

def test_graph500_result_stats():
    result = Graph500Result(
        teps=[1e6, 2e6],
        edges_traversed=[100, 200],
        bfs_times_us=[100.0, 100.0],
    )
    assert result.harmonic_mean_teps == pytest.approx(1.333e6, rel=0.01)
    assert result.mean_teps_millions == pytest.approx(1.333, rel=0.01)


def test_graph500_result_requires_trials():
    with pytest.raises(WorkloadError):
        Graph500Result([], [], [])


def test_pick_roots_have_edges():
    world = make_fluidmem_world(lru_pages=4096, vm_mib=128)
    bench = Graph500(
        world.env, world.port, world.base_addr,
        Graph500Config(scale=7, edgefactor=2, num_bfs_roots=8, seed=3),
    )
    for root in bench.pick_roots():
        assert bench.graph.degree(root) > 0


def test_graph_layout_is_page_aligned_and_disjoint():
    world = make_fluidmem_world(lru_pages=4096, vm_mib=128)
    bench = Graph500(
        world.env, world.port, world.base_addr,
        Graph500Config(scale=8, edgefactor=4, seed=1),
    )
    bases = [
        bench.xadj_base, bench.adj_base,
        bench.parent_bases[0], bench.visited_bases[0],
        bench.parent_bases[1], bench.visited_bases[1],
        bench.end_addr,
    ]
    assert all(base % 4096 == 0 for base in bases)
    assert bases == sorted(bases)
    assert len(set(bases)) == len(bases)


def test_kronecker_deterministic_by_seed():
    a = KroneckerGraph(scale=8, edgefactor=4, seed=5)
    b = KroneckerGraph(scale=8, edgefactor=4, seed=5)
    assert np.array_equal(a.adjacency, b.adjacency)
    c = KroneckerGraph(scale=8, edgefactor=4, seed=6)
    assert not np.array_equal(a.adjacency, c.adjacency)


# ------------------------------------------------------------------- YCSB

def test_fnv_hash_is_deterministic_and_spreads():
    assert fnv_hash64(1) == fnv_hash64(1)
    values = {fnv_hash64(i) % 1000 for i in range(200)}
    assert len(values) > 150  # good dispersion


def test_ycsb_result_accumulates():
    result = YcsbResult()
    result.read_latency.record(100.0)
    result.timeline.record(0.0, 100.0)
    assert result.average_latency_us == 100.0
    assert "avg=100" in repr(result)


def test_ycsb_config_validation():
    with pytest.raises(WorkloadError):
        YcsbConfig(record_count=0)
    with pytest.raises(WorkloadError):
        YcsbConfig(operation_count=0)
