"""Property tests for the YCSB Zipfian generators.

The scenario platform's diurnal web workload leans on these
distributions, so the properties they promise get pinned here:
rank-frequency monotonicity across seeds, key-range bounds, and
per-seed determinism.
"""

import random
from collections import Counter

import pytest

from repro.errors import WorkloadError
from repro.workloads.ycsb import (
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv_hash64,
)

SEEDS = (7, 42, 1234, 99991)
ITEMS = 500
DRAWS = 20_000


def _draw(generator, count=DRAWS):
    return [generator.next() for _ in range(count)]


class TestZipfianProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bounds(self, seed):
        gen = ZipfianGenerator(ITEMS, random.Random(seed))
        for value in _draw(gen, 5_000):
            assert 0 <= value < ITEMS

    @pytest.mark.parametrize("seed", SEEDS)
    def test_rank_frequency_monotone_over_low_ranks(self, seed):
        """Frequency falls with rank, at rank gaps noise cannot cross.

        Adjacent ranks can swap under sampling noise, so monotonicity
        is pinned two robust ways: widely spaced individual ranks
        (0 > 3 > 10 > 30 > 100), and equal-width rank windows marching
        down the tail.
        """
        counts = Counter(_draw(ZipfianGenerator(ITEMS, random.Random(seed))))
        spaced = [counts.get(rank, 0) for rank in (0, 3, 10, 30, 100)]
        for index in range(len(spaced) - 1):
            assert spaced[index] > spaced[index + 1], (
                f"spaced ranks not monotone at seed {seed}: {spaced}"
            )
        windows = [
            sum(counts.get(rank, 0) for rank in range(low, low + 16))
            for low in (0, 16, 32, 48)
        ]
        for index in range(len(windows) - 1):
            assert windows[index] > windows[index + 1], (
                f"rank windows not monotone at seed {seed}: {windows}"
            )
        # And the head is heavy: rank 0 alone beats the uniform share 10x.
        assert counts.get(0, 0) > 10 * DRAWS / ITEMS

    @pytest.mark.parametrize("seed", SEEDS)
    def test_deterministic_per_seed(self, seed):
        first = _draw(ZipfianGenerator(ITEMS, random.Random(seed)), 2_000)
        second = _draw(ZipfianGenerator(ITEMS, random.Random(seed)), 2_000)
        assert first == second

    def test_different_seeds_differ(self):
        streams = {
            tuple(_draw(ZipfianGenerator(ITEMS, random.Random(seed)), 500))
            for seed in SEEDS
        }
        assert len(streams) == len(SEEDS)

    @pytest.mark.parametrize("theta", (0.2, 0.5, 0.99))
    def test_skew_grows_with_theta(self, theta):
        counts = Counter(
            _draw(ZipfianGenerator(ITEMS, random.Random(42), theta=theta))
        )
        top = counts.most_common(1)[0][1]
        # Stronger theta concentrates more mass on the hottest key.
        flat = Counter(
            _draw(ZipfianGenerator(ITEMS, random.Random(42), theta=0.1))
        ).most_common(1)[0][1]
        assert top >= flat

    def test_rejects_bad_parameters(self):
        with pytest.raises(WorkloadError):
            ZipfianGenerator(0, random.Random(1))
        with pytest.raises(WorkloadError):
            ZipfianGenerator(10, random.Random(1), theta=1.0)
        with pytest.raises(WorkloadError):
            ZipfianGenerator(10, random.Random(1), theta=0.0)


class TestScrambledZipfianProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bounds(self, seed):
        gen = ScrambledZipfianGenerator(ITEMS, random.Random(seed))
        for value in _draw(gen, 5_000):
            assert 0 <= value < ITEMS

    @pytest.mark.parametrize("seed", SEEDS)
    def test_deterministic_per_seed(self, seed):
        first = _draw(
            ScrambledZipfianGenerator(ITEMS, random.Random(seed)), 2_000
        )
        second = _draw(
            ScrambledZipfianGenerator(ITEMS, random.Random(seed)), 2_000
        )
        assert first == second

    @pytest.mark.parametrize("seed", SEEDS)
    def test_hottest_key_is_scrambled_rank_zero(self, seed):
        """Scrambling moves the hot head to fnv(0) % n, preserving the
        skew while scattering it over the keyspace."""
        counts = Counter(
            _draw(ScrambledZipfianGenerator(ITEMS, random.Random(seed)))
        )
        hottest, _ = counts.most_common(1)[0]
        assert hottest == fnv_hash64(0) % ITEMS

    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_skew_as_unscrambled(self, seed):
        """Scrambling is a bijection of ranks: the sorted frequency
        profile matches the plain Zipfian stream draw for draw."""
        plain = Counter(_draw(ZipfianGenerator(ITEMS, random.Random(seed))))
        scrambled = Counter(
            _draw(ScrambledZipfianGenerator(ITEMS, random.Random(seed)))
        )
        plain_profile = sorted(plain.values(), reverse=True)
        scrambled_profile = sorted(scrambled.values(), reverse=True)
        # fnv collisions fold the odd cold key into a hotter one, so the
        # profiles are not byte-equal — but the head (where the mass is)
        # must agree within a few percent, rank for rank.
        for rank in range(10):
            expected = plain_profile[rank]
            actual = scrambled_profile[rank]
            assert abs(actual - expected) <= max(25, 0.05 * expected), (
                f"profile rank {rank}: plain {expected}, "
                f"scrambled {actual}"
            )


class TestUniformGenerator:
    def test_bounds_and_determinism(self):
        first = _draw(UniformGenerator(ITEMS, random.Random(42)), 2_000)
        second = _draw(UniformGenerator(ITEMS, random.Random(42)), 2_000)
        assert first == second
        assert all(0 <= value < ITEMS for value in first)

    def test_no_head(self):
        counts = Counter(_draw(UniformGenerator(ITEMS, random.Random(42))))
        top = counts.most_common(1)[0][1]
        assert top < 3 * DRAWS / ITEMS
