"""The CI perf-regression gate: repro.obs.compare."""

import json

from repro.obs.compare import compare_metrics, main


def _doc(p50=10.0, p99=20.0, count=100):
    return {
        "schema": "repro-bench-metrics/1",
        "experiments": {
            "fig3": {
                "counters": {},
                "gauges": {},
                "histograms": {
                    "path_latency_us{path=sync_fetch,vm=vm0}": {
                        "count": count, "mean": 12.0, "p50": p50,
                        "p95": 18.0, "p99": p99, "min": 1.0, "max": 30.0,
                    },
                },
            },
        },
    }


def test_identical_documents_pass():
    assert compare_metrics(_doc(), _doc()) == []


def test_small_drift_within_threshold_passes():
    assert compare_metrics(_doc(), _doc(p50=11.9, p99=23.9)) == []


def test_regression_over_threshold_is_reported():
    regressions = compare_metrics(_doc(), _doc(p99=30.0))
    assert len(regressions) == 1
    reg = regressions[0]
    assert reg.stat == "p99"
    assert reg.baseline == 20.0 and reg.current == 30.0
    assert "p99" in str(reg)


def test_improvement_is_not_a_regression():
    assert compare_metrics(_doc(), _doc(p50=5.0, p99=8.0)) == []


def test_low_count_histograms_are_ignored():
    # Too few samples for a stable percentile: noise, not a regression.
    assert compare_metrics(_doc(count=10), _doc(p99=80.0, count=10)) == []


def test_sub_microsecond_latencies_are_ignored():
    base = _doc(p50=0.2, p99=0.5)
    curr = _doc(p50=0.9, p99=0.99)
    assert compare_metrics(base, curr) == []


def test_missing_histogram_in_current_is_skipped():
    current = _doc()
    current["experiments"]["fig3"]["histograms"] = {}
    assert compare_metrics(_doc(), current) == []


def test_bare_snapshot_documents_are_accepted():
    snapshot = _doc()["experiments"]["fig3"]
    regressed = json.loads(json.dumps(snapshot))
    hist = regressed["histograms"][
        "path_latency_us{path=sync_fetch,vm=vm0}"]
    hist["p50"] = 99.0
    assert compare_metrics(snapshot, snapshot) == []
    assert len(compare_metrics(snapshot, regressed)) == 1


def test_cli_exit_codes(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    current = tmp_path / "current.json"
    baseline.write_text(json.dumps(_doc()))
    current.write_text(json.dumps(_doc()))
    assert main([str(baseline), str(current)]) == 0
    current.write_text(json.dumps(_doc(p99=50.0)))
    assert main([str(baseline), str(current)]) == 1
    out = capsys.readouterr().out
    assert "regressed" in out
    # The failure message documents how to refresh the baseline.
    assert "repro.bench" in out and "--metrics" in out


def test_cli_threshold_flag(tmp_path):
    baseline = tmp_path / "baseline.json"
    current = tmp_path / "current.json"
    baseline.write_text(json.dumps(_doc()))
    current.write_text(json.dumps(_doc(p99=23.0)))  # +15%
    assert main([str(baseline), str(current)]) == 0
    assert main([str(baseline), str(current), "--threshold", "0.1"]) == 1
