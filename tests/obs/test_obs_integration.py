"""Observability threaded through the live stack.

These tests run real fault traffic through a monitored FluidMem stack
and check the three load-bearing properties of the layer: registry
aggregates match the monitor's own recorders, identical seeds produce
byte-identical metrics JSON, and disabled mode changes nothing about
simulation behavior.
"""

from repro.mem import PAGE_SIZE
from repro.obs import Observability
from repro.sim import Environment

from tests.conftest import build_stack


def _touch_pages(stack, port, base, count, stride=PAGE_SIZE):
    def workload():
        for index in range(count):
            yield from port.access(base + index * stride, is_write=True)
    stack.run(workload())


def _observed_run(seed=7, pages=96, lru_pages=16):
    obs = Observability(enabled=True)
    stack = build_stack(seed=seed, obs=obs)
    _vm, _qemu, port, _reg = stack.make_vm(lru_pages=lru_pages)
    base = 0x100000
    _touch_pages(stack, port, base, pages)      # first touches + evictions
    _touch_pages(stack, port, base, pages)      # re-fetch from the store
    stack.run(stack.monitor.writeback.drain())
    return obs, stack


def test_registry_matches_monitor_aggregates():
    obs, stack = _observed_run()
    monitor = stack.monitor
    snap = obs.registry.snapshot()

    # Counters: the mirrored set and the registry agree exactly.
    assert snap["counters"]["faults{vm=monitor}"] == \
        monitor.counters["faults"]
    assert snap["counters"]["evictions{vm=monitor}"] == \
        monitor.counters["evictions"]

    # The end-to-end fault histogram is the same sample stream the
    # monitor's own recorder sees.
    hist = obs.registry.histogram("fault_latency_us", vm="monitor")
    assert hist.count == monitor.fault_latency.count
    assert hist.mean == monitor.fault_latency.mean
    assert hist.percentile(99.0) == monitor.fault_latency.percentile(99.0)

    # Per-path spans in the summary sum to the total fault count.
    path_counts = sum(
        value["count"] for key, value in snap["histograms"].items()
        if key.startswith("path_latency_us") and "vm=monitor" in key
        and "retry_backoff" not in key and "eviction" not in key
        and "writeback_flush" not in key and "async_prefetch" not in key
    )
    assert path_counts == monitor.counters["faults"]

    # Table I code paths flow into the shared registry too.
    assert any(key.startswith("codepath_latency_us")
               for key in snap["histograms"])

    # Gauges track the LRU buffer live.
    assert snap["gauges"]["lru_capacity_pages{vm=monitor}"] == 16
    assert snap["gauges"]["lru_resident_pages{vm=monitor}"] == \
        len(monitor.lru)


def test_identical_seeds_produce_identical_metrics_json():
    obs_a, _stack_a = _observed_run(seed=11)
    obs_b, _stack_b = _observed_run(seed=11)
    assert obs_a.registry.to_json() == obs_b.registry.to_json()

    def normalized(tracer):
        # Host base addresses come from a process-global allocator, so
        # two stacks built in one process differ only in that base;
        # everything else must match event for event.
        out = []
        for event in tracer.events:
            entry = event.as_dict()
            entry.get("args", {}).pop("addr", None)
            out.append(entry)
        return out

    assert normalized(obs_a.tracer) == normalized(obs_b.tracer)


def test_different_seeds_still_count_the_same_operations():
    obs_a, _ = _observed_run(seed=1)
    obs_b, _ = _observed_run(seed=2)
    # Timing jitter differs, but the op counts are workload-determined.
    assert obs_a.registry.snapshot()["counters"] == \
        obs_b.registry.snapshot()["counters"]


def test_disabled_observability_does_not_change_simulation():
    obs, observed = _observed_run(seed=13)
    plain = build_stack(seed=13)
    _vm, _qemu, port, _reg = plain.make_vm(lru_pages=16)
    base = 0x100000
    _touch_pages(plain, port, base, 96)
    _touch_pages(plain, port, base, 96)
    plain.run(plain.monitor.writeback.drain())

    # Same simulated clock, same fault stats, same legacy counters.
    assert plain.env.now == observed.env.now
    assert plain.monitor.fault_latency.count == \
        observed.monitor.fault_latency.count
    assert plain.monitor.fault_latency.mean == \
        observed.monitor.fault_latency.mean
    assert plain.monitor.counters.as_dict() == \
        observed.monitor.counters.as_dict()
    # And the unobserved stack recorded nothing.
    assert plain.monitor.obs.registry.snapshot()["counters"] == {}
    assert len(plain.monitor.obs.tracer) == 0


def test_trace_events_cover_fault_spans_and_instants():
    obs, stack = _observed_run(lru_pages=8, pages=48)
    names = {event.name for event in obs.tracer.events}
    assert "fault" in names
    spans = [e for e in obs.tracer.events if e.name == "fault"]
    assert all(e.ph == "X" and e.dur > 0 for e in spans)
    paths = {e.args["path"] for e in spans}
    assert "zero_fill" in paths
    assert paths & {"sync_fetch", "async_fetch", "steal_local",
                    "steal_wait"}


def test_buffer_resize_emits_instant_event():
    obs = Observability(enabled=True)
    stack = build_stack(seed=3, obs=obs)
    stack.make_vm(lru_pages=32)
    stack.monitor.set_lru_capacity(8)
    stack.env.run()
    resizes = [e for e in obs.tracer.events if e.name == "buffer_resize"]
    assert resizes
    assert resizes[-1].args["new_pages"] == 8


def test_null_observability_shares_no_state_between_stacks():
    env = Environment()
    assert env.now == 0.0
    stack_a = build_stack(seed=5)
    stack_b = build_stack(seed=5)
    assert stack_a.monitor.obs is stack_b.monitor.obs  # the shared NULL_OBS
    assert not stack_a.monitor.obs.enabled
