"""Metrics registry: instruments, bucket edges, disabled no-ops."""

import json

import pytest

from repro.errors import FluidMemError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_US,
    Histogram,
    MetricsRegistry,
    MirroredCounters,
    label_key,
)


def test_label_key_sorts_labels():
    assert label_key("m", {}) == "m"
    assert label_key("m", {"b": 2, "a": 1}) == "m{a=1,b=2}"


def test_counter_is_monotonic():
    registry = MetricsRegistry()
    counter = registry.counter("ops", vm="vm0")
    counter.inc()
    counter.inc(by=4)
    assert counter.value == 5
    with pytest.raises(FluidMemError):
        counter.inc(by=-1)


def test_counter_get_or_create_shares_instances():
    registry = MetricsRegistry()
    a = registry.counter("ops", vm="vm0")
    b = registry.counter("ops", vm="vm0")
    c = registry.counter("ops", vm="vm1")
    assert a is b
    assert a is not c


def test_gauge_set_and_add():
    gauge = MetricsRegistry().gauge("pages")
    gauge.set(10)
    gauge.add(-3)
    assert gauge.value == 7


def test_histogram_bucket_edges_are_upper_bounds():
    hist = Histogram("h", edges=(1.0, 10.0, 100.0))
    # On-edge samples land in the bucket whose edge equals them.
    for value in (0.5, 1.0):
        hist.observe(value)
    for value in (1.1, 10.0):
        hist.observe(value)
    for value in (10.5, 100.0):
        hist.observe(value)
    hist.observe(100.1)  # overflow bucket
    assert hist.bucket_counts == (2, 2, 2, 1)
    assert hist.cumulative_counts() == (2, 4, 6, 7)
    assert hist.count == 7


def test_default_buckets_are_strictly_increasing():
    edges = DEFAULT_LATENCY_BUCKETS_US
    assert all(b > a for a, b in zip(edges, edges[1:]))
    assert edges[0] == 1.0 and edges[-1] == 100_000.0


def test_histogram_rejects_bad_edges():
    with pytest.raises(FluidMemError):
        Histogram("h", edges=())
    with pytest.raises(FluidMemError):
        Histogram("h", edges=(5.0, 5.0))
    with pytest.raises(FluidMemError):
        Histogram("h", edges=(5.0, 1.0))


def test_histogram_summary_percentiles_are_exact():
    hist = Histogram("h")
    for value in range(1, 101):
        hist.observe(float(value))
    summary = hist.summary()
    assert summary["count"] == 100
    assert summary["p50"] == pytest.approx(50.5)
    assert summary["min"] == 1.0
    assert summary["max"] == 100.0
    assert summary["mean"] == pytest.approx(50.5)
    assert hist.sum == pytest.approx(5050.0)


def test_empty_histogram_sum_is_zero():
    assert Histogram("h").sum == 0.0


def test_snapshot_is_sorted_and_skips_empty_histograms():
    registry = MetricsRegistry()
    registry.counter("z_ops").inc()
    registry.counter("a_ops").inc()
    registry.gauge("pages", vm="vm0").set(3)
    registry.histogram("lat", vm="vm0").observe(2.5)
    registry.histogram("lat", vm="empty")  # created, never observed
    snap = registry.snapshot()
    assert list(snap["counters"]) == ["a_ops", "z_ops"]
    assert snap["gauges"] == {"pages{vm=vm0}": 3}
    assert list(snap["histograms"]) == ["lat{vm=vm0}"]
    # to_json round-trips and is deterministic.
    assert json.loads(registry.to_json()) == snap


def test_disabled_registry_hands_out_shared_noops():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("ops", vm="vm0")
    counter.inc(1000)
    assert counter.value == 0
    assert counter is registry.counter("other", x=1)
    gauge = registry.gauge("pages")
    gauge.set(7)
    gauge.add(7)
    assert gauge.value == 0.0
    hist = registry.histogram("lat")
    hist.observe(5.0)
    assert hist.count == 0
    # Nothing was registered: the snapshot stays empty.
    assert registry.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {},
    }


def test_mirrored_counters_feed_both_sinks():
    registry = MetricsRegistry()
    counters = MirroredCounters(registry, vm="vm0")
    counters.incr("faults")
    counters.incr("faults", by=2)
    assert counters["faults"] == 3
    assert registry.counter("faults", vm="vm0").value == 3
