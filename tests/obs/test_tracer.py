"""Event tracer: ring behavior, JSONL, and the Chrome-trace golden."""

import io
import json
import os

from repro.obs import EventTracer, export_chrome_trace

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_chrome_trace.json")


def _scripted_tracers():
    """A fixed two-tracer scenario (also used to regenerate the golden).

    Regenerate with::

        PYTHONPATH=src:. python -c "import tests.obs.test_tracer as t; t.regenerate_golden()"
    """
    fig3 = EventTracer(default_track="sim")
    fig3.complete("fault", 10.0, 24.5, cat="fault", track="vm0",
                  path="sync_fetch", addr="0x1000")
    fig3.instant("buffer_resize", 40.0, cat="monitor", track="vm0",
                 old_pages=64, new_pages=32)
    fig3.complete("writeback_flush", 55.25, 101.125, cat="writeback",
                  track="vm0/writeback", pages=32)
    fig3.instant("batch_steal", 60.0, cat="fault", track="vm0",
                 state="pending", key="0x2000")
    chaos = EventTracer(default_track="sim")
    chaos.instant("replica_failover", 12.5, cat="resilience",
                  track="replicated-x2", replica=0, reason="transient",
                  key="0x3000")
    chaos.instant("quarantine", 99.0, cat="resilience", track="monitor",
                  pid=7, store="faulty-dram@replica1")
    return [("fig3", fig3), ("chaos", chaos)]


def regenerate_golden():
    with open(GOLDEN, "w") as handle:
        json.dump(export_chrome_trace(_scripted_tracers()), handle,
                  indent=2, sort_keys=True)
        handle.write("\n")


def test_instant_and_complete_record_typed_events():
    tracer = EventTracer()
    tracer.complete("fault", 5.0, 2.5, track="vm0", path="zero_fill")
    tracer.instant("quarantine", 9.0, track="monitor")
    assert len(tracer) == 2
    span, mark = tracer.events
    assert span.ph == "X" and span.dur == 2.5
    assert mark.ph == "i" and mark.dur is None
    assert span.args == {"path": "zero_fill"}


def test_ring_buffer_drops_oldest_and_counts():
    tracer = EventTracer(capacity=3)
    for index in range(5):
        tracer.instant(f"e{index}", float(index))
    assert len(tracer) == 3
    assert tracer.emitted == 5
    assert tracer.dropped == 2
    assert [event.name for event in tracer.events] == ["e2", "e3", "e4"]
    tracer.clear()
    assert len(tracer) == 0 and tracer.emitted == 0


def test_disabled_tracer_records_nothing():
    tracer = EventTracer(enabled=False)
    tracer.instant("x", 1.0)
    tracer.complete("y", 1.0, 2.0)
    assert len(tracer) == 0
    assert tracer.emitted == 0
    assert tracer.chrome_trace()["traceEvents"] == [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": "sim"}},
    ]


def test_jsonl_export_is_one_sorted_object_per_line():
    tracer = EventTracer()
    tracer.complete("fault", 1.23456, 7.0, track="vm0", b=2, a=1)
    buffer = io.StringIO()
    tracer.export_jsonl(buffer)
    lines = buffer.getvalue().splitlines()
    assert len(lines) == 1
    event = json.loads(lines[0])
    assert event == {
        "name": "fault", "cat": "span", "ph": "X", "ts": 1.2346,
        "dur": 7.0, "track": "vm0", "args": {"a": 1, "b": 2},
    }


def test_chrome_trace_matches_golden_file():
    produced = export_chrome_trace(_scripted_tracers())
    with open(GOLDEN) as handle:
        golden = json.load(handle)
    assert produced == golden


def test_chrome_trace_structure():
    trace = export_chrome_trace(_scripted_tracers())
    events = trace["traceEvents"]
    assert trace["displayTimeUnit"] == "ms"
    # Two processes, named.
    process_names = [e["args"]["name"] for e in events
                     if e["name"] == "process_name"]
    assert process_names == ["fig3", "chaos"]
    # Tracks become named threads scoped to their process.
    fig3_threads = [e["args"]["name"] for e in events
                    if e["name"] == "thread_name" and e["pid"] == 0]
    assert fig3_threads == ["vm0", "vm0/writeback"]
    # Instants carry thread scope, completes carry durations.
    for event in events:
        if event["ph"] == "i":
            assert event["s"] == "t"
        if event["ph"] == "X":
            assert event["dur"] > 0
