"""The repro.core.policy -> repro.policy.share deprecation shim."""

import warnings

import pytest


def test_old_import_path_warns_and_resolves():
    import repro.core.policy as old

    with pytest.warns(DeprecationWarning, match="repro.core.policy"):
        shim_policy = old.SharePolicy
    with pytest.warns(DeprecationWarning):
        shim_spec = old.ShareSpec

    from repro.policy.share import SharePolicy, ShareSpec

    assert shim_policy is SharePolicy
    assert shim_spec is ShareSpec


def test_new_import_paths_do_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        from repro.core import SharePolicy as from_core
        from repro.policy import SharePolicy as from_policy
        from repro.policy.share import SharePolicy as from_share

    assert from_core is from_policy is from_share


def test_shim_rejects_unknown_names():
    import repro.core.policy as old

    with pytest.raises(AttributeError):
        old.does_not_exist


def test_shim_reexports_both_names_with_deprecation_warning():
    """The regression pin: the shim must keep resolving *both* public
    names to the live classes, each access under a DeprecationWarning
    whose message points at the new import path."""
    import repro.core.policy as old
    from repro.policy.share import SharePolicy, ShareSpec

    live = {"SharePolicy": SharePolicy, "ShareSpec": ShareSpec}
    assert set(old.__all__) == set(live)
    for name, expected in live.items():
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resolved = getattr(old, name)
        assert resolved is expected
        deprecations = [
            entry for entry in caught
            if issubclass(entry.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1, name
        message = str(deprecations[0].message)
        assert "repro.core.policy is deprecated" in message
        assert "repro.policy" in message and name in message


def test_shim_warns_on_every_access_not_just_the_first():
    """PEP 562 __getattr__ fires per lookup; the shim must not cache
    the resolved name into the module and silence later users."""
    import repro.core.policy as old

    for _ in range(2):
        with pytest.warns(DeprecationWarning):
            old.SharePolicy
    assert "SharePolicy" not in vars(old)
