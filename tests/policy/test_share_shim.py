"""The repro.core.policy -> repro.policy.share deprecation shim."""

import warnings

import pytest


def test_old_import_path_warns_and_resolves():
    import repro.core.policy as old

    with pytest.warns(DeprecationWarning, match="repro.core.policy"):
        shim_policy = old.SharePolicy
    with pytest.warns(DeprecationWarning):
        shim_spec = old.ShareSpec

    from repro.policy.share import SharePolicy, ShareSpec

    assert shim_policy is SharePolicy
    assert shim_spec is ShareSpec


def test_new_import_paths_do_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        from repro.core import SharePolicy as from_core
        from repro.policy import SharePolicy as from_policy
        from repro.policy.share import SharePolicy as from_share

    assert from_core is from_policy is from_share


def test_shim_rejects_unknown_names():
    import repro.core.policy as old

    with pytest.raises(AttributeError):
        old.does_not_exist
