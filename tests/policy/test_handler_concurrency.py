"""The fault_handlers knob: concurrent fault service in the monitor."""

import pytest

from repro.core import FluidMemConfig
from repro.errors import FluidMemError
from repro.mem import PAGE_SIZE

from tests.conftest import build_stack


def _two_tenant_elapsed(handlers, accesses=24):
    """Two VMs re-faulting evicted pages concurrently; returns the
    simulated time the concurrent phase took plus the stack."""
    config = FluidMemConfig(lru_capacity_pages=8, fault_handlers=handlers)
    stack = build_stack(config=config)
    tenants = []
    for index in range(2):
        vm, qemu, port, reg = stack.make_vm(
            store=stack.make_ramcloud_store(table_id=index + 1),
            name=f"vm{index}",
        )
        tenants.append((vm, port))

    def populate(env):
        for vm, port in tenants:
            base = vm.first_free_guest_addr()
            for i in range(16):
                yield from port.access(base + i * PAGE_SIZE,
                                       is_write=True)
        yield from stack.monitor.writeback.drain()

    stack.run(populate(stack.env))

    started = stack.env.now

    def refault(vm, port):
        base = vm.first_free_guest_addr()
        for i in range(accesses):
            yield from port.access(base + (i % 8) * PAGE_SIZE,
                                   is_write=False)

    procs = [
        stack.env.process(refault(vm, port)) for vm, port in tenants
    ]
    stack.env.run()
    assert all(proc.value is None for proc in procs)
    return stack.env.now - started, stack


def test_concurrent_handlers_overlap_remote_reads():
    """With one handler the monitor services faults strictly in series;
    with four, the two tenants' remote reads overlap and the same
    access script finishes sooner in simulated time."""
    serial_elapsed, serial_stack = _two_tenant_elapsed(handlers=1)
    concurrent_elapsed, concurrent_stack = _two_tenant_elapsed(handlers=4)
    assert serial_stack.monitor.counters["faults"] > 0
    assert concurrent_stack.monitor.counters["faults"] > 0
    assert concurrent_elapsed < serial_elapsed


def test_stats_report_handler_count():
    _elapsed, stack = _two_tenant_elapsed(handlers=4, accesses=8)
    stats = stack.monitor.stats()
    assert stats["fault_handlers"] == 4


def test_single_handler_keeps_serial_dispatch():
    """fault_handlers=1 must not build the semaphore machinery at all:
    the default dispatch loop is the paper's serial one."""
    _elapsed, stack = _two_tenant_elapsed(handlers=1, accesses=8)
    assert stack.monitor._handler_slots is None
    assert stack.monitor.stats()["fault_handlers"] == 1


def test_fault_handlers_validation():
    with pytest.raises(FluidMemError):
        FluidMemConfig(fault_handlers=0)
