"""Monitor-side prefetch bookkeeping: in-flight dedupe, the accuracy
ledger (hits / wasted), and tracer breadcrumbs on silent drop paths."""

from repro.core import FluidMemConfig
from repro.errors import TransientStoreError
from repro.kv import DramStore
from repro.mem import PAGE_SIZE
from repro.obs import Observability

from tests.conftest import build_stack


class FakeFault:
    """Just the two fields _maybe_prefetch reads off a UffdFault."""

    def __init__(self, addr, region):
        self.addr = addr
        self.region = region


class SwitchableStore(DramStore):
    """DramStore whose reads can be flipped to fail transiently."""

    def __init__(self, env):
        super().__init__(env)
        self.fail_reads = False

    def get(self, key):
        if self.fail_reads:
            yield self.env.timeout(1.0)
            raise TransientStoreError("injected read failure")
        return (yield from super().get(key))


def make_prefetch_stack(obs=None, store_cls=DramStore):
    config = FluidMemConfig(lru_capacity_pages=8, prefetch_pages=4)
    stack = build_stack(config=config, obs=obs)
    store = store_cls(stack.env)
    vm, qemu, port, reg = stack.make_vm(store=store)
    return stack, store, vm, qemu, port, reg


def evict_and_drain(stack, vm, port, pages=16):
    """Touch ``pages`` pages (past the 8-page LRU) and flush, so the
    low pages live only in the store — prefetchable on re-access."""
    base = vm.first_free_guest_addr()

    def gen(env):
        for i in range(pages):
            yield from port.access(base + i * PAGE_SIZE, is_write=True)
        yield from stack.monitor.writeback.drain()

    stack.run(gen(stack.env))
    return base


def test_prefetch_inflight_dedupe():
    """Regression: a second fault proposing addresses already in
    flight must not issue duplicate store reads."""
    stack, _store, vm, qemu, _port, reg = make_prefetch_stack()
    monitor = stack.monitor
    base = evict_and_drain(stack, vm, _port)
    host = qemu.guest_to_host(base)
    fault = FakeFault(host, reg.handles[0].region)

    monitor._maybe_prefetch(fault, reg)
    issued = monitor.counters["prefetches_issued"]
    assert issued == 4  # pages 1..4, all store-resident

    # Same candidates again while every read is still in flight.
    monitor._maybe_prefetch(fault, reg)
    assert monitor.counters["prefetches_issued"] == issued

    stack.env.run()
    assert monitor.counters["prefetches_completed"] == issued
    assert not monitor._prefetch_inflight


def test_transient_prefetch_failure_leaves_tracer_breadcrumb():
    """A prefetch read that dies with TransientStoreError is dropped
    silently on the counters' happy path — the tracer must record it."""
    obs = Observability(enabled=True)
    stack, store, vm, qemu, _port, reg = make_prefetch_stack(
        obs=obs, store_cls=SwitchableStore
    )
    monitor = stack.monitor
    base = evict_and_drain(stack, vm, _port)

    store.fail_reads = True
    host = qemu.guest_to_host(base)
    monitor._maybe_prefetch(FakeFault(host, reg.handles[0].region), reg)
    issued = monitor.counters["prefetches_issued"]
    assert issued == 4
    stack.env.run()

    assert monitor.counters["prefetches_failed"] == issued
    assert not monitor._prefetch_inflight
    drops = [
        event for event in obs.tracer.events
        if event.name == "prefetch_drop"
    ]
    assert len(drops) == issued
    assert {event.args["reason"] for event in drops} == {"transient-error"}
    assert all(event.cat == "prefetch" for event in drops)


def test_prefetch_hit_and_wasted_ledger():
    """Installed prefetches are credited on touch (hits) and debited on
    untouched eviction (wasted); the two never double-count."""
    stack, _store, vm, qemu, port, reg = make_prefetch_stack()
    monitor = stack.monitor
    base = evict_and_drain(stack, vm, port)
    host = qemu.guest_to_host(base)

    monitor._maybe_prefetch(FakeFault(host, reg.handles[0].region), reg)
    stack.env.run()  # pages 1..4 installed by prefetch
    installed = len(monitor._prefetched_addrs)
    assert installed == 4

    def touch_two(env):
        for i in (1, 2):
            yield from port.access(base + i * PAGE_SIZE, is_write=False)

    stack.run(touch_two(stack.env))
    assert monitor.counters["prefetch_hits"] == 2

    # Evict everything still resident: the untouched installs (3, 4)
    # are wasted work.
    monitor.set_lru_capacity(2)

    def churn(env):
        for i in range(8, 16):
            yield from port.access(base + i * PAGE_SIZE, is_write=True)

    stack.run(churn(stack.env))
    assert monitor.counters["prefetches_wasted"] == installed - 2
    assert monitor.counters["prefetch_hits"] == 2


def test_deregister_clears_prefetch_ledger():
    stack, _store, vm, qemu, port, reg = make_prefetch_stack()
    monitor = stack.monitor
    base = evict_and_drain(stack, vm, port)
    host = qemu.guest_to_host(base)
    monitor._maybe_prefetch(FakeFault(host, reg.handles[0].region), reg)
    stack.env.run()
    assert monitor._prefetched_addrs

    def teardown(env):
        yield from monitor.deregister_vm(reg)

    stack.run(teardown(stack.env))
    assert not monitor._prefetched_addrs
