"""Unit tests for the pluggable allocation policies."""

import pytest

from repro.errors import FluidMemError
from repro.mem import FrameAllocator
from repro.policy import (
    ALLOCATION_POLICIES,
    BuddyAllocationPolicy,
    FirstFitAllocationPolicy,
    LifoAllocationPolicy,
    PolicyCombo,
    SizeClassArenaAllocationPolicy,
    make_alloc_policy,
    validate_policy_names,
)


# ----------------------------------------------------------------- lifo

def test_lifo_matches_legacy_frame_allocator_sequence():
    """The LIFO policy must be indistinguishable from the allocator's
    built-in free stack: same indices, same order, any interleaving."""
    legacy = FrameAllocator(32)
    polled = FrameAllocator(32, policy=LifoAllocationPolicy())
    held_a, held_b = [], []
    script = (
        ["take"] * 10 + ["give"] * 3 + ["take"] * 6 + ["give"] * 8
        + ["take"] * 12
    )
    for op in script:
        if op == "take":
            held_a.append(legacy.allocate())
            held_b.append(polled.allocate())
        else:
            legacy.free(held_a.pop())
            polled.free(held_b.pop())
        assert held_a == held_b
    assert legacy.used_frames == polled.used_frames


def test_lifo_returns_most_recently_freed_first():
    policy = LifoAllocationPolicy()
    policy.bind(8)
    taken = [policy.take() for _ in range(4)]
    assert taken == [0, 1, 2, 3]
    policy.give(1)
    policy.give(3)
    assert policy.take() == 3
    assert policy.take() == 1
    assert policy.take() == 4


def test_lifo_exhaustion_returns_none():
    policy = LifoAllocationPolicy()
    policy.bind(2)
    assert policy.take() == 0
    assert policy.take() == 1
    assert policy.take() is None
    policy.give(0)
    assert policy.take() == 0


# ------------------------------------------------------------- first-fit

def test_first_fit_prefers_lowest_free_index():
    policy = FirstFitAllocationPolicy()
    policy.bind(8)
    for _ in range(5):
        policy.take()
    policy.give(3)
    policy.give(0)
    assert policy.take() == 0  # lowest first, not most-recent
    assert policy.take() == 3
    assert policy.take() == 5  # then fresh slots


def test_first_fit_exhaustion_and_reuse():
    policy = FirstFitAllocationPolicy()
    policy.bind(3)
    assert [policy.take() for _ in range(3)] == [0, 1, 2]
    assert policy.take() is None
    policy.give(2)
    policy.give(1)
    assert policy.take() == 1


# ----------------------------------------------------------------- buddy

def test_buddy_grants_lowest_order0_and_splits():
    policy = BuddyAllocationPolicy()
    policy.bind(16)
    # A fresh 16-slot pool is one order-4 block; the first take splits
    # it down to order 0 and grants the base.
    assert policy.take() == 0
    blocks = policy.free_blocks()
    assert blocks == {0: 1, 1: 1, 2: 1, 3: 1}  # the split ladders


def test_buddy_coalesces_on_give():
    policy = BuddyAllocationPolicy()
    policy.bind(16)
    taken = [policy.take() for _ in range(16)]
    assert taken == list(range(16))
    assert policy.take() is None
    for index in taken:
        policy.give(index)
    # Everything freed: the pool coalesces back to one order-4 block.
    assert policy.free_blocks() == {4: 1}


def test_buddy_partial_coalesce_stops_at_live_buddy():
    policy = BuddyAllocationPolicy()
    policy.bind(8)
    taken = [policy.take() for _ in range(8)]
    policy.give(0)
    policy.give(1)  # 0+1 coalesce to an order-1 block at 0
    blocks = policy.free_blocks()
    assert blocks.get(1) == 1
    assert 0 not in blocks
    # Slot 2's buddy (3) is still live: no further coalescing.
    policy.give(2)
    assert policy.free_blocks().get(0) == 1
    del taken


def test_buddy_non_power_of_two_pool():
    """A 10-slot pool decomposes into aligned blocks (8 + 2) and never
    grants an index outside [0, 10)."""
    policy = BuddyAllocationPolicy()
    policy.bind(10)
    taken = [policy.take() for _ in range(10)]
    assert sorted(taken) == list(range(10))
    assert policy.take() is None
    for index in taken:
        policy.give(index)
    assert sum(
        count << order for order, count in policy.free_blocks().items()
    ) == 10


# ----------------------------------------------------------------- arena

def test_arena_takes_from_emptiest_arena():
    policy = SizeClassArenaAllocationPolicy(arena_slots=4)
    policy.bind(12)  # three arenas: [0..3], [4..7], [8..11]
    first = policy.take()
    assert first == 0
    # Arena 0 now has 3 free; arenas 1 and 2 have 4: the next take
    # moves to arena 1 (emptiest, lowest index on ties).
    assert policy.take() == 4
    assert policy.take() == 8
    assert policy.take() == 1  # all tied at 3 free again


def test_arena_occupancy_telemetry():
    policy = SizeClassArenaAllocationPolicy(arena_slots=4)
    policy.bind(8)
    for _ in range(5):
        policy.take()
    occupancy = policy.arena_occupancy()
    assert len(occupancy) == 2
    assert sum(occupancy) == pytest.approx(5 / 4)  # 5 of 8 live


def test_arena_give_returns_to_home_arena():
    policy = SizeClassArenaAllocationPolicy(arena_slots=4)
    policy.bind(8)
    taken = [policy.take() for _ in range(8)]
    assert policy.take() is None
    policy.give(6)
    assert policy.take() == 6
    del taken


# ----------------------------------------------------- shared contracts

@pytest.mark.parametrize("name", sorted(ALLOCATION_POLICIES))
def test_every_policy_is_a_permutation(name):
    """Full drain + refill: every policy hands out each slot exactly
    once and can serve the whole pool again after a full free."""
    policy = ALLOCATION_POLICIES[name]()
    policy.bind(33)
    first = [policy.take() for _ in range(33)]
    assert sorted(first) == list(range(33))
    assert policy.take() is None
    for index in first:
        policy.give(index)
    second = [policy.take() for _ in range(33)]
    assert sorted(second) == list(range(33))


@pytest.mark.parametrize("name", sorted(ALLOCATION_POLICIES))
def test_bind_rejects_empty_pool(name):
    with pytest.raises(FluidMemError):
        ALLOCATION_POLICIES[name]().bind(0)


def test_constructor_validation():
    with pytest.raises(FluidMemError):
        BuddyAllocationPolicy(max_order=-1)
    with pytest.raises(FluidMemError):
        SizeClassArenaAllocationPolicy(arena_slots=0)


# -------------------------------------------------------------- registry

def test_make_alloc_policy_default_is_builtin_stack():
    """'lifo' maps to None: the owner's free stack IS the policy, so
    the default hot path keeps zero indirection."""
    assert make_alloc_policy("lifo") is None
    assert make_alloc_policy("buddy").name == "buddy"
    with pytest.raises(FluidMemError):
        make_alloc_policy("best-fit")


def test_validate_policy_names():
    validate_policy_names("buddy", "leap")
    with pytest.raises(FluidMemError):
        validate_policy_names("nope", "leap")
    with pytest.raises(FluidMemError):
        validate_policy_names("buddy", "nope")


def test_policy_combo_label_and_validation():
    combo = PolicyCombo("buddy", "leap", 4)
    assert combo.label == "buddy+leap+h4"
    with pytest.raises(FluidMemError):
        PolicyCombo("nope", "leap", 1)
    with pytest.raises(FluidMemError):
        PolicyCombo("buddy", "leap", 0)


def test_frame_allocator_fragmentation_telemetry():
    frames = FrameAllocator(16, policy=FirstFitAllocationPolicy())
    held = [frames.allocate() for _ in range(6)]
    frames.free(held[2])
    frag = frames.fragmentation()
    assert frag["policy"] == "first-fit"
    assert frag["used_frames"] == 5
    assert 0.0 < frag["occupancy"] <= 1.0
    assert frag["allocated_runs"] >= 2  # the hole at held[2] splits a run
