"""Leap prefetching under fault injection.

Prefetch reads are best-effort and off the critical path, so every
failure is dropped silently — the dangerous failure mode is leaked
in-flight state or a corrupted page quietly installed ahead of demand.
This suite runs the Leap prefetcher over a replicated, fault-injected
store and checks the ledgers balance and every byte survives.

``FAULT_SEED`` offsets the seeds so the CI chaos matrix sweeps three
independent universes with the same test code.
"""

import os

import pytest

from repro.core import FluidMemConfig
from repro.faults import FaultyStore, RetryPolicy, named_plan
from repro.kv import DramStore, ReplicatedStore
from repro.mem import PAGE_SIZE

from tests.conftest import build_stack

SEED_BASE = int(os.environ.get("FAULT_SEED", "0"))
PAGES = 24
LRU = 6


def leap_chaos_stack(plan_name, seed):
    config = FluidMemConfig(
        lru_capacity_pages=LRU,
        writeback_batch_pages=4,
        prefetch_policy="leap",
        prefetch_pages=4,
        retry_policy=RetryPolicy(),
    )
    stack = build_stack(config=config, seed=seed)
    plan = named_plan(plan_name, seed=seed)
    replicas = [
        FaultyStore(stack.env, DramStore(stack.env), plan,
                    node=f"replica{i}")
        for i in range(2)
    ]
    store = ReplicatedStore(stack.env, replicas)
    vm, qemu, port, reg = stack.make_vm(store=store)
    return stack, vm, qemu, port


def fill_pattern(index):
    return bytes([(index * 37 + offset) % 256 for offset in range(64)]) \
        * (PAGE_SIZE // 64)


def strided_chaos_workload(stack, vm, qemu, port, pages=PAGES):
    """Write distinct bytes, then stride-scan twice so Leap locks onto
    the trend and prefetches while fault windows open and close."""
    base = vm.first_free_guest_addr()
    mismatches = []

    def workload(env):
        for index in range(pages):
            yield from port.access(base + index * PAGE_SIZE,
                                   is_write=True)
            host = qemu.guest_to_host(base + index * PAGE_SIZE)
            qemu.page_table.entry(host).page.write(fill_pattern(index))
        yield from stack.monitor.writeback.drain()
        # Stride-2 scans: a strict-majority trend Leap prefetches on.
        for _ in range(2):
            for index in range(0, pages, 2):
                yield from port.access(base + index * PAGE_SIZE)
            for index in range(1, pages, 2):
                yield from port.access(base + index * PAGE_SIZE)
        yield from stack.monitor.writeback.drain()
        for index in range(pages):
            yield from port.access(base + index * PAGE_SIZE)
            host = qemu.guest_to_host(base + index * PAGE_SIZE)
            if qemu.page_table.entry(host).page.read() \
                    != fill_pattern(index):
                mismatches.append(index)

    stack.run(workload(stack.env))
    return mismatches


@pytest.mark.parametrize("plan_name", [
    "replica-crash", "flaky-fabric", "chaos"
])
@pytest.mark.parametrize("seed_offset", range(3))
def test_leap_survives_fault_plans(plan_name, seed_offset):
    seed = SEED_BASE * 100 + seed_offset
    stack, vm, qemu, port = leap_chaos_stack(plan_name, seed)
    mismatches = strided_chaos_workload(stack, vm, qemu, port)
    assert mismatches == []

    counters = stack.monitor.counters
    issued = counters["prefetches_issued"]
    accounted = (
        counters["prefetches_completed"]
        + counters["prefetches_failed"]
        + counters["prefetches_dropped"]
    )
    # Every issued prefetch must be accounted for: completed, failed
    # transiently, or dropped — and nothing may stay in flight.
    assert accounted == issued
    assert not stack.monitor._prefetch_inflight
    # The accuracy ledger never exceeds what was actually installed.
    hits = counters["prefetch_hits"]
    wasted = counters["prefetches_wasted"]
    assert hits + wasted <= counters["prefetches_completed"]


def test_leap_prefetches_during_chaos_run():
    """Sanity: the chaos workload actually exercises the prefetcher
    (a trend is found and reads are issued), so the suite above is not
    vacuously green."""
    stack, vm, qemu, port = leap_chaos_stack("replica-crash",
                                             SEED_BASE * 100)
    strided_chaos_workload(stack, vm, qemu, port)
    assert stack.monitor.counters["prefetches_issued"] > 0
