"""Unit tests for the pluggable prefetch policies."""

import pytest

from repro.errors import FluidMemError
from repro.mem import PAGE_SIZE
from repro.policy import (
    LeapPrefetcher,
    NoopPrefetcher,
    SequentialPrefetcher,
    resolve_prefetcher,
)


class Region:
    """Membership-only stand-in for a uffd region."""

    def __init__(self, lo, hi):
        self.lo = lo
        self.hi = hi

    def __contains__(self, addr):
        return self.lo <= addr < self.hi


REGION = Region(0, 1024 * PAGE_SIZE)


def page(index):
    return index * PAGE_SIZE


# ------------------------------------------------------------------ noop

def test_noop_never_proposes():
    prefetcher = NoopPrefetcher()
    prefetcher.record_fault(1, page(5))
    assert prefetcher.candidates(1, page(5), REGION) == []


# ------------------------------------------------------------ sequential

def test_sequential_proposes_next_depth_pages():
    prefetcher = SequentialPrefetcher(depth=3)
    assert prefetcher.candidates(1, page(10), REGION) == [
        page(11), page(12), page(13)
    ]


def test_sequential_stops_at_region_boundary():
    """Same semantics as the loop previously hard-coded in the monitor:
    stop at the first out-of-region candidate, don't skip over it."""
    prefetcher = SequentialPrefetcher(depth=8)
    near_end = Region(0, 12 * PAGE_SIZE)
    assert prefetcher.candidates(1, page(9), near_end) == [
        page(10), page(11)
    ]
    assert prefetcher.candidates(1, page(11), near_end) == []


def test_sequential_depth_validation():
    with pytest.raises(FluidMemError):
        SequentialPrefetcher(depth=0)


# ------------------------------------------------------------------ leap

def test_leap_learns_a_stride_and_prefetches_along_it():
    prefetcher = LeapPrefetcher(depth=4)
    for i in range(0, 30, 3):  # stride-3 scan
        prefetcher.record_fault(1, page(i))
    assert prefetcher.trend(1) == 3 * PAGE_SIZE
    assert prefetcher.candidates(1, page(27), REGION) == [
        page(30), page(33), page(36), page(39)
    ]


def test_leap_learns_negative_strides():
    prefetcher = LeapPrefetcher(depth=2)
    for i in range(40, 20, -2):  # backward scan
        prefetcher.record_fault(1, page(i))
    assert prefetcher.trend(1) == -2 * PAGE_SIZE
    assert prefetcher.candidates(1, page(22), REGION) == [
        page(20), page(18)
    ]


def test_leap_no_majority_proposes_nothing():
    """Uniform-random deltas have no strict-majority element: the vote
    fails and random access stops polluting the LRU."""
    prefetcher = LeapPrefetcher(depth=4, window=8)
    for i in (0, 7, 2, 40, 11, 3, 99, 58):
        prefetcher.record_fault(1, page(i))
    assert prefetcher.trend(1) is None
    assert prefetcher.candidates(1, page(58), REGION) == []


def test_leap_zero_delta_is_not_a_trend():
    """Repeated faults on one page (write-protect churn) must not
    propose prefetching the faulting page itself."""
    prefetcher = LeapPrefetcher(depth=4)
    for _ in range(10):
        prefetcher.record_fault(1, page(5))
    assert prefetcher.trend(1) is None
    assert prefetcher.candidates(1, page(5), REGION) == []


def test_leap_needs_two_faults_before_voting():
    prefetcher = LeapPrefetcher(depth=4)
    assert prefetcher.candidates(1, page(0), REGION) == []
    prefetcher.record_fault(1, page(0))
    assert prefetcher.candidates(1, page(0), REGION) == []


def test_leap_window_evicts_stale_history():
    """Only the last ``window`` faults vote: an old phase's stride is
    forgotten once the window rolls past it."""
    prefetcher = LeapPrefetcher(depth=1, window=4)
    for i in range(0, 8, 1):  # stride-1 phase
        prefetcher.record_fault(1, page(i))
    for i in range(100, 120, 5):  # stride-5 phase fills the window
        prefetcher.record_fault(1, page(i))
    assert prefetcher.trend(1) == 5 * PAGE_SIZE


def test_leap_state_is_per_token():
    prefetcher = LeapPrefetcher(depth=1)
    for i in range(6):
        prefetcher.record_fault(1, page(i))        # VM 1: stride 1
        prefetcher.record_fault(2, page(i * 7))    # VM 2: stride 7
    assert prefetcher.trend(1) == PAGE_SIZE
    assert prefetcher.trend(2) == 7 * PAGE_SIZE


def test_leap_forget_drops_history():
    prefetcher = LeapPrefetcher(depth=1)
    for i in range(6):
        prefetcher.record_fault(1, page(i))
    prefetcher.forget(1)
    assert prefetcher.trend(1) is None
    prefetcher.forget(1)  # idempotent


def test_leap_respects_region_bounds():
    prefetcher = LeapPrefetcher(depth=8)
    small = Region(0, 10 * PAGE_SIZE)
    for i in range(0, 8):
        prefetcher.record_fault(1, page(i))
    assert prefetcher.candidates(1, page(7), small) == [
        page(8), page(9)
    ]


def test_leap_validation():
    with pytest.raises(FluidMemError):
        LeapPrefetcher(depth=0)
    with pytest.raises(FluidMemError):
        LeapPrefetcher(depth=1, window=1)


# --------------------------------------------------------------- resolve

def test_resolve_prefetcher_defaults_to_none():
    """The shipped default (depth 0) and the explicit 'none' policy
    both cost exactly one ``is None`` check per fault."""
    assert resolve_prefetcher("none", 4) is None
    assert resolve_prefetcher("sequential", 0) is None
    assert resolve_prefetcher("leap", 0) is None


def test_resolve_prefetcher_builds_named_policies():
    assert resolve_prefetcher("sequential", 4).name == "sequential"
    assert resolve_prefetcher("leap", 4).name == "leap"
    with pytest.raises(FluidMemError):
        resolve_prefetcher("oracle", 4)
