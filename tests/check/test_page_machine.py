"""Unit tests for the invariant monitors (no simulation required).

These drive the :class:`PageStateMachine`, :class:`WritebackLedger`,
and :class:`CorrectnessChecker` hooks directly — the legal lifecycle
passes silently, every illegal edge raises, and a disabled checker is
inert.
"""

from types import SimpleNamespace

import pytest

from repro.check import CorrectnessChecker, NULL_CHECKER, PageState
from repro.errors import InvariantViolation


def make_checker():
    return CorrectnessChecker(enabled=True)


# ------------------------------------------------------------ page machine

def test_legal_page_lifecycle_passes():
    check = make_checker()
    pages = check.pages
    key = 0x1000
    # first touch -> resident -> write list -> durable -> fetched back
    pages.on_zero_fill(key)
    assert pages.state_of(key) == PageState.RESIDENT
    pages.on_evicted(key, durable=False)
    assert pages.state_of(key) == PageState.WRITELIST
    pages.on_writeback_durable(key)
    assert pages.state_of(key) == PageState.REMOTE
    pages.on_read_issued(key)
    pages.on_read_installed(key)
    assert pages.state_of(key) == PageState.RESIDENT
    # sync eviction goes straight back to remote
    pages.on_evicted(key, durable=True)
    assert pages.state_of(key) == PageState.REMOTE
    pages.check_steady()
    assert check.violations == []


def test_steal_paths():
    check = make_checker()
    pages = check.pages
    key = 0x2000
    pages.on_zero_fill(key)
    pages.on_evicted(key, durable=False)
    pages.on_steal_pending(key)          # stolen while still pending
    assert pages.state_of(key) == PageState.RESIDENT
    pages.on_evicted(key, durable=False)
    pages.on_writeback_durable(key)
    pages.on_steal_installed(key)        # stolen after the flush landed
    assert pages.state_of(key) == PageState.RESIDENT


def test_double_zero_fill_is_illegal():
    check = make_checker()
    check.pages.on_zero_fill(0x1000)
    with pytest.raises(InvariantViolation) as excinfo:
        check.pages.on_zero_fill(0x1000)
    assert excinfo.value.invariant == "page-state"
    assert check.violations  # recorded as well as raised


def test_read_of_resident_page_is_illegal():
    check = make_checker()
    check.pages.on_zero_fill(0x1000)
    with pytest.raises(InvariantViolation):
        check.pages.on_read_issued(0x1000)


def test_install_without_read_in_flight_is_illegal():
    check = make_checker()
    with pytest.raises(InvariantViolation) as excinfo:
        check.pages.on_read_installed(0x3000)
    assert "no read in flight" in str(excinfo.value)


def test_eviction_of_remote_page_is_illegal():
    check = make_checker()
    check.pages.on_zero_fill(0x1000)
    check.pages.on_evicted(0x1000, durable=True)
    with pytest.raises(InvariantViolation):
        check.pages.on_evicted(0x1000, durable=True)


def test_leaked_read_caught_at_steady_state():
    check = make_checker()
    check.pages.on_zero_fill(0x1000)
    check.pages.on_evicted(0x1000, durable=True)
    check.pages.on_read_issued(0x1000)
    with pytest.raises(InvariantViolation) as excinfo:
        check.pages.check_steady()
    assert excinfo.value.invariant == "read-liveness"


def test_forget_drops_tracking():
    check = make_checker()
    check.pages.on_zero_fill(0x1000)
    check.pages.on_forget(0x1000)
    assert check.pages.state_of(0x1000) is None
    # A forgotten key can re-enter lazily (e.g. re-registered VM).
    check.pages.on_zero_fill(0x1000)


def test_lazy_adoption_starts_remote():
    """An adopted VM's first observed event is a read of a page this
    checker never saw — it must be accepted as a remote page."""
    check = make_checker()
    check.pages.on_read_issued(0x9000)
    check.pages.on_read_installed(0x9000)
    assert check.pages.state_of(0x9000) == PageState.RESIDENT


# ---------------------------------------------------------------- ledger

def _queue(pending=(), in_flight=()):
    return SimpleNamespace(
        _pending={key: None for key in pending},
        _in_flight={key: None for key in in_flight},
    )


def test_ledger_balances_over_lifecycle():
    check = make_checker()
    wb = check.writeback
    wb.on_enqueued(1)
    wb.on_enqueued(2)
    wb.on_durable(1)
    wb.on_stolen(2)
    wb.check_steady(_queue())
    assert check.violations == []


def test_ledger_flags_vanished_page():
    check = make_checker()
    wb = check.writeback
    wb.on_enqueued(1)
    wb.on_enqueued(2)
    wb.on_durable(1)
    # Key 2 neither flushed, nor stolen, nor forgotten, and the queue
    # no longer holds it: a lost write.
    with pytest.raises(InvariantViolation) as excinfo:
        wb.check_steady(_queue())
    assert excinfo.value.invariant == "writeback-ledger"


def test_ledger_accepts_requeued_pages_still_in_queue():
    check = make_checker()
    wb = check.writeback
    wb.on_enqueued(1)
    wb.on_requeued([1])
    wb.check_steady(_queue(pending=[1]))
    assert check.violations == []


# ---------------------------------------------------------- checker shell

def test_null_checker_is_shared_and_disabled():
    assert NULL_CHECKER.enabled is False
    # Hooks behind `.enabled` guards are never called on NULL_CHECKER;
    # the steady sweep must also be a no-op.
    NULL_CHECKER.check_steady_state()
    assert NULL_CHECKER.violations == []


def test_violation_carries_structure():
    check = make_checker()
    with pytest.raises(InvariantViolation) as excinfo:
        check.violation("demo", "something broke", key="0x1")
    error = excinfo.value
    assert error.invariant == "demo"
    assert error.details == {"key": "0x1"}
    assert isinstance(error.trace_tail, tuple)
    assert "demo" in error.context_text()
