"""The schedule explorer: determinism and genuine perturbation.

Three properties make the explorer trustworthy:

* attaching the FIFO policy (or no policy) changes nothing,
* a non-FIFO policy really does reorder same-timestamp events,
* the same (policy, seed) always produces the same execution — which
  is what makes a campaign failure replayable.
"""

import pytest

from repro.check import make_schedule, parse_schedules
from repro.check.scenarios import run_scenario
from repro.errors import KVError
from repro.sim import Environment


def _order_of(policy_name, seed=0, events=6):
    """Fire ``events`` zero-delay events at once; return firing order."""
    env = Environment()
    if policy_name is not None:
        env.scheduler = make_schedule(policy_name, seed)
    fired = []

    def waiter(env, tag):
        yield env.timeout(10.0)
        fired.append(tag)

    for tag in range(events):
        env.process(waiter(env, tag))
    env.run()
    return fired


def test_fifo_matches_bare_engine():
    assert _order_of(None) == _order_of("fifo") == list(range(6))


def test_inverted_reverses_same_timestamp_events():
    assert _order_of("inverted") == list(reversed(range(6)))


def test_random_schedule_permutes_and_is_seed_deterministic():
    a = _order_of("random", seed=1)
    b = _order_of("random", seed=1)
    assert a == b
    assert sorted(a) == list(range(6))
    # Some seed must produce a non-FIFO order (all-identity for every
    # seed would mean the policy does nothing).
    assert any(
        _order_of("random", seed=seed) != list(range(6))
        for seed in range(8)
    )


def test_adversarial_stretches_delays_monotonically():
    policy = make_schedule("adversarial", seed=3)
    for delay in (0.0, 1.0, 50.0, 1_000.0):
        perturbed = policy.perturb_delay(delay, 0, None)
        assert perturbed >= delay  # never shrinks: causality preserved


def test_parse_schedules():
    assert parse_schedules("random, adversarial") == (
        "random", "adversarial"
    )
    with pytest.raises(KVError):
        parse_schedules("random,warp")
    with pytest.raises(KVError):
        make_schedule("warp")


def test_scenario_runs_are_replayable():
    """Same (scenario, seed, schedule, ops) -> identical summary."""
    first = run_scenario("writeback", seed=5, schedule="random", ops=24)
    second = run_scenario("writeback", seed=5, schedule="random", ops=24)
    assert first == second
    assert first["violations"] == 0


def test_schedules_actually_diversify_a_scenario():
    """Different policies must not collapse to the same execution —
    compare a timing-sensitive summary field across policies."""
    summaries = {
        name: run_scenario("writeback", seed=0, schedule=name, ops=24)
        for name in ("fifo", "random", "adversarial")
    }
    # All clean ...
    assert all(s["violations"] == 0 for s in summaries.values())
    # ... but not byte-for-byte the same run (page_records and degraded
    # are coarse; ops/faults identical — so diversity must come from
    # schedule-dependent dynamics somewhere).
    assert len({
        tuple(sorted(s.items())) for s in summaries.values()
    }) >= 2
