"""Replay one exact campaign run from ``REPRO_CHECK_*`` variables.

The campaign driver prints failures as one-liners of the form::

    REPRO_CHECK_SCENARIO=kv REPRO_CHECK_SEED=2 REPRO_CHECK_SCHEDULE=random \\
        REPRO_CHECK_OPS=24 REPRO_CHECK_FAULTS=flaky-fabric \\
        PYTHONPATH=src python -m pytest tests/check/test_repro_entry.py -x -q

Running that command replays the identical (deterministic) run inside
pytest, so the failure lands with a full traceback, the invariant name,
and the trace tail — and stays reproducible in a debugger.

Without the variables set, the test is skipped (a plain suite run is
unaffected).
"""

import os

import pytest

from repro.check.scenarios import run_scenario

SCENARIO = os.environ.get("REPRO_CHECK_SCENARIO")


@pytest.mark.skipif(
    not SCENARIO,
    reason="set REPRO_CHECK_SCENARIO (and friends) to replay a "
           "campaign run",
)
def test_replay_campaign_run():
    ops = os.environ.get("REPRO_CHECK_OPS")
    summary = run_scenario(
        SCENARIO,
        seed=int(os.environ.get("REPRO_CHECK_SEED", "0")),
        schedule=os.environ.get("REPRO_CHECK_SCHEDULE", "fifo"),
        ops=int(ops) if ops else None,
        faults=os.environ.get("REPRO_CHECK_FAULTS") or None,
        bug=os.environ.get("REPRO_CHECK_BUG") or None,
    )
    assert summary["violations"] == 0
