"""The campaign driver end to end.

Two acceptance properties from the harness's design:

* a clean tree sweeps green across seeds x schedules x scenarios, and
* a seeded bug (the dropped forwarding window) is *caught*, shrunk,
  and reported with a reproducer whose parameters really do fail.
"""

import pytest

from repro.check.campaign import repro_command, run_campaign
from repro.check.scenarios import BUGS, inject_bug, run_scenario
from repro.errors import InvariantViolation, KVError


def test_campaign_green_on_main():
    report = run_campaign(
        scenarios=("writeback", "cluster", "kv"),
        seeds=(0,),
        schedules=("random",),
    )
    assert report.ok
    assert report.runs == 3
    assert report.passed == 3
    assert len(report.summaries) == 3
    assert all(s["violations"] == 0 for s in report.summaries)


def test_campaign_catches_seeded_forwarding_window_bug():
    """The harness's reason to exist: drop the forwarding window in
    migrate_key and the explorer finds a racing read that proves it."""
    lines = []
    report = run_campaign(
        scenarios=("kv",),
        seeds=(1, 2),
        schedules=("random", "adversarial"),
        bug="drop-forwarding-window",
        emit=lines.append,
    )
    assert not report.ok
    failure = report.failures[0]
    assert failure.invariant == "cluster-reachability"
    assert failure.ops <= failure.original_ops
    # The reported command must carry everything needed to replay.
    assert "REPRO_CHECK_SCENARIO=kv" in failure.command
    assert "REPRO_CHECK_BUG=drop-forwarding-window" in failure.command
    assert "tests/check/test_repro_entry.py" in failure.command
    assert any("reproduce with" in line for line in lines)

    # And the shrunk parameters really do fail, deterministically.
    with pytest.raises(InvariantViolation) as excinfo:
        run_scenario(
            failure.scenario, seed=failure.seed,
            schedule=failure.schedule, ops=failure.ops,
            faults=failure.faults, bug=failure.bug,
        )
    assert excinfo.value.invariant == "cluster-reachability"


def test_bug_injection_is_restored_after_the_run():
    from repro.cluster.store import ClusterStore

    original = ClusterStore.migrate_key
    restore = inject_bug("drop-forwarding-window")
    assert ClusterStore.migrate_key is not original
    restore()
    assert ClusterStore.migrate_key is original
    # Scenario-level injection restores even on a violation.
    with pytest.raises(InvariantViolation):
        run_scenario("kv", seed=2, schedule="random", ops=24,
                     bug="drop-forwarding-window")
    assert ClusterStore.migrate_key is original


def test_unknown_names_are_rejected():
    with pytest.raises(KVError):
        inject_bug("drop-the-database")
    with pytest.raises(KVError):
        run_scenario("warp-core", seed=0)
    assert sorted(BUGS) == [
        "drop-forwarding-window", "drop-writeback-requeue",
    ]


def test_repro_command_format():
    command = repro_command("kv", 3, "adversarial", 17,
                            "flaky-fabric", None)
    assert command.startswith("REPRO_CHECK_SCENARIO=kv ")
    assert "REPRO_CHECK_SEED=3" in command
    assert "REPRO_CHECK_OPS=17" in command
    assert "REPRO_CHECK_FAULTS=flaky-fabric" in command
    assert "REPRO_CHECK_BUG" not in command
    assert command.endswith(
        "python -m pytest tests/check/test_repro_entry.py -x -q"
    )
