"""The KV history checker: read-your-writes / no-stale-read-after-ack.

Covers the :class:`KvHistory` decision table directly, then the
:class:`RecordingStore` wrapper over a deliberately stale backend, and
finally the regression the checker motivated: a recovered
:class:`ReplicatedStore` replica that missed writes during its crash
window must never serve its pre-outage values.
"""

import pytest

from repro.check import CorrectnessChecker, KvHistory, RecordingStore
from repro.errors import InvariantViolation
from repro.faults import FaultKind, FaultPlan, FaultWindow, FaultyStore
from repro.kv import DramStore, ReplicatedStore
from repro.sim import Environment


def run(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


# ------------------------------------------------------------- KvHistory

def test_read_after_ack_must_see_the_write():
    check = CorrectnessChecker(enabled=True)
    history = KvHistory(check)
    v1, v2 = object(), object()
    history.record_ack(1, v1, now=10.0)
    history.record_ack(1, v2, now=20.0)
    # Read starting after v2's ack returning v1 is stale.
    with pytest.raises(InvariantViolation) as excinfo:
        history.check_read(1, v1, started_us=25.0, now=26.0)
    assert "stale read" in str(excinfo.value)
    # Returning v2 is correct.
    history.check_read(1, v2, started_us=25.0, now=26.0)


def test_read_overlapping_a_write_may_see_either():
    check = CorrectnessChecker(enabled=True)
    history = KvHistory(check)
    v1, v2 = object(), object()
    history.record_ack(1, v1, now=10.0)
    history.record_ack(1, v2, now=20.0)
    # A read that began at t=15 overlaps v2's ack: both values legal.
    history.check_read(1, v1, started_us=15.0, now=22.0)
    history.check_read(1, v2, started_us=15.0, now=22.0)
    assert check.violations == []


def test_unknown_value_is_flagged():
    check = CorrectnessChecker(enabled=True)
    history = KvHistory(check)
    history.record_ack(1, object(), now=10.0)
    with pytest.raises(InvariantViolation) as excinfo:
        history.check_read(1, object(), started_us=12.0, now=13.0)
    assert "no acked or" in str(excinfo.value)


def test_read_after_acked_remove_is_flagged():
    check = CorrectnessChecker(enabled=True)
    history = KvHistory(check)
    store = RecordingStore(DramStore(Environment()), check)
    value = object()
    history = store.history
    env = store.env
    run(env, store.put(1, value))
    run(env, store.remove(1))
    # Simulate a stale layer resurrecting the removed value.
    with pytest.raises(InvariantViolation) as excinfo:
        history.check_read(1, value, started_us=env.now + 1,
                           now=env.now + 2)
    assert "removed" in str(excinfo.value)


def test_unwritten_keys_are_unconstrained():
    check = CorrectnessChecker(enabled=True)
    history = KvHistory(check)
    history.check_read(99, object(), started_us=0.0, now=1.0)
    assert check.violations == []


# -------------------------------------------------- RecordingStore wiring

class _StaleStore(DramStore):
    """A DRAM store that keeps serving each key's FIRST value."""

    def __init__(self, env):
        super().__init__(env)
        self._first = {}

    def put(self, key, value, nbytes=4096):
        self._first.setdefault(key, value)
        yield from super().put(key, value, nbytes)

    def get(self, key):
        yield from super().get(key)
        return self._first[key]


def test_recording_store_catches_a_stale_backend():
    env = Environment()
    check = CorrectnessChecker(enabled=True)
    store = RecordingStore(_StaleStore(env), check)
    v1, v2 = object(), object()
    run(env, store.put(1, v1))
    run(env, store.put(1, v2))

    def read(env):
        yield from store.get(1)

    env.process(read(env))
    with pytest.raises(InvariantViolation):
        env.run()
    assert store.history.reads_checked == 1


def test_recording_store_is_transparent_when_disabled():
    env = Environment()
    store = RecordingStore(_StaleStore(env))  # NULL_CHECKER
    v1, v2 = object(), object()
    run(env, store.put(1, v1))
    run(env, store.put(1, v2))
    assert run(env, store.get(1)) is v1  # stale, but nobody checks
    assert store.history.reads_checked == 0


# ------------------------------------- ReplicatedStore stale-replica fix

def _crashy_replicated(env, start, end):
    plan = FaultPlan(
        [FaultWindow(FaultKind.CRASH, "replica0", start, end)], seed=0
    )
    replicas = [
        FaultyStore(env, DramStore(env), plan, node=f"replica{i}")
        for i in range(2)
    ]
    return ReplicatedStore(env, replicas), replicas


def test_recovered_replica_never_serves_pre_outage_values():
    """Regression: replica0 misses a write during its crash window;
    after recovery, reads must skip it for that key (the stale mark)
    rather than serve the old value in replica-index order."""
    env = Environment()
    check = CorrectnessChecker(enabled=True)
    inner, replicas = _crashy_replicated(env, 100.0, 200.0)
    store = RecordingStore(inner, check)
    v1, v2 = object(), object()

    def scenario(env):
        yield from store.put(1, v1)         # both replicas hold v1
        yield env.timeout(150.0)
        yield from store.put(1, v2)         # replica0 down: misses v2
        yield env.timeout(200.0)            # replica0 back up
        value = yield from store.get(1)     # must NOT be replica0's v1
        return value

    assert run(env, scenario(env)) is v2
    assert check.violations == []
    assert replicas[0].contains(1)          # the stale copy is there...
    assert inner.contains(1)


def test_stale_mark_clears_after_rewrite():
    env = Environment()
    inner, replicas = _crashy_replicated(env, 100.0, 200.0)

    def scenario(env):
        yield from inner.put(1, "v1")
        yield env.timeout(150.0)
        yield from inner.put(1, "v2")       # replica0 stale for key 1
        yield env.timeout(200.0)
        yield from inner.put(1, "v3")       # lands on both: mark clears
        value = yield from inner.get(1)
        return value

    assert run(env, scenario(env)) == "v3"
    # After the rewrite both replicas agree again.
    assert all(r.contains(1) for r in replicas)
