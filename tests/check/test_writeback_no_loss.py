"""Pinned-seed regression: retry-exhausted writebacks lose zero pages.

The scenario the no-lost-write ledger was built for: chaos-plan faults
plus a window where *both* replicas are down, a retry policy small
enough to exhaust inside that window, and a recovery drain afterwards.
The failed batches must be re-enqueued (never dropped), every page must
read back byte-identical after recovery, and the ledger must balance.

The seed is pinned so the exhaustion is guaranteed to happen (the
assertions on ``reenqueued`` would be vacuous under a lucky schedule).
"""

import pytest

from repro.check import CorrectnessChecker
from repro.core import FluidMemConfig
from repro.errors import StoreUnavailableError
from repro.faults import (
    FaultKind,
    FaultPlan,
    FaultWindow,
    FaultyStore,
    RetryPolicy,
    named_plan,
)
from repro.kv import DramStore, ReplicatedStore
from repro.mem import PAGE_SIZE

from tests.conftest import build_stack

SEED = 11
PAGES = 14


def fill_pattern(index: int) -> bytes:
    return bytes([(index * 53 + offset) % 256 for offset in range(64)]) \
        * (PAGE_SIZE // 64)


def build_chaos_all_down_stack():
    """The chaos plan, plus a replica-1 crash overlapping replica-0's —
    an all-down window (4ms..6.5ms) no flush can survive."""
    checker = CorrectnessChecker(enabled=True)
    config = FluidMemConfig(
        lru_capacity_pages=4,
        writeback_batch_pages=4,
        retry_policy=RetryPolicy(max_attempts=2, jitter=0.0),
    )
    stack = build_stack(config=config, seed=SEED, check=checker)
    windows = list(named_plan("chaos", seed=SEED).windows)
    windows.append(
        FaultWindow(FaultKind.CRASH, "replica1", 4_000.0, 6_500.0)
    )
    plan = FaultPlan(windows, seed=SEED)
    replicas = [
        FaultyStore(stack.env, DramStore(stack.env), plan,
                    node=f"replica{i}")
        for i in range(2)
    ]
    store = ReplicatedStore(stack.env, replicas)
    vm, qemu, port, _reg = stack.make_vm(store=store)
    return stack, checker, replicas, vm, qemu, port


def run_consuming_flush_failures(env, gen):
    """Drive the sim; a flusher that dies of retry exhaustion mid-window
    is expected (its batch was re-enqueued) — keep running."""
    proc = env.process(gen)
    exhaustions = 0
    while True:
        try:
            env.run()
            return proc, exhaustions
        except StoreUnavailableError:
            exhaustions += 1


def test_reenqueued_writebacks_survive_an_all_down_window():
    stack, checker, replicas, vm, qemu, port = \
        build_chaos_all_down_stack()
    base = vm.first_free_guest_addr()
    queue = stack.monitor.writeback
    mismatches = []

    def sleeper_until(env, when):
        if env.now < when:
            yield env.timeout(when - env.now)

    def workload(env):
        # Phase 1 (replicas healthy-ish): seed every page's bytes.
        for index in range(PAGES):
            yield from port.access(base + index * PAGE_SIZE,
                                   is_write=True)
            host = qemu.guest_to_host(base + index * PAGE_SIZE)
            qemu.page_table.entry(host).page.write(fill_pattern(index))
        # Phase 2: first-touch NEW pages inside the all-down window
        # (zero-fills need no store read) so the evictions they force
        # flush into a dead store and exhaust their retries.
        yield from sleeper_until(env, 4_200.0)
        for index in range(PAGES, PAGES + 8):
            yield from port.access(base + index * PAGE_SIZE,
                                   is_write=True)
        # Phase 3: replica1 is back (replica0 still down) — drain.
        yield from sleeper_until(env, 7_000.0)
        yield from queue.drain()
        # Phase 4: read every page back and compare bytes.
        for index in range(PAGES):
            yield from port.access(base + index * PAGE_SIZE)
            host = qemu.guest_to_host(base + index * PAGE_SIZE)
            if qemu.page_table.entry(host).page.read() \
                    != fill_pattern(index):
                mismatches.append(index)
        yield from queue.drain()

    proc, exhaustions = run_consuming_flush_failures(
        stack.env, workload(stack.env)
    )

    # The pinned seed guarantees the interesting path actually ran.
    assert queue.counters["reenqueued"] >= 1
    assert exhaustions >= 1
    # ... and nothing was lost.
    assert mismatches == []
    assert queue.pending_count == 0
    assert queue.in_flight_count == 0
    assert stack.monitor.stats()["quarantined_vms"] == 0
    # The ledger balances: every enqueued page is accounted durable,
    # stolen, or forgotten; the page machine holds no leaked reads.
    checker.check_steady_state(monitor=stack.monitor)
    assert checker.violations == []
    # Recovery really went through the surviving replica.
    assert replicas[1].stored_keys() >= 1


def test_dropped_requeue_bug_is_caught_by_the_ledger():
    """Flip the registered 'drop-writeback-requeue' bug on: the same
    chaos run now loses the exhausted batch, and the ledger's steady
    sweep names the vanished pages."""
    from repro.check.scenarios import inject_bug
    from repro.errors import InvariantViolation

    restore = inject_bug("drop-writeback-requeue")
    try:
        stack, checker, _replicas, vm, qemu, port = \
            build_chaos_all_down_stack()
        base = vm.first_free_guest_addr()

        def workload(env):
            for index in range(PAGES):
                yield from port.access(base + index * PAGE_SIZE,
                                       is_write=True)
            if env.now < 4_200.0:
                yield env.timeout(4_200.0 - env.now)
            for index in range(PAGES, PAGES + 8):
                yield from port.access(base + index * PAGE_SIZE,
                                       is_write=True)
            if env.now < 7_000.0:
                yield env.timeout(7_000.0 - env.now)
            yield from stack.monitor.writeback.drain()

        run_consuming_flush_failures(stack.env, workload(stack.env))
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_steady_state(monitor=stack.monitor)
        assert excinfo.value.invariant == "writeback-ledger"
    finally:
        restore()
