"""The exception hierarchy: every error is a ReproError of the right kind."""

import inspect

import pytest

import repro.errors as errors_module
from repro.errors import (
    BenchError,
    CoordinationError,
    FluidMemError,
    InterruptError,
    KVError,
    KernelError,
    KeyNotFoundError,
    MemoryError_,
    OutOfFramesError,
    OutOfSwapError,
    QuorumLostError,
    ReproError,
    SimulationError,
    SwapError,
    UffdError,
    VcpuDeadlockError,
    VmError,
)


def test_everything_derives_from_repro_error():
    for _name, obj in inspect.getmembers(errors_module, inspect.isclass):
        if issubclass(obj, BaseException):
            assert issubclass(obj, ReproError), obj


def test_domain_groupings():
    assert issubclass(InterruptError, SimulationError)
    assert issubclass(OutOfFramesError, MemoryError_)
    assert issubclass(KeyNotFoundError, KVError)
    assert issubclass(QuorumLostError, CoordinationError)
    assert issubclass(OutOfSwapError, SwapError)
    assert issubclass(SwapError, KernelError)
    assert issubclass(UffdError, KernelError)
    assert issubclass(VcpuDeadlockError, VmError)


def test_interrupt_error_cause():
    exc = InterruptError(cause="wakeup")
    assert exc.cause == "wakeup"
    assert InterruptError().cause is None


def test_catching_by_domain():
    """Callers can catch a whole domain with one except clause."""
    with pytest.raises(KernelError):
        raise OutOfSwapError("full")
    with pytest.raises(ReproError):
        raise BenchError("nope")
    with pytest.raises(FluidMemError):
        from repro.errors import MonitorStateError
        raise MonitorStateError("stopped")
