"""Extra coverage: Ethernet transport in a fabric, fig4 scale helper,
kswapd guards, and the access driver's bookkeeping."""

import pytest

from repro.bench.fig4_graph500 import pick_graph_scale
from repro.bench.platform import PlatformShape
from repro.errors import SimulationError
from repro.kernel import GuestMemoryManager, Kswapd
from repro.mem import PAGE_SIZE
from repro.net import ETHERNET_10G, Fabric, RDMA_FDR
from repro.sim import Environment, LatencyRecorder, RandomStreams
from repro.workloads import AccessDriver, KroneckerGraph

from tests.workloads.conftest import make_fluidmem_world


def test_ethernet_fabric_rpc_slower_than_rdma():
    env = Environment()
    fabric = Fabric(env, RandomStreams(seed=4))
    for host in ("a", "b", "c"):
        fabric.add_host(host)
    fabric.connect("a", "b", RDMA_FDR)
    fabric.connect("a", "c", ETHERNET_10G)
    done = {}

    def client(env, dst):
        start = env.now
        yield from fabric.rpc("a", dst, 64, 4096)
        done[dst] = env.now - start

    env.process(client(env, "b"))
    env.run()
    env.process(client(env, "c"))
    env.run()
    assert done["c"] > 4 * done["b"]


def test_sample_one_way_positive():
    env = Environment()
    fabric = Fabric(env, RandomStreams(seed=4))
    fabric.add_host("a")
    fabric.add_host("b")
    fabric.connect("a", "b", ETHERNET_10G)
    lat = fabric.sample_one_way("a", "b", 4096)
    assert lat >= ETHERNET_10G.propagation_us


def test_pick_graph_scale_monotone():
    shape = PlatformShape.at_scale(1.0 / 1024)
    small = pick_graph_scale(shape, 0.6, edgefactor=8)
    large = pick_graph_scale(shape, 4.8, edgefactor=8)
    assert large >= small
    probe = KroneckerGraph(large, 8, seed=1)
    assert probe.memory_bytes() >= shape.local_dram_bytes * 4.8


def test_kswapd_watermark_validation():
    env = Environment()
    import random
    mm = GuestMemoryManager(env, random.Random(0),
                            dram_bytes=256 * PAGE_SIZE)
    with pytest.raises(ValueError):
        Kswapd(env, mm, low_watermark=0.5, high_watermark=0.1)
    with pytest.raises(ValueError):
        Kswapd(env, mm, low_watermark=0.0, high_watermark=0.1)


def test_kswapd_kick_before_start_is_safe():
    env = Environment()
    import random
    mm = GuestMemoryManager(env, random.Random(0),
                            dram_bytes=256 * PAGE_SIZE)
    mm.kswapd.kick()  # no process yet: must not raise
    assert not mm.kswapd.running


def test_driver_latency_recorder_swappable():
    world = make_fluidmem_world(lru_pages=8)
    driver = AccessDriver(world.env, world.port)
    first = LatencyRecorder("first")
    second = LatencyRecorder("second")
    base = world.base_addr

    def gen(env):
        driver.latency = first
        yield from driver.access(base, is_write=True)
        driver.latency = second
        yield from driver.access(base + PAGE_SIZE, is_write=True)
        yield from driver.flush()

    world.run(gen(world.env))
    assert first.count == 1
    assert second.count == 1


def test_driver_flush_accumulates_exactly():
    world = make_fluidmem_world(lru_pages=64)
    driver = AccessDriver(world.env, world.port, hit_cost_us=0.5,
                          flush_every=10_000)
    base = world.base_addr

    def gen(env):
        yield from driver.access(base, is_write=True)  # fault
        t_after_fault = env.now
        for _ in range(100):
            yield from driver.access(base)             # hits
        yield from driver.flush()
        return env.now - t_after_fault

    elapsed = world.run(gen(world.env))
    assert elapsed == pytest.approx(100 * 0.5)


def test_environment_repr_and_negative_guard():
    env = Environment()
    assert "Environment" in repr(env)
    with pytest.raises(SimulationError):
        env.advance(-0.5)
