"""Tests for transport latency models."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.net import ETHERNET_10G, IPOIB, RDMA_FDR, TRANSPORTS, TransportSpec


def det(spec):
    """A deterministic (jitter-free) copy of a transport spec."""
    return TransportSpec(
        name=spec.name,
        propagation_us=spec.propagation_us,
        per_message_us=spec.per_message_us,
        bandwidth_gbps=spec.bandwidth_gbps,
    )


def test_serialization_scales_with_bytes():
    spec = det(RDMA_FDR)
    assert spec.serialization_us(0) == 0.0
    four_k = spec.serialization_us(4096)
    eight_k = spec.serialization_us(8192)
    assert eight_k == pytest.approx(2 * four_k)


def test_serialization_4k_on_fdr_under_1us():
    # 4 KB at 56 Gb/s is ~0.585 µs
    assert det(RDMA_FDR).serialization_us(4096) == pytest.approx(0.585, abs=0.02)


def test_negative_bytes_rejected():
    with pytest.raises(ValueError):
        det(RDMA_FDR).serialization_us(-1)


def test_rdma_4k_rtt_near_paper_10us():
    """Paper section V-B: a RAMCloud page read waits ~10us on the network."""
    rng = random.Random(1)
    samples = [
        RDMA_FDR.round_trip_us(64, 4096, rng, server_us=2.0)
        for _ in range(2000)
    ]
    avg = sum(samples) / len(samples)
    assert 7.0 <= avg <= 13.0


def test_ipoib_much_slower_than_rdma():
    rng = random.Random(2)
    rdma = sum(RDMA_FDR.round_trip_us(64, 4096, rng) for _ in range(500))
    ipoib = sum(IPOIB.round_trip_us(64, 4096, rng) for _ in range(500))
    assert ipoib > 3 * rdma


def test_ethernet_slowest_propagation():
    assert ETHERNET_10G.propagation_us > RDMA_FDR.propagation_us


def test_transport_registry():
    assert set(TRANSPORTS) == {"rdma-fdr", "ipoib", "ethernet-10g"}
    assert TRANSPORTS["rdma-fdr"] is RDMA_FDR


def test_jitter_reproducible_with_seeded_rng():
    a = RDMA_FDR.one_way_us(4096, random.Random(42))
    b = RDMA_FDR.one_way_us(4096, random.Random(42))
    assert a == b


def test_jitter_creates_tail():
    rng = random.Random(3)
    samples = sorted(
        RDMA_FDR.one_way_us(4096, rng) for _ in range(5000)
    )
    median = samples[len(samples) // 2]
    p999 = samples[int(len(samples) * 0.999)]
    assert p999 > median  # a right tail exists
    assert p999 < 10 * median  # but not absurd


@given(st.integers(0, 1 << 20))
def test_one_way_at_least_fixed_cost(nbytes):
    rng = random.Random(0)
    spec = RDMA_FDR
    lat = spec.one_way_us(nbytes, rng)
    assert lat >= spec.propagation_us + spec.per_message_us


@given(st.integers(0, 1 << 16), st.integers(0, 1 << 16))
def test_rtt_is_sum_of_parts(req, resp):
    spec = det(IPOIB)
    rng = random.Random(0)
    rtt = spec.round_trip_us(req, resp, rng, server_us=5.0)
    expected = spec.one_way_us(req, rng) + 5.0 + spec.one_way_us(resp, rng)
    assert rtt == pytest.approx(expected)
