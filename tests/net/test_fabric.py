"""Tests for the Fabric topology and RPC process."""

import pytest

from repro.errors import HostUnreachableError, NetworkError
from repro.net import Fabric, RDMA_FDR
from repro.sim import Environment, RandomStreams


def make_fabric():
    env = Environment()
    fabric = Fabric(env, RandomStreams(seed=11))
    fabric.add_host("hypervisor")
    fabric.add_host("ramcloud")
    fabric.connect("hypervisor", "ramcloud", RDMA_FDR)
    return env, fabric


def test_duplicate_host_rejected():
    env, fabric = make_fabric()
    with pytest.raises(NetworkError):
        fabric.add_host("hypervisor")


def test_unknown_host_rejected():
    env, fabric = make_fabric()
    with pytest.raises(HostUnreachableError):
        fabric.host("nope")
    with pytest.raises(HostUnreachableError):
        fabric.connect("hypervisor", "nope", RDMA_FDR)


def test_self_link_rejected():
    env, fabric = make_fabric()
    with pytest.raises(NetworkError):
        fabric.connect("hypervisor", "hypervisor", RDMA_FDR)


def test_link_is_bidirectional():
    env, fabric = make_fabric()
    assert fabric.transport_between("hypervisor", "ramcloud") is RDMA_FDR
    assert fabric.transport_between("ramcloud", "hypervisor") is RDMA_FDR


def test_missing_link_raises():
    env, fabric = make_fabric()
    fabric.add_host("memcached")
    with pytest.raises(HostUnreachableError):
        fabric.transport_between("hypervisor", "memcached")


def test_sample_rtt_positive():
    env, fabric = make_fabric()
    rtt = fabric.sample_rtt("hypervisor", "ramcloud", 64, 4096, server_us=2.0)
    assert rtt > 2.0


def test_rpc_process_advances_time():
    env, fabric = make_fabric()
    results = []

    def client(env):
        value = yield from fabric.rpc(
            "hypervisor", "ramcloud", 64, 4096, server_us=2.0, payload="pg"
        )
        results.append((env.now, value))

    env.process(client(env))
    env.run()
    assert len(results) == 1
    elapsed, value = results[0]
    assert value == "pg"
    assert 4.0 < elapsed < 30.0  # near the ~10us RTT regime


def test_concurrent_rpcs_contend_on_nic():
    """Two big sends from one host must serialize on its single NIC queue."""
    env = Environment()
    fabric = Fabric(env, RandomStreams(seed=5))
    fabric.add_host("a")
    fabric.add_host("b")
    fabric.connect("a", "b", RDMA_FDR)
    big = 1 << 20  # 1 MiB: ~150us serialization on FDR
    finish = []

    def client(env, tag):
        yield from fabric.rpc("a", "b", big, 64)
        finish.append((tag, env.now))

    env.process(client(env, "first"))
    env.process(client(env, "second"))
    env.run()
    t_first = dict(finish)["first"]
    t_second = dict(finish)["second"]
    serialization = RDMA_FDR.serialization_us(big)
    # The second RPC cannot finish before two serialization intervals.
    assert t_second >= 2 * serialization
    assert t_first >= serialization


def test_rpc_to_unknown_host_fails_fast():
    env, fabric = make_fabric()

    def client(env):
        yield from fabric.rpc("hypervisor", "ghost", 64, 64)

    env.process(client(env))
    with pytest.raises(HostUnreachableError):
        env.run()
