"""Rebalancer: re-replication, draining, balance, forwarding window."""

import pytest

from repro.cluster import ClusterManager, ClusterStore, Rebalancer
from repro.coord import ZooKeeperEnsemble
from repro.kv import DramStore
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def make_managed_cluster(env, nodes=3, replication=2, **rb_kwargs):
    store = ClusterStore(env, replication=replication)
    rebalancer = Rebalancer(env, store, **rb_kwargs)
    manager = ClusterManager(
        env, ZooKeeperEnsemble(), store, rebalancer
    )
    rebalancer.start()
    manager.start()
    for index in range(nodes):
        manager.join(f"n{index}", DramStore(env))
    return store, rebalancer, manager


def run_until(env, generator):
    proc = env.process(generator)
    env.run(until=10_000_000.0)
    assert not proc.is_alive, "workload did not finish"
    if not proc.ok:
        raise proc.value
    return proc.value


def test_crash_triggers_re_replication(env):
    store, rebalancer, manager = make_managed_cluster(env)

    def scenario(env):
        for key in range(60):
            yield from store.put(key, f"v{key}")
        yield from rebalancer.wait_quiesce()
        manager.crash("n1")
        yield from rebalancer.wait_quiesce()
        while store.under_replicated_keys():
            rebalancer.schedule()
            yield from rebalancer.wait_quiesce()
        for key in range(60):
            assert len(store.placement_of(key)) == 2
            value = yield from store.get(key)
            assert value == f"v{key}"

    run_until(env, scenario(env))
    assert store.counters["keys_lost"] == 0
    assert rebalancer.counters["re_replications"] > 0


def test_join_rebalances_toward_even_spread(env):
    store, rebalancer, manager = make_managed_cluster(env, nodes=1)

    def scenario(env):
        for key in range(200):
            yield from store.put(key, "v")
        for index in range(1, 4):
            manager.join(f"extra{index}", DramStore(env))
            yield from rebalancer.wait_quiesce()
        assert store.balance_ratio() <= 1.5

    run_until(env, scenario(env))
    assert rebalancer.counters["balance_moves"] > 0


def test_graceful_leave_drains_every_key(env):
    store, rebalancer, manager = make_managed_cluster(env, nodes=4)

    def scenario(env):
        for key in range(80):
            yield from store.put(key, f"v{key}")
        yield from rebalancer.wait_quiesce()
        yield from manager.leave("n0")
        assert "n0" not in store.registered_nodes
        for key in range(80):
            assert "n0" not in store.placement_of(key)
            value = yield from store.get(key)
            assert value == f"v{key}"

    run_until(env, scenario(env))
    assert store.counters["keys_lost"] == 0


def test_forwarding_window_reads_never_miss_mid_migration(env):
    """A reader hammering one key while the rebalancer moves it must
    always get the value — the placement flips only after the copy."""
    store = ClusterStore(env, replication=1)
    rebalancer = Rebalancer(env, store, batch_keys=1, pause_us=50.0)
    rebalancer.start()
    store.add_node("a", DramStore(env))

    def scenario(env):
        for key in range(30):
            yield from store.put(key, f"v{key}")
        store.add_node("b", DramStore(env))
        rebalancer.schedule()
        # Read every key repeatedly while migrations are in flight.
        while not rebalancer.idle:
            for key in range(30):
                value = yield from store.get(key)
                assert value == f"v{key}"
            yield env.timeout(10.0)
        assert store.balance_ratio() <= 1.5
        # Old copies were cleaned up: each key lives exactly once.
        assert sum(store.shard_counts().values()) == 30

    run_until(env, scenario(env))


def test_writes_during_migration_are_not_lost(env):
    """A writer updating keys while the rebalancer churns: the write
    always wins (migration gates on in-flight writes and vice versa)."""
    store = ClusterStore(env, replication=1)
    rebalancer = Rebalancer(env, store, batch_keys=2, pause_us=20.0)
    rebalancer.start()
    store.add_node("a", DramStore(env))

    def scenario(env):
        for key in range(40):
            yield from store.put(key, ("old", key))
        store.add_node("b", DramStore(env))
        rebalancer.schedule()
        # Overwrite everything while the rebalancer is moving keys.
        for key in range(40):
            yield from store.put(key, ("new", key))
        yield from rebalancer.wait_quiesce()
        for key in range(40):
            value = yield from store.get(key)
            assert value == ("new", key), f"stale read for {key}"

    run_until(env, scenario(env))


def test_throttling_spreads_migrations_over_time(env):
    store = ClusterStore(env, replication=1)
    rebalancer = Rebalancer(env, store, batch_keys=4, pause_us=500.0)
    rebalancer.start()
    store.add_node("a", DramStore(env))

    def scenario(env):
        for key in range(64):
            yield from store.put(key, "v")
        start = env.now
        store.add_node("b", DramStore(env))
        rebalancer.schedule()
        yield from rebalancer.wait_quiesce()
        moved = store.counters["keys_migrated"]
        assert moved > 8
        # At least (moved // batch) pauses were taken.
        assert env.now - start >= (moved // 4 - 1) * 500.0

    run_until(env, scenario(env))
