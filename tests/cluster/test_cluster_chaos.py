"""Cluster chaos: VMs page through a shard cluster under churn.

The acceptance property for the cluster subsystem: under a seeded
schedule of node joins, leaves, and crashes while VMs fault and evict
pages through :class:`ClusterStore`,

* every page remains readable with the correct contents (CRC-equal to
  what the guest wrote),
* the rebalancer converges — max/min keys-per-node ratio <= 1.5 once
  quiesced,
* the replication factor is restored after each crash, and no key is
  ever lost.

``FAULT_SEED`` (environment variable) offsets the seed so CI sweeps
several independent chaos universes with the same test code.
"""

import os
import random
import zlib

from repro.cluster import ClusterManager, ClusterStore, Rebalancer
from repro.coord import ZooKeeperEnsemble
from repro.core import FluidMemConfig
from repro.kv import DramStore
from repro.mem import PAGE_SIZE
from repro.obs import Observability
from repro.sim import Environment

from tests.conftest import build_stack

SEED_BASE = int(os.environ.get("FAULT_SEED", "0"))
PAGES = 24
LRU = 4
REPLICATION = 2


def fill_pattern(index: int) -> bytes:
    return bytes([(index * 37 + offset) % 256 for offset in range(64)]) \
        * (PAGE_SIZE // 64)


def build_cluster_stack(seed):
    config = FluidMemConfig(
        lru_capacity_pages=LRU,
        writeback_batch_pages=4,
    )
    obs = Observability(enabled=True)
    stack = build_stack(config=config, seed=seed, obs=obs)
    store = ClusterStore(stack.env, replication=REPLICATION, obs=obs)
    rebalancer = Rebalancer(stack.env, store, batch_keys=8,
                            pause_us=50.0, obs=obs)
    manager = ClusterManager(
        stack.env, ZooKeeperEnsemble(), store, rebalancer, obs=obs
    )
    rebalancer.start()
    manager.start()
    for index in range(3):
        manager.join(f"node{index}", DramStore(stack.env))
    vm, qemu, port, reg = stack.make_vm(store=store)
    return stack, store, rebalancer, manager, vm, qemu, port


def test_integrity_under_cluster_churn():
    seed = SEED_BASE * 1_000_003 + 17
    rng = random.Random(seed)
    stack, store, rebalancer, manager, vm, qemu, port = \
        build_cluster_stack(seed=SEED_BASE + 5)
    env = stack.env
    base = vm.first_free_guest_addr()
    next_node_id = [3]
    problems = []

    def restore_rf():
        """Drive the rebalancer until every key is back at RF."""
        yield from rebalancer.wait_quiesce()
        while store.under_replicated_keys():
            rebalancer.schedule()
            yield from rebalancer.wait_quiesce()

    def topology_churn(env):
        """Seeded joins, leaves, and crashes while the VM works."""
        events = 0
        while events < 8:
            yield env.timeout(1_500.0)
            live = [
                n for n in store.registered_nodes
                if store.node_is_live(n)
            ]
            # Never drop below 3 nodes: RF=2 plus failover headroom.
            choices = ["join"]
            if len(live) > 3:
                choices += ["crash", "leave"]
            action = rng.choice(choices)
            if action == "join" and len(live) < 8:
                name = f"node{next_node_id[0]}"
                next_node_id[0] += 1
                manager.join(name, DramStore(env))
            elif action == "crash":
                victim = rng.choice(sorted(manager.members))
                manager.crash(victim)
                # Replication factor must come back after each crash.
                yield from restore_rf()
                for key in store.under_replicated_keys():
                    problems.append(("under-replicated", key))
            elif action == "leave":
                victim = rng.choice(sorted(manager.members))
                yield from manager.leave(victim)
            events += 1
        yield from restore_rf()

    def workload(env):
        for index in range(PAGES):
            yield from port.access(base + index * PAGE_SIZE,
                                   is_write=True)
            host = qemu.guest_to_host(base + index * PAGE_SIZE)
            qemu.page_table.entry(host).page.write(fill_pattern(index))
        # Churn access order so pages bounce between DRAM and the
        # cluster while the topology changes underneath.
        for index in [(i * 11) % PAGES for i in range(4 * PAGES)]:
            yield from port.access(base + index * PAGE_SIZE)
            yield env.timeout(40.0)
        yield from stack.monitor.writeback.drain()
        yield churn_proc  # wait for the topology schedule to end
        yield from restore_rf()
        # Recovery read: every byte of every page must match.
        for index in range(PAGES):
            yield from port.access(base + index * PAGE_SIZE)
            host = qemu.guest_to_host(base + index * PAGE_SIZE)
            data = qemu.page_table.entry(host).page.read()
            if zlib.crc32(data) != zlib.crc32(fill_pattern(index)):
                problems.append(("crc-mismatch", index))
        manager.stop()

    churn_proc = env.process(topology_churn(env))
    proc = env.process(workload(env))
    env.run(until=50_000_000.0)
    assert not proc.is_alive, "chaos workload did not finish"
    assert proc.ok, proc.value
    assert problems == []
    assert store.counters["keys_lost"] == 0
    assert stack.monitor.stats()["quarantined_vms"] == 0
    # Convergence: once quiesced, keys spread within 1.5x across nodes.
    assert rebalancer.idle
    assert store.balance_ratio() <= 1.5
    # And replication is back at target for every key.
    assert store.under_replicated_keys() == ()


def test_churn_is_deterministic_for_a_seed():
    """Two runs of the same seeded topology schedule end in the same
    simulated state — the property the CI fault matrix relies on.

    Keys go straight to the store: page keys derived through a VM
    embed the QEMU pid (a process-global counter), which is exactly
    why the bench determinism pin also runs each experiment in a
    fresh interpreter.
    """

    def run_once():
        env = Environment()
        store = ClusterStore(env, replication=REPLICATION)
        rebalancer = Rebalancer(env, store, batch_keys=8, pause_us=50.0)
        manager = ClusterManager(env, ZooKeeperEnsemble(), store,
                                 rebalancer)
        rebalancer.start()
        manager.start()
        for index in range(3):
            manager.join(f"node{index}", DramStore(env))

        def workload(env):
            for index in range(PAGES):
                yield from store.put(index, (index, "v"))
            manager.join("node3", DramStore(env))
            yield from rebalancer.wait_quiesce()
            manager.crash("node1")
            yield from rebalancer.wait_quiesce()
            while store.under_replicated_keys():
                rebalancer.schedule()
                yield from rebalancer.wait_quiesce()
            manager.stop()

        proc = env.process(workload(env))
        env.run(until=50_000_000.0)
        assert proc.ok
        return (
            env.now,
            sorted(store.shard_counts().items()),
            store.counters["keys_migrated"],
            store.topology_epoch,
        )

    assert run_once() == run_once()
