"""Consistent-hashing remap bound, as a seeded property sweep.

The whole point of the ring is that membership churn moves few keys:
adding or removing ONE node out of ``N`` should remap about ``K / N``
of ``K`` keys — never the wholesale reshuffle a mod-N scheme produces.
We assert the bound ``K/N * slack`` across 50 seeded topologies (node
count, key population, and churn victim all drawn from the seed).

The slack absorbs vnode placement variance: with 128 vnodes per node
the per-node share concentrates well, and 2.5x holds with a wide
margin across all sweeps (observed worst case is ~1.6x).
"""

import random

import pytest

from repro.cluster import DEFAULT_VNODES, HashRing

TOPOLOGIES = 50
SLACK = 2.5


def _build(node_names):
    ring = HashRing(vnodes=DEFAULT_VNODES)
    for name in node_names:
        ring.add_node(name)
    return ring


def _owners(ring, keys):
    return {key: ring.node_for(key) for key in keys}


def _case(seed):
    rng = random.Random(seed)
    node_count = rng.randint(3, 12)
    names = [f"node{index:02d}" for index in range(node_count)]
    keys = [rng.getrandbits(64) for _ in range(rng.randint(400, 900))]
    return rng, names, keys


@pytest.mark.parametrize("seed", range(TOPOLOGIES))
def test_adding_one_node_remaps_at_most_its_fair_share(seed):
    rng, names, keys = _case(seed)
    ring = _build(names)
    before = _owners(ring, keys)

    ring.add_node("joiner")
    after = _owners(ring, keys)

    moved = [key for key in keys if before[key] != after[key]]
    bound = len(keys) / (len(names) + 1) * SLACK
    assert len(moved) <= bound, (
        f"seed={seed}: {len(moved)} of {len(keys)} keys moved on a "
        f"single join of {len(names)} -> {len(names) + 1} nodes "
        f"(bound {bound:.0f})"
    )
    # Every moved key must have moved TO the joiner — a join never
    # shuffles keys between pre-existing nodes.
    assert all(after[key] == "joiner" for key in moved)


@pytest.mark.parametrize("seed", range(TOPOLOGIES))
def test_removing_one_node_remaps_only_its_keys(seed):
    rng, names, keys = _case(seed)
    ring = _build(names)
    before = _owners(ring, keys)
    victim = rng.choice(names)

    ring.remove_node(victim)
    after = _owners(ring, keys)

    moved = [key for key in keys if before[key] != after[key]]
    bound = len(keys) / len(names) * SLACK
    assert len(moved) <= bound
    # Exactly the victim's keys move; everyone else's stay put.
    assert all(before[key] == victim for key in moved)
    assert all(after[key] != victim for key in keys)


@pytest.mark.parametrize("seed", range(0, TOPOLOGIES, 7))
def test_leave_then_rejoin_restores_the_original_placement(seed):
    """Membership changes are content-addressed, not order-dependent:
    a node that leaves and rejoins owns exactly what it owned before."""
    rng, names, keys = _case(seed)
    ring = _build(names)
    before = _owners(ring, keys)
    victim = rng.choice(names)

    ring.remove_node(victim)
    ring.add_node(victim)

    assert _owners(ring, keys) == before
