"""ClusterStore: routing, replication, failover, composition."""

import pytest

from repro.cluster import ClusterStore
from repro.errors import (
    KeyNotFoundError,
    KVError,
    TransientStoreError,
)
from repro.faults import FaultKind, FaultPlan, FaultWindow, FaultyStore
from repro.kv import CompressedStore, DramStore
from repro.obs import Observability
from repro.sim import Environment


def run_op(env, generator):
    proc = env.process(generator)
    env.run()
    return proc.value


@pytest.fixture
def env():
    return Environment()


def make_cluster(env, nodes=3, replication=2, obs=None):
    store = ClusterStore(env, replication=replication, obs=obs)
    backends = {}
    for index in range(nodes):
        backend = DramStore(env)
        backends[f"n{index}"] = backend
        store.add_node(f"n{index}", backend)
    return store, backends


def test_put_replicates_to_rf_nodes(env):
    store, backends = make_cluster(env)
    run_op(env, store.put(1, "v", 4096))
    holders = store.placement_of(1)
    assert len(holders) == 2
    for name in holders:
        assert backends[name].contains(1)
    assert store.contains(1)
    assert store.stored_keys() == 1


def test_get_routes_by_placement(env):
    store, _backends = make_cluster(env)
    for key in range(50):
        run_op(env, store.put(key, f"v{key}"))
    for key in range(50):
        assert run_op(env, store.get(key)) == f"v{key}"
    assert run_op(env, store.get(3)) == "v3"


def test_unknown_key_raises_immediately(env):
    store, _backends = make_cluster(env)

    def attempt(env):
        yield from store.get(404)

    env.process(attempt(env))
    with pytest.raises(KeyNotFoundError):
        env.run()


def test_read_fails_over_to_surviving_replica(env):
    plan = FaultPlan([
        FaultWindow(FaultKind.CRASH, "n0", 100.0, 1_000_000.0),
    ])
    env_store = ClusterStore(env, replication=2)
    faulty = FaultyStore(env, DramStore(env), plan, node="n0")
    env_store.add_node("n0", faulty)
    env_store.add_node("n1", DramStore(env))
    env_store.add_node("n2", DramStore(env))
    for key in range(20):
        run_op(env, env_store.put(key, f"v{key}"))

    def later(env):
        yield env.timeout(200.0)  # into n0's crash window
        values = []
        for key in range(20):
            value = yield from env_store.get(key)
            values.append(value)
        return values

    assert run_op(env, later(env)) == [f"v{key}" for key in range(20)]
    assert env_store.counters["keys_lost"] == 0


def test_writes_skip_dead_nodes_and_flag_degraded(env):
    obs = Observability(enabled=True)
    plan = FaultPlan([FaultWindow(FaultKind.CRASH, "n0", 0.0, 1e9)])
    store = ClusterStore(env, replication=2, obs=obs)
    store.add_node("n0", FaultyStore(env, DramStore(env), plan,
                                     node="n0"))
    store.add_node("n1", DramStore(env))
    for key in range(10):
        run_op(env, store.put(key, "v"))
    for key in range(10):
        assert "n0" not in store.placement_of(key)
        assert run_op(env, store.get(key)) == "v"


def test_multi_write_batches_per_node(env):
    store, backends = make_cluster(env, replication=1)
    items = [(key, f"v{key}", 4096) for key in range(40)]
    run_op(env, store.multi_write(items))
    for key in range(40):
        assert run_op(env, store.get(key)) == f"v{key}"
    # Batching: far fewer backend write calls than items (DramStore's
    # multi_write counts one "writes" incr per item but the cluster
    # issues one write_async per node, not per key).
    spread = [backend.stored_keys() for backend in backends.values()]
    assert sum(spread) == 40 and all(spread)


def test_all_targets_down_is_transient(env):
    plan = FaultPlan([
        FaultWindow(FaultKind.CRASH, "n0", 0.0, 1e9),
        FaultWindow(FaultKind.CRASH, "n1", 0.0, 1e9),
    ])
    store = ClusterStore(env, replication=2)
    for name in ("n0", "n1"):
        store.add_node(
            name, FaultyStore(env, DramStore(env), plan, node=name)
        )

    def attempt(env):
        yield from store.put(1, "v")

    env.process(attempt(env))
    with pytest.raises(TransientStoreError):
        env.run()


def test_remove_deletes_from_all_holders(env):
    store, backends = make_cluster(env)
    run_op(env, store.put(1, "v"))
    holders = store.placement_of(1)
    run_op(env, store.remove(1))
    assert not store.contains(1)
    for name in holders:
        assert not backends[name].contains(1)

    def attempt(env):
        yield from store.remove(1)

    env.process(attempt(env))
    with pytest.raises(KeyNotFoundError):
        env.run()


def test_composes_under_compressed_store(env):
    """CompressedStore over ClusterStore: the generic-backend contract
    holds through the whole sandwich."""
    cluster, _backends = make_cluster(env)
    store = CompressedStore(env, cluster)
    for key in range(12):
        run_op(env, store.put(key, f"value-{key}"))
    assert run_op(env, store.get(7)) == "value-7"
    assert run_op(env, store.multi_read([2, 9, 4])) == \
        ["value-2", "value-9", "value-4"]
    run_op(env, store.remove(2))
    assert not store.contains(2)


def test_used_bytes_and_shard_accounting(env):
    obs = Observability(enabled=True)
    store, _backends = make_cluster(env, obs=obs)
    for key in range(10):
        run_op(env, store.put(key, "v", 4096))
    # RF=2: every byte is stored twice.
    assert store.used_bytes == 10 * 4096 * 2
    counts = store.shard_counts()
    assert sum(counts.values()) == 20
    snapshot = obs.registry.snapshot()
    shard_gauges = {
        name: value for name, value in snapshot["gauges"].items()
        if name.startswith("shard_keys{")
    }
    assert len(shard_gauges) == 3
    assert sum(shard_gauges.values()) == 20


def test_topology_misuse_raises(env):
    store, _backends = make_cluster(env)
    with pytest.raises(KVError):
        store.add_node("n0", DramStore(env))
    with pytest.raises(KVError):
        store.retire_node("ghost")
    run_op(env, store.put(1, "v"))
    holder = store.placement_of(1)[0]
    with pytest.raises(KVError):
        store.retire_node(holder)  # still holds keys
    with pytest.raises(KVError):
        ClusterStore(env, replication=0)


def test_no_nodes_at_all_is_transient(env):
    store = ClusterStore(env, replication=1)

    def attempt(env):
        yield from store.put(1, "v")

    env.process(attempt(env))
    with pytest.raises(TransientStoreError):
        env.run()
