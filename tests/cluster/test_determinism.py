"""Determinism pin for the cluster experiment's metrics export.

The CI baseline gate diffs ``--metrics`` JSON byte for byte, so the
cluster experiment must be bit-reproducible under a fixed seed: ring
positions come from keyed blake2b (not the salted builtin ``hash``),
every rebalancer iteration order is sorted, and the simulation clock
is the only notion of time.
"""

import json

from repro.bench.cli import main


def export(tmp_path, name, seed=42):
    path = tmp_path / f"{name}.json"
    rc = main([
        "cluster", "--quick", "--seed", str(seed),
        "--metrics", str(path),
    ])
    assert rc == 0
    return path.read_bytes()


def test_same_seed_metrics_are_byte_identical(tmp_path, capsys):
    first = export(tmp_path, "a")
    second = export(tmp_path, "b")
    assert first == second


def test_metrics_export_carries_per_shard_gauges(tmp_path, capsys):
    document = json.loads(export(tmp_path, "c"))
    gauges = document["experiments"]["cluster"]["gauges"]
    shard_gauges = [
        name for name in gauges if name.startswith("shard_keys{")
    ]
    assert len(shard_gauges) >= 2  # one per surviving shard node
    assert "cluster_balance_ratio_x100" in gauges
    assert gauges["cluster_balance_ratio_x100"] <= 150
    assert "cluster_recovery_us" in gauges
    counters = document["experiments"]["cluster"]["counters"]
    migrated = [
        name for name in counters if "keys_migrated" in name
    ]
    assert migrated


def test_different_seed_changes_the_export(tmp_path, capsys):
    assert export(tmp_path, "d", seed=42) != \
        export(tmp_path, "e", seed=43)
