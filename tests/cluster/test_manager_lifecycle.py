"""ClusterManager: znodes, epochs, session expiry, crash detection."""

import pytest

from repro.cluster import (
    ClusterManager,
    ClusterStore,
    NODES_PATH,
    Rebalancer,
)
from repro.coord import ZooKeeperEnsemble
from repro.errors import KVError
from repro.faults import FaultKind, FaultPlan, FaultWindow, FaultyStore
from repro.kv import DramStore
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def ensemble():
    return ZooKeeperEnsemble()


def make_cluster(env, ensemble, **kwargs):
    store = ClusterStore(env, replication=2)
    rebalancer = Rebalancer(env, store)
    manager = ClusterManager(env, ensemble, store, rebalancer,
                             **kwargs)
    rebalancer.start()
    return store, rebalancer, manager


def znode_names(ensemble):
    client = ensemble.connect()
    try:
        return set(client.children(NODES_PATH))
    finally:
        client.close()


def test_join_creates_ephemeral_znode_and_bumps_epoch(env, ensemble):
    store, _rebalancer, manager = make_cluster(env, ensemble)
    assert manager.epoch == 0
    manager.join("n0", DramStore(env))
    manager.join("n1", DramStore(env))
    assert znode_names(ensemble) == {"n0", "n1"}
    assert manager.epoch == 2
    assert store.topology_epoch == 2
    assert manager.members == ("n0", "n1")
    with pytest.raises(KVError):
        manager.join("n0", DramStore(env))


def test_crash_expires_session_and_prunes_placement(env, ensemble):
    store, rebalancer, manager = make_cluster(env, ensemble)
    for name in ("n0", "n1", "n2"):
        manager.join(name, DramStore(env))

    def scenario(env):
        for key in range(30):
            yield from store.put(key, "v")
        yield from rebalancer.wait_quiesce()
        manager.crash("n1")
        assert znode_names(ensemble) == {"n0", "n2"}
        assert "n1" not in store.registered_nodes
        yield from rebalancer.wait_quiesce()

    proc = env.process(scenario(env))
    env.run()
    assert proc.ok
    assert manager.epoch == 4  # 3 joins + 1 crash
    with pytest.raises(KVError):
        manager.crash("n1")  # not a member anymore


def test_external_session_expiry_drives_topology_epoch(env, ensemble):
    """Satellite: ZooKeeper ephemeral cleanup under session expiry.

    Something outside the manager expires a node's session (lease
    timeout, ZK quorum decision).  The ephemeral znode vanishes on
    every replica; the next sync must notice, drop the node from the
    ring, bump the epoch, and schedule a rebalance.
    """
    store, rebalancer, manager = make_cluster(env, ensemble)
    manager.start()
    for name in ("n0", "n1", "n2"):
        manager.join(name, DramStore(env))
    epoch_before = manager.epoch

    def scenario(env):
        for key in range(30):
            yield from store.put(key, "v")
        yield from rebalancer.wait_quiesce()
        # Expire n2's session behind the manager's back.
        session = manager._sessions["n2"]
        ensemble.expire_session(session.session_id)
        assert znode_names(ensemble) == {"n0", "n1"}
        # The node is still on the ring until the manager notices.
        assert "n2" in store.registered_nodes
        yield env.timeout(2_000.0)  # > poll interval: sync runs
        assert "n2" not in store.registered_nodes
        assert "n2" not in store.ring
        assert manager.members == ("n0", "n1")
        # Ring updated -> rebalance was scheduled and re-replication
        # restored every key to two live copies.
        yield from rebalancer.wait_quiesce()
        while store.under_replicated_keys():
            rebalancer.schedule()
            yield from rebalancer.wait_quiesce()
        for key in range(30):
            assert len(store.placement_of(key)) == 2
        manager.stop()

    proc = env.process(scenario(env))
    env.run(until=5_000_000.0)
    assert not proc.is_alive and proc.ok
    assert manager.epoch == epoch_before + 1
    assert store.counters["keys_lost"] == 0


def test_liveness_crash_detection_via_fault_plan(env, ensemble):
    """A node whose FaultyStore is in a long crash window gets
    declared dead after crash_detect_us and leaves the topology."""
    store, rebalancer, manager = make_cluster(
        env, ensemble, poll_us=200.0, crash_detect_us=600.0
    )
    manager.start()
    plan = FaultPlan([
        FaultWindow(FaultKind.CRASH, "n1", 1_000.0, 1e9),
    ])
    manager.join("n0", DramStore(env))
    manager.join(
        "n1", FaultyStore(env, DramStore(env), plan, node="n1")
    )
    manager.join("n2", DramStore(env))

    def scenario(env):
        for key in range(20):
            yield from store.put(key, "v")
        yield from rebalancer.wait_quiesce()
        yield env.timeout(3_000.0)  # into the window + detection time
        assert "n1" not in store.registered_nodes
        assert znode_names(ensemble) == {"n0", "n2"}
        while store.under_replicated_keys():
            rebalancer.schedule()
            yield from rebalancer.wait_quiesce()
        for key in range(20):
            value = yield from store.get(key)
            assert value == "v"
        manager.stop()

    proc = env.process(scenario(env))
    env.run(until=5_000_000.0)
    assert not proc.is_alive and proc.ok
    assert store.counters["keys_lost"] == 0


def test_quorum_loss_degrades_sync_gracefully(env, ensemble):
    _store, _rebalancer, manager = make_cluster(env, ensemble)
    manager.join("n0", DramStore(env))
    ensemble.stop_replica(0)
    ensemble.stop_replica(1)
    manager.sync()  # must not raise
    assert manager.counters["sync_failures"] == 1
    ensemble.start_replica(0)
    manager.sync()
    assert manager.counters["sync_failures"] == 1


def test_graceful_leave_closes_session(env, ensemble):
    store, rebalancer, manager = make_cluster(env, ensemble)
    for name in ("n0", "n1", "n2"):
        manager.join(name, DramStore(env))

    def scenario(env):
        for key in range(12):
            yield from store.put(key, "v")
        yield from rebalancer.wait_quiesce()
        yield from manager.leave("n0")

    proc = env.process(scenario(env))
    env.run()
    assert proc.ok
    assert znode_names(ensemble) == {"n1", "n2"}
    assert manager.members == ("n1", "n2")
    assert manager.epoch == 4
