"""HashRing: determinism, spread, and minimal disruption."""

import pytest

from repro.cluster import HashRing
from repro.errors import KVError


def ring_with(*names, vnodes=128):
    ring = HashRing(vnodes=vnodes)
    for name in names:
        ring.add_node(name)
    return ring


def test_layout_is_deterministic_across_instances():
    a = ring_with("n0", "n1", "n2")
    b = ring_with("n0", "n1", "n2")
    for key in range(500):
        assert a.node_for(key) == b.node_for(key)


def test_insertion_order_does_not_matter():
    a = ring_with("n0", "n1", "n2")
    b = ring_with("n2", "n0", "n1")
    for key in range(500):
        assert a.nodes_for(key, 2) == b.nodes_for(key, 2)


def test_keys_spread_over_all_nodes():
    ring = ring_with("n0", "n1", "n2", "n3")
    counts = {name: 0 for name in ring.nodes}
    for key in range(4_000):
        counts[ring.node_for(key)] += 1
    # Virtual nodes keep the spread within a reasonable band.
    assert min(counts.values()) > 4_000 / 4 / 2
    assert max(counts.values()) < 4_000 / 4 * 2


def test_arc_shares_sum_to_one():
    ring = ring_with("n0", "n1", "n2")
    total = sum(ring.arc_share(name) for name in ring.nodes)
    assert total == pytest.approx(1.0)


def test_node_removal_only_moves_its_own_keys():
    ring = ring_with("n0", "n1", "n2", "n3")
    before = {key: ring.node_for(key) for key in range(2_000)}
    ring.remove_node("n2")
    for key, owner in before.items():
        if owner != "n2":
            assert ring.node_for(key) == owner


def test_node_addition_only_steals_keys():
    ring = ring_with("n0", "n1", "n2")
    before = {key: ring.node_for(key) for key in range(2_000)}
    ring.add_node("n3")
    moved = 0
    for key, owner in before.items():
        now = ring.node_for(key)
        if now != owner:
            assert now == "n3"  # keys only move to the newcomer
            moved += 1
    assert 0 < moved < len(before) / 2


def test_nodes_for_returns_distinct_owners_in_preference_order():
    ring = ring_with("n0", "n1", "n2")
    for key in range(100):
        owners = ring.nodes_for(key, 3)
        assert len(owners) == 3
        assert len(set(owners)) == 3
        assert owners[0] == ring.node_for(key)


def test_nodes_for_caps_at_ring_size():
    ring = ring_with("n0", "n1")
    assert len(ring.nodes_for(7, 5)) == 2


def test_empty_ring_has_no_owner():
    ring = HashRing()
    assert ring.node_for(1) is None
    assert ring.nodes_for(1, 2) == ()


def test_membership_errors():
    ring = ring_with("n0")
    with pytest.raises(KVError):
        ring.add_node("n0")
    with pytest.raises(KVError):
        ring.remove_node("ghost")
    with pytest.raises(KVError):
        HashRing(vnodes=0)
    assert "n0" in ring and "ghost" not in ring
    assert len(ring) == 1
