"""Root conftest: the shared FluidMem stack builder and fixtures.

Every suite that needs a wired-up stack (env + uffd + ops + monitor +
fabric) gets it from here — either by importing :func:`build_stack`
directly (for module-level helpers that customize the config) or via
the ``stack`` / ``stack_factory`` fixtures.
"""

import pytest

from repro.core import FluidMemConfig, FluidMemoryPort, Monitor
from repro.kernel import UffdLatency, UffdOps, Userfaultfd
from repro.kv import DramStore, RamCloudServer, RamCloudStore
from repro.mem import MIB, FrameAllocator
from repro.net import Fabric, RDMA_FDR
from repro.sim import Environment, RandomStreams
from repro.vm import BootProfile, GuestVM, QemuProcess


class Stack:
    """Bundle of everything the core tests need."""

    def __init__(self, env, uffd, ops, monitor, fabric):
        self.env = env
        self.uffd = uffd
        self.ops = ops
        self.monitor = monitor
        self.fabric = fabric

    def run(self, gen):
        proc = self.env.process(gen)
        self.env.run()
        return proc.value

    def make_dram_store(self):
        return DramStore(self.env)

    def make_ramcloud_store(self, table_id=1):
        server = RamCloudServer(memory_bytes=64 * MIB)
        return RamCloudStore(
            self.env, self.fabric, "hypervisor", "kv-server", server,
            table_id=table_id,
        )

    def make_vm(self, memory_mib=32, boot_pages=0, lru_pages=None,
                store=None, name="vm", partition_lease=None):
        """A FluidMem-backed VM, optionally booted."""
        vm = GuestVM(
            self.env,
            name,
            memory_bytes=memory_mib * MIB,
            boot_profile=BootProfile(total_pages=max(4, boot_pages or 4)),
        )
        qemu = QemuProcess(vm)
        store = store or self.make_dram_store()
        registration = self.monitor.register_vm(
            qemu, store, partition_lease=partition_lease
        )
        port = FluidMemoryPort(self.env, vm, qemu, self.monitor,
                               registration)
        vm.attach_port(port)
        if lru_pages is not None:
            self.monitor.set_lru_capacity(lru_pages)
        if boot_pages:
            self.run(vm.boot())
        return vm, qemu, port, registration


def build_stack(config=None, host_dram_mib=256, seed=7, obs=None,
                check=None):
    env = Environment()
    streams = RandomStreams(seed=seed)
    fabric = Fabric(env, streams)
    fabric.add_host("hypervisor")
    fabric.add_host("kv-server")
    fabric.connect("hypervisor", "kv-server", RDMA_FDR)
    uffd = Userfaultfd(env, UffdLatency(), streams.stream("uffd"))
    ops = UffdOps(
        env, UffdLatency(), streams.stream("ops"),
        FrameAllocator.for_bytes(host_dram_mib * MIB),
    )
    monitor = Monitor(
        env, uffd, ops,
        config=config or FluidMemConfig(lru_capacity_pages=64),
        rng=streams.stream("monitor"),
        obs=obs,
        check=check,
    )
    monitor.start()
    return Stack(env, uffd, ops, monitor, fabric)


@pytest.fixture
def stack():
    """A default stack (64-page LRU, DRAM-class store on demand)."""
    return build_stack()


@pytest.fixture
def stack_factory():
    """The :func:`build_stack` callable, for tests that need a custom
    config, seed, observability, or checker."""
    return build_stack
