"""The wall-clock perfbench suite: document shape, comparison logic,
and the CLI wiring.

Real measurements here use deliberately tiny workload sizes — these
tests pin structure and arithmetic, not speed; speed is what the suite
itself measures in CI.
"""

import contextlib
import io
import json

import pytest

from repro.perfbench import (
    PERFBENCH_SCHEMA,
    bench_burst_resolve,
    bench_engine,
    compare,
    load_reference,
    missing_metrics,
    run_suite,
)
from repro.perfbench import cli as perfbench_cli

TINY_SIZES = {
    "engine_events": 2_000,
    "engine_procs": 2,
    "burst_ops": 2_000,
    "monitor_accesses": 200,
    "fig3_accesses": 60,
    "prefetcher_ops": 2_000,
}


def test_run_suite_document_shape():
    result = run_suite(quick=True, reps=1, sizes=TINY_SIZES)
    assert result["schema"] == PERFBENCH_SCHEMA
    assert result["mode"] == "quick"
    assert result["seed"] == 42
    assert result["sizes"]["engine_events"] == 2_000
    assert result["engine_events_per_sec"] > 0
    assert result["burst_resolve_ops_per_sec"] > 0
    assert result["monitor_ops_per_sec"] > 0
    assert result["fig3_quick_seconds"] > 0
    assert result["prefetcher_ops_per_sec"] > 0


def test_bench_engine_rate_scales_with_events():
    rate = bench_engine(total_events=5_000, procs=2)
    assert rate > 0


def test_bench_burst_resolve_runs_with_batch_on_and_off():
    from repro.sim import set_batch

    assert bench_burst_resolve(ops=2_000) > 0
    previous = set_batch(False)
    try:
        # The guarded primitives fall back granularly; still a rate.
        assert bench_burst_resolve(ops=2_000) > 0
    finally:
        set_batch(previous)


def _document(engine=1_000_000.0, monitor=15_000.0, fig3=1.0,
              prefetcher=150_000.0, burst=900_000.0, **extra):
    document = {
        "schema": PERFBENCH_SCHEMA,
        "mode": "quick",
        "seed": 42,
        "engine_events_per_sec": engine,
        "burst_resolve_ops_per_sec": burst,
        "monitor_ops_per_sec": monitor,
        "fig3_quick_seconds": fig3,
        "prefetcher_ops_per_sec": prefetcher,
    }
    document.update(extra)
    return document


def test_compare_flags_rate_and_seconds_regressions():
    baseline = _document()
    # Rates halve and seconds double: exactly at a 2x factor.
    current = _document(engine=400_000.0, monitor=15_000.0, fig3=2.5,
                        prefetcher=60_000.0)
    rows = compare(current, baseline, max_regression=2.0)
    verdicts = {metric: ok for metric, _c, _r, _f, ok in rows}
    assert verdicts == {
        "engine_events_per_sec": False,  # 2.5x slower
        "burst_resolve_ops_per_sec": True,
        "monitor_ops_per_sec": True,
        "fig3_quick_seconds": False,  # 2.5x slower
        "prefetcher_ops_per_sec": False,  # 2.5x slower
    }


def test_compare_skips_but_missing_metrics_reports():
    baseline = _document()
    del baseline["burst_resolve_ops_per_sec"]  # pre-burst-bench baseline
    current = _document()
    compared = {metric for metric, *_rest in compare(current, baseline, 2.0)}
    assert "burst_resolve_ops_per_sec" not in compared
    assert missing_metrics(current, baseline) == [
        ("burst_resolve_ops_per_sec", "baseline")
    ]
    # And the other direction: the current run lacks a baseline metric.
    partial = _document()
    del partial["prefetcher_ops_per_sec"]
    assert missing_metrics(partial, _document()) == [
        ("prefetcher_ops_per_sec", "current run")
    ]
    # Absent from both sides: not reported.
    assert missing_metrics(baseline, dict(baseline)) == []


def test_compare_accepts_improvements_and_threshold():
    baseline = _document()
    current = _document(engine=3_000_000.0, monitor=20_000.0, fig3=0.4)
    assert all(ok for *_ignored, ok in compare(current, baseline, 2.0))
    # A 1.9x slowdown passes the generous 2x gate.
    slower = _document(engine=1_000_000.0 / 1.9)
    assert all(ok for *_ignored, ok in compare(slower, baseline, 2.0))


def test_load_reference_prefers_matching_mode(tmp_path):
    trajectory = {
        "schema": PERFBENCH_SCHEMA,
        "entries": [
            _document(engine=1.0, mode="full"),
            _document(engine=2.0, mode="quick"),
            _document(engine=3.0, mode="full"),
        ],
    }
    path = tmp_path / "wallclock.json"
    path.write_text(json.dumps(trajectory))
    assert load_reference(str(path), "quick")["engine_events_per_sec"] == 2.0
    assert load_reference(str(path), "full")["engine_events_per_sec"] == 3.0
    # Unknown mode: newest entry of any mode.
    assert load_reference(str(path), "other")["engine_events_per_sec"] == 3.0


def test_load_reference_accepts_bare_documents(tmp_path):
    path = tmp_path / "result.json"
    path.write_text(json.dumps(_document(engine=7.0)))
    assert load_reference(str(path), "quick")["engine_events_per_sec"] == 7.0


def test_load_reference_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "something-else/9"}))
    with pytest.raises(ValueError, match="schema"):
        load_reference(str(path), "quick")


@pytest.fixture
def canned_suite(monkeypatch):
    """Replace the measurement with a canned document: CLI wiring only."""

    def fake_run_suite(quick=False, seed=42, reps=None, sizes=None):
        return _document(mode="quick" if quick else "full", seed=seed)

    monkeypatch.setattr(perfbench_cli, "run_suite", fake_run_suite)


def _run_cli(argv):
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = perfbench_cli.main(argv)
    return code, stdout.getvalue()


def test_cli_prints_all_metrics_and_writes_json(canned_suite, tmp_path):
    out = tmp_path / "pb.json"
    code, text = _run_cli(["--quick", "--json", str(out)])
    assert code == 0
    for metric, _direction in perfbench_cli.METRIC_DIRECTIONS:
        assert metric in text
    with open(out) as handle:
        document = json.load(handle)
    assert document["schema"] == PERFBENCH_SCHEMA


def test_cli_compare_passes_against_equal_baseline(canned_suite, tmp_path):
    baseline = tmp_path / "base.json"
    baseline.write_text(json.dumps(_document()))
    code, text = _run_cli(["--quick", "--compare", str(baseline)])
    assert code == 0
    assert "REGRESSION" not in text


def test_cli_compare_reports_baseline_missing_metric(canned_suite, tmp_path):
    baseline = _document()
    del baseline["burst_resolve_ops_per_sec"]
    path = tmp_path / "base.json"
    path.write_text(json.dumps(baseline))
    code, text = _run_cli(["--quick", "--compare", str(path)])
    assert code == 0
    assert "burst_resolve_ops_per_sec" in text
    assert "missing from baseline" in text


def test_cli_compare_fails_on_regression(canned_suite, tmp_path):
    baseline = tmp_path / "base.json"
    baseline.write_text(
        json.dumps(_document(engine=5_000_000.0))  # 5x current
    )
    code, text = _run_cli(["--quick", "--compare", str(baseline)])
    assert code == 1
    assert "REGRESSION" in text


def test_cli_no_fastpath_restores_the_switch(canned_suite):
    from repro.sim import fastpath_enabled

    before = fastpath_enabled()
    code, text = _run_cli(["--quick", "--no-fastpath"])
    assert code == 0
    assert "fastpath off" in text
    assert fastpath_enabled() == before
