"""Fixtures for core tests (helpers shared via tests.helpers)."""

import pytest

from tests.helpers import Stack, build_stack  # noqa: F401


@pytest.fixture
def stack():
    return build_stack()
