"""Unit tests for LruBuffer and PageTracker."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import LruBuffer, PageTracker
from repro.errors import FluidMemError


# ---------------------------------------------------------------- LruBuffer

def test_insert_and_contains():
    lru = LruBuffer(capacity_pages=4)
    lru.insert(0x1000, "reg")
    assert 0x1000 in lru
    assert len(lru) == 1


def test_double_insert_rejected():
    lru = LruBuffer(capacity_pages=4)
    lru.insert(0x1000, "reg")
    with pytest.raises(FluidMemError):
        lru.insert(0x1000, "reg")


def test_eviction_order_is_insertion_order():
    """Paper V-A: the ordering never changes (FIFO among residents)."""
    lru = LruBuffer(capacity_pages=10)
    for i in range(5):
        lru.insert(i * 0x1000, "reg")
    # Accesses do NOT reorder (the monitor never sees them anyway).
    lru.note_access(0x0000)
    lru.note_access(0x1000)
    assert lru.pop_eviction_candidate() == (0x0000, "reg")
    assert lru.pop_eviction_candidate() == (0x1000, "reg")


def test_reorder_ablation_changes_order():
    lru = LruBuffer(capacity_pages=10, reorder_on_access=True)
    for i in range(3):
        lru.insert(i * 0x1000, "reg")
    lru.note_access(0x0000)  # moves to MRU under the ablation
    assert lru.pop_eviction_candidate() == (0x1000, "reg")


def test_overflow_accounting():
    lru = LruBuffer(capacity_pages=2)
    for i in range(4):
        lru.insert(i * 0x1000, "reg")
    assert lru.overflow == 2
    lru.resize(4)
    assert lru.overflow == 0
    lru.resize(1)
    assert lru.overflow == 3


def test_resize_validation():
    lru = LruBuffer(capacity_pages=2)
    with pytest.raises(FluidMemError):
        lru.resize(0)
    with pytest.raises(FluidMemError):
        LruBuffer(capacity_pages=0)


def test_remove():
    lru = LruBuffer(capacity_pages=4)
    lru.insert(0x1000, "reg")
    assert lru.remove(0x1000) == "reg"
    with pytest.raises(FluidMemError):
        lru.remove(0x1000)


def test_discard_registration():
    lru = LruBuffer(capacity_pages=10)
    lru.insert(0x1000, "a")
    lru.insert(0x2000, "b")
    lru.insert(0x3000, "a")
    dropped = lru.discard_registration("a")
    assert sorted(dropped) == [0x1000, 0x3000]
    assert len(lru) == 1


def test_eviction_candidates_peek():
    lru = LruBuffer(capacity_pages=10)
    for i in range(5):
        lru.insert(i * 0x1000, "reg")
    peek = lru.eviction_candidates(2)
    assert peek == [(0x0000, "reg"), (0x1000, "reg")]
    assert len(lru) == 5  # not removed
    with pytest.raises(FluidMemError):
        lru.eviction_candidates(-1)


def test_pop_empty_returns_none():
    lru = LruBuffer(capacity_pages=2)
    assert lru.pop_eviction_candidate() is None


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 50), unique=True, min_size=1, max_size=50),
       st.integers(1, 20))
def test_fifo_property(pages, capacity):
    """Property: with no reordering, eviction order == insertion order."""
    lru = LruBuffer(capacity_pages=capacity)
    for p in pages:
        lru.insert(p * 0x1000, "reg")
    popped = []
    while True:
        entry = lru.pop_eviction_candidate()
        if entry is None:
            break
        popped.append(entry[0] // 0x1000)
    assert popped == pages


# -------------------------------------------------------------- PageTracker

def test_tracker_first_access():
    tracker = PageTracker()
    assert tracker.is_first_access(42)
    tracker.mark_seen(42)
    assert not tracker.is_first_access(42)
    assert 42 in tracker
    assert len(tracker) == 1


def test_tracker_double_mark_rejected():
    tracker = PageTracker()
    tracker.mark_seen(42)
    with pytest.raises(FluidMemError):
        tracker.mark_seen(42)


def test_tracker_forget():
    tracker = PageTracker()
    tracker.mark_seen(42)
    tracker.forget(42)
    assert tracker.is_first_access(42)
    tracker.forget(42)  # silent when absent
