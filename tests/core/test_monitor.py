"""Behavioural tests for the FluidMem monitor."""

import pytest

from repro.core import CodePath, FluidMemConfig
from repro.errors import VcpuDeadlockError
from repro.mem import PAGE_SIZE
from repro.vm import VirtMode

from tests.conftest import build_stack


def addr(vm, i):
    """i-th page of the workload area of a VM."""
    return vm.first_free_guest_addr() + i * PAGE_SIZE


def touch_pages(stack, port, vm, indexes, is_write=True):
    def gen(env):
        for i in indexes:
            yield from port.access(addr(vm, i), is_write=is_write)

    stack.run(gen(stack.env))


def test_first_touch_resolved_with_zero_page(stack):
    vm, qemu, port, _reg = stack.make_vm()
    touch_pages(stack, port, vm, [0])
    assert stack.monitor.counters["zero_page_faults"] == 1
    assert stack.ops.counters["zeropage"] == 1
    assert port.is_resident(addr(vm, 0))
    # Second access is a pure hit: no new fault.
    touch_pages(stack, port, vm, [0])
    assert stack.monitor.counters["faults"] == 1


def test_no_store_read_on_first_access(stack):
    """The pagetracker avoids remote reads for first touches (V-A)."""
    store = stack.make_ramcloud_store()
    vm, qemu, port, _reg = stack.make_vm(store=store)
    touch_pages(stack, port, vm, range(10))
    assert store.counters["reads"] == 0


def test_eviction_after_capacity(stack):
    stack.monitor.set_lru_capacity(8)
    vm, qemu, port, _reg = stack.make_vm()
    touch_pages(stack, port, vm, range(12))
    assert len(stack.monitor.lru) == 8
    assert stack.monitor.counters["evictions"] == 4
    # The four oldest pages are no longer resident (FIFO).
    for i in range(4):
        assert not port.is_resident(addr(vm, i))
    for i in range(4, 12):
        assert port.is_resident(addr(vm, i))


def test_evicted_page_read_back_from_store(stack):
    stack.monitor.set_lru_capacity(4)
    store = stack.make_dram_store()
    vm, qemu, port, _reg = stack.make_vm(store=store)
    touch_pages(stack, port, vm, range(8))

    def drain(env):
        yield from stack.monitor.writeback.drain()

    stack.run(drain(stack.env))
    assert store.stored_keys() >= 4

    touch_pages(stack, port, vm, [0])  # evicted earlier -> remote read
    assert stack.monitor.counters["remote_reads"] >= 1
    assert port.is_resident(addr(vm, 0))


def test_page_contents_survive_eviction_roundtrip(stack):
    """Data integrity: the same Page object (version intact) comes back."""
    stack.monitor.set_lru_capacity(2)
    vm, qemu, port, _reg = stack.make_vm()

    page_versions = {}

    def gen(env):
        for i in range(6):
            page = yield from port.access(addr(vm, i), is_write=True)
            page_versions[i] = (page, page.version)
        # Page 0 was evicted; fault it back.
        restored = yield from port.access(addr(vm, 0), is_write=False)
        assert restored is not None

    stack.run(gen(stack.env))
    restored_page = qemu.page_table.entry(
        qemu.guest_to_host(addr(vm, 0))
    ).page
    original, version = page_versions[0]
    assert restored_page is original       # zero-copy identity
    assert restored_page.version >= version


def test_async_writeback_batches(stack):
    config = FluidMemConfig(lru_capacity_pages=4, writeback_batch_pages=8)
    stack = build_stack(config=config)
    store = stack.make_ramcloud_store()
    vm, qemu, port, _reg = stack.make_vm(store=store)
    touch_pages(stack, port, vm, range(20))

    def drain(env):
        yield from stack.monitor.writeback.drain()

    stack.run(drain(stack.env))
    # 16 evictions flushed in batches of 8 -> at least 2 multiwrites,
    # far fewer than 16 individual puts.
    assert store.counters["multi_writes"] >= 2
    assert store.counters["writes"] == 16


def test_sync_writeback_writes_inline(stack):
    config = FluidMemConfig(
        lru_capacity_pages=4, async_writeback=False, async_read=False
    )
    stack = build_stack(config=config)
    store = stack.make_dram_store()
    vm, qemu, port, _reg = stack.make_vm(store=store)
    touch_pages(stack, port, vm, range(8))
    # Writes happened inline: nothing pending.
    assert stack.monitor.writeback.pending_count == 0
    assert store.counters["writes"] == 4
    assert stack.monitor.profiler.has_samples(CodePath.WRITE_PAGE)


def test_write_list_steal_pending(stack):
    """A fault on a just-evicted page is resolved from the write list."""
    config = FluidMemConfig(
        lru_capacity_pages=4,
        writeback_batch_pages=64,   # keep writes pending for a while
        writeback_stale_us=1e9,
    )
    stack = build_stack(config=config)
    store = stack.make_ramcloud_store()
    vm, qemu, port, _reg = stack.make_vm(store=store)
    touch_pages(stack, port, vm, range(6))  # evicts pages 0,1 to the list
    assert stack.monitor.writeback.pending_count == 2

    touch_pages(stack, port, vm, [0])       # steal it back
    assert stack.monitor.counters["steals_resolved_locally"] == 1
    assert store.counters["reads"] == 0     # no round trip at all
    assert port.is_resident(addr(vm, 0))


def test_steal_disabled_reads_from_store(stack):
    config = FluidMemConfig(
        lru_capacity_pages=4,
        write_list_steal=False,
        writeback_batch_pages=2,
    )
    stack = build_stack(config=config)
    store = stack.make_dram_store()
    vm, qemu, port, _reg = stack.make_vm(store=store)
    touch_pages(stack, port, vm, range(8))

    def drain(env):
        yield from stack.monitor.writeback.drain()

    stack.run(drain(stack.env))
    touch_pages(stack, port, vm, [0])
    assert stack.monitor.counters["steals_resolved_locally"] == 0
    assert store.counters["reads"] == 1


def test_lru_shrink_to_capacity(stack):
    """Table III's lever: shrink the footprint at runtime."""
    vm, qemu, port, _reg = stack.make_vm()
    touch_pages(stack, port, vm, range(32))
    assert qemu.page_table.present_pages == 32

    stack.monitor.set_lru_capacity(5)

    def shrink(env):
        yield from stack.monitor.shrink_to_capacity()

    stack.run(shrink(stack.env))
    assert len(stack.monitor.lru) == 5
    assert qemu.page_table.present_pages == 5


def test_lru_grow_revives_access(stack):
    """After shrinking, growing the budget restores normal paging."""
    vm, qemu, port, _reg = stack.make_vm()
    touch_pages(stack, port, vm, range(16))
    stack.monitor.set_lru_capacity(2)

    def shrink(env):
        yield from stack.monitor.shrink_to_capacity()

    stack.run(shrink(stack.env))
    stack.monitor.set_lru_capacity(64)
    touch_pages(stack, port, vm, range(16))  # all fault back in
    assert qemu.page_table.present_pages == 16


def test_two_vms_share_one_lru(stack):
    """The LRU budget is global across VMs (paper V-A)."""
    stack.monitor.set_lru_capacity(10)
    store_a = stack.make_ramcloud_store(table_id=1)
    store_b = stack.make_ramcloud_store(table_id=2)
    vm_a, _qa, port_a, _ = stack.make_vm(store=store_a, name="vm-a")
    vm_b, _qb, port_b, _ = stack.make_vm(store=store_b, name="vm-b")
    touch_pages(stack, port_a, vm_a, range(6))
    touch_pages(stack, port_b, vm_b, range(6))
    assert len(stack.monitor.lru) == 10
    # vm-a's earliest pages were the global FIFO victims.
    assert not port_a.is_resident(addr(vm_a, 0))
    assert port_b.is_resident(addr(vm_b, 5))


def test_deregister_vm_releases_everything(stack):
    store = stack.make_dram_store()
    vm, qemu, port, registration = stack.make_vm(store=store)
    touch_pages(stack, port, vm, range(8))
    frames_used_before = stack.ops.frames.used_frames

    def dereg(env):
        yield from stack.monitor.deregister_vm(registration)

    stack.run(dereg(stack.env))
    assert qemu.page_table.present_pages == 0
    assert len(stack.monitor.lru) == 0
    assert stack.ops.frames.used_frames < frames_used_before


def test_kvm_deadlock_at_one_page(stack):
    """Table III last row: KVM cannot run with a 1-page footprint."""
    vm, qemu, port, _reg = stack.make_vm()
    assert vm.virt_mode is VirtMode.KVM
    stack.monitor.set_lru_capacity(1)

    def gen(env):
        yield from port.access(addr(vm, 0))

    proc = stack.env.process(gen(stack.env))
    with pytest.raises(VcpuDeadlockError):
        stack.env.run()


def test_full_emulation_survives_one_page(stack):
    from repro.vm import GuestVM, BootProfile, QemuProcess
    from repro.core import FluidMemoryPort
    from repro.mem import MIB

    vm = GuestVM(stack.env, "emul", memory_bytes=32 * MIB,
                 boot_profile=BootProfile(total_pages=4),
                 virt_mode=VirtMode.FULL_EMULATION)
    qemu = QemuProcess(vm)
    registration = stack.monitor.register_vm(qemu, stack.make_dram_store())
    port = FluidMemoryPort(stack.env, vm, qemu, stack.monitor, registration)
    vm.attach_port(port)
    stack.monitor.set_lru_capacity(1)
    touch_pages(stack, port, vm, range(4))
    assert qemu.page_table.present_pages == 1


def test_profiler_covers_table1_paths(stack):
    stack.monitor.set_lru_capacity(4)
    store = stack.make_ramcloud_store()
    vm, qemu, port, _reg = stack.make_vm(store=store)
    touch_pages(stack, port, vm, range(8))

    def drain(env):
        yield from stack.monitor.writeback.drain()

    stack.run(drain(stack.env))
    # Re-touch evicted pages after the flush so the read path (with
    # UFFD_COPY) runs rather than a write-list steal.
    touch_pages(stack, port, vm, [0, 1])
    profiler = stack.monitor.profiler
    for path in (CodePath.UFFD_ZEROPAGE, CodePath.UFFD_REMAP,
                 CodePath.UFFD_COPY, CodePath.READ_PAGE,
                 CodePath.INSERT_PAGE_HASH_NODE,
                 CodePath.INSERT_LRU_CACHE_NODE,
                 CodePath.UPDATE_PAGE_CACHE):
        assert profiler.has_samples(path), path


def test_hotplug_region_registration(stack):
    from repro.vm import MemoryHotplug
    from repro.mem import MIB

    vm, qemu, port, registration = stack.make_vm(memory_mib=16)
    hotplug = MemoryHotplug(qemu)
    slot = hotplug.add_memory(16 * MIB)
    stack.monitor.register_region(registration, slot.host_region)
    # An address in the hotplugged range faults through FluidMem.
    hot_addr = slot.guest_phys_start + 5 * PAGE_SIZE
    touch_pages(stack, port, vm, [])  # no-op warm

    def gen(env):
        yield from port.access(hot_addr, is_write=True)

    stack.run(gen(stack.env))
    assert port.is_resident(hot_addr)
