"""Tests for the monitor's operational stats snapshot."""

from repro.mem import PAGE_SIZE

from tests.conftest import build_stack


def test_stats_empty_monitor():
    stack = build_stack()
    stats = stack.monitor.stats()
    assert stats["resident_pages"] == 0
    assert stats["registered_vms"] == 0
    assert stats["vms"] == {}
    assert "fault_latency_avg_us" not in stats


def test_stats_reflect_activity():
    stack = build_stack()
    stack.monitor.set_lru_capacity(8)
    store = stack.make_ramcloud_store()
    vm, qemu, port, _reg = stack.make_vm(store=store)
    base = vm.first_free_guest_addr()

    def gen(env):
        for index in range(16):
            yield from port.access(base + index * PAGE_SIZE,
                                   is_write=True)
        yield from stack.monitor.writeback.drain()

    stack.run(gen(stack.env))
    stats = stack.monitor.stats()
    assert stats["resident_pages"] == 8
    assert stats["lru_capacity"] == 8
    assert stats["registered_vms"] == 1
    assert stats["tracked_pages"] == 16
    assert stats["writeback_pending"] == 0
    assert stats["fault_latency_avg_us"] > 0
    assert stats["counters"]["faults"] == 16
    vm_stats = stats["vms"][qemu.pid]
    assert vm_stats["resident_pages"] == 8
    assert vm_stats["store"] == "ramcloud"
    assert vm_stats["store_keys"] == 8


def test_stats_frames_accounting_matches():
    stack = build_stack()
    vm, qemu, port, _reg = stack.make_vm()
    base = vm.first_free_guest_addr()

    def gen(env):
        for index in range(4):
            yield from port.access(base + index * PAGE_SIZE, True)

    stack.run(gen(stack.env))
    stats = stack.monitor.stats()
    assert stats["host_frames_used"] == qemu.page_table.present_pages
    assert stats["host_frames_used"] <= stats["host_frames_total"]
