"""Deregistration must release remote memory — no store leaks."""

from repro.coord import ZooKeeperEnsemble
from repro.kv import PartitionOwner, VirtualPartitionRegistry
from repro.mem import PAGE_SIZE

from tests.conftest import build_stack


def test_deregister_releases_remote_memory():
    stack = build_stack()
    stack.monitor.set_lru_capacity(4)
    store = stack.make_ramcloud_store()
    vm, qemu, port, registration = stack.make_vm(store=store)
    base = vm.first_free_guest_addr()

    def gen(env):
        for index in range(16):
            yield from port.access(base + index * PAGE_SIZE,
                                   is_write=True)
        yield from stack.monitor.writeback.drain()

    stack.run(gen(stack.env))
    assert store.stored_keys() >= 12  # evicted pages live remotely

    def dereg(env):
        yield from stack.monitor.deregister_vm(registration)

    stack.run(dereg(stack.env))
    assert store.stored_keys() == 0   # remote memory fully reclaimed
    assert len(stack.monitor.tracker) == 0
    assert stack.ops.frames.used_frames == 0
    assert stack.monitor.counters["remote_pages_released"] >= 12


def test_deregister_one_vm_leaves_the_other_untouched():
    stack = build_stack()
    stack.monitor.set_lru_capacity(8)
    store_a = stack.make_ramcloud_store(table_id=1)
    store_b = stack.make_ramcloud_store(table_id=2)
    vm_a, _qa, port_a, reg_a = stack.make_vm(store=store_a, name="a")
    vm_b, _qb, port_b, reg_b = stack.make_vm(store=store_b, name="b")

    def gen(env):
        for vm, port in ((vm_a, port_a), (vm_b, port_b)):
            base = vm.first_free_guest_addr()
            for index in range(10):
                yield from port.access(base + index * PAGE_SIZE, True)
        yield from stack.monitor.writeback.drain()
        yield from stack.monitor.deregister_vm(reg_a)

    stack.run(gen(stack.env))
    assert store_a.stored_keys() == 0
    assert store_b.stored_keys() > 0          # B's remote pages intact
    # B still works end to end.
    base_b = vm_b.first_free_guest_addr()

    def touch_b(env):
        yield from port_b.access(base_b)

    stack.run(touch_b(stack.env))
    assert port_b.is_resident(base_b)


def test_deregister_releases_the_partition_lease():
    """VM teardown gives its virtual-partition index back — churn of
    register/deregister cycles must not exhaust the 4096-index space."""
    stack = build_stack()
    registry = VirtualPartitionRegistry(
        ZooKeeperEnsemble(replica_count=1).connect()
    )
    indexes = set()
    for cycle in range(8):
        lease = registry.lease(
            PartitionOwner("hv-1", pid=100 + cycle, nonce=cycle)
        )
        indexes.add(lease.index)
        vm, qemu, port, registration = stack.make_vm(
            name=f"vm{cycle}", partition_lease=lease
        )
        assert registration.partition_lease is lease
        base = vm.first_free_guest_addr()

        def lifecycle(env, port=port, base=base, reg=registration):
            yield from port.access(base, is_write=True)
            yield from stack.monitor.deregister_vm(reg)

        stack.run(lifecycle(stack.env))
        assert lease.released
        assert registry.owner_of(lease.index) is None
    assert registry.allocated_count() == 0
    assert len(indexes) == 8  # distinct owners got distinct slots
