"""Focused tests for the asynchronous write-back queue."""

import pytest

from repro.core import WritebackEntry, WritebackQueue
from repro.core.writeback import StealResult
from repro.errors import FluidMemError
from repro.kv import DramStore
from repro.mem import PAGE_SIZE, FrameAllocator, Page, PageTable
from repro.sim import Environment


class FakeRegistration:
    """Minimal registration: just a store."""

    def __init__(self, store):
        self.store = store


@pytest.fixture
def env():
    return Environment()


def make_queue(env, batch=4, stale=1000.0):
    table = PageTable("buffer")
    frames = FrameAllocator(1024)
    queue = WritebackQueue(env, table, frames, batch_pages=batch,
                           stale_us=stale)
    return queue, table, frames


import itertools

_slots = itertools.count()


def buffered_entry(env, table, frames, key, registration):
    """Simulate an eviction: page parked in the buffer with a frame."""
    vaddr = 0x600000000000 + next(_slots) * PAGE_SIZE
    frame = frames.allocate()
    page = Page(vaddr=vaddr)
    table.map(vaddr, frame, page)
    return WritebackEntry(key, page, vaddr, registration, env.now)


def test_flush_triggers_at_batch_size(env):
    queue, table, frames = make_queue(env, batch=4)
    registration = FakeRegistration(DramStore(env))
    for key in range(4):
        queue.enqueue(buffered_entry(env, table, frames, key, registration))
    env.run()
    assert queue.pending_count == 0
    assert registration.store.stored_keys() == 4
    assert frames.used_frames == 0  # buffer copies released
    assert queue.counters["batches"] == 1


def test_below_batch_stays_pending_until_stale(env):
    queue, table, frames = make_queue(env, batch=8, stale=100.0)
    registration = FakeRegistration(DramStore(env))
    queue.enqueue(buffered_entry(env, table, frames, 1, registration))
    env.run()
    assert queue.pending_count == 1  # not yet stale, below batch

    def later(env):
        yield env.timeout(200.0)
        queue.check_stale()

    env.process(later(env))
    env.run()
    assert queue.pending_count == 0
    assert registration.store.contains(1)


def test_duplicate_enqueue_rejected(env):
    queue, table, frames = make_queue(env, batch=8)
    registration = FakeRegistration(DramStore(env))
    queue.enqueue(buffered_entry(env, table, frames, 1, registration))
    with pytest.raises(FluidMemError):
        queue.enqueue(
            buffered_entry(env, table, frames, 1, registration)
        )


def test_steal_pending_removes_entry(env):
    queue, table, frames = make_queue(env, batch=8)
    registration = FakeRegistration(DramStore(env))
    entry = buffered_entry(env, table, frames, 1, registration)
    queue.enqueue(entry)
    result = queue.steal(1)
    assert result.state == StealResult.PENDING
    assert result.entry is entry
    assert queue.pending_count == 0
    assert not registration.store.contains(1)  # never written


def test_steal_missing_returns_none(env):
    queue, _table, _frames = make_queue(env)
    assert queue.steal(42) is None


def test_steal_in_flight_waits_for_completion(env):
    queue, table, frames = make_queue(env, batch=2)
    registration = FakeRegistration(DramStore(env))
    results = {}

    def producer(env):
        # Two entries trigger a flush; steal while the write is in the
        # store's simulated latency window.
        queue.enqueue(buffered_entry(env, table, frames, 1, registration))
        queue.enqueue(buffered_entry(env, table, frames, 2, registration))
        yield env.timeout(0.01)
        result = queue.steal(1)
        results["state"] = result.state
        if result.completion is not None and not result.completion.processed:
            yield result.completion
        results["done_at"] = env.now

    env.process(producer(env))
    env.run()
    assert results["state"] == StealResult.IN_FLIGHT
    assert results["done_at"] > 0.01
    assert registration.store.contains(1)  # the write did complete


def test_drain_flushes_everything(env):
    queue, table, frames = make_queue(env, batch=100)
    registration = FakeRegistration(DramStore(env))
    for key in range(10):
        queue.enqueue(buffered_entry(env, table, frames, key, registration))

    def drain(env):
        yield from queue.drain()

    proc = env.process(drain(env))
    env.run()
    assert queue.pending_count == 0
    assert queue.in_flight_count == 0
    assert registration.store.stored_keys() == 10


def test_batches_group_by_registration(env):
    """Multi-write batches never mix VMs (per-region multiwrite)."""
    queue, table, frames = make_queue(env, batch=4)
    reg_a = FakeRegistration(DramStore(env))
    reg_b = FakeRegistration(DramStore(env))
    queue.enqueue(buffered_entry(env, table, frames, 1, reg_a))
    queue.enqueue(buffered_entry(env, table, frames, 2, reg_b))
    queue.enqueue(buffered_entry(env, table, frames, 3, reg_a))
    queue.enqueue(buffered_entry(env, table, frames, 4, reg_b))
    env.run()
    assert reg_a.store.stored_keys() == 2
    assert reg_b.store.stored_keys() == 2
    assert sorted([reg_a.store.contains(1), reg_a.store.contains(3)]) == \
        [True, True]


def test_batch_validation(env):
    table = PageTable()
    frames = FrameAllocator(4)
    with pytest.raises(FluidMemError):
        WritebackQueue(env, table, frames, batch_pages=0, stale_us=10.0)
