"""Tests for the provider policy layer and the autoscaler."""

import pytest

from repro.core import (
    AutoscaleConfig,
    Autoscaler,
    FluidMemConfig,
    SharePolicy,
    ShareSpec,
)
from repro.errors import FluidMemError
from repro.mem import PAGE_SIZE

from tests.conftest import build_stack


def touch(stack, port, vm, indexes):
    base = vm.first_free_guest_addr()

    def gen(env):
        for index in indexes:
            yield from port.access(base + index * PAGE_SIZE,
                                   is_write=True)

    stack.run(gen(stack.env))


# ------------------------------------------------------------- ShareSpec

def test_share_spec_validation():
    with pytest.raises(FluidMemError):
        ShareSpec(weight=0)
    with pytest.raises(FluidMemError):
        ShareSpec(min_pages=-1)
    with pytest.raises(FluidMemError):
        ShareSpec(min_pages=10, max_pages=5)


# ------------------------------------------------------------ SharePolicy

def make_two_tenants(lru=16):
    stack = build_stack()
    stack.monitor.set_lru_capacity(lru)
    policy = SharePolicy()
    stack.monitor.victim_policy = policy
    vm_a, qa, port_a, reg_a = stack.make_vm(
        store=stack.make_ramcloud_store(table_id=1), name="a")
    vm_b, qb, port_b, reg_b = stack.make_vm(
        store=stack.make_ramcloud_store(table_id=2), name="b")
    return stack, policy, (vm_a, port_a, reg_a), (vm_b, port_b, reg_b)


def test_weighted_eviction_prefers_heavier_user():
    stack, policy, a, b = make_two_tenants(lru=16)
    vm_a, port_a, reg_a = a
    vm_b, port_b, reg_b = b
    # Equal weights: tenant A floods, so A's pages become the victims.
    touch(stack, port_b, vm_b, range(4))
    touch(stack, port_a, vm_a, range(20))
    assert stack.monitor.lru.count_for(reg_b) == 4
    assert stack.monitor.lru.count_for(reg_a) == 12


def test_weight_shifts_entitlement():
    stack, policy, a, b = make_two_tenants(lru=16)
    vm_a, port_a, reg_a = a
    vm_b, port_b, reg_b = b
    # B gets 3x the weight; interleave to give the policy choices.
    policy.set_share(reg_b, ShareSpec(weight=3.0))
    for round_index in range(10):
        touch(stack, port_a, vm_a, range(round_index * 2,
                                         round_index * 2 + 2))
        touch(stack, port_b, vm_b, range(round_index * 2,
                                         round_index * 2 + 2))
    count_a = stack.monitor.lru.count_for(reg_a)
    count_b = stack.monitor.lru.count_for(reg_b)
    assert count_b > count_a


def test_min_pages_guarantee_protects_tenant():
    stack, policy, a, b = make_two_tenants(lru=16)
    vm_a, port_a, reg_a = a
    vm_b, port_b, reg_b = b
    policy.set_share(reg_b, ShareSpec(min_pages=6))
    touch(stack, port_b, vm_b, range(6))
    touch(stack, port_a, vm_a, range(40))
    # B keeps its guaranteed 6 pages despite A's flood.
    assert stack.monitor.lru.count_for(reg_b) == 6


def test_max_pages_cap_enforced_even_below_global_budget():
    stack, policy, a, _b = make_two_tenants(lru=64)
    vm_a, port_a, reg_a = a
    policy.set_share(reg_a, ShareSpec(max_pages=5))
    touch(stack, port_a, vm_a, range(20))
    # Global budget has room, but A is capped at 5 resident pages.
    assert stack.monitor.lru.count_for(reg_a) <= 5
    assert stack.monitor.counters["cap_evictions"] > 0


def test_policy_falls_back_to_fifo_when_all_protected():
    stack, policy, a, b = make_two_tenants(lru=8)
    vm_a, port_a, reg_a = a
    vm_b, port_b, reg_b = b
    policy.set_share(reg_a, ShareSpec(min_pages=1000))
    policy.set_share(reg_b, ShareSpec(min_pages=1000))
    touch(stack, port_a, vm_a, range(6))
    touch(stack, port_b, vm_b, range(6))
    # Overcommitted guarantees: FIFO fallback keeps the system moving.
    assert len(stack.monitor.lru) == 8


def test_policy_spec_lookup_and_forget():
    policy = SharePolicy()
    sentinel = object()
    assert policy.spec_for(sentinel) == ShareSpec()
    policy.set_share(sentinel, ShareSpec(weight=2.0))
    assert policy.spec_for(sentinel).weight == 2.0
    policy.forget(sentinel)
    assert policy.spec_for(sentinel).weight == 1.0


# -------------------------------------------------------------- Autoscaler

def test_autoscale_config_validation():
    with pytest.raises(FluidMemError):
        AutoscaleConfig(interval_us=0)
    with pytest.raises(FluidMemError):
        AutoscaleConfig(grow_threshold=1.0, shrink_threshold=2.0)
    with pytest.raises(FluidMemError):
        AutoscaleConfig(step_pages=0)
    with pytest.raises(FluidMemError):
        AutoscaleConfig(min_pages=10, max_pages=5)


def test_autoscaler_grows_under_thrash():
    stack = build_stack(config=FluidMemConfig(lru_capacity_pages=8))
    vm, _qemu, port, _reg = stack.make_vm(store=stack.make_dram_store())
    scaler = Autoscaler(
        stack.env, stack.monitor,
        AutoscaleConfig(interval_us=500.0, grow_threshold=0.5,
                        shrink_threshold=0.01, step_pages=16,
                        min_pages=8, max_pages=256),
    )
    scaler.start()
    base = vm.first_free_guest_addr()

    def thrash(env):
        for round_index in range(40):
            for index in range(24):  # WSS 24 > budget 8: fault storm
                yield from port.access(base + index * PAGE_SIZE, True)

    stack.env.process(thrash(stack.env))
    stack.env.run(until=stack.env.now + 40_000.0)
    scaler.stop()
    stack.env.run()
    # It grew while the VM thrashed (then harvested the idle DRAM back
    # once the working set fit and faults stopped — the full cycle).
    assert stack.monitor.counters["autoscale_grows"] > 0
    peak = max(capacity for _t, capacity, _r in scaler.history)
    assert peak >= 24  # grew past the 24-page working set
    assert stack.monitor.counters["autoscale_shrinks"] > 0
    assert stack.monitor.lru.capacity == 8  # harvested back to the floor


def test_autoscaler_shrinks_when_idle():
    stack = build_stack(config=FluidMemConfig(lru_capacity_pages=128))
    vm, qemu, port, _reg = stack.make_vm(store=stack.make_dram_store())
    touch(stack, port, vm, range(64))
    scaler = Autoscaler(
        stack.env, stack.monitor,
        AutoscaleConfig(interval_us=500.0, grow_threshold=10.0,
                        shrink_threshold=0.5, step_pages=32,
                        min_pages=16, max_pages=256),
    )
    scaler.start()
    stack.env.run(until=stack.env.now + 10_000.0)  # idle VM
    scaler.stop()
    stack.env.run()
    assert stack.monitor.lru.capacity == 16   # floored at min_pages
    assert qemu.page_table.present_pages <= 16
    assert stack.monitor.counters["autoscale_shrinks"] > 0
    assert len(scaler.history) > 0


def test_autoscaler_lifecycle():
    stack = build_stack()
    scaler = Autoscaler(stack.env, stack.monitor)
    assert not scaler.running
    scaler.start()
    assert scaler.running
    with pytest.raises(FluidMemError):
        scaler.start()
    scaler.stop()
    stack.env.run()
    assert not scaler.running
    scaler.stop()  # idempotent
