"""Tests for the extensions: monitor prefetching and VM migration."""

import pytest

from repro.core import FluidMemConfig, Monitor, migrate_vm
from repro.errors import FluidMemError
from repro.kernel import UffdLatency, UffdOps, Userfaultfd
from repro.mem import MIB, PAGE_SIZE, FrameAllocator
from repro.sim import RandomStreams

from tests.conftest import build_stack


# ---------------------------------------------------------------- prefetch

def make_prefetch_stack(prefetch_pages, lru=8):
    config = FluidMemConfig(
        lru_capacity_pages=lru,
        prefetch_pages=prefetch_pages,
        writeback_batch_pages=4,
    )
    return build_stack(config=config)


def run_sequential(stack, passes=2, pages=24):
    vm, qemu, port, _reg = stack.make_vm(store=stack.make_dram_store())
    base = vm.first_free_guest_addr()

    def gen(env):
        for _ in range(passes):
            for index in range(pages):
                yield from port.access(base + index * PAGE_SIZE,
                                       is_write=True)
        return env.now

    elapsed = stack.run(gen(stack.env))
    return elapsed, vm, port


def test_prefetch_off_by_default():
    stack = build_stack()
    assert stack.monitor.config.prefetch_pages == 0
    run_sequential(stack)
    assert stack.monitor.counters["prefetches_issued"] == 0


def test_prefetch_issues_and_completes():
    stack = make_prefetch_stack(prefetch_pages=4)
    run_sequential(stack, passes=3)
    counters = stack.monitor.counters
    assert counters["prefetches_issued"] > 0
    assert counters["prefetches_completed"] > 0


def test_prefetch_reduces_demand_faults_on_sequential_scan():
    plain = make_prefetch_stack(prefetch_pages=0)
    t_plain, _vm, _port = run_sequential(plain, passes=3)
    demand_plain = plain.monitor.counters["remote_reads"]

    fetching = make_prefetch_stack(prefetch_pages=4)
    t_fetch, _vm, _port = run_sequential(fetching, passes=3)
    demand_fetch = fetching.monitor.counters["remote_reads"]

    assert demand_fetch < demand_plain
    assert t_fetch < t_plain  # sequential scans get faster


def test_prefetch_respects_region_bounds():
    """Prefetching at the end of the region must not fault outside."""
    stack = make_prefetch_stack(prefetch_pages=8, lru=4)
    vm, qemu, port, _reg = stack.make_vm(memory_mib=1)
    base = vm.first_free_guest_addr()
    last_page = vm.memory_bytes - PAGE_SIZE

    def gen(env):
        for _ in range(2):
            for addr in (last_page - PAGE_SIZE, last_page):
                yield from port.access(addr, is_write=True)
            for index in range(8):
                yield from port.access(base + index * PAGE_SIZE, True)

    stack.run(gen(stack.env))  # must not raise


def test_prefetch_config_validation():
    with pytest.raises(FluidMemError):
        FluidMemConfig(prefetch_pages=-1)


def test_prefetch_data_integrity():
    stack = make_prefetch_stack(prefetch_pages=4, lru=6)
    vm, qemu, port, _reg = stack.make_vm(store=stack.make_dram_store())
    base = vm.first_free_guest_addr()

    def gen(env):
        for index in range(18):
            page = yield from port.access(base + index * PAGE_SIZE,
                                          is_write=True)
        versions = {}
        for index in range(18):
            yield from port.access(base + index * PAGE_SIZE)
            host = qemu.guest_to_host(base + index * PAGE_SIZE)
            versions[index] = qemu.page_table.entry(host).page.version
        assert all(v >= 1 for v in versions.values())

    stack.run(gen(stack.env))


# --------------------------------------------------------------- migration

def make_second_monitor(stack):
    streams = RandomStreams(seed=99)
    uffd = Userfaultfd(stack.env, UffdLatency(), streams.stream("uffd2"))
    ops = UffdOps(stack.env, UffdLatency(), streams.stream("ops2"),
                  FrameAllocator.for_bytes(128 * MIB))
    monitor = Monitor(stack.env, uffd, ops,
                      config=FluidMemConfig(lru_capacity_pages=64),
                      rng=streams.stream("monitor2"),
                      name="dest-monitor")
    monitor.start()
    return monitor


def migrate(stack, vm, registration, dest):
    def gen(env):
        report = yield from migrate_vm(
            vm, stack.monitor, registration, dest
        )
        return report

    return stack.run(gen(stack.env))


def test_migration_moves_residency():
    stack = build_stack()
    store = stack.make_ramcloud_store()
    vm, qemu, port, registration = stack.make_vm(store=store,
                                                 boot_pages=8)
    base = vm.first_free_guest_addr()

    def warm(env):
        for index in range(16):
            yield from vm.require_port().access(
                base + index * PAGE_SIZE, is_write=True
            )

    stack.run(warm(stack.env))
    resident_before = qemu.page_table.present_pages
    assert resident_before > 0

    dest = make_second_monitor(stack)
    report = migrate(stack, vm, registration, dest)

    # Source is clean: no pages, no registration.
    assert qemu.page_table.present_pages == 0
    assert len(stack.monitor.lru) == 0
    assert report.pages_pushed == resident_before
    assert report.blackout_us > 0
    # Everything is in the store, nothing resident at the dest yet
    # (post-copy: pages come back on demand).
    assert store.stored_keys() >= resident_before
    assert report.dest_qemu.page_table.present_pages == 0


def test_migrated_vm_faults_pages_back_with_data():
    stack = build_stack()
    store = stack.make_dram_store()
    vm, qemu, port, registration = stack.make_vm(store=store,
                                                 boot_pages=8)
    base = vm.first_free_guest_addr()
    versions = {}

    def warm(env):
        for index in range(12):
            page = yield from vm.require_port().access(
                base + index * PAGE_SIZE, is_write=True
            )
            host = qemu.guest_to_host(base + index * PAGE_SIZE)
            versions[index] = qemu.page_table.entry(host).page

    stack.run(warm(stack.env))
    dest = make_second_monitor(stack)
    report = migrate(stack, vm, registration, dest)

    def touch_after(env):
        port = vm.require_port()
        for index in range(12):
            yield from port.access(base + index * PAGE_SIZE)
            host = report.dest_qemu.guest_to_host(
                base + index * PAGE_SIZE
            )
            page = report.dest_qemu.page_table.entry(host).page
            # Identity preserved: the same Page object came back via
            # the shared store — no data was copied or lost.
            assert page is versions[index]

    stack.run(touch_after(stack.env))
    # The destination resolved them as store reads, not zero pages.
    assert dest.counters["remote_reads"] == 12
    assert dest.counters["zero_page_faults"] == 0


def test_migration_rejects_same_monitor():
    stack = build_stack()
    vm, _qemu, _port, registration = stack.make_vm()

    def gen(env):
        yield from migrate_vm(vm, stack.monitor, registration,
                              stack.monitor)

    stack.env.process(gen(stack.env))
    with pytest.raises(FluidMemError):
        stack.env.run()


def test_migration_rejects_cross_store():
    stack = build_stack()
    vm, _qemu, _port, registration = stack.make_vm(
        store=stack.make_dram_store()
    )
    dest = make_second_monitor(stack)
    other_store = stack.make_dram_store()

    def gen(env):
        yield from migrate_vm(vm, stack.monitor, registration, dest,
                              dest_store=other_store)

    stack.env.process(gen(stack.env))
    with pytest.raises(FluidMemError):
        stack.env.run()


def test_double_detach_rejected():
    stack = build_stack()
    vm, _qemu, _port, registration = stack.make_vm()
    dest = make_second_monitor(stack)
    migrate(stack, vm, registration, dest)

    def gen(env):
        yield from stack.monitor.detach_vm(registration)

    stack.env.process(gen(stack.env))
    from repro.errors import MonitorStateError
    with pytest.raises(MonitorStateError):
        stack.env.run()


def test_migration_preserves_hotplug_layout():
    from repro.vm import MemoryHotplug

    stack = build_stack()
    store = stack.make_dram_store()
    vm, qemu, port, registration = stack.make_vm(store=store,
                                                 memory_mib=16)
    hotplug = MemoryHotplug(qemu)
    slot = hotplug.add_memory(16 * MIB)
    stack.monitor.register_region(registration, slot.host_region)
    hot_addr = slot.guest_phys_start + 3 * PAGE_SIZE

    def warm(env):
        yield from port.access(hot_addr, is_write=True)

    stack.run(warm(stack.env))
    dest = make_second_monitor(stack)
    report = migrate(stack, vm, registration, dest)

    def after(env):
        yield from vm.require_port().access(hot_addr)

    stack.run(after(stack.env))
    host = report.dest_qemu.guest_to_host(hot_addr)
    assert host in report.dest_qemu.page_table
