"""Failure injection: what breaks, and how loudly.

A production system's error paths deserve the same scrutiny as its
happy paths: data loss must be loud, resource exhaustion must be
attributable, and infrastructure failures must surface as the right
domain error.
"""

import pytest

from repro.core import FluidMemConfig
from repro.errors import (
    FluidMemError,
    KVError,
    MonitorStateError,
    OutOfFramesError,
)
from repro.kv import MemcachedServer, MemcachedStore, ReplicatedStore
from repro.kv.memcached import chunk_class_for
from repro.mem import PAGE_SIZE
from repro.net import IPOIB, Fabric
from repro.sim import RandomStreams

from tests.conftest import build_stack


def touch(stack, port, vm, indexes, is_write=True):
    base = vm.first_free_guest_addr()

    def gen(env):
        for index in indexes:
            yield from port.access(base + index * PAGE_SIZE,
                                   is_write=is_write)

    stack.run(gen(stack.env))


def test_memcached_eviction_is_loud_data_loss():
    """An undersized Memcached silently drops pages; the monitor must
    turn the resulting miss into an explicit FluidMem error."""
    stack = build_stack(config=FluidMemConfig(
        lru_capacity_pages=4, writeback_batch_pages=2,
    ))
    fabric = Fabric(stack.env, RandomStreams(seed=3))
    fabric.add_host("hypervisor")
    fabric.add_host("memcached")
    fabric.connect("hypervisor", "memcached", IPOIB)
    # One slab only: it evicts almost immediately.
    server = MemcachedServer(memory_bytes=1024 * 1024)
    chunk = chunk_class_for(PAGE_SIZE)
    capacity = (1024 * 1024) // chunk
    store = MemcachedStore(stack.env, fabric, "hypervisor", "memcached",
                           server)
    vm, _qemu, port, _reg = stack.make_vm(store=store)

    def gen(env):
        base = vm.first_free_guest_addr()
        # Evict far more pages than memcached can hold...
        for index in range(capacity + 16):
            yield from port.access(base + index * PAGE_SIZE, True)
        yield from stack.monitor.writeback.drain()
        assert server.evictions > 0
        # ...then fault the earliest one back: its data is gone.
        yield from port.access(base)

    stack.env.process(gen(stack.env))
    with pytest.raises(FluidMemError, match="remote memory lost page"):
        stack.env.run()


def test_replication_prevents_the_same_loss():
    """The §III replication customization turns the crash into a
    failover instead of an outage."""
    stack = build_stack(config=FluidMemConfig(lru_capacity_pages=4))
    replicas = [stack.make_dram_store(), stack.make_dram_store()]
    store = ReplicatedStore(stack.env, replicas)
    vm, _qemu, port, _reg = stack.make_vm(store=store)
    touch(stack, port, vm, range(12))

    def drain(env):
        yield from stack.monitor.writeback.drain()

    stack.run(drain(stack.env))
    store.fail_replica(0)
    touch(stack, port, vm, [0])  # reads fail over to replica 1
    assert port.is_resident(vm.first_free_guest_addr())


def test_host_frame_exhaustion_is_attributable():
    # An LRU budget larger than host DRAM is a misconfiguration: the
    # resident set grows past the frame pool and fails attributably.
    stack = build_stack(
        config=FluidMemConfig(lru_capacity_pages=4096),
        host_dram_mib=1,  # 256 frames total
    )
    vm, _qemu, port, _reg = stack.make_vm()
    base = vm.first_free_guest_addr()

    def gen(env):
        for index in range(512):
            yield from port.access(base + index * PAGE_SIZE, True)

    stack.env.process(gen(stack.env))
    with pytest.raises(OutOfFramesError):
        stack.env.run()


def test_monitor_double_start_rejected():
    stack = build_stack()
    with pytest.raises(MonitorStateError):
        stack.monitor.start()


def test_fault_on_unregistered_region_is_uffd_error():
    from repro.errors import UffdError

    stack = build_stack()
    with pytest.raises(UffdError):
        stack.monitor.uffd.raise_fault(0xDEAD000, pid=1, is_write=False)


def test_deregistered_vm_faults_rejected():
    stack = build_stack()
    vm, _qemu, port, registration = stack.make_vm()
    touch(stack, port, vm, range(4))

    def dereg(env):
        yield from stack.monitor.deregister_vm(registration)

    stack.run(dereg(stack.env))
    # The uffd region is gone: a fresh fault cannot even be raised.
    from repro.errors import UffdError
    with pytest.raises(UffdError):
        stack.monitor.uffd.raise_fault(
            registration.qemu.guest_to_host(vm.first_free_guest_addr()),
            registration.qemu.pid,
            False,
        )


def test_store_failure_mid_writeback_propagates():
    """A store that dies mid-flush surfaces, not silently drops pages."""
    stack = build_stack(config=FluidMemConfig(
        lru_capacity_pages=4, writeback_batch_pages=4,
    ))
    store = ReplicatedStore(
        stack.env, [stack.make_dram_store()]
    )
    vm, _qemu, port, _reg = stack.make_vm(store=store)
    touch(stack, port, vm, range(4))
    store.fail_replica(0)  # everything is now down

    def gen(env):
        base = vm.first_free_guest_addr()
        for index in range(4, 12):
            yield from port.access(base + index * PAGE_SIZE, True)
        yield from stack.monitor.writeback.drain()

    stack.env.process(gen(stack.env))
    with pytest.raises(KVError, match="all replicas are down"):
        stack.env.run()
