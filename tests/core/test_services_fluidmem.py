"""Table III behaviours: service responsiveness under footprint squeeze."""

from repro.core import FluidMemConfig
from repro.vm import (
    ICMP_WORKING_SET_PAGES,
    SSH_WORKING_SET_PAGES,
    IcmpService,
    SshService,
)

from tests.conftest import build_stack


def make_booted_vm(lru_pages, boot_pages=600):
    stack = build_stack(
        config=FluidMemConfig(lru_capacity_pages=max(lru_pages, boot_pages)),
        host_dram_mib=512,
    )
    vm, qemu, port, reg = stack.make_vm(
        memory_mib=64, boot_pages=boot_pages
    )
    # Now squeeze to the target footprint (the Table III procedure).
    stack.monitor.set_lru_capacity(lru_pages)

    def shrink(env):
        yield from stack.monitor.shrink_to_capacity()

    stack.run(shrink(stack.env))
    assert stack.monitor.resident_pages <= lru_pages
    return stack, vm, port


def attempt(stack, service):
    def gen(env):
        result = yield from service.attempt()
        return result

    return stack.run(gen(stack.env))


def test_ssh_works_at_180_pages():
    stack, vm, _port = make_booted_vm(lru_pages=180)
    assert attempt(stack, SshService(stack.env, vm)) is True


def test_ssh_fails_at_80_pages():
    stack, vm, _port = make_booted_vm(lru_pages=80)
    assert attempt(stack, SshService(stack.env, vm)) is False


def test_icmp_works_at_80_pages():
    stack, vm, _port = make_booted_vm(lru_pages=80)
    assert attempt(stack, IcmpService(stack.env, vm)) is True


def test_icmp_fails_below_its_working_set():
    stack, vm, _port = make_booted_vm(lru_pages=32)
    assert attempt(stack, IcmpService(stack.env, vm)) is False


def test_revival_by_growing_footprint():
    """Table III's last column: increasing the footprint revives the VM."""
    stack, vm, _port = make_booted_vm(lru_pages=80)
    ssh = SshService(stack.env, vm)
    assert attempt(stack, ssh) is False
    stack.monitor.set_lru_capacity(600)
    assert attempt(stack, ssh) is True


def test_working_set_constants_bracket_table3():
    # SSH works at 180 but not 80 => its WS is in (80, 180].
    assert 80 < SSH_WORKING_SET_PAGES <= 180
    # ICMP works at 80 => its WS is <= 80.
    assert ICMP_WORKING_SET_PAGES <= 80


def test_footprint_shrink_reaches_near_zero():
    """FluidMem can squeeze far below the balloon's 20480-page floor."""
    stack, vm, port = make_booted_vm(lru_pages=5)
    assert stack.monitor.resident_pages <= 5
    # The VM is still *alive*: touching memory faults pages back in.
    def gen(env):
        yield from port.access(vm.boot_page_addresses()[0])

    stack.run(gen(stack.env))
    assert stack.monitor.resident_pages <= 5
