"""Tests for Profiler, FluidMemConfig, and the libuserfault app."""

import pytest

from repro.core import CodePath, FluidMemConfig, Profiler, UserfaultApp
from repro.core.config import MonitorLatency
from repro.errors import FluidMemError
from repro.kv import DramStore

from tests.conftest import build_stack


# ------------------------------------------------------------------ Profiler

def test_profiler_records_and_tables():
    profiler = Profiler()
    for value in (1.0, 2.0, 3.0):
        profiler.record(CodePath.UFFD_COPY, value)
    profiler.record(CodePath.READ_PAGE, 10.0)
    rows = profiler.table()
    names = [row[0] for row in rows]
    # Table I order: COPY before READ_PAGE.
    assert names == ["UFFD_COPY", "READ_PAGE"]
    copy_row = rows[0]
    assert copy_row[1] == pytest.approx(2.0)   # avg
    assert copy_row[3] == pytest.approx(3.0, abs=0.1)  # p99


def test_profiler_table_skips_unrecorded_paths():
    profiler = Profiler()
    profiler.record(CodePath.WAKE, 1.0)  # not a Table I path
    assert profiler.table() == []
    assert profiler.has_samples(CodePath.WAKE)
    assert not profiler.has_samples(CodePath.READ_PAGE)


def test_profiler_recorder_lookup():
    profiler = Profiler()
    with pytest.raises(KeyError):
        profiler.recorder(CodePath.READ_PAGE)
    profiler.record(CodePath.READ_PAGE, 5.0)
    assert profiler.recorder(CodePath.READ_PAGE).mean == 5.0


def test_profiler_reset():
    profiler = Profiler()
    profiler.record(CodePath.READ_PAGE, 5.0)
    profiler.reset()
    assert not profiler.has_samples(CodePath.READ_PAGE)


def test_table1_paths_are_the_papers_eight():
    assert [p.value for p in CodePath.table1_paths()] == [
        "UPDATE_PAGE_CACHE",
        "INSERT_PAGE_HASH_NODE",
        "INSERT_LRU_CACHE_NODE",
        "UFFD_ZEROPAGE",
        "UFFD_REMAP",
        "UFFD_COPY",
        "READ_PAGE",
        "WRITE_PAGE",
    ]


# ----------------------------------------------------------- FluidMemConfig

def test_config_validation():
    with pytest.raises(FluidMemError):
        FluidMemConfig(lru_capacity_pages=0)
    with pytest.raises(FluidMemError):
        FluidMemConfig(writeback_batch_pages=0)
    with pytest.raises(FluidMemError):
        FluidMemConfig(writeback_stale_us=0)


def test_config_with_optimizations():
    base = FluidMemConfig()
    variant = base.with_optimizations(async_read=False,
                                      async_writeback=True)
    assert not variant.async_read
    assert variant.async_writeback
    assert variant.lru_capacity_pages == base.lru_capacity_pages


def test_config_default_table2():
    config = FluidMemConfig.default_table2()
    assert not config.async_read
    assert not config.async_writeback
    assert config.zero_page_tracker  # the tracker stays on


def test_config_is_frozen():
    config = FluidMemConfig()
    with pytest.raises(Exception):
        config.async_read = False


def test_monitor_latency_defaults_match_table1():
    latency = MonitorLatency()
    assert latency.update_page_cache_mean == 2.56
    assert latency.insert_page_hash_mean == 2.58
    assert latency.insert_lru_mean == 2.87


# ------------------------------------------------------------- UserfaultApp

def test_app_region_bounds():
    stack = build_stack()
    app = UserfaultApp(stack.env, stack.monitor, DramStore(stack.env),
                       region_pages=4)
    with pytest.raises(FluidMemError):
        app.addr(4)
    with pytest.raises(FluidMemError):
        app.addr(-1)
    with pytest.raises(FluidMemError):
        UserfaultApp(stack.env, stack.monitor, DramStore(stack.env),
                     region_pages=0)


def test_app_faults_through_monitor():
    stack = build_stack()
    stack.monitor.set_lru_capacity(4)
    store = DramStore(stack.env)
    app = UserfaultApp(stack.env, stack.monitor, store, region_pages=8)

    def gen(env):
        for index in range(8):
            yield from app.access(index, is_write=True)
        # page 0 was evicted; re-access reads it back
        assert not app.is_resident(0)
        yield from app.access(0)

    stack.run(gen(stack.env))
    assert app.is_resident(0)
    assert stack.monitor.counters["faults"] == 9


def test_app_hits_are_free():
    stack = build_stack()
    app = UserfaultApp(stack.env, stack.monitor, DramStore(stack.env),
                       region_pages=4)

    def gen(env):
        yield from app.access(0, is_write=True)
        before = env.now
        yield from app.access(0)
        return env.now - before

    assert stack.run(gen(stack.env)) == 0.0


def test_two_apps_isolated():
    stack = build_stack()
    store_a, store_b = DramStore(stack.env), DramStore(stack.env)
    app_a = UserfaultApp(stack.env, stack.monitor, store_a, region_pages=4)
    app_b = UserfaultApp(stack.env, stack.monitor, store_b, region_pages=4)
    assert app_a.pid != app_b.pid

    stack.monitor.set_lru_capacity(2)

    def gen(env):
        for index in range(4):
            yield from app_a.access(index, is_write=True)
        for index in range(4):
            yield from app_b.access(index, is_write=True)
        yield from stack.monitor.writeback.drain()

    stack.run(gen(stack.env))
    # Evictions landed in each app's own store.
    assert store_a.stored_keys() > 0
    assert store_b.stored_keys() > 0
