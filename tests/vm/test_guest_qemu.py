"""Tests for GuestVM, BootProfile, QemuProcess, hotplug, balloon."""

import random

import pytest

from repro.errors import VmError
from repro.kernel import GuestMemoryManager
from repro.mem import GIB, MIB, PAGE_SIZE, PageKind
from repro.sim import Environment
from repro.vm import (
    BALLOON_FLOOR_PAGES,
    BalloonDriver,
    BootProfile,
    GuestVM,
    MemoryHotplug,
    PAPER_BOOT_PAGES,
    QemuProcess,
    SwapMemoryPort,
)


def run(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


@pytest.fixture
def env():
    return Environment()


# -------------------------------------------------------------- BootProfile

def test_default_profile_matches_paper():
    profile = BootProfile()
    assert profile.total_pages == PAPER_BOOT_PAGES
    # 81042 pages = 316.57 MB, Table III row 1.
    assert profile.total_pages * PAGE_SIZE / (1024 * 1024) == pytest.approx(
        316.57, abs=0.5
    )


def test_profile_fractions_validated():
    with pytest.raises(VmError):
        BootProfile(kernel_fraction=0.9)  # sums > 1


def test_profile_scaling():
    small = BootProfile().scaled(0.01)
    assert small.total_pages == int(PAPER_BOOT_PAGES * 0.01)
    with pytest.raises(VmError):
        BootProfile().scaled(0)


def test_profile_pages_mix():
    profile = BootProfile(total_pages=1000)
    pages = list(profile.pages(0x1000000))
    assert len(pages) == 1000
    kinds = [kind for _v, kind, _m in pages]
    assert kinds.count(PageKind.KERNEL) == 220
    assert kinds.count(PageKind.FILE_BACKED) == 450
    mlocked = [m for _v, _k, m in pages if m]
    assert len(mlocked) == 30
    # Addresses are distinct and aligned.
    addrs = [v for v, _k, _m in pages]
    assert len(set(addrs)) == 1000
    assert all(a % PAGE_SIZE == 0 for a in addrs)


# ------------------------------------------------------------------ GuestVM

def make_swap_vm(env, dram_pages=2048, boot_pages=600):
    vm = GuestVM(
        env,
        "test-vm",
        memory_bytes=dram_pages * PAGE_SIZE,
        boot_profile=BootProfile(total_pages=boot_pages),
    )
    mm = GuestMemoryManager(
        env, random.Random(0), dram_bytes=dram_pages * PAGE_SIZE
    )
    vm.attach_port(SwapMemoryPort(mm))
    return vm, mm


def test_vm_validation(env):
    with pytest.raises(VmError):
        GuestVM(env, "x", memory_bytes=100)
    with pytest.raises(VmError):
        GuestVM(env, "x", vcpus=0)


def test_boot_populates_footprint(env):
    vm, mm = make_swap_vm(env)
    run(env, vm.boot())
    assert vm.booted
    assert mm.resident_pages == 600
    assert len(vm.boot_page_addresses()) == 600


def test_boot_requires_port(env):
    vm = GuestVM(env, "x", memory_bytes=64 * MIB)
    with pytest.raises(VmError):
        vm.require_port()


def test_double_boot_rejected(env):
    vm, _mm = make_swap_vm(env)
    run(env, vm.boot())

    def again(env):
        yield from vm.boot()

    env.process(again(env))
    with pytest.raises(VmError):
        env.run()


def test_boot_footprint_must_fit(env):
    vm, _ = make_swap_vm(env, dram_pages=256, boot_pages=600)
    env.process(vm.boot())
    with pytest.raises(VmError):
        env.run()


def test_mlocked_boot_pages_marked(env):
    vm, mm = make_swap_vm(env)
    run(env, vm.boot())
    mlocked = [
        pte.page
        for _vaddr, pte in mm.table.items()
        if pte.page.mlocked
    ]
    assert len(mlocked) == int(600 * 0.03)


def test_os_working_set_spreads(env):
    vm, _ = make_swap_vm(env)
    run(env, vm.boot())
    ws = vm.os_working_set(100)
    assert len(ws) == 100
    assert len(set(ws)) == 100
    with pytest.raises(VmError):
        vm.os_working_set(10_000)


def test_os_working_set_requires_boot(env):
    vm, _ = make_swap_vm(env)
    with pytest.raises(VmError):
        vm.os_working_set(10)


# ------------------------------------------------------------- QemuProcess

def test_qemu_translation_roundtrip(env):
    vm = GuestVM(env, "x", memory_bytes=64 * MIB)
    qemu = QemuProcess(vm)
    host = qemu.guest_to_host(0)
    assert qemu.host_to_guest(host) == 0
    host2 = qemu.guest_to_host(5 * PAGE_SIZE)
    assert host2 - host == 5 * PAGE_SIZE


def test_qemu_translation_bounds(env):
    vm = GuestVM(env, "x", memory_bytes=64 * MIB)
    qemu = QemuProcess(vm)
    with pytest.raises(VmError):
        qemu.guest_to_host(64 * MIB)
    with pytest.raises(VmError):
        qemu.guest_to_host(-1)
    with pytest.raises(VmError):
        qemu.host_to_guest(0x1000)


def test_qemu_pids_unique(env):
    vm = GuestVM(env, "x", memory_bytes=64 * MIB)
    a, b = QemuProcess(vm), QemuProcess(vm)
    assert a.pid != b.pid


# ------------------------------------------------------------ MemoryHotplug

def test_hotplug_extends_guest_memory(env):
    vm = GuestVM(env, "x", memory_bytes=1 * GIB)
    qemu = QemuProcess(vm)
    hotplug = MemoryHotplug(qemu)
    slot = hotplug.add_memory(4 * GIB)
    assert slot.num_pages == 4 * GIB // PAGE_SIZE
    assert slot.guest_phys_start == 1 * GIB
    assert hotplug.total_guest_bytes == 5 * GIB
    assert qemu.total_ram_pages == 5 * GIB // PAGE_SIZE
    # Translation now reaches into the hotplugged region.
    host = qemu.guest_to_host(1 * GIB)
    assert host == slot.host_region.start


def test_hotplug_slot_limit(env):
    vm = GuestVM(env, "x", memory_bytes=64 * MIB)
    hotplug = MemoryHotplug(QemuProcess(vm), max_slots=2)
    hotplug.add_memory(16 * MIB)
    hotplug.add_memory(16 * MIB)
    with pytest.raises(VmError):
        hotplug.add_memory(16 * MIB)


def test_hotplug_size_validated(env):
    vm = GuestVM(env, "x", memory_bytes=64 * MIB)
    hotplug = MemoryHotplug(QemuProcess(vm))
    with pytest.raises(VmError):
        hotplug.add_memory(100)


# ------------------------------------------------------------ BalloonDriver

def test_balloon_takes_only_free_frames(env):
    mm = GuestMemoryManager(env, random.Random(0),
                            dram_bytes=1000 * PAGE_SIZE)
    for i in range(400):
        mm.populate_resident(0x100000 + i * PAGE_SIZE)
    balloon = BalloonDriver(mm, floor_pages=100)
    taken = balloon.inflate(10_000)
    # 600 were free; floor of 100 total footprint is below used count,
    # so the balloon stops when free frames are gone.
    assert taken == 600
    assert mm.frames.free_frames == 0


def test_balloon_respects_floor(env):
    mm = GuestMemoryManager(env, random.Random(0),
                            dram_bytes=1000 * PAGE_SIZE)
    balloon = BalloonDriver(mm, floor_pages=300)
    taken = balloon.inflate(10_000)
    assert taken == 700
    assert balloon.guest_footprint_pages == 300


def test_balloon_deflate_returns_memory(env):
    mm = GuestMemoryManager(env, random.Random(0),
                            dram_bytes=100 * PAGE_SIZE)
    balloon = BalloonDriver(mm, floor_pages=10)
    balloon.inflate(50)
    released = balloon.deflate(20)
    assert released == 20
    assert balloon.inflated_pages == 30
    assert mm.frames.free_frames == 70


def test_balloon_floor_matches_paper():
    assert BALLOON_FLOOR_PAGES == 20480
    env = Environment()
    mm = GuestMemoryManager(env, random.Random(0),
                            dram_bytes=30000 * PAGE_SIZE)
    balloon = BalloonDriver(mm)
    assert balloon.max_reachable_footprint_mib() == pytest.approx(80.0)


def test_balloon_validation(env):
    mm = GuestMemoryManager(env, random.Random(0),
                            dram_bytes=100 * PAGE_SIZE)
    with pytest.raises(VmError):
        BalloonDriver(mm, floor_pages=0)
    balloon = BalloonDriver(mm, floor_pages=1)
    with pytest.raises(VmError):
        balloon.inflate(-1)
    with pytest.raises(VmError):
        balloon.deflate(-1)
