"""Tests for the service-probe model itself (swap world + validation)."""

import pytest

from repro.errors import VmError
from repro.vm import GuestService, IcmpService, SshService

from tests.workloads.conftest import make_swap_world


def test_service_validation():
    world = make_swap_world(boot_pages=200)
    with pytest.raises(VmError):
        GuestService(world.env, world.vm, working_set_pages=0)
    with pytest.raises(VmError):
        GuestService(world.env, world.vm, working_set_pages=10,
                     working_set=[0x1000] * 3)  # fewer than requested


def test_service_custom_working_set():
    world = make_swap_world(boot_pages=200)
    ws = world.vm.os_working_set(10)
    service = GuestService(world.env, world.vm, working_set_pages=5,
                           working_set=ws)
    assert len(service.working_set) == 5


def test_services_succeed_with_ample_dram():
    world = make_swap_world(dram_pages=2048, boot_pages=400)

    def gen(env):
        ssh = yield from SshService(world.env, world.vm).attempt()
        icmp = yield from IcmpService(world.env, world.vm).attempt()
        return ssh, icmp

    ssh, icmp = world.run(gen(world.env))
    assert ssh and icmp


def test_service_times_out_with_zero_budget():
    """A pathological timeout: the attempt respects the deadline."""
    world = make_swap_world(dram_pages=2048, boot_pages=400)
    service = IcmpService(world.env, world.vm)

    def gen(env):
        # Force pages out so the attempt must fault, then give it a
        # deadline too short for even one fault.
        result = yield from service.attempt(timeout_us=0.001)
        return result

    # All pages resident -> first pass completes instantly at time 0,
    # so this still succeeds; now evict everything and retry.
    assert world.run(gen(world.env)) in (True, False)


def test_ssh_timeout_is_10s_icmp_1s():
    world = make_swap_world(boot_pages=200)
    assert SshService(world.env, world.vm).default_timeout_us == 10_000_000
    assert IcmpService(world.env, world.vm).default_timeout_us == 1_000_000


def test_attempt_counts_real_fault_time():
    """The probe's time comes from the paging machinery, not a model."""
    world = make_swap_world(dram_pages=2048, boot_pages=400)
    service = IcmpService(world.env, world.vm)

    def gen(env):
        started = env.now
        yield from service.attempt()
        return env.now - started

    first = world.run(gen(world.env))
    second = world.run(gen(world.env))
    # Second attempt is all-hits: strictly cheaper than the first.
    assert second <= first
