"""The work-queue pool: deterministic merge, crash retry, teardown."""

import multiprocessing
import os
import time

import pytest

from repro.errors import ParallelError
from repro.parallel import PoolStats, run_tasks

_FORK = multiprocessing.get_start_method(allow_none=False) == "fork"
forked = pytest.mark.skipif(
    not _FORK, reason="crash-injection helpers rely on the fork start method"
)


def _times_ten(payload):
    # Uneven durations scramble completion order on purpose: the merge
    # must be keyed by task order, never by finish order.
    if payload % 3 == 0:
        time.sleep(0.05)
    return payload * 10


def _crash_marked(payload):
    """Crash the worker hard the first time the flag file is absent."""
    flag = payload.get("flag")
    if flag is not None and not os.path.exists(flag):
        with open(flag, "w") as handle:
            handle.write("crashed")
        os._exit(23)
    return payload["value"]


def _always_crash(payload):
    os._exit(23)


def _raise_on_two(payload):
    if payload == 2:
        raise ValueError(f"bad payload {payload}")
    return payload


def test_results_in_payload_order_at_any_worker_count():
    payloads = list(range(12))
    expected = [value * 10 for value in payloads]
    assert run_tasks(_times_ten, payloads, workers=1) == expected
    assert run_tasks(_times_ten, payloads, workers=4) == expected


def test_empty_payloads():
    assert run_tasks(_times_ten, [], workers=4) == []


def test_stats_filled():
    stats = PoolStats()
    run_tasks(_times_ten, [1, 2, 3], workers=2, stats=stats)
    assert stats.workers == 2
    assert stats.tasks == 3
    assert stats.worker_crashes == 0
    assert stats.attempts == {0: 1, 1: 1, 2: 1}


def test_serial_path_runs_in_process():
    # workers <= 1 must not spawn anything: a closure (unpicklable to a
    # spawn context, stateful across calls) works fine.
    seen = []

    def record(payload):
        seen.append(payload)
        return payload

    assert run_tasks(record, [5, 6], workers=1) == [5, 6]
    assert seen == [5, 6]


@forked
def test_crashed_worker_task_retried_once(tmp_path):
    flag = str(tmp_path / "crash-once")
    payloads = [{"value": index} for index in range(6)]
    payloads[3]["flag"] = flag
    stats = PoolStats()
    emitted = []
    results = run_tasks(
        _crash_marked, payloads, workers=2, stats=stats,
        emit=emitted.append,
    )
    assert results == list(range(6))
    assert stats.worker_crashes == 1
    assert stats.retries == 1
    assert stats.attempts[3] == 2
    assert any("retrying" in line for line in emitted)


@forked
def test_retry_budget_exhaustion_raises():
    stats = PoolStats()
    with pytest.raises(ParallelError, match="retry budget"):
        run_tasks(
            _always_crash, [0], workers=2, retries=1, stats=stats,
        )
    assert stats.worker_crashes == 2


@forked
def test_task_exception_surfaces_as_parallel_error():
    with pytest.raises(ParallelError, match="bad payload 2"):
        run_tasks(_raise_on_two, [0, 1, 2, 3], workers=2)
