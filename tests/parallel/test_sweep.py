"""Perfbench seed sweep: structure deterministic at any worker count."""

from repro.perfbench.benchmarks import (
    PERFBENCH_SCHEMA,
    bench_sweep_scaling,
    run_sweep,
)

# Tiny sizes: these tests pin structure and determinism, not speed.
TINY = {"monitor_accesses": 200, "fig3_accesses": 100}


def _strip_wallclock(document):
    rows = [
        {"seed": row["seed"]} for row in document["rows"]
    ]
    return {
        key: value for key, value in document.items()
        if key not in ("wall_seconds", "rows", "workers")
    } | {"rows": rows}


def test_sweep_rows_in_seed_order_at_any_worker_count():
    serial = run_sweep(range(3), quick=True, sizes=TINY, workers=1)
    parallel = run_sweep(range(3), quick=True, sizes=TINY, workers=3)
    assert serial["schema"] == PERFBENCH_SCHEMA
    assert serial["mode"] == "sweep"
    assert [row["seed"] for row in serial["rows"]] == [0, 1, 2]
    # Rates are wall-clock (host-dependent); everything else matches.
    assert _strip_wallclock(parallel) == _strip_wallclock(serial)
    assert serial["workers"] == 1
    assert parallel["workers"] == 3
    for row in serial["rows"] + parallel["rows"]:
        assert row["monitor_ops_per_sec"] > 0
        assert row["fig3_quick_seconds"] > 0


def test_sweep_scaling_document_shape(monkeypatch):
    import repro.perfbench.benchmarks as bench_mod

    calls = []

    def fake_run_sweep(seeds, quick=False, workers=1, emit=None):
        calls.append(workers)
        return {"wall_seconds": 4.0 if workers == 1 else 2.0}

    monkeypatch.setattr(bench_mod, "run_sweep", fake_run_sweep)
    result = bench_sweep_scaling(seeds=4, workers=2, quick=True)
    assert calls == [1, 2]
    assert result["mode"] == "sweep-scaling"
    assert result["serial_seconds"] == 4.0
    assert result["parallel_seconds"] == 2.0
    assert result["speedup"] == 2.0
    assert result["host_cpus"] >= 1
