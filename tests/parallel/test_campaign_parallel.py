"""Campaign fan-out: byte-identical reports, worker-crash recovery.

Grid note: kv seeds 0-2 are the CI-sized cells; higher kv seeds can
run unboundedly long under the random schedule, so every grid here
stays within seeds 0-2.
"""

import multiprocessing
import os

import pytest

import repro.check.campaign as campaign_mod
from repro.check.campaign import report_json, run_campaign
from repro.errors import ParallelError
from repro.parallel import PoolStats

_FORK = multiprocessing.get_start_method(allow_none=False) == "fork"
forked = pytest.mark.skipif(
    not _FORK, reason="crash-injection helpers rely on the fork start method"
)

GRID = dict(
    scenarios=["kv"],
    seeds=[0, 1, 2],
    schedules=["random", "adversarial"],
    quick=True,
)
SMALL_GRID = dict(
    scenarios=["kv"], seeds=[0, 1], schedules=["random"], quick=True
)


def _run(workers, stats=None, **grid):
    transcript = []
    report = run_campaign(
        emit=transcript.append, workers=workers, pool_stats=stats,
        **grid,
    )
    return report, transcript


def test_report_and_transcript_byte_identical_across_worker_counts():
    serial_report, serial_lines = _run(1, **GRID)
    parallel_report, parallel_lines = _run(3, **GRID)
    assert parallel_lines == serial_lines
    assert report_json(parallel_report) == report_json(serial_report)
    assert serial_report.runs == 6


def test_report_json_has_no_worker_field():
    report, _ = _run(2, **SMALL_GRID)
    rendered = report_json(report)
    assert "worker" not in rendered
    assert '"schema": "repro-check-report/1"' in rendered


def test_failures_merge_identically(tmp_path):
    grid = dict(
        scenarios=["kv"], seeds=[0, 1], schedules=["random"],
        quick=True, bug="lru-recency", shrink=False,
    )
    serial_report, serial_lines = _run(1, **grid)
    parallel_report, parallel_lines = _run(2, **grid)
    assert parallel_lines == serial_lines
    assert report_json(parallel_report) == report_json(serial_report)
    assert serial_report.failures, "bug grid should produce failures"


_REAL_CELL = campaign_mod._campaign_cell


def _crash_once_cell(payload):
    """Kill the worker hard on one specific cell, first attempt only."""
    flag = os.environ.get("REPRO_TEST_CAMPAIGN_CRASH_FLAG")
    if (
        flag
        and payload["seed"] == 1
        and payload["schedule"] == "random"
        and not os.path.exists(flag)
    ):
        with open(flag, "w") as handle:
            handle.write("crashed")
        os._exit(31)
    return _REAL_CELL(payload)


def _always_crash_cell(payload):
    if payload["seed"] == 1:
        os._exit(31)
    return _REAL_CELL(payload)


@forked
def test_worker_killed_mid_campaign_is_retried_and_deterministic(
    tmp_path, monkeypatch
):
    baseline_report, baseline_lines = _run(1, **SMALL_GRID)
    flag = str(tmp_path / "campaign-crash")
    monkeypatch.setenv("REPRO_TEST_CAMPAIGN_CRASH_FLAG", flag)
    monkeypatch.setattr(campaign_mod, "_campaign_cell", _crash_once_cell)
    stats = PoolStats()
    report, lines = _run(2, stats=stats, **SMALL_GRID)
    assert os.path.exists(flag), "the crash cell must have fired"
    assert stats.worker_crashes == 1
    assert stats.retries == 1
    # The retried cell lands back in grid order: bytes match serial.
    assert lines == baseline_lines
    assert report_json(report) == report_json(baseline_report)


@forked
def test_crash_retry_exhaustion_raises_parallel_error(monkeypatch):
    monkeypatch.setattr(
        campaign_mod, "_campaign_cell", _always_crash_cell
    )
    with pytest.raises(ParallelError, match="retry budget"):
        _run(2, **SMALL_GRID)
