"""Registry export/merge: the exactness contract behind shard merging."""

import pytest

from repro.errors import FluidMemError
from repro.obs.metrics import MetricsRegistry


def _populated():
    registry = MetricsRegistry()
    registry.counter("faults", vm="a").inc(3)
    registry.gauge("resident", vm="a").set(17.5)
    histogram = registry.histogram("latency_us", vm="a")
    for value in (1.0, 4.0, 9.0, 150.0):
        histogram.observe(value)
    return registry


def test_merge_disjoint_keys_reproduces_snapshot():
    source = _populated()
    target = MetricsRegistry()
    target.merge_state(source.export_state())
    assert target.snapshot() == source.snapshot()


def test_merge_overlapping_counters_add_and_gauges_overwrite():
    target = _populated()
    other = MetricsRegistry()
    other.counter("faults", vm="a").inc(2)
    other.gauge("resident", vm="a").set(99.0)
    target.merge_state(other.export_state())
    snap = target.snapshot()
    assert snap["counters"]["faults{vm=a}"] == 5
    assert snap["gauges"]["resident{vm=a}"] == 99.0


def test_merge_overlapping_histogram_reobserves_samples():
    target = _populated()
    other = MetricsRegistry()
    other.histogram("latency_us", vm="a").observe(42.0)
    target.merge_state(other.export_state())
    row = target.snapshot()["histograms"]["latency_us{vm=a}"]
    assert row["count"] == 5
    assert row["max"] == 150.0


def test_merge_refuses_truncated_histogram_into_existing_key():
    source = MetricsRegistry(max_samples_per_histogram=2)
    histogram = source.histogram("latency_us", vm="a")
    for value in (1.0, 2.0, 3.0):
        histogram.observe(value)  # retention capped at 2 of 3

    fresh = MetricsRegistry()
    fresh.merge_state(source.export_state())  # new key: exact install
    assert (
        fresh.snapshot()["histograms"]["latency_us{vm=a}"]["count"] == 3
    )

    occupied = _populated()
    with pytest.raises(FluidMemError, match="dropped raw samples"):
        occupied.merge_state(source.export_state())


def test_merge_into_disabled_registry_is_a_noop():
    disabled = MetricsRegistry(enabled=False)
    disabled.merge_state(_populated().export_state())
    assert disabled.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {}
    }
