"""Sharded market fleet: byte-identical books at any partition count."""

import json

import pytest

from repro.bench.market_fleet import run_market
from repro.bench.platform import set_default_observability
from repro.errors import ParallelError
from repro.obs import Observability
from repro.parallel.fleet import partition_specs, run_partitioned_market
from repro.market import TenantSlo, TenantSpec


@pytest.fixture(autouse=True)
def _clean_default_obs():
    yield
    set_default_observability(None)


def _run(partitions, **kwargs):
    obs = Observability(enabled=True)
    set_default_observability(obs)
    result = run_market(partitions=partitions, **kwargs)
    snapshot = json.dumps(
        obs.registry.snapshot(), indent=2, sort_keys=True
    )
    return result, snapshot


QUICK = dict(fleet_scale=1, ticks=9, seed=42, chaos=True)


def test_partitioned_market_matches_serial_bytes():
    serial_result, serial_snapshot = _run(1, **QUICK)
    for partitions in (2, 4):
        result, snapshot = _run(partitions, **QUICK)
        assert result == serial_result, f"partitions={partitions}"
        assert snapshot == serial_snapshot, f"partitions={partitions}"
    assert serial_result.invariant_violations == 0
    assert serial_result.vm_crashes > 0, "chaos must actually fire"


def test_partitioned_market_without_chaos():
    calm = dict(fleet_scale=1, ticks=6, seed=7, chaos=False)
    serial_result, serial_snapshot = _run(1, **calm)
    result, snapshot = _run(3, **calm)
    assert result == serial_result
    assert snapshot == serial_snapshot


def test_partitions_clamped_to_tenant_count():
    serial_result, serial_snapshot = _run(1, **QUICK)
    result, snapshot = _run(16, **QUICK)
    assert result == serial_result
    assert snapshot == serial_snapshot


def _toy_specs():
    return [
        TenantSpec(
            "prod", 2, "producer", footprint_pages=128,
            capacity_pages=128, slo=TenantSlo(500.0, priority=1),
            accesses_per_tick=4,
        ),
        TenantSpec(
            "cons", 2, "consumer", footprint_pages=160,
            capacity_pages=64, slo=TenantSlo(250.0, priority=1),
            accesses_per_tick=4,
        ),
    ]


def test_partition_specs_contiguous_and_clamped():
    specs = _toy_specs()
    assert partition_specs(specs, 1) == [specs]
    two = partition_specs(specs, 2)
    assert two == [[specs[0]], [specs[1]]]
    assert partition_specs(specs, 5) == two  # clamped
    with pytest.raises(ParallelError):
        partition_specs(specs, 0)


def test_runner_reports_partition_count_and_window():
    outcome = run_partitioned_market(
        _toy_specs(), seed=3, ticks=3, partitions=2
    )
    assert outcome["partitions"] == 2
    assert outcome["total_vms"] == 4
    # The barrier interval is the fleet tick, far above the transport
    # lookahead bound, so it is the conservative window.
    assert outcome["window_us"] == 10_000.0
    assert set(outcome["summary"]) == {"prod", "cons"}
