"""Conservative windows, lookahead bounds, partition seeds."""

import pytest

from repro.errors import NetworkError
from repro.net import (
    ETHERNET_10G,
    RDMA_FDR,
    TRANSPORTS,
    min_transport_latency_us,
)
from repro.net.fabric import Fabric
from repro.parallel import conservative_window_us, partition_seed
from repro.sim import Environment, RandomStreams


def test_min_transport_latency_is_the_global_floor():
    floor = min_transport_latency_us()
    assert floor > 0
    assert floor == min(
        spec.min_one_way_us(0) for spec in TRANSPORTS.values()
    )
    # The fastest modeled transport is RDMA FDR: propagation plus the
    # per-message overhead, with zero serialization for empty payloads.
    assert floor == RDMA_FDR.min_one_way_us(0)


def test_conservative_window_floor_rule():
    bound = min_transport_latency_us()
    # No floor: the window is the transport bound itself.
    assert conservative_window_us() == bound
    # A coarser floor (the fleet tick) dominates.
    assert conservative_window_us(floor_us=10_000.0) == 10_000.0
    # A sub-bound floor cannot shrink the window below the bound.
    assert conservative_window_us(floor_us=bound / 10) == bound


def test_conservative_window_subset_of_transports():
    window = conservative_window_us(transports=[ETHERNET_10G])
    assert window == ETHERNET_10G.min_one_way_us(0)
    assert window > min_transport_latency_us()


def test_partition_seed_deterministic_and_distinct():
    seeds = [partition_seed(42, index) for index in range(8)]
    assert seeds == [partition_seed(42, index) for index in range(8)]
    assert len(set(seeds)) == len(seeds)
    assert partition_seed(43, 0) != partition_seed(42, 0)


def test_partition_seed_rejects_negative_index():
    with pytest.raises(ValueError):
        partition_seed(42, -1)


def test_fabric_lookahead_is_min_over_links():
    env = Environment()
    fabric = Fabric(env, RandomStreams(7))
    for name in ("a", "b", "c"):
        fabric.add_host(name)
    fabric.connect("a", "b", RDMA_FDR)
    fabric.connect("b", "c", ETHERNET_10G)
    assert fabric.lookahead_us() == RDMA_FDR.min_one_way_us(0)
    assert fabric.lookahead_us(4096) == min(
        RDMA_FDR.min_one_way_us(4096), ETHERNET_10G.min_one_way_us(4096)
    )


def test_fabric_lookahead_requires_links():
    fabric = Fabric(Environment(), RandomStreams(7))
    with pytest.raises(NetworkError):
        fabric.lookahead_us()
