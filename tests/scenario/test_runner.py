"""Scenario compilation and the fleet engine's mechanics."""

import pytest

from repro.errors import InvariantViolation, ScenarioError
from repro.scenario import SCENARIO_SCHEMA, run_scenario, validate_document
from repro.scenario.schema import (
    FleetChaosSpec,
    FleetSpec,
    FleetTenantSpec,
    LoadSpec,
    PatternSpec,
    SpikeSpec,
)
from repro.scenario.workloads import (
    LATENCY_BUCKETS_US,
    FleetVM,
    fleet_payloads,
    fleet_vm_names,
    histogram_percentile,
    merge_block_results,
    run_fleet_block,
)


def _fleet_doc(**overrides):
    doc = {
        "schema": SCENARIO_SCHEMA,
        "name": "mini-fleet",
        "kind": "fleet",
        "seed": 7,
        "duration": {"ticks": 8, "quick_ticks": 4},
        "workload": {
            "tenants": [{
                "name": "a", "vms": 3,
                "footprint_pages": 64, "capacity_pages": 32,
                "accesses_per_tick": 8,
            }],
        },
    }
    doc.update(overrides)
    return doc


class TestFleetEngine:
    def test_vm_names_are_positional_and_stable(self):
        scenario = validate_document(_fleet_doc())
        names = [name for _, name in
                 fleet_vm_names(scenario.fleet, quick=False)]
        assert names == ["a-000", "a-001", "a-002"]

    def test_quick_vm_count_defaults_to_a_quarter(self):
        tenant = FleetTenantSpec(
            name="t", vms=16, footprint_pages=64, capacity_pages=32,
        )
        assert tenant.vm_count(quick=False) == 16
        assert tenant.vm_count(quick=True) == 4
        explicit = FleetTenantSpec(
            name="t", vms=16, quick_vms=2,
            footprint_pages=64, capacity_pages=32,
        )
        assert explicit.vm_count(quick=True) == 2

    def test_block_boundaries_ignore_worker_count(self):
        spec = FleetSpec(
            tenants=(FleetTenantSpec(
                name="t", vms=10, footprint_pages=64, capacity_pages=32,
            ),),
            block_vms=4,
        )
        payloads = fleet_payloads(spec, seed=1, quick=False,
                                  invariants=True)
        assert [len(p["vms"]) for p in payloads] == [4, 4, 2]

    def test_block_results_merge_identically_at_any_split(self):
        scenario = validate_document(_fleet_doc())
        spec = scenario.fleet
        whole = [dict(p, vms=fleet_vm_names(spec, False))
                 for p in fleet_payloads(spec, 7, False, True)[:1]]
        split = fleet_payloads(
            FleetSpec(
                tenants=spec.tenants, ticks=spec.ticks,
                quick_ticks=spec.quick_ticks, tick_us=spec.tick_us,
                block_vms=1, chaos=spec.chaos,
            ),
            7, False, True,
        )
        merged_whole = merge_block_results(
            [run_fleet_block(p) for p in whole], spec, False
        )
        merged_split = merge_block_results(
            [run_fleet_block(p) for p in split], spec, False
        )
        assert merged_whole == merged_split

    def test_accounting_invariants_hold(self):
        scenario = validate_document(_fleet_doc())
        payload = fleet_payloads(scenario.fleet, 7, False, True)[0]
        result = run_fleet_block(payload)
        stats = result["tenants"]["a"]
        assert stats["hits"] + stats["faults"] == stats["accesses"]
        assert stats["first_touches"] + stats["swap_faults"] \
            == stats["faults"]
        assert result["audits"] == 3 * stats["vms"]
        assert sum(result["per_tick_faults"]) == stats["faults"]
        assert sum(result["histogram"]) == stats["faults"]

    def test_audit_catches_cooked_books(self):
        tenant = FleetTenantSpec(
            name="t", vms=1, footprint_pages=64, capacity_pages=32,
        )
        vm = FleetVM("t-000", tenant, seed=1, ticks=4,
                     chaos=FleetChaosSpec())
        vm.run_tick(0, [0] * len(LATENCY_BUCKETS_US), [])
        vm.hits += 1  # corrupt the ledger
        with pytest.raises(InvariantViolation, match="access-accounting"):
            vm.audit()

    def test_diurnal_load_and_spikes_shape_the_rate(self):
        load = LoadSpec(
            kind="diurnal", period_ticks=8, peak_multiplier=3.0,
            spikes=(SpikeSpec(at_tick=2, multiplier=2.0,
                              duration_ticks=1),),
        )
        tenant = FleetTenantSpec(
            name="t", vms=1, footprint_pages=64, capacity_pages=64,
            accesses_per_tick=10, load=load,
        )
        vm = FleetVM("t-000", tenant, seed=1, ticks=8,
                     chaos=FleetChaosSpec())
        trough = vm._load_multiplier(0)
        peak = vm._load_multiplier(4)
        spiked = vm._load_multiplier(2)
        assert trough == pytest.approx(1.0)
        assert peak == pytest.approx(3.0)
        assert spiked > vm._load_multiplier(1)  # the spike multiplies

    def test_sweep_pattern_walks_the_footprint(self):
        tenant = FleetTenantSpec(
            name="t", vms=1, footprint_pages=16, capacity_pages=16,
            accesses_per_tick=4,
            pattern=PatternSpec(kind="sweep", stride=1),
        )
        vm = FleetVM("t-000", tenant, seed=1, ticks=4,
                     chaos=FleetChaosSpec())
        draws = [vm._next_page(0) for _ in range(20)]
        assert draws[:16] == list(range(16))
        assert draws[16:] == [0, 1, 2, 3]  # wrapped

    def test_crash_window_loses_residency_and_reboots_cold(self):
        tenant = FleetTenantSpec(
            name="t", vms=1, footprint_pages=32, capacity_pages=32,
            accesses_per_tick=16,
        )
        chaos = FleetChaosSpec(crash_fraction=1.0)
        vm = FleetVM("t-000", tenant, seed=3, ticks=16, chaos=chaos)
        assert vm.crash_window is not None
        histogram = [0] * len(LATENCY_BUCKETS_US)
        events = []
        for tick in range(16):
            vm.run_tick(tick, histogram, events)
        kinds = [kind for _, kind, _ in events]
        assert "crash" in kinds
        assert vm.deaths == 1
        if vm.crash_window[1] < 16:
            assert "reboot" in kinds

    def test_chaos_windows_depend_on_name_not_position(self):
        tenant = FleetTenantSpec(
            name="t", vms=2, footprint_pages=32, capacity_pages=32,
        )
        chaos = FleetChaosSpec(crash_fraction=0.5, surge_fraction=0.5)
        first = FleetVM("t-000", tenant, seed=1, ticks=32, chaos=chaos)
        again = FleetVM("t-000", tenant, seed=1, ticks=32, chaos=chaos)
        other = FleetVM("t-001", tenant, seed=1, ticks=32, chaos=chaos)
        assert first.crash_window == again.crash_window
        assert first.surge_window == again.surge_window
        assert (
            (first.crash_window, first.surge_window)
            != (other.crash_window, other.surge_window)
        )

    def test_histogram_percentile_reads_bucket_edges(self):
        counts = [0] * len(LATENCY_BUCKETS_US)
        counts[2] = 90   # <= 4 us
        counts[7] = 10   # <= 128 us
        assert histogram_percentile(counts, 0.50) == 4.0
        assert histogram_percentile(counts, 0.99) == 128.0
        assert histogram_percentile([0] * len(counts), 0.5) == 0.0


class TestRunScenario:
    def test_fleet_outcome_carries_report_and_trace(self):
        scenario = validate_document(_fleet_doc())
        outcome = run_scenario(scenario, quick=True)
        assert outcome.report["schema"] == "repro-scenario-metrics/1"
        assert outcome.kpis["vms"] == 1  # quick: 3 VMs -> 1
        assert outcome.kpis["ticks"] == 4
        assert outcome.tracer is not None
        names = [event.name for event in outcome.tracer.events]
        assert "tick" in names

    def test_trace_can_be_disabled_by_the_scenario(self):
        scenario = validate_document(
            _fleet_doc(obs={"trace": False})
        )
        outcome = run_scenario(scenario, quick=True)
        assert outcome.tracer is None

    def test_single_vm_report_names_the_platform(self):
        scenario = validate_document({
            "schema": SCENARIO_SCHEMA, "name": "sv",
            "kind": "single-vm",
            "workload": {"accesses": 400, "quick_accesses": 200},
        })
        outcome = run_scenario(scenario, quick=True)
        assert outcome.kpis["accesses"] == 200
        assert outcome.kpis["faults"] + outcome.kpis["hits"] == 200
        assert "fluidmem-ramcloud" in outcome.report["groups"]["platform"]

    def test_cluster_report_has_scaleout_groups(self):
        scenario = validate_document({
            "schema": SCENARIO_SCHEMA, "name": "cl", "kind": "cluster",
            "topology": {"max_nodes": 3},
            "workload": {"pages": 120, "quick_pages": 60},
        })
        outcome = run_scenario(scenario, quick=True)
        assert outcome.kpis["keys_lost"] == 0
        assert outcome.kpis["read_back_ok"] is True
        assert set(outcome.report["groups"]["scaleout"]) == {"1", "2", "3"}

    def test_invalid_scenario_never_reaches_the_runner(self):
        with pytest.raises(ScenarioError):
            validate_document(_fleet_doc(workload={"tenants": []}))
