"""The byte-identity contract: same scenario + seed, same report bytes.

Pins seed-42 ``web-diurnal --quick`` three ways: workers 1 vs workers
4 byte-for-byte, against the committed baseline the CI
``scenario-smoke`` job ``cmp``s, and the market template across
partition counts.
"""

import contextlib
import io
import os

import pytest

from repro.scenario.cli import main as scenario_main
from repro.sim import set_batch

BASELINE = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir,
    "benchmarks", "baselines",
    "scenario-web-diurnal-quick-seed42.json",
)


def _run_report(tmp_path, label, *argv):
    path = tmp_path / f"{label}.json"
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        assert scenario_main([
            "run", *argv, "--quick", "--seed", "42",
            "--report", str(path),
        ]) == 0
    return path.read_bytes(), stdout.getvalue()


def test_web_diurnal_workers_1_vs_4_byte_identical(tmp_path):
    serial, serial_out = _run_report(
        tmp_path, "w1", "web-diurnal", "--workers", "1"
    )
    fanned, fanned_out = _run_report(
        tmp_path, "w4", "web-diurnal", "--workers", "4"
    )
    assert serial == fanned
    # stdout must match too: nothing may leak the worker count.
    assert serial_out == fanned_out


def test_web_diurnal_matches_committed_baseline(tmp_path):
    report, _ = _run_report(tmp_path, "base", "web-diurnal")
    with open(BASELINE, "rb") as handle:
        assert report == handle.read(), (
            "web-diurnal quick seed-42 drifted from the committed "
            "baseline; if the change is intentional, regenerate "
            "benchmarks/baselines/scenario-web-diurnal-quick-seed42.json"
        )


def test_web_diurnal_batch_off_matches_committed_baseline(tmp_path):
    """The burst layer may not move a scenario report either: with
    ``set_batch(False)`` the quick seed-42 run must still reproduce the
    committed baseline byte-for-byte (DESIGN.md §17)."""
    previous = set_batch(False)
    try:
        report, _ = _run_report(tmp_path, "nobatch", "web-diurnal")
    finally:
        set_batch(previous)
    with open(BASELINE, "rb") as handle:
        assert report == handle.read()


def test_market_partitions_1_vs_2_byte_identical(tmp_path):
    serial, _ = _run_report(
        tmp_path, "p1", "market-fleet", "--partitions", "1"
    )
    sharded, _ = _run_report(
        tmp_path, "p2", "market-fleet", "--partitions", "2"
    )
    assert serial == sharded


@pytest.mark.parametrize("template", ("ml-sweep", "kv-mix"))
def test_fleet_templates_stable_across_worker_counts(template, tmp_path):
    serial, _ = _run_report(tmp_path, "s", template, "--workers", "1")
    fanned, _ = _run_report(tmp_path, "f", template, "--workers", "3")
    assert serial == fanned


def test_seed_changes_the_report(tmp_path):
    path_a = tmp_path / "a.json"
    path_b = tmp_path / "b.json"
    with contextlib.redirect_stdout(io.StringIO()):
        assert scenario_main([
            "run", "web-diurnal", "--quick", "--seed", "42",
            "--report", str(path_a),
        ]) == 0
        assert scenario_main([
            "run", "web-diurnal", "--quick", "--seed", "43",
            "--report", str(path_b),
        ]) == 0
    assert path_a.read_bytes() != path_b.read_bytes()
