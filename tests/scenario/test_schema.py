"""Schema validation: strict fields, vocabularies, golden error text.

The golden files under ``golden/`` pin the exact multi-issue error
rendering — JSON paths, messages, and did-you-mean suggestions — so a
wording change is a conscious diff, not an accident.
"""

import json
import os

import pytest

from repro.errors import ScenarioError
from repro.scenario import (
    SCENARIO_SCHEMA,
    Scenario,
    load_scenario,
    validate_document,
    validate_report,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def _minimal(kind="single-vm", **extra):
    doc = {"schema": SCENARIO_SCHEMA, "name": "t", "kind": kind}
    if kind == "fleet":
        doc["workload"] = {
            "tenants": [{
                "name": "a", "vms": 1,
                "footprint_pages": 64, "capacity_pages": 32,
            }],
        }
    doc.update(extra)
    return doc


def _error_text(doc):
    with pytest.raises(ScenarioError) as excinfo:
        validate_document(doc)
    return str(excinfo.value)


def _golden(name, actual):
    path = os.path.join(GOLDEN_DIR, f"{name}.txt")
    with open(path) as handle:
        expected = handle.read().rstrip("\n")
    assert actual == expected, (
        f"golden mismatch for {name}:\n--- expected ---\n{expected}\n"
        f"--- actual ---\n{actual}"
    )


# ---------------------------------------------------------------------------
# Golden error renderings
# ---------------------------------------------------------------------------

def test_golden_unknown_field_with_suggestion():
    doc = _minimal()
    doc["topologyy"] = {"platform": "fluidmem-dram"}
    _golden("unknown-field", _error_text(doc))


def test_golden_bad_policy_names():
    doc = _minimal(policy={"alloc": "budy", "prefetch": "leep"})
    _golden("bad-policy-names", _error_text(doc))


def test_golden_multi_issue_document():
    doc = {
        "schema": "repro-scenario/99",
        "name": "broken",
        "kind": "singel-vm",
        "seed": -1,
        "workload": {"read_ratio": 2.0, "acesses": 10},
    }
    _golden("multi-issue", _error_text(doc))


def test_golden_fleet_tenant_issues():
    doc = _minimal(kind="fleet")
    doc["workload"]["tenants"] = [
        {
            "name": "web", "vms": 2, "footprint_pages": 64,
            "capacity_pages": 128,
            "pattern": {"kind": "zipfian", "stride": 4},
        },
        {
            "name": "web", "vms": 1, "footprint_pages": 64,
            "capacity_pages": 32,
            "load": {"kind": "diurnel"},
        },
    ]
    _golden("fleet-tenant-issues", _error_text(doc))


# ---------------------------------------------------------------------------
# Validation behavior
# ---------------------------------------------------------------------------

def test_minimal_documents_validate_for_every_kind():
    for kind in ("single-vm", "cluster", "market", "fleet"):
        scenario = validate_document(_minimal(kind=kind))
        assert isinstance(scenario, Scenario)
        assert scenario.kind == kind
        assert scenario.seed == 42


def test_all_issues_are_collected_not_just_the_first():
    doc = _minimal()
    doc["bogus1"] = 1
    doc["bogus2"] = 2
    doc["policy"] = {"alloc": "nope"}
    text = _error_text(doc)
    assert "(3 issues)" in text
    assert "bogus1" in text and "bogus2" in text
    assert "policy.alloc" in text


def test_unknown_fault_plan_gets_suggestion():
    doc = _minimal(faults={"plan": "chaoss"})
    text = _error_text(doc)
    assert "faults.plan" in text
    assert "Did you mean 'chaos'?" in text


def test_unknown_platform_gets_suggestion():
    doc = _minimal(topology={"platform": "fluidmem-ramclod"})
    text = _error_text(doc)
    assert "Did you mean 'fluidmem-ramcloud'?" in text


def test_kind_restricts_sections():
    doc = _minimal(kind="cluster", faults={"plan": "chaos"})
    text = _error_text(doc)
    assert "faults: section is not valid for kind 'cluster'" in text


def test_market_invariants_cannot_be_disabled():
    doc = _minimal(kind="market", checks={"invariants": False})
    text = _error_text(doc)
    assert "checks.invariants" in text
    assert "cannot be disabled" in text


def test_booleans_do_not_satisfy_integer_fields():
    doc = _minimal(seed=True)
    assert "expected an integer, got a boolean" in _error_text(doc)


def test_capacity_over_footprint_is_rejected():
    doc = _minimal(kind="fleet")
    doc["workload"]["tenants"][0]["capacity_pages"] = 999
    text = _error_text(doc)
    assert "cannot exceed footprint" in text


def test_pattern_keys_are_scoped_to_their_kind():
    doc = _minimal(kind="fleet")
    doc["workload"]["tenants"][0]["pattern"] = {
        "kind": "uniform", "theta": 0.5,
    }
    text = _error_text(doc)
    assert "theta" in text and "'uniform'" in text


def test_zipf_theta_range_is_enforced():
    doc = _minimal(kind="fleet")
    doc["workload"]["tenants"][0]["pattern"] = {
        "kind": "zipfian", "theta": 1.5,
    }
    assert "must be in (0, 1)" in _error_text(doc)


def test_non_object_document_is_rejected():
    with pytest.raises(ScenarioError, match="must be a JSON object"):
        validate_document([1, 2, 3])


def test_prefetch_none_rejects_positive_depth():
    doc = _minimal(policy={"prefetch": "none", "prefetch_pages": 4})
    assert "cannot take a positive depth" in _error_text(doc)


def test_defaults_fill_unspecified_knobs():
    scenario = validate_document(_minimal())
    spec = scenario.single_vm
    assert spec.platform == "fluidmem-ramcloud"
    assert spec.memory_scale_denom == 1024
    assert scenario.policy.alloc == "lifo"
    assert scenario.invariants is True
    assert scenario.trace_enabled is True


def test_load_scenario_reports_parse_errors(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(ScenarioError, match="not valid JSON"):
        load_scenario(str(path))
    with pytest.raises(ScenarioError, match="cannot read"):
        load_scenario(str(tmp_path / "missing.json"))


def test_load_scenario_roundtrip(tmp_path):
    path = tmp_path / "ok.json"
    path.write_text(json.dumps(_minimal()))
    scenario = load_scenario(str(path))
    assert scenario.name == "t"


# ---------------------------------------------------------------------------
# Report schema checks
# ---------------------------------------------------------------------------

def _report(**overrides):
    document = {
        "schema": "repro-scenario-metrics/1",
        "scenario": "t", "kind": "fleet", "seed": 42, "quick": True,
        "description": "", "kpis": {"faults": 1}, "groups": {},
    }
    document.update(overrides)
    return document


def test_validate_report_accepts_well_formed_documents():
    validate_report(_report())


@pytest.mark.parametrize("mutation,match", [
    ({"schema": "repro-scenario-metrics/2"}, "unsupported report schema"),
    ({"kind": "nope"}, "unknown kind"),
    ({"kpis": {}}, "non-empty"),
    ({"groups": []}, "must be an object"),
])
def test_validate_report_rejects_malformed_documents(mutation, match):
    with pytest.raises(ScenarioError, match=match):
        validate_report(_report(**mutation))


def test_validate_report_lists_missing_fields():
    with pytest.raises(ScenarioError, match="missing fields: .*kpis"):
        validate_report({"schema": "repro-scenario-metrics/1"})
