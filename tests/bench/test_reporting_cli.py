"""Tests for result rendering, CSV export, and the CLI plumbing."""

import csv
import os

import pytest

from repro.bench.cli import _parser, main
from repro.bench.reporting import (
    format_ratio,
    render_cdf,
    render_table,
    write_csv,
)
from repro.sim import Cdf


def test_render_table_alignment():
    text = render_table(
        ("name", "value"),
        [("alpha", 1.0), ("beta-long-name", 123456.5)],
        title="Demo",
    )
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert "alpha" in text
    assert "123,456.5" in text
    # Header separator present.
    assert set(lines[3]) <= {"-", " "}


def test_render_table_empty_rows():
    text = render_table(("a", "b"), [])
    assert "a" in text and "b" in text


def test_render_cdf_shape():
    cdf = Cdf([1.0, 2.0, 5.0, 10.0, 100.0] * 10)
    text = render_cdf(cdf, width=40, height=8, label="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert any("*" in line for line in lines)
    assert "1.00 |" in text  # the top fraction label
    assert "us" in lines[-1]


def test_render_cdf_linear_mode():
    cdf = Cdf([float(i) for i in range(1, 50)])
    text = render_cdf(cdf, width=30, height=6, log_x=False)
    assert "*" in text


def test_write_csv_roundtrip(tmp_path):
    path = str(tmp_path / "out.csv")
    write_csv(path, ("a", "b"), [(1, "x"), (2, "y")])
    with open(path) as handle:
        rows = list(csv.reader(handle))
    assert rows == [["a", "b"], ["1", "x"], ["2", "y"]]


def test_format_ratio():
    text = format_ratio(12.0, 10.0)
    assert "12.00" in text and "x1.20" in text
    assert format_ratio(5.0, 0.0) == "5.00"


def test_parser_accepts_all_experiments():
    parser = _parser()
    for name in ("fig3", "table1", "table2", "fig4", "fig5", "table3",
                 "ablations", "cluster", "all"):
        args = parser.parse_args([name])
        assert args.experiment == [name]


def test_parser_accepts_experiment_subsets():
    args = _parser().parse_args(["fig3", "table1"])
    assert args.experiment == ["fig3", "table1"]


def test_cli_rejects_unknown_experiment(capsys):
    with pytest.raises(SystemExit):
        main(["fig9"])
    err = capsys.readouterr().err
    assert "unknown experiment 'fig9'" in err
    assert "--list-experiments" in err


def test_cli_rejects_empty_experiment_list(capsys):
    with pytest.raises(SystemExit):
        main([])
    assert "--list-experiments" in capsys.readouterr().err


def test_cli_lists_experiments(capsys):
    rc = main(["--list-experiments"])
    assert rc == 0
    out = capsys.readouterr().out
    for name in ("fig3", "table3", "ablations", "cluster"):
        assert name in out
    assert "Shard-cluster scale-out" in out


def test_cli_unknown_fault_plan_suggests(capsys):
    with pytest.raises(SystemExit):
        main(["table1", "--faults", "chaoss"])
    err = capsys.readouterr().err
    assert "unknown fault plan 'chaoss'" in err
    assert "Did you mean 'chaos'?" in err
    assert "Available plans:" in err


def test_cli_quick_table3_runs_and_exports(tmp_path, capsys):
    csv_dir = str(tmp_path / "csv")
    rc = main(["table3", "--quick", "--csv", csv_dir])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Table III" in out
    assert os.path.exists(os.path.join(csv_dir, "table3.csv"))


def test_cli_quick_table1_runs(capsys):
    rc = main(["table1", "--quick"])
    assert rc == 0
    assert "UFFD_COPY" in capsys.readouterr().out
