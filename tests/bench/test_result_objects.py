"""Unit tests for experiment result objects (synthetic data, no runs)."""

import pytest

from repro.bench.fig3_latency_cdf import Fig3Result, PAPER_FIG3_AVERAGES_US
from repro.bench.fig4_graph500 import Fig4Result
from repro.bench.fig5_mongodb import Fig5Result
from repro.bench.table1_codepaths import Table1Result
from repro.bench.table2_optimizations import (
    OPTIMIZATION_MODES,
    PAPER_TABLE2_US,
    Table2Result,
)
from repro.bench.table3_footprint import Table3Result, Table3Row
from repro.sim import LatencyRecorder
from repro.workloads import PmbenchResult
from repro.workloads.ycsb import YcsbResult


def synthetic_pmbench(avg):
    reads = LatencyRecorder("r")
    writes = LatencyRecorder("w")
    reads.extend([avg] * 50)
    writes.extend([avg] * 50)
    return PmbenchResult(reads, writes, 0.0, 100.0, hits=25, faults=75)


def test_fig3_result_speedups_and_rows():
    results = {
        name: synthetic_pmbench(paper)
        for name, paper in PAPER_FIG3_AVERAGES_US.items()
    }
    fig3 = Fig3Result(results=results, memory_scale=1.0,
                      measured_accesses=100)
    assert fig3.average("swap-ssd") == pytest.approx(106.56)
    speedup = fig3.speedup_over("fluidmem-ramcloud", "swap-nvmeof")
    assert speedup == pytest.approx(1 - 24.87 / 41.73, abs=1e-6)
    rows = fig3.rows()
    assert len(rows) == 6
    assert all(row[3] == 1.0 for row in rows)  # ratio == 1 by design
    assert "Figure 3" in fig3.table_text()
    assert "*" in fig3.cdf_text("swap-ssd")


def test_table1_result_lookup():
    measured = [("READ_PAGE", 15.0, 1.0, 20.0)]
    result = Table1Result(measured=measured)
    assert result.row_for("READ_PAGE")[1] == 15.0
    with pytest.raises(KeyError):
        result.row_for("NOPE")
    assert "Table I" in result.table_text()


def test_table2_result_rows_cover_all_modes():
    measured = {key: value for key, value in PAPER_TABLE2_US.items()}
    result = Table2Result(measured=measured)
    rows = result.rows()
    assert len(rows) == len(OPTIMIZATION_MODES)
    assert result.value("ramcloud", "async-rw", "rand") == 29.20
    text = result.table_text()
    assert "default" in text and "async-rw" in text


def test_fig4_result_helpers():
    platforms = ("fluidmem-dram", "swap-dram")
    fractions = (0.6, 1.2)
    mteps = {
        (0.6, "fluidmem-dram"): 10.0,
        (0.6, "swap-dram"): 10.3,
        (1.2, "fluidmem-dram"): 5.0,
        (1.2, "swap-dram"): 3.0,
    }
    result = Fig4Result(mteps=mteps, graph_scales={0.6: 12, 1.2: 12},
                        platforms=platforms, wss_fractions=fractions)
    assert result.overhead_at_local() == pytest.approx(1 - 10.0 / 10.3)
    rows = result.rows()
    assert rows[0][0] == "60%"
    assert "Figure 4" in result.table_text()


def synthetic_ycsb(avg, jitter=0.0):
    result = YcsbResult()
    for index in range(40):
        value = avg + (jitter if index % 2 else -jitter)
        result.read_latency.record(value)
        result.timeline.record(float(index), value)
    return result


def test_fig5_result_stability_and_rows():
    results = {
        ("swap-nvmeof", 1.0): synthetic_ycsb(1000.0, jitter=400.0),
        ("fluidmem-ramcloud", 1.0): synthetic_ycsb(500.0, jitter=10.0),
    }
    fig5 = Fig5Result(results=results,
                      platforms=("swap-nvmeof", "fluidmem-ramcloud"),
                      cache_fractions=(1.0,))
    assert fig5.average("swap-nvmeof", 1.0) == pytest.approx(1000.0)
    # The noisy swap trace has a much higher coefficient of variation.
    assert fig5.stability("swap-nvmeof", 1.0) > \
        3 * fig5.stability("fluidmem-ramcloud", 1.0)
    assert "Figure 5" in fig5.table_text()


def test_table3_result_lookup_and_render():
    rows = [
        Table3Row("After startup", 81042, True, True, None),
        Table3Row("FluidMem (KVM)", 180, True, True, True),
    ]
    result = Table3Result(rows_data=rows)
    row = result.row("FluidMem (KVM)", 180)
    assert row.footprint_mib == pytest.approx(180 * 4096 / (1 << 20))
    with pytest.raises(KeyError):
        result.row("FluidMem (KVM)", 999)
    text = result.table_text()
    assert "81042" in text and "n/a" in text and "yes" in text
