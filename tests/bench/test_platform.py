"""Tests for the test-platform builder."""

import pytest

from repro.bench import (
    FLUIDMEM_PLATFORMS,
    PLATFORM_NAMES,
    PlatformShape,
    SWAP_PLATFORMS,
    build_platform,
)
from repro.errors import BenchError
from repro.mem import GIB, PAGE_SIZE


def test_six_platforms():
    assert len(PLATFORM_NAMES) == 6
    assert set(FLUIDMEM_PLATFORMS) | set(SWAP_PLATFORMS) == \
        set(PLATFORM_NAMES)


def test_unknown_platform_rejected():
    with pytest.raises(BenchError):
        build_platform("fluidmem-floppy")


def test_shape_full_scale_matches_paper():
    shape = PlatformShape.at_scale(1.0)
    assert shape.local_dram_bytes == 1 * GIB
    assert shape.remote_bytes == 4 * GIB
    assert shape.swap_device_bytes == 20 * GIB
    assert shape.boot_pages == 81042


def test_shape_scaling_preserves_ratios():
    shape = PlatformShape.at_scale(1.0 / 256)
    assert shape.remote_bytes == 4 * shape.local_dram_bytes
    assert shape.swap_device_bytes == 20 * shape.local_dram_bytes
    # Boot footprint stays ~31% of DRAM.
    boot_fraction = shape.boot_pages * PAGE_SIZE / shape.local_dram_bytes
    assert 0.25 <= boot_fraction <= 0.35


def test_shape_validation():
    with pytest.raises(BenchError):
        PlatformShape.at_scale(0)
    with pytest.raises(BenchError):
        PlatformShape.at_scale(2.0)
    with pytest.raises(BenchError):
        PlatformShape.at_scale(0.5, remote_factor=0)


def test_fluidmem_platform_wiring():
    platform = build_platform("fluidmem-ramcloud",
                              memory_scale=1.0 / 2048, seed=1)
    assert platform.is_fluidmem
    assert platform.monitor is not None
    assert platform.mm is None
    # LRU budget equals the local DRAM allotment.
    assert platform.monitor.lru.capacity == platform.shape.local_pages
    # VM capacity = local + hotplugged remote.
    assert platform.vm.memory_bytes == platform.shape.total_vm_bytes
    # Booted through the fault machinery.
    assert platform.vm.booted
    assert platform.monitor.counters["faults"] >= platform.shape.boot_pages


def test_swap_platform_wiring():
    platform = build_platform("swap-nvmeof", memory_scale=1.0 / 2048,
                              seed=1)
    assert not platform.is_fluidmem
    assert platform.mm is not None
    assert platform.mm.swap is not None
    assert platform.mm.swappiness == 100
    assert platform.mm.latency.page_cluster == 1  # readahead off (paper)
    assert platform.vm.booted


def test_swap_device_types():
    for name, device_name in (("swap-dram", "pmem"),
                              ("swap-nvmeof", "nvmeof"),
                              ("swap-ssd", "ssd")):
        platform = build_platform(name, memory_scale=1.0 / 2048, seed=1)
        assert platform.swap_device.name == device_name


def test_data_disk_optional():
    with_disk = build_platform("swap-ssd", memory_scale=1.0 / 2048,
                               with_data_disk=True)
    assert with_disk.data_disk is not None
    without = build_platform("swap-ssd", memory_scale=1.0 / 2048)
    assert without.data_disk is None


def test_faulty_platform_wiring():
    from repro.bench.platform import (
        default_fault_plan,
        set_default_fault_plan,
    )
    from repro.kv import ReplicatedStore

    platform = build_platform("fluidmem-ramcloud",
                              memory_scale=1.0 / 2048, seed=1,
                              faults="slow-replica")
    assert isinstance(platform.store, ReplicatedStore)
    assert len(platform.store.replicas) == 2
    assert {replica.node for replica in platform.store.replicas} == \
        {"replica0", "replica1"}
    assert platform.vm.booted  # booted through the faulty store

    # Swap platforms ignore the plan (no remote KV store to break).
    swap = build_platform("swap-ssd", memory_scale=1.0 / 2048,
                          faults="slow-replica")
    assert not swap.is_fluidmem

    # The CLI sets a process-wide default; unknown names are rejected.
    set_default_fault_plan("chaos")
    assert default_fault_plan() == "chaos"
    set_default_fault_plan(None)
    assert default_fault_plan() is None
    with pytest.raises(BenchError):
        set_default_fault_plan("not-a-plan")


def test_faulty_platform_deterministic():
    a = build_platform("fluidmem-ramcloud", memory_scale=1.0 / 2048,
                       seed=5, faults="flaky-fabric")
    b = build_platform("fluidmem-ramcloud", memory_scale=1.0 / 2048,
                       seed=5, faults="flaky-fabric")
    assert a.env.now == b.env.now
    assert a.monitor.counters.as_dict() == b.monitor.counters.as_dict()
    assert a.store.counters.as_dict() == b.store.counters.as_dict()


def test_deterministic_given_seed():
    a = build_platform("fluidmem-ramcloud", memory_scale=1.0 / 2048,
                       seed=77)
    b = build_platform("fluidmem-ramcloud", memory_scale=1.0 / 2048,
                       seed=77)
    assert a.env.now == b.env.now  # identical boot trajectories
    assert a.monitor.counters.as_dict() == b.monitor.counters.as_dict()
