"""The policy tournament: report shape, determinism, worker parity,
and the default-combo-equals-legacy guarantee."""

import contextlib
import io
import json

import pytest

from repro.bench.cli import main as bench_main
from repro.bench.tournament import (
    HANDLER_COUNTS,
    QUICK_ALLOCS,
    TOURNAMENT_WORKLOADS,
    _cell_config,
    run_tournament,
)
from repro.core import FluidMemConfig
from repro.policy.registry import PREFETCH_POLICIES


def _dump(result):
    """Canonical bytes of a tournament result (what --metrics pins)."""
    return json.dumps(
        {"cells": result.cells, "ranking": result.ranking},
        sort_keys=True,
    )


@pytest.fixture(scope="module")
def quick_result():
    return run_tournament(quick=True, seed=42)


# ----------------------------------------------------------------- shape

def test_quick_tournament_covers_the_full_grid(quick_result):
    combos = len(QUICK_ALLOCS) * len(PREFETCH_POLICIES) * len(HANDLER_COUNTS)
    assert combos == 12
    assert len(quick_result.cells) == combos * len(TOURNAMENT_WORKLOADS)
    assert len(quick_result.ranking) == combos
    seen = {
        (cell["combo"], cell["workload"]) for cell in quick_result.cells
    }
    assert len(seen) == len(quick_result.cells)  # no duplicate cells


def test_cells_carry_the_policy_lab_telemetry(quick_result):
    for cell in quick_result.cells:
        assert cell["faults"] > 0
        assert cell["p99_us"] >= cell["p50_us"] >= 0.0
        assert 0.0 <= cell["frame_occupancy"] <= 1.0
        assert 0.0 <= cell["slot_occupancy"] <= 1.0
        if cell["prefetch"] == "none":
            assert cell["prefetches_issued"] == 0


def test_ranking_is_sorted_and_dense(quick_result):
    ranking = quick_result.ranking
    assert [entry["rank"] for entry in ranking] == list(
        range(1, len(ranking) + 1)
    )
    keys = [
        (entry["mean_p99_us"], entry["mean_p50_us"], entry["combo"])
        for entry in ranking
    ]
    assert keys == sorted(keys)
    assert quick_result.winner == ranking[0]["combo"]


def test_leap_beats_sequential_on_the_strided_market(quick_result):
    """The market cell's stride-3 scanner is the discriminating input:
    Leap learns the trend, a fixed +1..+4 prefetcher cannot."""
    def hit_rate(prefetch):
        cells = [
            c for c in quick_result.cells
            if c["workload"] == "market" and c["prefetch"] == prefetch
        ]
        issued = sum(c["prefetches_issued"] for c in cells)
        hits = sum(c["prefetch_hits"] for c in cells)
        return hits / issued if issued else 0.0

    assert hit_rate("leap") > hit_rate("sequential")


# ----------------------------------------------------------- determinism

def test_same_seed_is_byte_identical(quick_result):
    rerun = run_tournament(quick=True, seed=42)
    assert _dump(rerun) == _dump(quick_result)


def test_workers_do_not_change_the_bytes(quick_result):
    """The acceptance bar: N workers, same ranked report bytes."""
    parallel = run_tournament(quick=True, seed=42, workers=4)
    assert _dump(parallel) == _dump(quick_result)
    assert parallel.workers == 4


# ------------------------------------------------- default-combo parity

def test_default_combo_config_is_the_shipped_default():
    """Selecting lifo+none+h1 explicitly must resolve to the same
    machinery an unconfigured monitor gets — the 'default combo is
    byte-identical to today' guarantee starts here."""
    import dataclasses

    from repro.policy import make_alloc_policy, resolve_prefetcher

    cell = _cell_config("lifo", "none", 1)
    default = FluidMemConfig()
    # The spelled-out policy names differ ("none" vs "sequential at
    # depth 0") but both resolve to no prefetcher and no alloc policy.
    assert cell == dataclasses.replace(default, prefetch_policy="none")
    assert resolve_prefetcher(cell.prefetch_policy,
                              cell.prefetch_pages) is None
    assert resolve_prefetcher(default.prefetch_policy,
                              default.prefetch_pages) is None
    assert make_alloc_policy(cell.alloc_policy) is None
    assert cell.fault_handlers == default.fault_handlers == 1


def test_default_combo_matches_unconfigured_platform():
    """Same workload, one platform with config=None and one with the
    tournament's default combo: every counter and latency percentile
    must match bit for bit."""
    from repro.bench.platform import build_platform
    from repro.obs import NULL_OBS
    from repro.workloads import Pmbench, PmbenchConfig

    def run_one(config):
        platform = build_platform(
            "fluidmem-dram", memory_scale=1.0 / 1024, seed=11,
            fluidmem_config=config, obs=NULL_OBS,
        )
        bench = Pmbench(
            platform.env,
            platform.port,
            platform.workload_base,
            PmbenchConfig(
                wss_pages=platform.shape.wss_pages(2.0),
                read_ratio=0.5,
                measured_accesses=400,
            ),
            rng=platform.streams.stream("pmbench"),
        )
        platform.run(bench.run())
        monitor = platform.monitor
        return json.dumps({
            "counters": monitor.counters.as_dict(),
            "p50": monitor.fault_latency.percentile(50.0),
            "p99": monitor.fault_latency.percentile(99.0),
            "now": platform.env.now,
        }, sort_keys=True)

    assert run_one(None) == run_one(_cell_config("lifo", "none", 1))


# ------------------------------------------------------------------- cli

def _run_cli(tmp_path, tag, extra=()):
    path = tmp_path / f"tournament-{tag}.json"
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = bench_main([
            "tournament", "--quick", "--seed", "42",
            "--metrics", str(path), *extra,
        ])
    assert code == 0
    return path.read_bytes(), out.getvalue()


def test_cli_emits_one_ranked_metrics_document(tmp_path):
    payload, stdout = _run_cli(tmp_path, "serial")
    document = json.loads(payload)
    assert document["schema"] == "repro-bench-metrics/1"
    snapshot = document["experiments"]["tournament"]
    counters = snapshot["counters"]
    gauges = snapshot["gauges"]
    assert "tournament_cells" in counters
    assert any(key.startswith("tournament_faults{") for key in counters)
    assert any(key.startswith("tournament_rank{") for key in gauges)
    assert any(
        key.startswith("tournament_mean_p99_us{") for key in gauges
    )
    assert "Winner:" in stdout
    assert "rank" in stdout


def test_cli_workers_metrics_are_byte_identical(tmp_path):
    serial, _ = _run_cli(tmp_path, "w1", extra=("--workers", "1"))
    parallel, _ = _run_cli(tmp_path, "w4", extra=("--workers", "4"))
    assert serial == parallel


def test_cli_rejects_bad_worker_count(tmp_path):
    with pytest.raises(SystemExit):
        with contextlib.redirect_stderr(io.StringIO()):
            bench_main(["tournament", "--quick", "--workers", "0"])


def test_market_cell_addresses_fit_the_vm():
    """The market tenants index pages [0, 2*wss): keep that inside the
    VM's memory so the cell never faults outside its region."""
    from repro.bench.tournament import _run_market_cell

    cell = _run_market_cell({
        "alloc": "lifo", "prefetch": "leap", "handlers": 4,
        "workload": "market", "quick": True, "seed": 3,
        "faults": "none",
    })
    assert cell["faults"] > 0
    assert cell["handlers"] == 4
    assert cell["sim_time_us"] > 0.0
