"""Every experiment the CLI advertises must run in quick mode and emit
a well-formed ``--metrics`` document — and every bundled scenario
template must validate, run quick, and emit a schema-valid
``repro-scenario-metrics/1`` report.

The experiment list is taken from ``--list-experiments`` itself (not
from the module constant) and the template list from the ``scenarios/``
directory itself, so a new experiment or template that is present but
broken fails here rather than shipping silently.
"""

import contextlib
import io
import json
import numbers
import os

import pytest

from repro.bench.cli import EXPERIMENTS, METRICS_SCHEMA, main
from repro.scenario import (
    REPORT_SCHEMA,
    SCENARIO_KINDS,
    load_scenario,
    validate_report,
)
from repro.scenario.cli import main as scenario_main
from repro.scenario.cli import scenarios_dir, template_names


def _listed_experiments():
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        assert main(["--list-experiments"]) == 0
    names = []
    for line in buffer.getvalue().splitlines():
        if line.strip():
            name, _, description = line.partition(" ")
            assert description.strip(), f"{name}: missing description"
            names.append(name)
    return names


LISTED = _listed_experiments()


def test_listing_matches_the_canonical_tuple():
    assert tuple(LISTED) == EXPERIMENTS


def _validate_metrics_document(doc, name, seed):
    assert doc["schema"] == METRICS_SCHEMA == "repro-bench-metrics/1"
    assert doc["quick"] is True
    assert doc["seed"] == seed
    assert doc["faults"] is None
    assert set(doc["experiments"]) == {name}
    snapshot = doc["experiments"][name]
    assert set(snapshot) >= {"counters", "gauges", "histograms"}
    for value in snapshot["counters"].values():
        assert isinstance(value, int) and value >= 0
    for value in snapshot["gauges"].values():
        assert isinstance(value, numbers.Real)
    for summary in snapshot["histograms"].values():
        assert summary["count"] >= 1
        assert summary["min"] <= summary["p50"] <= summary["p99"] \
            <= summary["max"]
    # A quick run must still observe *something* — except table2,
    # which drives bare test processes with no observability plumbing
    # (the CLI prints the same caveat for --faults).
    if name != "table2":
        assert snapshot["counters"] or snapshot["histograms"]


@pytest.mark.parametrize("name", LISTED)
def test_quick_run_emits_valid_metrics(name, tmp_path):
    path = tmp_path / f"{name}.json"
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = main([
            name, "--quick", "--seed", "7", "--metrics", str(path),
        ])
    assert code == 0
    assert stdout.getvalue().strip()  # the table/figure text rendered
    with open(path) as handle:
        _validate_metrics_document(json.load(handle), name, seed=7)


def test_market_quick_run_reports_per_tenant_qos(tmp_path):
    """The market metrics doc must carry the per-tenant QoS story:
    fault-latency histograms, p99 and violation gauges for every
    tenant, and the broker's market gauges — the acceptance contract
    for the marketplace experiment."""
    path = tmp_path / "market-qos.json"
    with contextlib.redirect_stdout(io.StringIO()):
        assert main([
            "market", "--quick", "--seed", "42", "--metrics", str(path),
        ]) == 0
    with open(path) as handle:
        snapshot = json.load(handle)["experiments"]["market"]
    tenants = ("idle-pool", "premium-db", "spot-batch", "standard-web")
    for tenant in tenants:
        assert f"tenant_fault_latency_us{{tenant={tenant}}}" \
            in snapshot["histograms"], tenant
        assert f"tenant_p99_fault_latency_us{{tenant={tenant}}}" \
            in snapshot["gauges"], tenant
        violations = snapshot["gauges"][
            f"tenant_slo_violations_total{{tenant={tenant}}}"
        ]
        assert isinstance(violations, numbers.Real) and violations >= 0
    for gauge in ("market_harvested_pages", "market_granted_pages",
                  "market_spot_price_millicredits",
                  "market_lease_rejections", "qos_spot_throttle_us",
                  "fleet_alive_vms"):
        assert gauge in snapshot["gauges"], gauge
    # The market actually moved pages in quick mode.
    assert snapshot["counters"]["pages_offered{component=broker}"] > 0
    assert snapshot["counters"]["pages_granted{component=broker}"] > 0
    assert snapshot["histograms"][
        "tenant_fault_latency_us{tenant=premium-db}"
    ]["count"] >= 100  # hundreds of VMs generate real traffic


# ---------------------------------------------------------------------------
# Scenario-template smoke suite
# ---------------------------------------------------------------------------

TEMPLATES = template_names()

#: The template library the tentpole promises.  Discovery stays live
#: (any new template is smoked automatically); the named set is pinned
#: so a deleted template fails loudly.
EXPECTED_TEMPLATES = {
    "paper-repro", "scaleout-8shard", "chaos-soak", "market-fleet",
    "web-diurnal", "ml-sweep", "kv-mix",
}


def test_template_library_is_complete():
    assert set(TEMPLATES) >= EXPECTED_TEMPLATES


def test_every_template_file_is_discovered():
    directory = scenarios_dir()
    assert directory is not None
    files = {
        name[:-len(".json")]
        for name in os.listdir(directory)
        if name.endswith(".json")
    }
    assert files == set(TEMPLATES)


@pytest.mark.parametrize("template", TEMPLATES)
def test_template_validates(template):
    directory = scenarios_dir()
    scenario = load_scenario(os.path.join(directory, f"{template}.json"))
    assert scenario.name == template
    assert scenario.kind in SCENARIO_KINDS
    assert scenario.description


def test_validate_command_accepts_the_whole_library():
    directory = scenarios_dir()
    paths = [
        os.path.join(directory, f"{name}.json") for name in TEMPLATES
    ]
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        assert scenario_main(["validate", *paths]) == 0
    assert stdout.getvalue().count("ok    ") == len(paths)


@pytest.mark.parametrize("template", TEMPLATES)
def test_template_quick_run_emits_valid_report(template, tmp_path):
    report_path = tmp_path / f"{template}.json"
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = scenario_main([
            "run", template, "--quick", "--report", str(report_path),
        ])
    assert code == 0
    assert "KPIs:" in stdout.getvalue()
    with open(report_path) as handle:
        document = json.load(handle)
    validate_report(document)
    assert document["schema"] == REPORT_SCHEMA == "repro-scenario-metrics/1"
    assert document["scenario"] == template
    assert document["quick"] is True
    for value in document["kpis"].values():
        assert isinstance(value, (numbers.Real, bool, str))


def test_new_workloads_have_distinct_kpi_profiles(tmp_path):
    """The three genuinely new workloads must *behave* differently:
    diurnal web serving is cache-friendly and bursty, the ML sweep
    thrashes with a flat load line, and the KV mix sits in between
    with surge-driven tail pressure."""
    kpis = {}
    for template in ("web-diurnal", "ml-sweep", "kv-mix"):
        path = tmp_path / f"{template}.json"
        with contextlib.redirect_stdout(io.StringIO()):
            assert scenario_main([
                "run", template, "--quick", "--report", str(path),
            ]) == 0
        with open(path) as handle:
            kpis[template] = json.load(handle)["kpis"]
    web, ml, kv = (
        kpis["web-diurnal"], kpis["ml-sweep"], kpis["kv-mix"]
    )
    # Hit rates order the three workloads: zipfian web > kv mix > sweep.
    assert web["hit_pct"] > kv["hit_pct"] > ml["hit_pct"]
    assert web["hit_pct"] > 60.0
    assert ml["hit_pct"] < 30.0
    # The diurnal curve + spikes make web bursty; the sweep is flat.
    assert web["peak_to_mean"] > 1.5
    assert ml["peak_to_mean"] < 1.3
    # Only the KV mix schedules demand surges.
    assert kv["surge_ticks"] > 0
    assert web["surge_ticks"] == ml["surge_ticks"] == 0
