"""Every experiment the CLI advertises must run in quick mode and emit
a well-formed ``--metrics`` document.

The experiment list is taken from ``--list-experiments`` itself (not
from the module constant) so a new experiment that is registered but
broken — or runnable but unlisted — fails here rather than shipping
silently.
"""

import contextlib
import io
import json
import numbers

import pytest

from repro.bench.cli import EXPERIMENTS, METRICS_SCHEMA, main


def _listed_experiments():
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        assert main(["--list-experiments"]) == 0
    names = []
    for line in buffer.getvalue().splitlines():
        if line.strip():
            name, _, description = line.partition(" ")
            assert description.strip(), f"{name}: missing description"
            names.append(name)
    return names


LISTED = _listed_experiments()


def test_listing_matches_the_canonical_tuple():
    assert tuple(LISTED) == EXPERIMENTS


def _validate_metrics_document(doc, name, seed):
    assert doc["schema"] == METRICS_SCHEMA == "repro-bench-metrics/1"
    assert doc["quick"] is True
    assert doc["seed"] == seed
    assert doc["faults"] is None
    assert set(doc["experiments"]) == {name}
    snapshot = doc["experiments"][name]
    assert set(snapshot) >= {"counters", "gauges", "histograms"}
    for value in snapshot["counters"].values():
        assert isinstance(value, int) and value >= 0
    for value in snapshot["gauges"].values():
        assert isinstance(value, numbers.Real)
    for summary in snapshot["histograms"].values():
        assert summary["count"] >= 1
        assert summary["min"] <= summary["p50"] <= summary["p99"] \
            <= summary["max"]
    # A quick run must still observe *something* — except table2,
    # which drives bare test processes with no observability plumbing
    # (the CLI prints the same caveat for --faults).
    if name != "table2":
        assert snapshot["counters"] or snapshot["histograms"]


@pytest.mark.parametrize("name", LISTED)
def test_quick_run_emits_valid_metrics(name, tmp_path):
    path = tmp_path / f"{name}.json"
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = main([
            name, "--quick", "--seed", "7", "--metrics", str(path),
        ])
    assert code == 0
    assert stdout.getvalue().strip()  # the table/figure text rendered
    with open(path) as handle:
        _validate_metrics_document(json.load(handle), name, seed=7)


def test_market_quick_run_reports_per_tenant_qos(tmp_path):
    """The market metrics doc must carry the per-tenant QoS story:
    fault-latency histograms, p99 and violation gauges for every
    tenant, and the broker's market gauges — the acceptance contract
    for the marketplace experiment."""
    path = tmp_path / "market-qos.json"
    with contextlib.redirect_stdout(io.StringIO()):
        assert main([
            "market", "--quick", "--seed", "42", "--metrics", str(path),
        ]) == 0
    with open(path) as handle:
        snapshot = json.load(handle)["experiments"]["market"]
    tenants = ("idle-pool", "premium-db", "spot-batch", "standard-web")
    for tenant in tenants:
        assert f"tenant_fault_latency_us{{tenant={tenant}}}" \
            in snapshot["histograms"], tenant
        assert f"tenant_p99_fault_latency_us{{tenant={tenant}}}" \
            in snapshot["gauges"], tenant
        violations = snapshot["gauges"][
            f"tenant_slo_violations_total{{tenant={tenant}}}"
        ]
        assert isinstance(violations, numbers.Real) and violations >= 0
    for gauge in ("market_harvested_pages", "market_granted_pages",
                  "market_spot_price_millicredits",
                  "market_lease_rejections", "qos_spot_throttle_us",
                  "fleet_alive_vms"):
        assert gauge in snapshot["gauges"], gauge
    # The market actually moved pages in quick mode.
    assert snapshot["counters"]["pages_offered{component=broker}"] > 0
    assert snapshot["counters"]["pages_granted{component=broker}"] > 0
    assert snapshot["histograms"][
        "tenant_fault_latency_us{tenant=premium-db}"
    ]["count"] >= 100  # hundreds of VMs generate real traffic
