"""Shape tests for every experiment: the paper's claims at tiny scale.

These do NOT assert absolute numbers (that is EXPERIMENTS.md's job at
full bench scale) — they assert the *relationships* the paper's
conclusions rest on, at a scale quick enough for CI.
"""

import pytest

from repro.bench.ablations import (
    run_steal_ablation,
    run_tracker_ablation,
)
from repro.bench.cluster_scaleout import run_cluster
from repro.bench.fig3_latency_cdf import run_fig3
from repro.bench.fig4_graph500 import memory_scale_for, run_fig4
from repro.bench.fig5_mongodb import run_fig5
from repro.bench.table1_codepaths import PAPER_TABLE1_US, run_table1
from repro.bench.table2_optimizations import run_table2
from repro.bench.table3_footprint import (
    kvm_deadlocks_at_one_page,
    run_table3,
)
from repro.workloads import KroneckerGraph


@pytest.fixture(scope="module")
def fig3():
    return run_fig3(measured_accesses=4000, seed=7)


def test_fig3_backend_ordering(fig3):
    """DRAM ~= RAMCloud < Memcached; DRAM < NVMeoF < SSD (Fig. 3)."""
    avg = fig3.average
    assert avg("fluidmem-dram") == pytest.approx(
        avg("fluidmem-ramcloud"), rel=0.15
    )
    assert avg("fluidmem-ramcloud") < avg("fluidmem-memcached")
    assert avg("swap-dram") < avg("swap-nvmeof") < avg("swap-ssd")


def test_fig3_headline_speedups(fig3):
    """~40% faster than NVMeoF swap, ~77% faster than SSD swap (§I)."""
    nvmeof = fig3.speedup_over("fluidmem-ramcloud", "swap-nvmeof")
    ssd = fig3.speedup_over("fluidmem-ramcloud", "swap-ssd")
    assert 0.30 <= nvmeof <= 0.55
    assert 0.65 <= ssd <= 0.88


def test_fig3_sub10us_fraction_matches_hits(fig3):
    """§VI-B: faults under 10us are the DRAM-cached fraction (~25%)."""
    result = fig3.results["fluidmem-ramcloud"]
    assert 0.15 <= result.hit_fraction <= 0.35
    assert result.cdf().fraction_below(10.0) == pytest.approx(
        result.hit_fraction, abs=0.08
    )


def test_fig3_within_25pct_of_paper(fig3):
    for name, result in fig3.results.items():
        from repro.bench.fig3_latency_cdf import PAPER_FIG3_AVERAGES_US
        ratio = result.average_latency_us / PAPER_FIG3_AVERAGES_US[name]
        assert 0.75 <= ratio <= 1.25, (name, ratio)


def test_table1_matches_paper_on_direct_paths():
    result = run_table1(measured_accesses=3000, seed=7)
    close_paths = (
        "UPDATE_PAGE_CACHE",
        "INSERT_PAGE_HASH_NODE",
        "INSERT_LRU_CACHE_NODE",
        "UFFD_ZEROPAGE",
        "UFFD_COPY",
        "READ_PAGE",
        "WRITE_PAGE",
    )
    for path in close_paths:
        _name, avg, _stdev, _p99 = result.row_for(path)
        paper_avg = PAPER_TABLE1_US[path][0]
        assert avg == pytest.approx(paper_avg, rel=0.2), path
    # REMAP's tail is IPI-driven: p99 >> avg (Table I: 18 vs 1.65).
    _n, avg, _s, p99 = result.row_for("UFFD_REMAP")
    assert p99 > 2.5 * avg


def test_table2_optimizations_ordered():
    """Each async optimization helps; both together help most (Tab II)."""
    result = run_table2(accesses=1200, seed=7, lru_pages=128)
    for backend in ("dram", "ramcloud"):
        for pattern in ("seq", "rand"):
            default = result.value(backend, "default", pattern)
            read = result.value(backend, "async-read", pattern)
            write = result.value(backend, "async-write", pattern)
            both = result.value(backend, "async-rw", pattern)
            assert both < default
            assert read < default
            assert write < default
            assert both <= min(read, write) * 1.05
    # The optimizations matter far more on the remote backend.
    rc_gain = result.value("ramcloud", "default", "rand") \
        - result.value("ramcloud", "async-rw", "rand")
    dram_gain = result.value("dram", "default", "rand") \
        - result.value("dram", "async-rw", "rand")
    assert rc_gain > 2 * dram_gain


@pytest.fixture(scope="module")
def fig4():
    return run_fig4(graph_scale=11, num_bfs_roots=1, seed=7)


def test_fig4_local_parity(fig4):
    """WSS 60%: FluidMem within a few % of swap (paper: 2.6%)."""
    assert abs(fig4.overhead_at_local()) < 0.08


def test_fig4_fluidmem_wins_at_120pct(fig4):
    """The OS-pages-evicted effect (Fig. 4b)."""
    assert fig4.value(1.2, "fluidmem-dram") > fig4.value(1.2, "swap-dram")
    assert fig4.value(1.2, "fluidmem-ramcloud") > \
        fig4.value(1.2, "swap-nvmeof")
    # Even Memcached-backed FluidMem beats NVMeoF and SSD swap.
    assert fig4.value(1.2, "fluidmem-memcached") > \
        fig4.value(1.2, "swap-nvmeof")
    assert fig4.value(1.2, "fluidmem-memcached") > \
        fig4.value(1.2, "swap-ssd")


def test_fig4_ramcloud_beats_nvmeof_at_high_wss(fig4):
    for fraction in (2.4, 4.8):
        assert fig4.value(fraction, "fluidmem-ramcloud") > \
            fig4.value(fraction, "swap-nvmeof")


def test_fig4_teps_decreases_with_wss(fig4):
    for platform in ("fluidmem-ramcloud", "swap-nvmeof"):
        series = [fig4.value(f, platform) for f in (0.6, 1.2, 2.4)]
        assert series[0] > series[1] > series[2]


def test_fig4_memory_scale_mapping():
    graph = KroneckerGraph(10, 8, seed=1)
    scale_small = memory_scale_for(graph, 4.8)
    scale_big = memory_scale_for(graph, 0.6)
    assert scale_small < scale_big


@pytest.fixture(scope="module")
def fig5():
    return run_fig5(operations=6000, seed=7)


def test_fig5_fluidmem_lower_latency(fig5):
    """Swap's average read latency exceeds FluidMem's at every cache
    size (paper: by 36-95%)."""
    for fraction in (1.0, 2.0, 3.0):
        swap = fig5.average("swap-nvmeof", fraction)
        fluid = fig5.average("fluidmem-ramcloud", fraction)
        assert swap > fluid


def test_fig5_latency_falls_with_cache(fig5):
    """Bigger WiredTiger cache -> lower average latency (both)."""
    swap = [fig5.average("swap-nvmeof", f) for f in (1.0, 3.0)]
    assert swap[1] < swap[0]


def test_table3_reproduces_paper_rows():
    result = run_table3(boot_scale=1.0 / 16, seed=7)
    assert result.row("After startup", 81042).ssh
    balloon = [r for r in result.rows_data
               if r.configuration == "Max VM balloon size"][0]
    assert balloon.footprint_pages == 20480

    at_180 = result.row("FluidMem (KVM)", 180)
    assert at_180.ssh and at_180.icmp and at_180.revived
    at_80 = result.row("FluidMem (KVM)", 80)
    assert not at_80.ssh and at_80.icmp and at_80.revived
    at_1 = result.row("FluidMem (full virtualization)", 1)
    assert not at_1.ssh and not at_1.icmp and at_1.revived


def test_kvm_deadlock_at_one_page():
    assert kvm_deadlocks_at_one_page(seed=7)


def test_tracker_ablation_saves_round_trips():
    result = run_tracker_ablation(memory_scale=1.0 / 2048, seed=7)
    with_tracker, without = result.data
    assert with_tracker[3] == 0      # no wasted round trips
    assert without[3] > 0
    assert with_tracker[1] <= without[1]  # boot no slower


def test_steal_ablation_reduces_reads():
    result = run_steal_ablation(
        memory_scale=1.0 / 2048, accesses=2500, seed=7
    )
    steal_row, no_steal_row = result.data
    assert steal_row[2] > 0              # steals happened
    assert steal_row[3] < no_steal_row[3]  # fewer remote reads
    assert steal_row[1] <= no_steal_row[1]  # no slower


@pytest.fixture(scope="module")
def cluster():
    return run_cluster(pages=400, max_nodes=5, seed=7)


def test_cluster_scaleout_balances_every_step(cluster):
    assert len(cluster.rows_data) == 5
    for row in cluster.rows_data:
        assert row.ratio <= 1.5, (row.nodes, row.ratio)
    assert cluster.rows_data[0].nodes == 1
    assert cluster.rows_data[-1].nodes == 5


def test_cluster_scaleout_moves_fewer_keys_as_it_grows(cluster):
    """Consistent hashing: each join steals roughly 1/n of the keys,
    so the per-join migration volume shrinks as the cluster grows."""
    moved = [row.keys_moved for row in cluster.rows_data[1:]]
    assert all(count > 0 for count in moved)
    assert moved[-1] < moved[0]


def test_cluster_crash_recovery_is_lossless(cluster):
    assert cluster.keys_lost == 0
    assert cluster.read_back_ok
    assert cluster.keys_re_replicated > 0
    assert 0 < cluster.recovery_us < 1_000_000.0


def test_cluster_table_text_mentions_recovery(cluster):
    text = cluster.table_text()
    assert "Cluster scale-out" in text
    assert "read-back OK" in text
