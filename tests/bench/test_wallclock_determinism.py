"""Determinism pins for the engine fast paths.

The hot-path overhaul (batched clock advances, Timeout pooling, inline
resource grants) is only allowed to change *wall-clock* speed.  These
tests pin the two contracts that make that claim checkable:

* (a) the seed-42 ``--metrics`` document for fig3/table1/cluster is
  **byte-identical** with the fast paths on and forced off — simulated
  results do not depend on the batching layer;
* (b) ``repro.check`` campaign results are unchanged by the global
  fast-path switch when a SchedulePolicy is installed, because the
  scheduler auto-disables every fast path (the explorer must see every
  scheduling decision either way);
* (c) the same two contracts for the burst-resolution layer stacked on
  top (``REPRO_SIM_BATCH`` / :func:`repro.sim.set_batch`, DESIGN.md
  §17): seed-42 ``--metrics`` bytes are identical with batching forced
  off, and campaigns are identical under *every* ``SCHEDULES`` policy
  because a scheduler auto-disables the batch paths too.
"""

import contextlib
import io

import pytest

from repro.bench.cli import main as bench_main
from repro.check.campaign import run_campaign
from repro.check.explorer import SCHEDULES
from repro.sim import set_batch, set_fastpath


@pytest.fixture
def fastpath_off():
    previous = set_fastpath(False)
    yield
    set_fastpath(previous)


def _metrics_bytes(tmp_path, tag):
    path = tmp_path / f"metrics-{tag}.json"
    with contextlib.redirect_stdout(io.StringIO()):
        code = bench_main([
            "fig3", "table1", "cluster",
            "--quick", "--seed", "42", "--metrics", str(path),
        ])
    assert code == 0
    return path.read_bytes()


def test_metrics_byte_identical_with_fastpath_forced_off(tmp_path):
    with_fastpath = _metrics_bytes(tmp_path, "on")
    previous = set_fastpath(False)
    try:
        without_fastpath = _metrics_bytes(tmp_path, "off")
    finally:
        set_fastpath(previous)
    assert with_fastpath == without_fastpath


def _batch_metrics_bytes(tmp_path, tag):
    path = tmp_path / f"batch-metrics-{tag}.json"
    with contextlib.redirect_stdout(io.StringIO()):
        code = bench_main([
            "fig3", "table1", "tournament",
            "--quick", "--seed", "42", "--metrics", str(path),
        ])
    assert code == 0
    return path.read_bytes()


def test_metrics_byte_identical_with_batch_forced_off(tmp_path):
    """The batch-equivalence rule (DESIGN.md §17): the burst layer on
    its own — fast paths stay on — may not move a single byte of the
    seeded --metrics document, fig3 through the policy-lab
    tournament."""
    with_batch = _batch_metrics_bytes(tmp_path, "on")
    previous = set_batch(False)
    try:
        without_batch = _batch_metrics_bytes(tmp_path, "off")
    finally:
        set_batch(previous)
    assert with_batch == without_batch


def _campaign_summaries():
    report = run_campaign(
        scenarios=("writeback", "kv"),
        seeds=(0,),
        schedules=("random", "adversarial"),
    )
    assert report.ok
    return report.summaries


def test_campaign_unchanged_by_fastpath_switch_under_scheduler():
    with_fastpath = _campaign_summaries()
    previous = set_fastpath(False)
    try:
        without_fastpath = _campaign_summaries()
    finally:
        set_fastpath(previous)
    assert with_fastpath == without_fastpath


def _campaign_summaries_all_schedules():
    report = run_campaign(
        scenarios=("writeback",),
        seeds=(0,),
        schedules=tuple(sorted(SCHEDULES)),
    )
    assert report.ok
    return report.summaries


def test_campaign_unchanged_by_batch_switch_under_every_schedule():
    """Every SchedulePolicy auto-disables the batch paths: a campaign
    over the full SCHEDULES grid must not notice the switch."""
    with_batch = _campaign_summaries_all_schedules()
    previous = set_batch(False)
    try:
        without_batch = _campaign_summaries_all_schedules()
    finally:
        set_batch(previous)
    assert with_batch == without_batch
