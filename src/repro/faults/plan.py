"""Seeded, schedule-driven fault plans.

The paper's full-disaggregation design puts *every* VM page behind the
remote store, so a flaky RAMCloud node or a dropped fabric message is a
correctness event, not a latency blip (§III sells replication across
remote servers as the provider's answer).  A :class:`FaultPlan` makes
failure a first-class, deterministic part of the simulation: it is a
set of :class:`FaultWindow` intervals over simulated time, plus a
seeded RNG for the probabilistic kinds, that a :class:`FaultyStore`
consults on every operation.

Two runs with the same seed and the same windows observe byte-identical
fault sequences, because every probability draw happens in simulation
order from one derived stream.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from ..errors import KVError
from ..sim import CounterSet, derive_seed

__all__ = [
    "FaultKind",
    "FaultWindow",
    "FaultPlan",
    "NAMED_PLANS",
    "named_plan",
    "DEFAULT_NODES",
]

#: Replica node names the bench CLI and named plans assume.
DEFAULT_NODES = ("replica0", "replica1")


class FaultKind(enum.Enum):
    """What goes wrong inside a window.

    ============ ========================================================
    Kind         Effect on a store operation during the window
    ============ ========================================================
    CRASH        node is down: the op stalls, then errors (retryable)
    PARTITION    node unreachable over the fabric; same client-side view
    SLOW         +``param`` µs added to every operation (degraded node)
    FLAKY        each op fails transiently with probability ``param``
    CORRUPT      each GET is corrupted with probability ``param`` —
                 surfaced as a checksum mismatch (DataCorruptionError)
    ============ ========================================================
    """

    CRASH = "crash"
    PARTITION = "partition"
    SLOW = "slow"
    FLAKY = "flaky"
    CORRUPT = "corrupt"


#: Kinds that make a node unreachable (skipped by replica liveness).
_DOWN_KINDS = (FaultKind.CRASH, FaultKind.PARTITION)
#: Kinds a protected node may still receive (degrade, never lose data).
_SAFE_KINDS = (FaultKind.SLOW, FaultKind.FLAKY)


@dataclass(frozen=True)
class FaultWindow:
    """One fault active on one node over ``[start_us, end_us)``."""

    kind: FaultKind
    node: str
    start_us: float
    end_us: float = math.inf
    #: SLOW: extra µs per op.  FLAKY/CORRUPT: probability in (0, 1].
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.start_us < 0:
            raise KVError(f"window start must be >= 0, got {self.start_us}")
        if self.end_us <= self.start_us:
            raise KVError(
                f"window end {self.end_us} must be after start "
                f"{self.start_us}"
            )
        if self.kind in (FaultKind.FLAKY, FaultKind.CORRUPT):
            if not 0.0 < self.param <= 1.0:
                raise KVError(
                    f"{self.kind.value} probability must be in (0, 1], "
                    f"got {self.param}"
                )
        if self.kind is FaultKind.SLOW and self.param <= 0:
            raise KVError(
                f"slow window needs a positive extra latency, "
                f"got {self.param}"
            )

    def covers(self, now: float) -> bool:
        return self.start_us <= now < self.end_us


class FaultPlan:
    """A deterministic schedule of fault windows plus a seeded RNG.

    Build one plan per simulation run (its RNG advances as the run
    draws from it); two runs that build the plan the same way see
    identical fault decisions.
    """

    def __init__(
        self, windows: Iterable[FaultWindow], seed: int = 0
    ) -> None:
        self.windows: Tuple[FaultWindow, ...] = tuple(
            sorted(windows, key=lambda w: (w.start_us, w.node, w.kind.value))
        )
        self.seed = seed
        self._rng = random.Random(derive_seed(seed, "fault-plan"))
        self.counters = CounterSet()

    # -- queries (all pure except draw()) ---------------------------------

    def _active(self, node: str, now: float, kind: FaultKind):
        for window in self.windows:
            if window.node == node and window.kind is kind \
                    and window.covers(now):
                yield window

    def is_crashed(self, node: str, now: float) -> bool:
        return any(True for _ in self._active(node, now, FaultKind.CRASH))

    def is_partitioned(self, node: str, now: float) -> bool:
        return any(
            True for _ in self._active(node, now, FaultKind.PARTITION)
        )

    def is_reachable(self, node: str, now: float) -> bool:
        """False while the node is crashed or partitioned away."""
        return not (
            self.is_crashed(node, now) or self.is_partitioned(node, now)
        )

    def extra_latency_us(self, node: str, now: float) -> float:
        """Sum of active SLOW penalties on ``node`` (they stack)."""
        return sum(
            w.param for w in self._active(node, now, FaultKind.SLOW)
        )

    def flaky_probability(self, node: str, now: float) -> float:
        return max(
            (w.param for w in self._active(node, now, FaultKind.FLAKY)),
            default=0.0,
        )

    def corrupt_probability(self, node: str, now: float) -> float:
        return max(
            (w.param for w in self._active(node, now, FaultKind.CORRUPT)),
            default=0.0,
        )

    def draw(self) -> float:
        """One uniform draw from the plan's deterministic stream."""
        return self._rng.random()

    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(sorted({w.node for w in self.windows}))

    def horizon_us(self) -> float:
        """Latest finite window end (inf if any window is permanent)."""
        return max((w.end_us for w in self.windows), default=0.0)

    # -- construction helpers ---------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        horizon_us: float,
        nodes: Sequence[str] = DEFAULT_NODES,
        protected: Sequence[str] = (),
        max_windows: int = 6,
    ) -> "FaultPlan":
        """A randomized but fully seed-determined plan.

        ``protected`` nodes only ever degrade (SLOW / low-rate FLAKY);
        they are never crashed, partitioned, or corrupted, so data
        written through a replicated store survives as long as one
        protected replica exists — the property the integrity harness
        asserts.
        """
        if horizon_us <= 0:
            raise KVError(f"horizon must be positive, got {horizon_us}")
        if not nodes:
            raise KVError("need at least one node")
        gen = random.Random(derive_seed(seed, "fault-plan-random"))
        windows: List[FaultWindow] = []
        for _ in range(gen.randint(1, max_windows)):
            node = gen.choice(list(nodes))
            kinds = _SAFE_KINDS if node in protected else tuple(FaultKind)
            kind = gen.choice(list(kinds))
            start = gen.uniform(0.0, horizon_us * 0.7)
            length = gen.uniform(horizon_us * 0.05, horizon_us * 0.5)
            if kind is FaultKind.SLOW:
                param = gen.uniform(20.0, 200.0)
            elif kind is FaultKind.FLAKY:
                cap = 0.15 if node in protected else 0.3
                param = gen.uniform(0.05, cap)
            elif kind is FaultKind.CORRUPT:
                param = gen.uniform(0.05, 0.4)
            else:
                param = 0.0
            windows.append(
                FaultWindow(kind, node, start, start + length, param)
            )
        return cls(windows, seed=seed)

    def __repr__(self) -> str:
        return (
            f"<FaultPlan seed={self.seed} windows={len(self.windows)} "
            f"nodes={self.nodes}>"
        )


# -- named plans (the bench CLI's `--faults` vocabulary) --------------------

def _replica_crash(seed: int) -> FaultPlan:
    """Replica 0 fail-stops early in the run and never comes back."""
    return FaultPlan(
        [FaultWindow(FaultKind.CRASH, "replica0", 2_000.0)], seed=seed
    )


def _rolling_outage(seed: int) -> FaultPlan:
    """Each replica crashes in turn; at least one is always alive."""
    return FaultPlan(
        [
            FaultWindow(FaultKind.CRASH, "replica0", 2_000.0, 12_000.0),
            FaultWindow(FaultKind.CRASH, "replica1", 14_000.0, 24_000.0),
            FaultWindow(FaultKind.CRASH, "replica0", 26_000.0, 36_000.0),
        ],
        seed=seed,
    )


def _flaky_fabric(seed: int) -> FaultPlan:
    """Every request to either replica fails with 15% probability."""
    return FaultPlan(
        [
            FaultWindow(FaultKind.FLAKY, node, 0.0, param=0.15)
            for node in DEFAULT_NODES
        ],
        seed=seed,
    )


def _slow_replica(seed: int) -> FaultPlan:
    """Replica 0 degrades (+150 µs/op) for most of the run."""
    return FaultPlan(
        [FaultWindow(FaultKind.SLOW, "replica0", 1_000.0, param=150.0)],
        seed=seed,
    )


def _corrupt_reads(seed: int) -> FaultPlan:
    """Replica 0 flips bits on 30% of reads (caught by checksums)."""
    return FaultPlan(
        [FaultWindow(FaultKind.CORRUPT, "replica0", 0.0, param=0.3)],
        seed=seed,
    )


def _blackout(seed: int) -> FaultPlan:
    """Every replica dies at t=3 ms, permanently.  Runs must fail
    fast with StoreUnavailableError, not hang."""
    return FaultPlan(
        [
            FaultWindow(FaultKind.CRASH, node, 3_000.0)
            for node in DEFAULT_NODES
        ],
        seed=seed,
    )


def _chaos(seed: int) -> FaultPlan:
    """A bit of everything against replica 0; replica 1 only slows."""
    return FaultPlan(
        [
            FaultWindow(FaultKind.CRASH, "replica0", 2_000.0, 9_000.0),
            FaultWindow(FaultKind.FLAKY, "replica0", 9_000.0, param=0.2),
            FaultWindow(FaultKind.CORRUPT, "replica0", 12_000.0,
                        param=0.25),
            FaultWindow(FaultKind.SLOW, "replica1", 4_000.0, 20_000.0,
                        param=60.0),
        ],
        seed=seed,
    )


NAMED_PLANS: Dict[str, Callable[[int], FaultPlan]] = {
    "replica-crash": _replica_crash,
    "rolling-outage": _rolling_outage,
    "flaky-fabric": _flaky_fabric,
    "slow-replica": _slow_replica,
    "corrupt-reads": _corrupt_reads,
    "blackout": _blackout,
    "chaos": _chaos,
}


def named_plan(name: str, seed: int = 0) -> FaultPlan:
    """Build a fresh instance of one of the named plans."""
    try:
        factory = NAMED_PLANS[name]
    except KeyError:
        raise KVError(
            f"unknown fault plan {name!r}; choose from "
            f"{sorted(NAMED_PLANS)}"
        ) from None
    return factory(seed)
