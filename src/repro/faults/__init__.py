"""Fault injection and resilience.

Failure handling is the open problem disaggregated-memory surveys keep
naming; this package makes it a deterministic, testable part of the
simulation:

* :class:`FaultPlan` / :class:`FaultWindow` — a seeded schedule of
  crash / partition / slow / flaky / corrupt-read events over
  simulated time (:data:`NAMED_PLANS` holds the bench CLI's
  ``--faults`` vocabulary);
* :class:`FaultyStore` — a :class:`~repro.kv.KeyValueBackend` wrapper
  that consults the plan on every operation and checksums everything
  it stores;
* :class:`RetryPolicy` / :func:`retry_call` — deadline plus capped
  exponential backoff with deterministic jitter, shared by the
  monitor's critical-path reads and the write-back flusher.
"""

from .plan import (
    DEFAULT_NODES,
    NAMED_PLANS,
    FaultKind,
    FaultPlan,
    FaultWindow,
    named_plan,
)
from .retry import RetryPolicy, retry_call
from .store import FaultyStore

__all__ = [
    "FaultKind",
    "FaultWindow",
    "FaultPlan",
    "NAMED_PLANS",
    "DEFAULT_NODES",
    "named_plan",
    "RetryPolicy",
    "retry_call",
    "FaultyStore",
]
