"""Retry with deadline and capped exponential backoff.

The monitor's critical-path reads and the write-back flusher both talk
to remote stores that can now fail transiently (see
:mod:`repro.faults.plan`).  :func:`retry_call` is the one retry loop
they share: it retries on :class:`~repro.errors.TransientStoreError`,
backs off exponentially with deterministic jitter (the caller passes a
seeded stream from :mod:`repro.sim.randomness`), and converts
exhaustion — attempts or deadline — into a terminal
:class:`~repro.errors.StoreUnavailableError`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Generator, Optional

from ..errors import KVError, StoreUnavailableError, TransientStoreError
from ..obs import NULL_OBS, Observability
from ..sim import Environment

__all__ = ["RetryPolicy", "retry_call"]

#: Callback signature: (attempt_number, backoff_us, error).
OnRetry = Callable[[int, float, Exception], None]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry: deadline + capped exponential backoff + jitter.

    Defaults are sized for the simulation's µs clock: first backoff
    50 µs, doubling to a 1.6 ms cap, at most 4 attempts, all inside a
    30 ms deadline — a remote store that cannot answer within that is
    declared dead.
    """

    max_attempts: int = 4
    base_backoff_us: float = 50.0
    backoff_multiplier: float = 2.0
    max_backoff_us: float = 1_600.0
    deadline_us: float = 30_000.0
    #: Fractional jitter: each backoff is scaled by a uniform factor in
    #: ``[1 - jitter, 1 + jitter]`` drawn from the caller's stream.
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise KVError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff_us < 0 or self.max_backoff_us < 0:
            raise KVError("backoff bounds must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise KVError(
                f"backoff_multiplier must be >= 1, got "
                f"{self.backoff_multiplier}"
            )
        if self.deadline_us <= 0:
            raise KVError(
                f"deadline_us must be positive, got {self.deadline_us}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise KVError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff_us(
        self, attempt: int, rng: Optional[random.Random] = None
    ) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise KVError(f"attempt must be >= 1, got {attempt}")
        raw = min(
            self.max_backoff_us,
            self.base_backoff_us
            * self.backoff_multiplier ** (attempt - 1),
        )
        if self.jitter and rng is not None:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw


def retry_call(
    env: Environment,
    make_op: Callable[[], Generator],
    policy: RetryPolicy,
    rng: Optional[random.Random] = None,
    on_retry: Optional[OnRetry] = None,
    prior_attempts: int = 0,
    initial_error: Optional[Exception] = None,
    what: str = "store operation",
    obs: Optional[Observability] = None,
    op: str = "store_op",
) -> Generator:
    """Run ``make_op()`` (a generator factory) with retries.

    ``prior_attempts`` accounts for tries the caller already burned
    (e.g. the failed asynchronous top half of a read): the loop backs
    off before its first attempt and the attempt budget shrinks
    accordingly.

    ``obs``/``op`` hook the loop into the observability layer: policy
    exhaustion emits a ``retry_exhausted`` trace event labelled with
    the low-cardinality ``op`` tag (per-retry backoff is reported by
    the caller's ``on_retry``, which sees every delay).

    Use as ``value = yield from retry_call(...)`` inside a process.
    Raises :class:`StoreUnavailableError` once the policy is exhausted;
    non-transient exceptions propagate untouched on the first throw.
    """
    started = env.now
    attempt = prior_attempts
    last_error: Optional[Exception] = initial_error
    obs = obs if obs is not None else NULL_OBS

    def give_up(reason: str) -> StoreUnavailableError:
        if obs.enabled:
            obs.tracer.instant(
                "retry_exhausted", env.now, cat="resilience",
                track=op, attempts=attempt, reason=reason[:120],
            )
            obs.registry.counter("retries_exhausted", op=op).inc()
        return StoreUnavailableError(
            f"{what} failed after {attempt} attempt(s) "
            f"({env.now - started:.0f} us): {reason}"
        )

    if prior_attempts > 0:
        if prior_attempts >= policy.max_attempts:
            raise give_up(str(initial_error or "attempts exhausted")) \
                from initial_error
        delay = policy.backoff_us(prior_attempts, rng)
        if on_retry is not None:
            on_retry(prior_attempts, delay,
                     initial_error or TransientStoreError(what))
        yield env.timeout(delay)

    while True:
        attempt += 1
        try:
            result = yield from make_op()
            return result
        except TransientStoreError as exc:
            last_error = exc
            if attempt >= policy.max_attempts:
                raise give_up(str(exc)) from exc
            delay = policy.backoff_us(attempt, rng)
            if env.now + delay - started > policy.deadline_us:
                raise give_up(
                    f"deadline {policy.deadline_us:.0f} us exceeded "
                    f"({exc})"
                ) from exc
            if on_retry is not None:
                on_retry(attempt, delay, exc)
            yield env.timeout(delay)
