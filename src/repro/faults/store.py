"""A fault-injecting store wrapper with end-to-end checksums.

:class:`FaultyStore` sits between the monitor (or a
:class:`~repro.kv.ReplicatedStore` replica slot) and any real backend,
consulting a :class:`~repro.faults.plan.FaultPlan` on every operation:

* **crash / partition** windows make the node unreachable — operations
  stall for a request-timeout's worth of simulated time and then raise
  :class:`~repro.errors.TransientStoreError`; ``is_alive`` turns False
  so replica liveness checks skip the node without paying the stall;
* **slow** windows add latency;
* **flaky** windows fail a seeded fraction of operations;
* **corrupt** windows flip bits on a seeded fraction of reads — which
  the wrapper's own write-side checksum then catches, surfacing
  :class:`~repro.errors.DataCorruptionError` instead of silently
  handing the guest a bad page.

The checksum check also runs on healthy reads, so a backend that loses
or mangles bytes on its own is caught too.
"""

from __future__ import annotations

import zlib
from typing import Any, Generator, List

from typing import Optional

from ..errors import DataCorruptionError, TransientStoreError
from ..kv.api import KeyValueBackend, WriteItem
from ..mem import PAGE_SIZE, Page
from ..obs import NULL_OBS, Observability
from ..sim import Environment
from .plan import FaultPlan

__all__ = ["FaultyStore"]

#: Simulated request timeout spent discovering a dead node the hard
#: way (client-side timer firing), µs.
CRASH_STALL_US = 200.0


def _fingerprint(value: Any) -> int:
    """A stable content fingerprint for integrity checking.

    Pages with real bytes hash their data; metadata-only pages use the
    version counter (the benchmarks' stale-read tripwire); anything
    else hashes its repr.
    """
    if isinstance(value, Page):
        if value.data is not None:
            return zlib.crc32(value.data)
        return 0x8000_0000 ^ value.version
    return zlib.crc32(repr(value).encode("utf-8"))


class FaultyStore(KeyValueBackend):
    """Wrap ``inner`` so a fault plan governs its behaviour."""

    def __init__(
        self,
        env: Environment,
        inner: KeyValueBackend,
        plan: FaultPlan,
        node: str = "replica0",
        crash_stall_us: float = CRASH_STALL_US,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(env)
        self.inner = inner
        self.plan = plan
        self.node = node
        self.crash_stall_us = crash_stall_us
        self.name = f"faulty-{inner.name}@{node}"
        self.supports_partitions = inner.supports_partitions
        self.obs = obs if obs is not None else NULL_OBS
        self.counters = self.obs.counters_for(node=node, store=inner.name)
        #: key -> fingerprint of the last durable value.
        self._checksums = {}

    def _observe_injected(self, kind: str) -> None:
        """Record one injected fault-plan window hit."""
        if self.obs.enabled:
            self.obs.tracer.instant(
                "fault_window", self.env.now, cat="faults",
                track=self.node, kind=kind, store=self.inner.name,
            )

    # -- liveness -----------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        return self.plan.is_reachable(self.node, self.env.now)

    # -- the fault gate ------------------------------------------------------

    def _gate(self) -> Generator:
        """Run the plan's checks for one operation, charging time."""
        now = self.env.now
        if self.plan.is_crashed(self.node, now):
            self.counters.incr("crash_errors")
            self.plan.counters.incr(f"{self.node}.crash_errors")
            self._observe_injected("crash")
            yield self.env.timeout(self.crash_stall_us)
            raise TransientStoreError(f"node {self.node!r} is crashed")
        if self.plan.is_partitioned(self.node, now):
            self.counters.incr("partition_errors")
            self.plan.counters.incr(f"{self.node}.partition_errors")
            self._observe_injected("partition")
            yield self.env.timeout(self.crash_stall_us)
            raise TransientStoreError(
                f"node {self.node!r} is unreachable (network partition)"
            )
        extra = self.plan.extra_latency_us(self.node, now)
        if extra > 0:
            self.counters.incr("slowed_ops")
            if self.obs.enabled:
                self.obs.registry.histogram(
                    "path_latency_us", path="fault_plan_slowdown",
                    node=self.node,
                ).observe(extra)
            yield self.env.timeout(extra)
        flaky = self.plan.flaky_probability(self.node, now)
        if flaky > 0 and self.plan.draw() < flaky:
            self.counters.incr("transient_errors")
            self.plan.counters.incr(f"{self.node}.transient_errors")
            self._observe_injected("flaky")
            raise TransientStoreError(
                f"transient failure talking to node {self.node!r}"
            )

    # -- operations ----------------------------------------------------------

    def get(self, key: int) -> Generator:
        yield from self._gate()
        value = yield from self.inner.get(key)
        corrupt = self.plan.corrupt_probability(self.node, self.env.now)
        if corrupt > 0 and self.plan.draw() < corrupt:
            # The plan flipped bits on the wire; our checksum catches it.
            self.counters.incr("corrupt_reads_detected")
            self.plan.counters.incr(f"{self.node}.corrupt_reads")
            self._observe_injected("corrupt")
            raise DataCorruptionError(
                f"checksum mismatch reading key {key:#x} from node "
                f"{self.node!r} (injected corruption)"
            )
        expected = self._checksums.get(key)
        if expected is not None and _fingerprint(value) != expected:
            # Not injected: the value really changed while remote.
            self.counters.incr("integrity_violations")
            raise DataCorruptionError(
                f"checksum mismatch reading key {key:#x} from node "
                f"{self.node!r} (stored data changed)"
            )
        self.counters.incr("reads")
        return value

    def multi_read(self, keys: List[int]) -> Generator:
        """Batched read through one fault gate; corruption and
        checksum checks still run per key."""
        yield from self._gate()
        values = yield from self.inner.multi_read(list(keys))
        now = self.env.now
        corrupt = self.plan.corrupt_probability(self.node, now)
        for key, value in zip(keys, values):
            if corrupt > 0 and self.plan.draw() < corrupt:
                self.counters.incr("corrupt_reads_detected")
                self.plan.counters.incr(f"{self.node}.corrupt_reads")
                self._observe_injected("corrupt")
                raise DataCorruptionError(
                    f"checksum mismatch reading key {key:#x} from node "
                    f"{self.node!r} (injected corruption)"
                )
            expected = self._checksums.get(key)
            if expected is not None and _fingerprint(value) != expected:
                self.counters.incr("integrity_violations")
                raise DataCorruptionError(
                    f"checksum mismatch reading key {key:#x} from node "
                    f"{self.node!r} (stored data changed)"
                )
        self.counters.incr("reads", by=len(keys))
        self.counters.incr("multi_reads")
        return values

    def put(self, key: int, value: Any, nbytes: int = PAGE_SIZE) -> Generator:
        yield from self._gate()
        yield from self.inner.put(key, value, nbytes)
        self._checksums[key] = _fingerprint(value)
        self.counters.incr("writes")

    def multi_write(self, items: List[WriteItem]) -> Generator:
        yield from self._gate()
        yield from self.inner.multi_write(items)
        for key, value, _nbytes in items:
            self._checksums[key] = _fingerprint(value)
        self.counters.incr("writes", by=len(items))

    def remove(self, key: int) -> Generator:
        yield from self._gate()
        yield from self.inner.remove(key)
        self._checksums.pop(key, None)
        self.counters.incr("removes")

    # -- introspection (no faults: these model host-side accounting) --------

    def contains(self, key: int) -> bool:
        return self.inner.contains(key)

    def stored_keys(self) -> int:
        return self.inner.stored_keys()

    @property
    def used_bytes(self) -> int:
        return self.inner.used_bytes
