"""The cluster fabric: hosts, links, and RPC round trips.

A :class:`Fabric` holds named :class:`Host` objects and the
:class:`~repro.net.transports.TransportSpec` connecting each pair.  Two
ways to use it:

* ``fabric.sample_rtt(...)`` — pure latency sampling for callers that
  account time themselves (the fast path).
* ``yield from fabric.rpc(...)`` — a simulation sub-process that holds
  the client NIC for the serialization interval, so concurrent RPCs from
  the same host queue realistically.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from ..errors import HostUnreachableError, NetworkError
from ..sim import Environment, RandomStreams, Resource
from .transports import TransportSpec

__all__ = ["Host", "Fabric"]


class Host:
    """A server on the fabric with a single NIC queue."""

    def __init__(self, env: Environment, name: str, nic_queues: int = 1) -> None:
        self.env = env
        self.name = name
        #: Concurrent in-flight sends allowed (QPs / channels).
        self.nic = Resource(env, capacity=nic_queues)

    def __repr__(self) -> str:
        return f"<Host {self.name!r}>"


class Fabric:
    """Hosts plus pairwise transports."""

    def __init__(self, env: Environment, streams: RandomStreams) -> None:
        self.env = env
        self._rng = streams.stream("net.fabric")
        self._hosts: Dict[str, Host] = {}
        self._links: Dict[Tuple[str, str], TransportSpec] = {}

    # -- topology ----------------------------------------------------------

    def add_host(self, name: str, nic_queues: int = 1) -> Host:
        if name in self._hosts:
            raise NetworkError(f"host {name!r} already exists")
        host = Host(self.env, name, nic_queues=nic_queues)
        self._hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise HostUnreachableError(f"unknown host {name!r}") from None

    def connect(self, a: str, b: str, transport: TransportSpec) -> None:
        """Create a bidirectional link between hosts ``a`` and ``b``."""
        if a == b:
            raise NetworkError("cannot connect a host to itself")
        self.host(a)
        self.host(b)
        self._links[self._key(a, b)] = transport

    def transport_between(self, a: str, b: str) -> TransportSpec:
        try:
            return self._links[self._key(a, b)]
        except KeyError:
            raise HostUnreachableError(
                f"no link between {a!r} and {b!r}"
            ) from None

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def lookahead_us(self, nbytes: int = 0) -> float:
        """Conservative lookahead bound across every link on this fabric.

        The smallest latency any configured transport can possibly
        deliver for an ``nbytes`` message — the safe-advance window for
        a parallel runner sharding hosts of this fabric across
        processes.  Raises :class:`~repro.errors.NetworkError` when the
        fabric has no links (no bound exists).
        """
        if not self._links:
            raise NetworkError("fabric has no links; no lookahead bound")
        return min(
            spec.min_one_way_us(nbytes) for spec in self._links.values()
        )

    # -- latency sampling ----------------------------------------------------

    def sample_one_way(self, src: str, dst: str, nbytes: int) -> float:
        """Sampled one-way latency in µs for an ``nbytes`` message."""
        return self.transport_between(src, dst).one_way_us(nbytes, self._rng)

    def sample_rtt(
        self,
        src: str,
        dst: str,
        request_bytes: int,
        response_bytes: int,
        server_us: float = 0.0,
    ) -> float:
        """Sampled round-trip latency in µs."""
        return self.transport_between(src, dst).round_trip_us(
            request_bytes, response_bytes, self._rng, server_us=server_us
        )

    # -- simulation processes -------------------------------------------------

    def rpc(
        self,
        src: str,
        dst: str,
        request_bytes: int,
        response_bytes: int,
        server_us: float = 0.0,
        payload: Optional[object] = None,
    ) -> Generator:
        """A sub-process performing one RPC; returns ``payload``.

        Holds the source NIC while the request serializes so concurrent
        senders on one host contend.  Use as ``result = yield from
        fabric.rpc(...)`` inside a simulation process.
        """
        env = self.env
        source = self.host(src)
        self.host(dst)
        transport = self.transport_between(src, dst)

        request = source.nic.try_acquire()
        if request is None:
            request = source.nic.request()
            yield request
        try:
            serialization_us = transport.serialization_us(request_bytes)
            if not env.try_advance(serialization_us):
                yield env.timeout(serialization_us)
        finally:
            source.nic.release(request)

        remaining = max(
            0.0,
            transport.one_way_us(request_bytes, self._rng)
            - transport.serialization_us(request_bytes)
            + server_us
            + transport.one_way_us(response_bytes, self._rng),
        )
        if not env.try_advance(remaining):
            yield env.timeout(remaining)
        return payload

    def __repr__(self) -> str:
        return (
            f"<Fabric hosts={len(self._hosts)} links={len(self._links)}>"
        )
