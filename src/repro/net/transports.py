"""Transport latency/bandwidth models.

The paper's testbed connects servers with FDR InfiniBand (56 Gb/s,
Mellanox ConnectX-3).  Three transports matter for the evaluation:

* **RDMA verbs** — used by FluidMem→RAMCloud and by NVMeoF.  A small
  message one-way is ~1.5 µs; a 4 KB payload RTT lands near the ~10 µs
  "waiting for the network transport" the paper reports for a RAMCloud
  read (§V-B).
* **IP over IB** — used by FluidMem→Memcached.  The kernel TCP stack adds
  tens of µs per message, which is why Memcached's average fault latency
  (65.79 µs, Fig. 3c) is ~2.6× RAMCloud's.
* **Ethernet/TCP** — a commodity datacenter reference point used by
  ablations ("standard Ethernet networks", §VI-D1).

Each transport is a :class:`TransportSpec` with a deterministic base cost
plus a lognormal tail, sampled from a named RNG stream so runs are
reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

__all__ = [
    "TransportSpec",
    "RDMA_FDR",
    "IPOIB",
    "ETHERNET_10G",
    "TRANSPORTS",
    "min_transport_latency_us",
]


@dataclass(frozen=True)
class TransportSpec:
    """One-way message cost model for a transport.

    total one-way latency =
        ``propagation_us`` + ``per_message_us`` + bytes/bandwidth + tail

    where *tail* is a lognormal variate with median 0 controlled by
    ``jitter_sigma`` (0 disables it).
    """

    name: str
    #: Fixed propagation + switching delay, one way (µs).
    propagation_us: float
    #: Per-message software cost at sender+receiver (stack traversal, µs).
    per_message_us: float
    #: Link bandwidth in gigabits per second.
    bandwidth_gbps: float
    #: Lognormal sigma of the latency tail; 0 = deterministic.
    jitter_sigma: float = 0.0
    #: Scale of the tail contribution (µs at the median of the lognormal).
    jitter_scale_us: float = 0.0

    def serialization_us(self, nbytes: int) -> float:
        """Time to clock ``nbytes`` onto the wire."""
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        bits = nbytes * 8
        return bits / (self.bandwidth_gbps * 1000.0)  # Gb/s -> bits/µs

    def min_one_way_us(self, nbytes: int = 0) -> float:
        """A hard lower bound on :meth:`one_way_us` for ``nbytes``.

        The jitter tail is a lognormal variate — strictly positive — so
        propagation + software cost + serialization is never undercut.
        This is the *lookahead* a conservative parallel-simulation
        runner may rely on: no message sent at time ``t`` over this
        transport can affect a remote partition before
        ``t + min_one_way_us()``.
        """
        return (
            self.propagation_us
            + self.per_message_us
            + self.serialization_us(nbytes)
        )

    def one_way_us(self, nbytes: int, rng: random.Random) -> float:
        """Sample the one-way latency for an ``nbytes`` message."""
        latency = (
            self.propagation_us
            + self.per_message_us
            + self.serialization_us(nbytes)
        )
        if self.jitter_sigma > 0.0 and self.jitter_scale_us > 0.0:
            # Lognormal with median jitter_scale_us, long right tail.
            tail = self.jitter_scale_us * math.exp(
                rng.gauss(0.0, self.jitter_sigma)
            )
            latency += tail
        return latency

    def round_trip_us(
        self,
        request_bytes: int,
        response_bytes: int,
        rng: random.Random,
        server_us: float = 0.0,
    ) -> float:
        """Request + server processing + response."""
        return (
            self.one_way_us(request_bytes, rng)
            + server_us
            + self.one_way_us(response_bytes, rng)
        )


#: FDR InfiniBand with RDMA verbs (kernel bypass).  4 KB RTT ≈ 8–10 µs.
RDMA_FDR = TransportSpec(
    name="rdma-fdr",
    propagation_us=1.0,
    per_message_us=1.2,
    bandwidth_gbps=56.0,
    jitter_sigma=0.35,
    jitter_scale_us=0.4,
)

#: IP-over-InfiniBand: same wire, but through the kernel TCP stack.
IPOIB = TransportSpec(
    name="ipoib",
    propagation_us=1.0,
    per_message_us=21.0,
    bandwidth_gbps=20.0,
    jitter_sigma=0.5,
    jitter_scale_us=2.5,
)

#: Commodity 10 GbE with TCP, for Ethernet-datacenter ablations.
ETHERNET_10G = TransportSpec(
    name="ethernet-10g",
    propagation_us=4.0,
    per_message_us=25.0,
    bandwidth_gbps=10.0,
    jitter_sigma=0.5,
    jitter_scale_us=4.0,
)

TRANSPORTS = {
    spec.name: spec for spec in (RDMA_FDR, IPOIB, ETHERNET_10G)
}


def min_transport_latency_us(
    transports=None, nbytes: int = 0
) -> float:
    """The smallest one-way latency any given transport can deliver.

    With no argument, the bound covers every modeled transport — the
    global conservative *lookahead* for cross-partition messages (see
    :mod:`repro.parallel.windows`): the fastest possible message is an
    empty RDMA verb, so two sharded simulation partitions can never
    influence each other sooner than this many simulated microseconds.
    """
    chosen = list(TRANSPORTS.values() if transports is None else transports)
    if not chosen:
        raise ValueError("need at least one transport for a bound")
    return min(spec.min_one_way_us(nbytes) for spec in chosen)
