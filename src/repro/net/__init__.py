"""Simulated cluster network: transports, hosts, fabric."""

from .fabric import Fabric, Host
from .transports import (
    ETHERNET_10G,
    IPOIB,
    RDMA_FDR,
    TRANSPORTS,
    TransportSpec,
    min_transport_latency_us,
)

__all__ = [
    "Fabric",
    "Host",
    "TransportSpec",
    "RDMA_FDR",
    "IPOIB",
    "ETHERNET_10G",
    "TRANSPORTS",
    "min_transport_latency_us",
]
