"""Memory hotplug (paper §III, Figure 1 "FluidMem via Hot Plug").

QEMU can attach extra DIMM-shaped memory to a running guest; Linux,
Windows, and FreeBSD guests online it without modification.  FluidMem's
"normal VM" mode uses exactly this: the VM boots with ordinary local
memory and *additional* FluidMem-backed memory is hotplugged later, so
the guest's capacity can grow at any time "even if the VM did not
anticipate using additional memory at boot time".

The host side is a new RAM region in the QEMU address space; the guest
side is an ACPI-style notification that onlines the new range.  The
returned :class:`HotplugSlot` carries both views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import VmError
from ..mem import MemoryRegion, PAGE_SIZE
from .qemu import QemuProcess

__all__ = ["HotplugSlot", "MemoryHotplug"]

#: QEMU's default cap on hotplug DIMM slots.
MAX_SLOTS = 32


@dataclass(frozen=True)
class HotplugSlot:
    """One onlined DIMM: guest-physical placement + host region."""

    index: int
    guest_phys_start: int
    length_bytes: int
    host_region: MemoryRegion

    @property
    def num_pages(self) -> int:
        return self.length_bytes // PAGE_SIZE


class MemoryHotplug:
    """Hotplug controller for one QEMU process."""

    def __init__(self, qemu: QemuProcess, max_slots: int = MAX_SLOTS) -> None:
        self.qemu = qemu
        self.max_slots = max_slots
        self._slots: List[HotplugSlot] = []

    @property
    def slots(self) -> List[HotplugSlot]:
        return list(self._slots)

    @property
    def hotplugged_bytes(self) -> int:
        return sum(slot.length_bytes for slot in self._slots)

    def add_memory(self, length_bytes: int) -> HotplugSlot:
        """Online ``length_bytes`` of additional memory in the guest."""
        if len(self._slots) >= self.max_slots:
            raise VmError(
                f"all {self.max_slots} hotplug slots are populated"
            )
        if length_bytes <= 0 or length_bytes % PAGE_SIZE:
            raise VmError(
                f"hotplug size must be a positive page multiple, "
                f"got {length_bytes}"
            )
        index = len(self._slots)
        guest_phys_start = (
            self.qemu.vm.memory_bytes + self.hotplugged_bytes
        )
        host_region = self.qemu.add_ram_region(
            length_bytes, name=f"hotplug-{index}"
        )
        slot = HotplugSlot(
            index=index,
            guest_phys_start=guest_phys_start,
            length_bytes=length_bytes,
            host_region=host_region,
        )
        self._slots.append(slot)
        return slot

    @property
    def total_guest_bytes(self) -> int:
        """Boot memory plus everything hotplugged."""
        return self.qemu.vm.memory_bytes + self.hotplugged_bytes
