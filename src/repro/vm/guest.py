"""Guest VM model: memory ports, boot footprints, virtualization modes.

The evaluation compares two ways of backing the *same* guest:

* **swap mode** — the guest kernel owns reclaim
  (:class:`~repro.kernel.GuestMemoryManager` behind a
  :class:`SwapMemoryPort`),
* **FluidMem mode** — the host monitor owns reclaim (the port lives in
  :mod:`repro.core`).

Workloads and services talk to a :class:`MemoryPort`, so they are
byte-for-byte identical across the two worlds — which is the property
that makes the comparison fair.

The boot footprint matters enormously here: Table III reports a VM
consumes 81 042 pages (316.57 MB) "just from booting to a command
prompt", and Figure 4b's FluidMem win comes from evicting exactly those
OS pages, which swap cannot move.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Generator, Iterator, List, Optional, Tuple

from ..errors import VmError
from ..kernel import GuestMemoryManager
from ..mem import GIB, PAGE_SIZE, PageKind, pages_for_bytes
from ..sim import Environment

__all__ = [
    "VirtMode",
    "MemoryPort",
    "SwapMemoryPort",
    "BootProfile",
    "GuestVM",
    "PAPER_BOOT_PAGES",
]

#: Table III, "After startup": resident pages of a freshly booted VM.
PAPER_BOOT_PAGES = 81042


class VirtMode(enum.Enum):
    """How the hypervisor executes the guest (Table III's last rows).

    KVM hardware-assisted virtualization deadlocks when the footprint
    drops to 1 page (handling a page fault can trigger more page
    faults); full (software) emulation survives it.
    """

    KVM = "kvm"
    FULL_EMULATION = "full-emulation"


class MemoryPort(abc.ABC):
    """What a guest workload needs from its memory backend."""

    @abc.abstractmethod
    def is_resident(self, vaddr: int) -> bool:
        """Fast-path residency check (no simulated time)."""

    @abc.abstractmethod
    def touch(self, vaddr: int, is_write: bool = False) -> None:
        """Record an access to a resident page (no simulated time)."""

    @abc.abstractmethod
    def access(
        self,
        vaddr: int,
        is_write: bool = False,
        kind: PageKind = PageKind.ANONYMOUS,
    ) -> Generator:
        """Full access path: cheap when resident, fault otherwise."""

    def try_access(
        self,
        vaddr: int,
        is_write: bool = False,
        kind: PageKind = PageKind.ANONYMOUS,
    ) -> bool:
        """Non-generator fast path for the resident case.

        Returns True iff the access completed (the page was resident);
        behavior is then identical to :meth:`access`'s hit branch.  On
        False nothing happened — the caller must fall back to
        ``yield from access(...)``.  ``kind`` only matters on the fault
        path, which this method never takes.
        """
        if self.is_resident(vaddr):
            self.touch(vaddr, is_write)
            return True
        return False

    def note_hit_run(self, count: int) -> None:
        """Batched-hit accounting: ``count`` consecutive hits coalesced.

        Metrics-silent by default — ports may track it for batching
        diagnostics, but it must never change benchmark output.
        """

    @property
    @abc.abstractmethod
    def resident_capacity(self) -> Optional[int]:
        """Max pages this port lets the VM keep in DRAM (None=unbounded)."""

    @property
    @abc.abstractmethod
    def resident_pages(self) -> int:
        """Pages currently in DRAM for this VM."""


class SwapMemoryPort(MemoryPort):
    """Memory port over the guest kernel's own MM (swap world)."""

    def __init__(self, mm: GuestMemoryManager) -> None:
        self.mm = mm

    def is_resident(self, vaddr: int) -> bool:
        return self.mm.is_resident(vaddr)

    def touch(self, vaddr: int, is_write: bool = False) -> None:
        self.mm.touch(vaddr, is_write)

    def access(
        self,
        vaddr: int,
        is_write: bool = False,
        kind: PageKind = PageKind.ANONYMOUS,
    ) -> Generator:
        if self.mm.is_resident(vaddr):
            self.mm.touch(vaddr, is_write)
            return None
        page = yield from self.mm.access_fault(vaddr, is_write, kind=kind)
        return page

    @property
    def resident_capacity(self) -> Optional[int]:
        return self.mm.frames.total_frames

    @property
    def resident_pages(self) -> int:
        return self.mm.resident_pages


@dataclass(frozen=True)
class BootProfile:
    """Composition of the pages a guest touches while booting.

    The mix is what makes full disaggregation matter: the kernel and
    unevictable share can never reach swap, and the file-backed share
    can only be dropped back to its filesystem — FluidMem can move all
    of it to remote memory (paper §II, §VI-D1).
    """

    total_pages: int = PAPER_BOOT_PAGES
    kernel_fraction: float = 0.22
    file_fraction: float = 0.45
    anonymous_fraction: float = 0.30
    mlocked_fraction: float = 0.03

    def __post_init__(self) -> None:
        total = (
            self.kernel_fraction
            + self.file_fraction
            + self.anonymous_fraction
            + self.mlocked_fraction
        )
        if abs(total - 1.0) > 1e-9:
            raise VmError(f"boot profile fractions sum to {total}, not 1")
        if self.total_pages < 4:
            raise VmError("boot profile needs at least 4 pages")

    def scaled(self, factor: float) -> "BootProfile":
        """Same mix, ``factor``x the pages (for scaled-down benches)."""
        if factor <= 0:
            raise VmError(f"scale factor must be positive, got {factor}")
        return BootProfile(
            total_pages=max(4, int(self.total_pages * factor)),
            kernel_fraction=self.kernel_fraction,
            file_fraction=self.file_fraction,
            anonymous_fraction=self.anonymous_fraction,
            mlocked_fraction=self.mlocked_fraction,
        )

    def pages(self, base_vaddr: int) -> Iterator[Tuple[int, PageKind, bool]]:
        """(vaddr, kind, mlocked) for every boot page, laid out densely."""
        counts = [
            (PageKind.KERNEL, False,
             int(self.total_pages * self.kernel_fraction)),
            (PageKind.FILE_BACKED, False,
             int(self.total_pages * self.file_fraction)),
            (PageKind.UNEVICTABLE, True,
             int(self.total_pages * self.mlocked_fraction)),
        ]
        assigned = sum(count for _k, _m, count in counts)
        counts.append(
            (PageKind.ANONYMOUS, False, self.total_pages - assigned)
        )
        vaddr = base_vaddr
        for kind, mlocked, count in counts:
            for _ in range(count):
                yield vaddr, kind, mlocked
                vaddr += PAGE_SIZE


class GuestVM:
    """An unmodified guest: name, shape, boot footprint, memory port."""

    #: Upper bound on where the guest OS image lands (16 MiB); small
    #: VMs place it proportionally lower so it always fits.
    BOOT_BASE = 0x100_0000

    def __init__(
        self,
        env: Environment,
        name: str,
        memory_bytes: int = 1 * GIB,
        vcpus: int = 2,
        boot_profile: Optional[BootProfile] = None,
        virt_mode: VirtMode = VirtMode.KVM,
    ) -> None:
        if memory_bytes < 64 * PAGE_SIZE:
            raise VmError(
                f"VM needs >= 64 pages of memory, got {memory_bytes}"
            )
        if vcpus < 1:
            raise VmError(f"VM needs >= 1 vCPU, got {vcpus}")
        self.env = env
        self.name = name
        self.memory_bytes = memory_bytes
        self.vcpus = vcpus
        self.boot_profile = boot_profile or BootProfile()
        self.virt_mode = virt_mode
        self.port: Optional[MemoryPort] = None
        #: Guest-physical base of the boot image: 16 MiB, or 1/16th of
        #: the VM for small (scaled-down) guests.
        self.boot_base = min(self.BOOT_BASE, memory_bytes // 16)
        self.boot_base -= self.boot_base % PAGE_SIZE
        self._boot_pages: List[Tuple[int, PageKind, bool]] = []
        self.booted = False

    @property
    def memory_pages(self) -> int:
        return pages_for_bytes(self.memory_bytes)

    def attach_port(self, port: MemoryPort) -> None:
        if self.port is not None:
            raise VmError(f"{self.name}: a memory port is already attached")
        self.port = port

    def require_port(self) -> MemoryPort:
        if self.port is None:
            raise VmError(f"{self.name}: no memory port attached")
        return self.port

    def boot(self) -> Generator:
        """Bring the guest up: touch every boot-footprint page.

        Uses the attached port's full access path, so in FluidMem mode
        this generates the first-touch (zero-page) fault storm a real
        boot does, and in swap mode it fills the guest's DRAM.
        """
        port = self.require_port()
        if self.booted:
            raise VmError(f"{self.name} is already booted")
        boot_end_page = (
            self.boot_base // PAGE_SIZE + self.boot_profile.total_pages
        )
        if boot_end_page > self.memory_pages:
            raise VmError(
                f"{self.name}: boot footprint "
                f"({self.boot_profile.total_pages}p at "
                f"{self.boot_base:#x}) exceeds VM memory "
                f"({self.memory_pages}p)"
            )
        self._boot_pages = list(self.boot_profile.pages(self.boot_base))
        for vaddr, kind, mlocked in self._boot_pages:
            if not port.try_access(vaddr, is_write=True, kind=kind):
                yield from port.access(vaddr, is_write=True, kind=kind)
            if mlocked:
                # Reflect the mlock on the installed page.
                self._mark_mlocked(port, vaddr)
        self.booted = True

    @staticmethod
    def _mark_mlocked(port: MemoryPort, vaddr: int) -> None:
        # Best effort: ports expose the underlying page via their table
        # when they have one; mlock only matters for swap eligibility.
        mm = getattr(port, "mm", None)
        if mm is not None and mm.is_resident(vaddr):
            page = mm.table.entry(vaddr).page
            page.mlocked = True
            mm.lru.discard(page)

    def first_free_guest_addr(self) -> int:
        """Lowest guest address above the boot image (workloads start here)."""
        return self.boot_base + self.boot_profile.total_pages * PAGE_SIZE

    def boot_page_addresses(self) -> List[int]:
        """Addresses of the guest's boot footprint (after :meth:`boot`)."""
        if not self.booted:
            raise VmError(f"{self.name} has not booted")
        return [vaddr for vaddr, _kind, _mlocked in self._boot_pages]

    def os_working_set(self, count: int) -> List[int]:
        """A slice of boot pages that background OS activity keeps warm."""
        addresses = self.boot_page_addresses()
        if count > len(addresses):
            raise VmError(
                f"requested {count} OS pages, boot footprint has "
                f"{len(addresses)}"
            )
        # Spread across the footprint: kernel, file, and anon pages mix.
        step = max(1, len(addresses) // count)
        return addresses[::step][:count]

    def __repr__(self) -> str:
        return (
            f"<GuestVM {self.name!r} {self.memory_bytes >> 20} MiB "
            f"{self.vcpus} vCPU {self.virt_mode.value}"
            f"{' booted' if self.booted else ''}>"
        )
