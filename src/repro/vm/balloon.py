"""The virtio-balloon driver — Table III's comparison point.

Ballooning is the pre-FluidMem way to shrink a guest's footprint: a
driver *inside* the guest allocates pages and hands them back to the
hypervisor.  Two limitations the paper leans on:

* it requires guest cooperation (a driver installed in the VM), unlike
  FluidMem which works on unmodified guests;
* it bottoms out early: "the driver reaches its maximum size when the
  VM footprint is still 64 MB" (20 480 pages, Table III row 2), because
  the guest kernel refuses to give up the memory it itself needs.

The model: inflating grabs only *free* guest frames and stops at the
floor; FluidMem's LRU (in :mod:`repro.core`) has no such floor.
"""

from __future__ import annotations

from typing import List

from ..errors import VmError
from ..kernel import GuestMemoryManager
from ..mem import MIB, PAGE_SIZE

__all__ = ["BalloonDriver", "BALLOON_FLOOR_PAGES"]

#: Table III: the smallest footprint ballooning could reach (64.75 MB).
BALLOON_FLOOR_PAGES = 20480


class BalloonDriver:
    """Guest-cooperative memory reclaim with a hard floor."""

    def __init__(
        self,
        mm: GuestMemoryManager,
        floor_pages: int = BALLOON_FLOOR_PAGES,
    ) -> None:
        if floor_pages < 1:
            raise VmError(f"floor must be >= 1 page, got {floor_pages}")
        self.mm = mm
        self.floor_pages = floor_pages
        self._held_frames: List[int] = []
        #: Frames lent to the memory market via :meth:`harvest` —
        #: :meth:`give_back` can only deflate what harvest inflated,
        #: so market give-backs never release an operator's balloon.
        self.harvested_pages = 0

    @property
    def inflated_pages(self) -> int:
        return len(self._held_frames)

    @property
    def guest_footprint_pages(self) -> int:
        """Frames still usable by the guest (what the host could not take)."""
        return self.mm.frames.total_frames - self.inflated_pages

    def inflate(self, pages: int) -> int:
        """Try to reclaim ``pages``; returns how many were actually taken.

        Takes free frames only and never pushes the guest footprint
        below the floor — this is the mechanism behind Table III's
        "Max VM balloon size" row.
        """
        if pages < 0:
            raise VmError(f"cannot inflate by {pages}")
        taken = 0
        while taken < pages:
            if self.guest_footprint_pages <= self.floor_pages:
                break  # the guest kernel refuses to shrink further
            frame = self.mm.frames.try_allocate()
            if frame is None:
                break  # no free memory; ballooning cannot evict in use
            self._held_frames.append(frame)
            taken += 1
        return taken

    def inflate_with_reclaim(self, pages: int):
        """Inflate, letting the guest kernel reclaim to feed the balloon.

        This is the real driver's behaviour: balloon allocations create
        memory pressure, the guest drops page cache and swaps anonymous
        memory, and the balloon keeps the freed frames.  Still bounded
        by the floor — the guest refuses to shrink below what it needs
        to run.  A simulation generator (reclaim does I/O).
        """
        if pages < 0:
            raise VmError(f"cannot inflate by {pages}")
        taken = 0
        while taken < pages:
            if self.guest_footprint_pages <= self.floor_pages:
                break
            frame = self.mm.frames.try_allocate()
            if frame is None:
                freed = yield from self.mm.reclaim_pages(64)
                if freed == 0:
                    break  # nothing left the guest is willing to give
                continue
            self._held_frames.append(frame)
            taken += 1
        return taken

    def deflate(self, pages: int) -> int:
        """Return up to ``pages`` frames to the guest."""
        if pages < 0:
            raise VmError(f"cannot deflate by {pages}")
        released = 0
        while released < pages and self._held_frames:
            self.mm.frames.free(self._held_frames.pop())
            released += 1
        return released

    # -- memory market hooks (repro.market harvester) -----------------------------

    def harvest(self, pages: int) -> int:
        """Inflate on behalf of the memory market; returns the pages
        actually taken (bounded by free guest frames and the floor,
        exactly like :meth:`inflate`)."""
        taken = self.inflate(pages)
        self.harvested_pages += taken
        return taken

    def give_back(self, pages: int) -> int:
        """Deflate market-harvested frames back to the guest; returns
        the pages restored, capped at what :meth:`harvest` took."""
        returned = self.deflate(min(pages, self.harvested_pages))
        self.harvested_pages -= returned
        return returned

    def max_reachable_footprint_mib(self) -> float:
        """The floor expressed in MiB (64.75 MB in the paper's table)."""
        return self.floor_pages * PAGE_SIZE / MIB
