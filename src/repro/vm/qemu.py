"""The hypervisor emulator process (QEMU stand-in).

What FluidMem needs from QEMU (paper §IV) is small and specific: the
guest's RAM is one big allocation in the QEMU *process's* virtual
address space, and FluidMem wraps that allocation so the region is
registered with the user-space page fault handler.  Faults therefore
arrive at *host* virtual addresses belonging to the QEMU process, keyed
by its PID.

:class:`QemuProcess` models exactly that: a PID, an address space
holding guest-RAM regions (the boot region plus any hotplug slots), and
the guest-physical → host-virtual translation.
"""

from __future__ import annotations

import itertools
from typing import List

from ..errors import VmError
from ..mem import (
    AddressSpace,
    MemoryRegion,
    PAGE_SIZE,
    PageKind,
    PageTable,
)
from .guest import GuestVM

__all__ = ["QemuProcess"]

#: Where QEMU's mmap of guest RAM typically lands (host virtual).
GUEST_RAM_BASE = 0x7F00_0000_0000
#: Spacing between the RAM areas of different QEMU processes.  Real
#: processes get distinct mmap addresses (ASLR); keeping them distinct
#: here too means host vaddrs — and therefore FluidMem's page keys and
#: LRU entries — never collide across VMs.
PROCESS_STRIDE = 8 << 30  # 8 GiB per process slot

_pids = itertools.count(1000)


class QemuProcess:
    """One QEMU instance: PID, host address space, guest-RAM regions."""

    def __init__(self, vm: GuestVM, ram_base: int = 0) -> None:
        """``ram_base`` pins the guest-RAM mapping address — migration
        tooling uses this so a destination QEMU reproduces the source's
        layout (and therefore its FluidMem page keys)."""
        self.vm = vm
        self.pid = next(_pids)
        self.address_space = AddressSpace(f"qemu-{self.pid}")
        #: Host-side page table for the QEMU process (what uffd works on).
        self.page_table = PageTable(f"qemu-{self.pid}")
        self._ram_regions: List[MemoryRegion] = []
        self.ram_base = ram_base or (
            GUEST_RAM_BASE + (self.pid % 4096) * PROCESS_STRIDE
        )
        base_region = MemoryRegion(
            self.ram_base,
            vm.memory_pages * PAGE_SIZE,
            kind=PageKind.ANONYMOUS,
            name="guest-ram",
        )
        self.address_space.add(base_region)
        self._ram_regions.append(base_region)

    @property
    def ram_regions(self) -> List[MemoryRegion]:
        return list(self._ram_regions)

    @property
    def total_ram_pages(self) -> int:
        return sum(region.num_pages for region in self._ram_regions)

    def guest_to_host(self, guest_paddr: int) -> int:
        """Translate a guest-physical address to QEMU's virtual space.

        Guest physical memory is laid out contiguously across the RAM
        regions in creation order (boot RAM first, hotplug slots after).
        """
        if guest_paddr < 0:
            raise VmError(f"negative guest address {guest_paddr:#x}")
        offset = guest_paddr
        for region in self._ram_regions:
            if offset < region.length:
                return region.start + offset
            offset -= region.length
        raise VmError(
            f"guest address {guest_paddr:#x} beyond "
            f"{self.total_ram_pages} RAM pages"
        )

    def host_to_guest(self, host_vaddr: int) -> int:
        """Inverse of :meth:`guest_to_host`."""
        base = 0
        for region in self._ram_regions:
            if region.start <= host_vaddr < region.end:
                return base + (host_vaddr - region.start)
            base += region.length
        raise VmError(f"{host_vaddr:#x} is not in any guest-RAM region")

    def add_ram_region(self, length_bytes: int, name: str) -> MemoryRegion:
        """Attach another RAM mapping (memory hotplug's host side)."""
        if length_bytes <= 0 or length_bytes % PAGE_SIZE:
            raise VmError(
                f"hotplug size must be a positive page multiple, "
                f"got {length_bytes}"
            )
        start = self.address_space.allocate_gap(
            length_bytes, align=self.ram_base
        )
        region = MemoryRegion(
            start, length_bytes, kind=PageKind.ANONYMOUS, name=name
        )
        self.address_space.add(region)
        self._ram_regions.append(region)
        return region

    def __repr__(self) -> str:
        return (
            f"<QemuProcess pid={self.pid} vm={self.vm.name!r} "
            f"ram={self.total_ram_pages}p in {len(self._ram_regions)} "
            f"regions>"
        )
