"""The VM / hypervisor layer: guests, QEMU, hotplug, balloon, probes."""

from .balloon import BALLOON_FLOOR_PAGES, BalloonDriver
from .guest import (
    PAPER_BOOT_PAGES,
    BootProfile,
    GuestVM,
    MemoryPort,
    SwapMemoryPort,
    VirtMode,
)
from .hotplug import HotplugSlot, MemoryHotplug
from .qemu import QemuProcess
from .services import (
    ICMP_WORKING_SET_PAGES,
    SSH_WORKING_SET_PAGES,
    GuestService,
    IcmpService,
    SshService,
)

__all__ = [
    "GuestVM",
    "BootProfile",
    "MemoryPort",
    "SwapMemoryPort",
    "VirtMode",
    "PAPER_BOOT_PAGES",
    "QemuProcess",
    "MemoryHotplug",
    "HotplugSlot",
    "BalloonDriver",
    "BALLOON_FLOOR_PAGES",
    "GuestService",
    "SshService",
    "IcmpService",
    "SSH_WORKING_SET_PAGES",
    "ICMP_WORKING_SET_PAGES",
]
