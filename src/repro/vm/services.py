"""Guest responsiveness probes: SSH and ICMP (Table III).

Table III asks an operational question: with the footprint squeezed to N
pages, does the VM still answer a ping, and can you still open an SSH
shell?  The binding constraint is *simultaneous residency*: completing
an SSH authentication needs the ssh binary, libc and friends, PAM, and
the kernel auth path co-resident ("Even part of the ssh binary will have
to be stored in FluidMem, along with all libraries and kernel code
needed to complete a user authentication"); an ICMP echo needs only the
NIC driver + network stack path.

The model: a service owns a working set of guest pages and an operation
completes when, at the end of a pass that touches all of them (through
the real paging machinery, paying real fault latencies), the whole set
is still resident.  With an LRU capacity below the working-set size the
head of the set has been evicted by the time the tail is in — the pass
never converges and the attempt times out, which is exactly the
thrashing failure mode.  Working-set sizes are chosen from Table III's
observed thresholds: SSH needs ~120 co-resident pages (fails at 80,
works at 180), ICMP ~64 (still fine at 80).
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from ..errors import VmError
from ..sim import Environment
from .guest import GuestVM

__all__ = [
    "GuestService",
    "SshService",
    "IcmpService",
    "SSH_WORKING_SET_PAGES",
    "ICMP_WORKING_SET_PAGES",
]

#: Pages that must be co-resident to finish an SSH login.
SSH_WORKING_SET_PAGES = 120
#: Pages that must be co-resident to answer an ICMP echo.
ICMP_WORKING_SET_PAGES = 64


class GuestService:
    """A probe with a working set carved from the VM's boot footprint."""

    #: Human-readable name and default timeout.
    name = "service"
    default_timeout_us = 1_000_000.0  # 1 s

    def __init__(
        self,
        env: Environment,
        vm: GuestVM,
        working_set_pages: int,
        working_set: Optional[Sequence[int]] = None,
    ) -> None:
        if working_set_pages < 1:
            raise VmError("working set must be at least one page")
        self.env = env
        self.vm = vm
        if working_set is not None:
            self.working_set: List[int] = list(working_set)
        else:
            self.working_set = vm.os_working_set(working_set_pages)
        if len(self.working_set) < working_set_pages:
            raise VmError(
                f"{self.name}: needed {working_set_pages} pages, "
                f"got {len(self.working_set)}"
            )
        self.working_set = self.working_set[:working_set_pages]

    def attempt(
        self,
        timeout_us: Optional[float] = None,
        max_passes: int = 3,
    ) -> Generator:
        """Try the operation; returns True if it completed in time.

        Each pass touches the full working set through the VM's memory
        port (faulting pages in at real cost) and then checks
        co-residency.  ``max_passes`` bounds the demonstration: when
        capacity < working set, no number of passes converges, so three
        suffices to prove the livelock without simulating the full
        wall-clock timeout.
        """
        timeout = timeout_us or self.default_timeout_us
        port = self.vm.require_port()
        deadline = self.env.now + timeout
        for _ in range(max_passes):
            for vaddr in self.working_set:
                yield from port.access(vaddr, is_write=False)
                if self.env.now > deadline:
                    return False
            if all(port.is_resident(vaddr) for vaddr in self.working_set):
                return True
        return False


class SshService(GuestService):
    """Open an SSH shell: binary + libs + PAM + kernel auth path."""

    name = "ssh"
    default_timeout_us = 10_000_000.0  # a 10 s client timeout

    def __init__(self, env: Environment, vm: GuestVM, **kwargs) -> None:
        super().__init__(env, vm, SSH_WORKING_SET_PAGES, **kwargs)


class IcmpService(GuestService):
    """Answer one ICMP echo within its 1 s interval."""

    name = "icmp"
    default_timeout_us = 1_000_000.0  # the next echo arrives in 1 s

    def __init__(self, env: Environment, vm: GuestVM, **kwargs) -> None:
        super().__init__(env, vm, ICMP_WORKING_SET_PAGES, **kwargs)
