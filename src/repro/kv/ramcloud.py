"""RAMCloud-like key-value store.

Models the pieces of RAMCloud that FluidMem exploits (paper §IV–V):

* an in-memory **master** holding objects in a log-structured memory
  (append-only segments + hash table index, with utilization accounting
  like RAMCloud's log cleaner would see),
* native **tables** (partitions), so FluidMem does not need virtual
  partitions on this backend,
* a **multi-write** RPC that writes a batch of pages in one round trip —
  the paper leverages this for asynchronous write-back batches,
* an asynchronous client API (split top/bottom halves) over RDMA verbs.

Replication is off, matching the evaluation platform (§VI-A: "The
replication feature with RAMCloud was not turned on").  A ``replicas``
knob still exists because writes-with-replication is the ablation the
paper argues would barely matter (writes are asynchronous).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Tuple

from ..errors import KeyNotFoundError, KVError
from ..mem import PAGE_SIZE
from ..net import Fabric
from ..sim import Environment
from .api import KeyValueBackend, WriteItem

__all__ = ["RamCloudServer", "RamCloudStore"]

#: RAMCloud appends objects into fixed 8 MB segments.
SEGMENT_BYTES = 8 * 1024 * 1024


@dataclass
class _LogRecord:
    """One live object in the log: (segment, size, value)."""

    segment: int
    nbytes: int
    value: Any
    tombstone: bool = False


class RamCloudServer:
    """The master's state: log-structured memory + per-table hash index."""

    def __init__(self, memory_bytes: int) -> None:
        if memory_bytes < SEGMENT_BYTES:
            raise KVError(
                f"RAMCloud master needs >= one segment ({SEGMENT_BYTES} B)"
            )
        self.memory_bytes = memory_bytes
        self._tables: Dict[int, Dict[int, _LogRecord]] = {}
        self._segment_fill = 0      # bytes used in the open segment
        self._segments_live = 1     # open segment counts
        self._live_bytes = 0        # bytes of live (non-deleted) objects
        self._appended_bytes = 0    # total ever appended (cleaner metric)

    # -- tables -----------------------------------------------------------

    def create_table(self, table_id: int) -> None:
        if table_id in self._tables:
            raise KVError(f"table {table_id} already exists")
        self._tables[table_id] = {}

    def drop_table(self, table_id: int) -> None:
        table = self._tables.pop(table_id, None)
        if table is None:
            raise KVError(f"table {table_id} does not exist")
        for record in table.values():
            self._live_bytes -= record.nbytes

    def _table(self, table_id: int) -> Dict[int, _LogRecord]:
        try:
            return self._tables[table_id]
        except KeyError:
            raise KVError(f"table {table_id} does not exist") from None

    # -- log-structured writes ---------------------------------------------

    def write(self, table_id: int, key: int, value: Any, nbytes: int) -> None:
        table = self._table(table_id)
        if self._live_bytes + nbytes > self.memory_bytes:
            raise KVError("RAMCloud master memory exhausted")
        old = table.get(key)
        if old is not None:
            self._live_bytes -= old.nbytes
        self._append(nbytes)
        table[key] = _LogRecord(self._segments_live, nbytes, value)
        self._live_bytes += nbytes

    def _append(self, nbytes: int) -> None:
        if self._segment_fill + nbytes > SEGMENT_BYTES:
            self._segments_live += 1
            self._segment_fill = 0
        self._segment_fill += nbytes
        self._appended_bytes += nbytes

    def read(self, table_id: int, key: int) -> Tuple[Any, int]:
        record = self._table(table_id).get(key)
        if record is None:
            raise KeyNotFoundError((table_id, key))
        return record.value, record.nbytes

    def delete(self, table_id: int, key: int) -> None:
        record = self._table(table_id).pop(key, None)
        if record is None:
            raise KeyNotFoundError((table_id, key))
        self._live_bytes -= record.nbytes
        # A tombstone is appended in real RAMCloud; account its bytes.
        self._append(32)

    # -- introspection -------------------------------------------------------

    @property
    def live_bytes(self) -> int:
        return self._live_bytes

    @property
    def log_utilization(self) -> float:
        """Live bytes / appended bytes — what the cleaner watches."""
        if self._appended_bytes == 0:
            return 1.0
        return self._live_bytes / self._appended_bytes

    def keys_in(self, table_id: int) -> int:
        return len(self._table(table_id))


class RamCloudStore(KeyValueBackend):
    """Client-side view of one RAMCloud table, over RDMA."""

    name = "ramcloud"
    supports_partitions = True

    #: Server-side request processing (hash lookup + log append), µs.
    SERVER_READ_US = 1.8
    SERVER_WRITE_US = 2.2
    #: Client-side cost paid only on the *synchronous* API: request
    #: marshalling plus the blocking-poll completion path.  The split
    #: asynchronous halves overlap this work with the network wait,
    #: which is why Table I's synchronous READ_PAGE/WRITE_PAGE
    #: (15.62/14.70 µs) exceed the raw ~8 µs RDMA round trip.
    SYNC_CLIENT_US = 7.3
    #: Per-item marginal server cost inside a multi-write, µs.
    SERVER_MULTIWRITE_ITEM_US = 0.9
    #: Request header sizes, bytes.
    READ_REQUEST_BYTES = 64
    WRITE_RESPONSE_BYTES = 64

    def __init__(
        self,
        env: Environment,
        fabric: Fabric,
        client_host: str,
        server_host: str,
        server: RamCloudServer,
        table_id: int = 1,
        create_table: bool = True,
    ) -> None:
        super().__init__(env)
        self.fabric = fabric
        self.client_host = client_host
        self.server_host = server_host
        self.server = server
        self.table_id = table_id
        if create_table:
            server.create_table(table_id)

    # -- blocking API ---------------------------------------------------------

    def get(self, key: int, _async: bool = False) -> Generator:
        if not _async:
            yield self.env.timeout(self.SYNC_CLIENT_US)
        value, nbytes = yield from self._rpc_read(key)
        self.counters.incr("reads")
        return value

    def _drive_read(self, handle) -> Generator:
        # Asynchronous top/bottom halves skip the blocking client cost.
        from .api import _park_failure

        try:
            value = yield from self.get(handle.key, _async=True)
        except Exception as exc:
            _park_failure(handle.event, exc)
            return
        handle.event.succeed(value)

    def _rpc_read(self, key: int) -> Generator:
        # Issue the request; the value size rides back in the response.
        # Look up first so the response size is right; latency is charged
        # by the RPC regardless.
        value, nbytes = self.server.read(self.table_id, key)
        yield from self.fabric.rpc(
            self.client_host,
            self.server_host,
            self.READ_REQUEST_BYTES,
            nbytes + 32,
            server_us=self.SERVER_READ_US,
        )
        return value, nbytes

    def put(self, key: int, value: Any, nbytes: int = PAGE_SIZE) -> Generator:
        yield self.env.timeout(self.SYNC_CLIENT_US)
        yield from self.fabric.rpc(
            self.client_host,
            self.server_host,
            nbytes + 64,
            self.WRITE_RESPONSE_BYTES,
            server_us=self.SERVER_WRITE_US,
        )
        self.server.write(self.table_id, key, value, nbytes)
        self.counters.incr("writes")

    def multi_read(self, keys: List[int]) -> Generator:
        """RAMCloud's multiRead: fetch a batch in one round trip.

        Returns values in key order; raises KeyNotFoundError if any key
        is absent (checked before any latency is charged).
        """
        if not keys:
            return []
        results = []
        payload = 32
        for key in keys:
            value, nbytes = self.server.read(self.table_id, key)
            results.append(value)
            payload += nbytes
        server_us = (
            self.SERVER_READ_US
            + self.SERVER_MULTIWRITE_ITEM_US * (len(keys) - 1)
        )
        yield from self.fabric.rpc(
            self.client_host,
            self.server_host,
            self.READ_REQUEST_BYTES + 8 * len(keys),
            payload,
            server_us=server_us,
        )
        self.counters.incr("reads", by=len(keys))
        self.counters.incr("multi_reads")
        return results

    def multi_write(self, items: List[WriteItem]) -> Generator:
        """RAMCloud's multiWrite: the whole batch in one round trip."""
        if not items:
            return
        payload = sum(nbytes for _key, _value, nbytes in items) + 64
        server_us = (
            self.SERVER_WRITE_US
            + self.SERVER_MULTIWRITE_ITEM_US * (len(items) - 1)
        )
        yield from self.fabric.rpc(
            self.client_host,
            self.server_host,
            payload,
            self.WRITE_RESPONSE_BYTES,
            server_us=server_us,
        )
        for key, value, nbytes in items:
            self.server.write(self.table_id, key, value, nbytes)
        self.counters.incr("writes", by=len(items))
        self.counters.incr("multi_writes")

    def remove(self, key: int) -> Generator:
        self.server.read(self.table_id, key)  # raise before charging time
        yield from self.fabric.rpc(
            self.client_host,
            self.server_host,
            self.READ_REQUEST_BYTES,
            self.WRITE_RESPONSE_BYTES,
            server_us=self.SERVER_WRITE_US,
        )
        self.server.delete(self.table_id, key)
        self.counters.incr("removes")

    # -- introspection ----------------------------------------------------------

    def contains(self, key: int) -> bool:
        try:
            self.server.read(self.table_id, key)
            return True
        except KeyNotFoundError:
            return False

    def stored_keys(self) -> int:
        return self.server.keys_in(self.table_id)

    @property
    def used_bytes(self) -> int:
        return self.server.live_bytes
