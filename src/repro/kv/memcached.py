"""Memcached-like backend.

The paper runs FluidMem→Memcached over IP-over-InfiniBand (§VI-A); the
kernel TCP stack makes it the slow remote backend (Fig. 3c: 65.79 µs
average vs 24.87 for RAMCloud).  Functionally we model what matters:

* slab allocation — values live in power-of-two size classes; each class
  owns whole 1 MB slabs carved into fixed chunks,
* per-class LRU with eviction when the memory limit is reached.  For
  FluidMem an eviction would be **data loss** (the monitor counts on the
  store holding evicted pages), so the store counts evictions and the
  monitor surfaces a loud error if it ever reads an evicted page,
* no native partitions — FluidMem must pack a 12-bit virtual partition
  into the key (see :mod:`repro.kv.partitions`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Generator, Tuple

from ..errors import KeyNotFoundError, KVError
from ..mem import PAGE_SIZE
from ..net import Fabric
from ..sim import Environment
from .api import KeyValueBackend

__all__ = ["MemcachedServer", "MemcachedStore", "SLAB_BYTES"]

#: Memcached carves memory into 1 MB slabs.
SLAB_BYTES = 1024 * 1024
#: Smallest chunk class, bytes.
MIN_CHUNK = 128
#: Per-item metadata overhead, bytes.
ITEM_OVERHEAD = 56


def chunk_class_for(nbytes: int) -> int:
    """Chunk size (power of two >= nbytes + overhead) for a value."""
    needed = nbytes + ITEM_OVERHEAD
    chunk = MIN_CHUNK
    while chunk < needed:
        chunk *= 2
        if chunk > SLAB_BYTES:
            raise KVError(f"value of {nbytes} bytes exceeds slab size")
    return chunk


class _SlabClass:
    """One size class: items in LRU order, slab accounting."""

    def __init__(self, chunk: int) -> None:
        self.chunk = chunk
        self.items: "OrderedDict[int, Tuple[Any, int]]" = OrderedDict()
        self.slabs = 0

    @property
    def chunks_per_slab(self) -> int:
        return SLAB_BYTES // self.chunk

    @property
    def capacity(self) -> int:
        return self.slabs * self.chunks_per_slab

    def needs_slab(self) -> bool:
        return len(self.items) >= self.capacity


class MemcachedServer:
    """Slab-allocated LRU cache with a hard memory limit."""

    def __init__(self, memory_bytes: int) -> None:
        if memory_bytes < SLAB_BYTES:
            raise KVError(
                f"memcached needs at least one slab ({SLAB_BYTES} B)"
            )
        self.memory_bytes = memory_bytes
        self._classes: Dict[int, _SlabClass] = {}
        self._index: Dict[int, int] = {}  # key -> chunk class
        self._slab_bytes_used = 0
        self.evictions = 0

    def set(self, key: int, value: Any, nbytes: int) -> None:
        chunk = chunk_class_for(nbytes)
        old_class = self._index.get(key)
        if old_class is not None and old_class != chunk:
            self._delete_from(old_class, key)
        slab_class = self._classes.get(chunk)
        if slab_class is None:
            slab_class = _SlabClass(chunk)
            self._classes[chunk] = slab_class
        if key not in slab_class.items and slab_class.needs_slab():
            if not self._grow(slab_class):
                self._evict_one(slab_class)
        slab_class.items[key] = (value, nbytes)
        slab_class.items.move_to_end(key)
        self._index[key] = chunk

    def _grow(self, slab_class: _SlabClass) -> bool:
        if self._slab_bytes_used + SLAB_BYTES > self.memory_bytes:
            return False
        slab_class.slabs += 1
        self._slab_bytes_used += SLAB_BYTES
        return True

    def _evict_one(self, slab_class: _SlabClass) -> None:
        if not slab_class.items:
            raise KVError("cannot evict from an empty slab class")
        victim_key, _item = slab_class.items.popitem(last=False)
        del self._index[victim_key]
        self.evictions += 1

    def get(self, key: int) -> Tuple[Any, int]:
        chunk = self._index.get(key)
        if chunk is None:
            raise KeyNotFoundError(key)
        slab_class = self._classes[chunk]
        item = slab_class.items[key]
        slab_class.items.move_to_end(key)  # LRU touch
        return item

    def delete(self, key: int) -> None:
        chunk = self._index.get(key)
        if chunk is None:
            raise KeyNotFoundError(key)
        self._delete_from(chunk, key)

    def _delete_from(self, chunk: int, key: int) -> None:
        self._classes[chunk].items.pop(key, None)
        self._index.pop(key, None)

    def __contains__(self, key: int) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    @property
    def used_bytes(self) -> int:
        return sum(
            nbytes
            for slab_class in self._classes.values()
            for _value, nbytes in slab_class.items.values()
        )


class MemcachedStore(KeyValueBackend):
    """Client over a TCP-like transport (IPoIB in the paper's testbed)."""

    name = "memcached"
    supports_partitions = False

    #: Server-side request processing (hash + slab ops), µs.
    SERVER_US = 2.5
    REQUEST_BYTES = 40
    RESPONSE_OVERHEAD_BYTES = 48

    def __init__(
        self,
        env: Environment,
        fabric: Fabric,
        client_host: str,
        server_host: str,
        server: MemcachedServer,
    ) -> None:
        super().__init__(env)
        self.fabric = fabric
        self.client_host = client_host
        self.server_host = server_host
        self.server = server

    def get(self, key: int) -> Generator:
        value, nbytes = self.server.get(key)  # raises before charging time
        yield from self.fabric.rpc(
            self.client_host,
            self.server_host,
            self.REQUEST_BYTES,
            nbytes + self.RESPONSE_OVERHEAD_BYTES,
            server_us=self.SERVER_US,
        )
        self.counters.incr("reads")
        return value

    def put(self, key: int, value: Any, nbytes: int = PAGE_SIZE) -> Generator:
        yield from self.fabric.rpc(
            self.client_host,
            self.server_host,
            nbytes + self.REQUEST_BYTES,
            self.RESPONSE_OVERHEAD_BYTES,
            server_us=self.SERVER_US,
        )
        self.server.set(key, value, nbytes)
        self.counters.incr("writes")

    def remove(self, key: int) -> Generator:
        self.server.get(key)
        yield from self.fabric.rpc(
            self.client_host,
            self.server_host,
            self.REQUEST_BYTES,
            self.RESPONSE_OVERHEAD_BYTES,
            server_us=self.SERVER_US,
        )
        self.server.delete(key)
        self.counters.incr("removes")

    # multi_write: memcached has no batched write; the default sequential
    # implementation from the ABC applies (the paper notes async writeback
    # "is most beneficial when slower network transports are used such as
    # with TCP with Memcached").

    def contains(self, key: int) -> bool:
        return key in self.server

    def stored_keys(self) -> int:
        return len(self.server)

    @property
    def used_bytes(self) -> int:
        return self.server.used_bytes
