"""Local-DRAM backend.

The "FluidMem DRAM" configuration of Figure 3: pages are "evicted" into a
plain in-memory table on the hypervisor itself.  There is no network; each
operation costs roughly a 4 KB memcpy plus call overhead.  This isolates
the FluidMem mechanism's own cost from remote-memory cost, exactly how the
paper uses it.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from ..errors import KeyNotFoundError
from ..mem import PAGE_SIZE
from ..sim import Environment
from ..sim import core as _simcore
from ..sim.core import PRIORITY_URGENT, Event
from .api import KeyValueBackend, PeekableValue, ReadHandle, _park_failure

__all__ = ["DramStore"]


class DramStore(KeyValueBackend):
    """Dictionary-backed store with memcpy-scale latencies."""

    name = "dram"
    supports_partitions = True  # trivially: separate dicts would do

    #: Cost of moving one 4 KB page within DRAM (µs): ~0.5 µs memcpy
    #: plus bookkeeping, consistent with Table I's cache-management costs.
    COPY_US = 0.7
    #: Metadata-only operations (lookup, delete).
    TOUCH_US = 0.2

    def __init__(self, env: Environment, capacity_bytes: int = 0) -> None:
        super().__init__(env)
        #: 0 means unbounded.
        self.capacity_bytes = capacity_bytes
        self._table: Dict[int, PeekableValue] = {}
        self._used = 0

    def get(self, key: int) -> Generator:
        if not self.env.try_advance(self.COPY_US):
            yield self.env.timeout(self.COPY_US)
        entry = self._table.get(key)
        if entry is None:
            self.counters.incr("misses")
            raise KeyNotFoundError(key)
        self.counters.incr("reads")
        return entry.value

    def read_async(self, key: int) -> ReadHandle:
        """Top half of a read without the per-read driver process.

        The generic :meth:`KeyValueBackend.read_async` spawns a full
        :class:`~repro.sim.core.Process` per read — an ``Initialize``
        heap event, a generator frame, and a process-completion heap
        event.  A DRAM read is RNG-free with a fixed ``COPY_US``
        charge, so under the burst switches (DESIGN.md §17) the whole
        bottom half collapses to two callbacks:

        * a bare start event scheduled exactly where ``Initialize``
          would sit — ``(now, PRIORITY_URGENT, seq)`` — whose callback
          charges ``COPY_US`` (``try_advance`` else a chained timeout),
        * a settle step that resolves the handle's event with the same
          value/exception, counters, and timestamp the driver process
          would have produced.

        The only heap event this drops is the driver process's own
        no-callback completion event, which changes nothing observable;
        the equivalence pins (tests/bench) hold this byte-identical to
        the granular path.
        """
        env = self.env
        if (
            not _simcore.FASTPATH_ON
            or not _simcore.BATCH_ON
            or env.scheduler is not None
            # A subclass that overrides get() (e.g. fault-injecting test
            # stores) must keep driving reads through it.
            or type(self).get is not DramStore.get
        ):
            return super().read_async(key)
        handle = ReadHandle(env, key)
        start = Event.__new__(Event)
        start.env = env
        start._value = None
        start._ok = True
        start._defused = False
        start.callbacks = [
            lambda _evt, begin=self._begin_fast_read, handle=handle: begin(
                handle
            )
        ]
        env._schedule(start, priority=PRIORITY_URGENT)
        return handle

    def _begin_fast_read(self, handle: ReadHandle) -> None:
        """Charge the copy cost, then settle (possibly via a timeout)."""
        env = self.env
        if env.try_advance(self.COPY_US):
            self._settle_fast_read(handle)
            return
        timeout = env.timeout(self.COPY_US)
        timeout.callbacks.append(
            lambda _evt, settle=self._settle_fast_read, handle=handle: settle(
                handle
            )
        )

    def _settle_fast_read(self, handle: ReadHandle) -> None:
        """The tail of :meth:`get`, resolved onto the handle's event."""
        entry = self._table.get(handle.key)
        if entry is None:
            self.counters.incr("misses")
            _park_failure(handle.event, KeyNotFoundError(handle.key))
            return
        self.counters.incr("reads")
        handle.event.succeed(entry.value)

    def put(self, key: int, value: Any, nbytes: int = PAGE_SIZE) -> Generator:
        if not self.env.try_advance(self.COPY_US):
            yield self.env.timeout(self.COPY_US)
        self._insert(key, value, nbytes)

    def remove(self, key: int) -> Generator:
        if not self.env.try_advance(self.TOUCH_US):
            yield self.env.timeout(self.TOUCH_US)
        entry = self._table.pop(key, None)
        if entry is None:
            raise KeyNotFoundError(key)
        self._used -= entry.nbytes
        self.counters.incr("removes")

    def multi_write(self, items) -> Generator:
        # Batched local writes amortize nothing interesting; charge
        # one copy per page.
        cost = self.COPY_US * max(1, len(items))
        if not self.env.try_advance(cost):
            yield self.env.timeout(cost)
        for key, value, nbytes in items:
            self._insert(key, value, nbytes)

    def _insert(self, key: int, value: Any, nbytes: int) -> None:
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        old = self._table.get(key)
        new_used = self._used + nbytes - (old.nbytes if old else 0)
        if self.capacity_bytes and new_used > self.capacity_bytes:
            raise MemoryError(
                f"DramStore over capacity: {new_used} > {self.capacity_bytes}"
            )
        self._table[key] = PeekableValue(value, nbytes)
        self._used = new_used
        self.counters.incr("writes")

    def contains(self, key: int) -> bool:
        return key in self._table

    def stored_keys(self) -> int:
        return len(self._table)

    @property
    def used_bytes(self) -> int:
        return self._used
