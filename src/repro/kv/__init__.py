"""Remote-memory key-value backends and partition management."""

from .api import KeyValueBackend, ReadHandle, WriteHandle, WriteItem
from .dram import DramStore
from .memcached import MemcachedServer, MemcachedStore, SLAB_BYTES
from .partitions import (
    PartitionLease,
    PartitionedKeyCodec,
    PartitionOwner,
    VirtualPartitionRegistry,
)
from .ramcloud import RamCloudServer, RamCloudStore, SEGMENT_BYTES
from .wrappers import (
    CompressedStore,
    CompressionModel,
    ReplicatedStore,
    SlotTrackedStore,
)

__all__ = [
    "CompressedStore",
    "CompressionModel",
    "ReplicatedStore",
    "SlotTrackedStore",
    "KeyValueBackend",
    "ReadHandle",
    "WriteHandle",
    "WriteItem",
    "DramStore",
    "RamCloudServer",
    "RamCloudStore",
    "SEGMENT_BYTES",
    "MemcachedServer",
    "MemcachedStore",
    "SLAB_BYTES",
    "PartitionLease",
    "PartitionOwner",
    "VirtualPartitionRegistry",
    "PartitionedKeyCodec",
]
