"""Generic key-value backend API (paper §IV).

FluidMem "interfaces with key-value stores via a generic API that
supports partitions and allows multiple VMs to share the same key-value
store".  The monitor needs four things from a backend:

* blocking ``get`` / ``put`` / ``remove`` (used on the synchronous path),
* ``multi_write`` — RAMCloud's batched write, used by async writeback,
* *split* asynchronous operations — a non-blocking **top half** that
  issues the request and returns a handle, and a **bottom half** that
  waits for completion.  The monitor interleaves ``UFFD_REMAP`` evictions
  into the gap (paper §V-B, "Asynchronous reads"),
* a partition notion — native (RAMCloud tables) or virtual (12-bit key
  suffix managed through ZooKeeper).

Blocking operations are simulation generators: call them as
``value = yield from backend.get(key)`` inside a process.
"""

from __future__ import annotations

import abc
from typing import Any, Generator, List, Sequence, Tuple

from ..mem import PAGE_SIZE
from ..sim import CounterSet, Environment, Event

__all__ = [
    "KeyValueBackend",
    "ReadHandle",
    "WriteHandle",
    "WriteItem",
    "recorded",
]

#: (key, value, nbytes) triple for batched writes.
WriteItem = Tuple[int, Any, int]


class ReadHandle:
    """In-flight asynchronous read.  ``event`` fires with the value."""

    __slots__ = ("key", "event", "issued_at")

    def __init__(self, env: Environment, key: int) -> None:
        self.key = key
        self.event: Event = env.event()
        self.issued_at = env.now


class WriteHandle:
    """In-flight asynchronous (multi-)write.  ``event`` fires when durable."""

    __slots__ = ("keys", "event", "issued_at")

    def __init__(self, env: Environment, keys: Sequence[int]) -> None:
        self.keys = tuple(keys)
        self.event: Event = env.event()
        self.issued_at = env.now


class KeyValueBackend(abc.ABC):
    """Abstract remote-memory backend."""

    #: Human-readable backend name ("ramcloud", "memcached", "dram").
    name: str = "abstract"
    #: True when the store has native partitions (RAMCloud tables);
    #: False means FluidMem must encode a virtual partition in the key.
    supports_partitions: bool = False

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.counters = CounterSet()

    @property
    def is_alive(self) -> bool:
        """Whether the backend is currently reachable.

        Plain backends are always up; fault-injecting wrappers
        (:class:`repro.faults.FaultyStore`) override this to consult
        their fault plan, and :class:`repro.kv.ReplicatedStore` skips
        replicas whose ``is_alive`` is False instead of timing out
        against them.
        """
        return True

    # -- blocking operations (simulation generators) -------------------------

    @abc.abstractmethod
    def get(self, key: int) -> Generator:
        """Fetch the value for ``key``; raises KeyNotFoundError."""

    @abc.abstractmethod
    def put(self, key: int, value: Any, nbytes: int = PAGE_SIZE) -> Generator:
        """Store ``value`` under ``key``."""

    @abc.abstractmethod
    def remove(self, key: int) -> Generator:
        """Delete ``key``; raises KeyNotFoundError if absent."""

    def multi_write(self, items: List[WriteItem]) -> Generator:
        """Write a batch; default is sequential puts (RAMCloud overrides)."""
        for key, value, nbytes in items:
            yield from self.put(key, value, nbytes)

    def multi_read(self, keys: List[int]) -> Generator:
        """Read a batch; values in key order, all-or-nothing.

        Default is sequential gets.  RAMCloud overrides with a single
        round trip; wrappers delegate so batching survives end to end
        (a wrapper that silently fell back to per-key gets would undo
        the batch's latency win).  Raises KeyNotFoundError if any key
        is absent.
        """
        results = []
        for key in keys:
            value = yield from self.get(key)
            results.append(value)
        if keys:
            self.counters.incr("multi_reads")
        return results

    # -- asynchronous halves ---------------------------------------------------

    def read_async(self, key: int) -> ReadHandle:
        """Top half of a read: issue and return immediately."""
        handle = ReadHandle(self.env, key)
        self.env.process(self._drive_read(handle))
        return handle

    def write_async(self, items: List[WriteItem]) -> WriteHandle:
        """Top half of a batched write: issue and return immediately."""
        handle = WriteHandle(self.env, [item[0] for item in items])
        self.env.process(self._drive_write(handle, list(items)))
        return handle

    def _drive_read(self, handle: ReadHandle) -> Generator:
        try:
            value = yield from self.get(handle.key)
        except Exception as exc:  # delivered to whoever awaits the handle
            _park_failure(handle.event, exc)
            return
        handle.event.succeed(value)

    def _drive_write(
        self, handle: WriteHandle, items: List[WriteItem]
    ) -> Generator:
        try:
            yield from self.multi_write(items)
        except Exception as exc:
            _park_failure(handle.event, exc)
            return
        handle.event.succeed(len(items))

    # -- introspection (no simulated latency; for tests and accounting) --------

    @abc.abstractmethod
    def contains(self, key: int) -> bool:
        """Whether the store currently holds ``key``."""

    @abc.abstractmethod
    def stored_keys(self) -> int:
        """Number of keys currently stored."""

    @property
    def used_bytes(self) -> int:
        """Bytes of values currently stored (0 if the backend can't say)."""
        return 0

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} keys={self.stored_keys()}>"


def recorded(store: KeyValueBackend, checker=None) -> KeyValueBackend:
    """Wrap ``store`` in a :class:`repro.check.RecordingStore` so every
    read is validated against the acked-write history (read-your-writes
    / no-stale-read-after-ack).  Imported lazily: ``repro.check`` is an
    optional layer over the kv API, not a dependency of it."""
    from ..check.history import RecordingStore

    return RecordingStore(store, checker)


def _park_failure(event: Event, exc: Exception) -> None:
    """Fail a handle's event without tripping the engine's
    unconsumed-failure check: the bottom half may not have attached yet
    (it could still be interleaving an eviction) and will receive the
    exception when it does."""
    event._defused = True
    event.fail(exc)


class PeekableValue:
    """Optional mixin-ish helper: wraps stored values with byte size."""

    __slots__ = ("value", "nbytes")

    def __init__(self, value: Any, nbytes: int) -> None:
        self.value = value
        self.nbytes = nbytes
