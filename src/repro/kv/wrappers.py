"""Store wrappers: the provider customizations the paper sketches.

§III: "Cloud providers can further benefit from the flexibility that
comes from handling memory paging in user space to rapidly deploy a
variety of customizations ... Some examples are page compression or
replication across remote servers."  Because FluidMem's monitor talks
to a generic backend API, both are pure wrappers:

* :class:`CompressedStore` — compress page contents before PUT, expand
  after GET.  Costs CPU on the critical path, saves remote bytes.
* :class:`ReplicatedStore` — write every page to N replicas, read from
  the first live one.  Loses no data when a replica fails.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Sequence, Set

from ..errors import KVError, KeyNotFoundError, TransientStoreError
from ..mem import PAGE_SIZE, Page
from ..obs import NULL_OBS, Observability
from ..sim import Environment
from .api import KeyValueBackend, WriteItem

__all__ = [
    "CompressionModel",
    "CompressedStore",
    "ReplicatedStore",
    "SlotTrackedStore",
]


@dataclass(frozen=True)
class CompressionModel:
    """Cost/benefit model for page compression (LZ4-class).

    Real pages compress unevenly; the default 2.2x ratio matches
    typical anonymous-memory corpora.  Compression/decompression cost
    is charged per page on the fault path.
    """

    compress_us: float = 3.0
    decompress_us: float = 1.5
    ratio: float = 2.2

    def compressed_bytes(self, nbytes: int) -> int:
        return max(64, int(nbytes / self.ratio))


class CompressedStore(KeyValueBackend):
    """Transparent page compression in front of any backend."""

    supports_partitions = False  # delegated; see property below

    def __init__(
        self,
        env: Environment,
        inner: KeyValueBackend,
        model: CompressionModel = CompressionModel(),
    ) -> None:
        super().__init__(env)
        self.inner = inner
        self.model = model
        self.name = f"compressed-{inner.name}"
        self.supports_partitions = inner.supports_partitions
        self.bytes_saved = 0

    def put(self, key: int, value: Any, nbytes: int = PAGE_SIZE) -> Generator:
        yield self.env.timeout(self.model.compress_us)
        packed, packed_bytes = self._pack(value, nbytes)
        self.bytes_saved += nbytes - packed_bytes
        yield from self.inner.put(key, packed, packed_bytes)
        self.counters.incr("writes")

    def multi_write(self, items: List[WriteItem]) -> Generator:
        yield self.env.timeout(self.model.compress_us * max(1, len(items)))
        packed_items = []
        for key, value, nbytes in items:
            packed, packed_bytes = self._pack(value, nbytes)
            self.bytes_saved += nbytes - packed_bytes
            packed_items.append((key, packed, packed_bytes))
        yield from self.inner.multi_write(packed_items)
        self.counters.incr("writes", by=len(items))

    def get(self, key: int) -> Generator:
        packed = yield from self.inner.get(key)
        yield self.env.timeout(self.model.decompress_us)
        self.counters.incr("reads")
        return self._unpack(packed)

    def multi_read(self, keys: List[int]) -> Generator:
        """Delegate the whole batch so the inner store's single
        round trip survives; decompression is charged per page."""
        if not keys:
            return []
        packed = yield from self.inner.multi_read(list(keys))
        yield self.env.timeout(self.model.decompress_us * len(keys))
        self.counters.incr("reads", by=len(keys))
        self.counters.incr("multi_reads")
        return [self._unpack(item) for item in packed]

    def remove(self, key: int) -> Generator:
        yield from self.inner.remove(key)
        self.counters.incr("removes")

    def _pack(self, value: Any, nbytes: int):
        """Compress real bytes when present; model the size otherwise."""
        if isinstance(value, Page) and value.data is not None:
            blob = zlib.compress(value.data, level=1)
            return ("z", blob, value), min(nbytes, len(blob))
        return ("m", None, value), self.model.compressed_bytes(nbytes)

    @staticmethod
    def _unpack(packed: Any) -> Any:
        if not isinstance(packed, tuple) or len(packed) != 3:
            return packed  # foreign value; pass through
        kind, blob, original = packed
        if kind == "z" and isinstance(original, Page):
            original.data = zlib.decompress(blob)
        return original

    def contains(self, key: int) -> bool:
        return self.inner.contains(key)

    def stored_keys(self) -> int:
        return self.inner.stored_keys()

    @property
    def used_bytes(self) -> int:
        return self.inner.used_bytes


class SlotTrackedStore(KeyValueBackend):
    """Remote-slab placement tracking in front of any backend.

    The inner backend stores pages by key; this wrapper additionally
    assigns each live key a *slot* in a fixed remote slab via an
    :class:`repro.policy.AllocationPolicy`, freeing the slot on
    remove.  Slots are pure bookkeeping — no latency is charged and no
    data moves — but they make remote-memory fragmentation measurable:
    a provider compacting or reclaiming remote segments cares exactly
    about how the policy scatters live pages across the slab.

    Keys beyond ``total_slots`` still store fine (counted in
    ``slot_overflows``); the slab models the *managed* region, not a
    hard capacity.
    """

    def __init__(
        self,
        inner: KeyValueBackend,
        policy,
        total_slots: int,
    ) -> None:
        super().__init__(inner.env)
        self.inner = inner
        self.policy = policy
        self.total_slots = total_slots
        self.name = f"slotted-{inner.name}"
        self.supports_partitions = inner.supports_partitions
        policy.bind(total_slots)
        self._slots: dict = {}
        self._live: Set[int] = set()
        self.slot_overflows = 0

    def _assign(self, key: int) -> None:
        if key in self._slots:
            return  # overwrite reuses the key's existing slot
        slot = self.policy.take()
        if slot is None:
            self.slot_overflows += 1
            return
        self._slots[key] = slot
        self._live.add(slot)

    def _release(self, key: int) -> None:
        slot = self._slots.pop(key, None)
        if slot is not None:
            self._live.discard(slot)
            self.policy.give(slot)

    def put(self, key: int, value: Any, nbytes: int = PAGE_SIZE) -> Generator:
        self._assign(key)
        yield from self.inner.put(key, value, nbytes)

    def multi_write(self, items: List[WriteItem]) -> Generator:
        for key, _value, _nbytes in items:
            self._assign(key)
        yield from self.inner.multi_write(list(items))

    def get(self, key: int) -> Generator:
        value = yield from self.inner.get(key)
        return value

    def multi_read(self, keys: List[int]) -> Generator:
        values = yield from self.inner.multi_read(list(keys))
        return values

    def read_async(self, key: int):
        return self.inner.read_async(key)

    def write_async(self, items: List[WriteItem]):
        for key, _value, _nbytes in items:
            self._assign(key)
        return self.inner.write_async(list(items))

    def remove(self, key: int) -> Generator:
        yield from self.inner.remove(key)
        self._release(key)

    def contains(self, key: int) -> bool:
        return self.inner.contains(key)

    def stored_keys(self) -> int:
        return self.inner.stored_keys()

    @property
    def is_alive(self) -> bool:
        return self.inner.is_alive

    @property
    def used_bytes(self) -> int:
        return self.inner.used_bytes

    def fragmentation(self) -> dict:
        """Slab fragmentation of the live slot set (same ruler as
        :meth:`repro.mem.FrameAllocator.fragmentation`)."""
        used = len(self._live)
        out = {
            "policy": self.policy.name,
            "used_slots": used,
            "span_slots": 0,
            "occupancy": 1.0,
            "allocated_runs": 0,
            "slot_overflows": self.slot_overflows,
        }
        if used == 0:
            return out
        ordered = sorted(self._live)
        span = ordered[-1] - ordered[0] + 1
        runs = 1 + sum(
            1 for lower, upper in zip(ordered, ordered[1:])
            if upper != lower + 1
        )
        out["span_slots"] = span
        out["occupancy"] = round(used / span, 4)
        out["allocated_runs"] = runs
        return out


class ReplicatedStore(KeyValueBackend):
    """Synchronous N-way replication across independent backends.

    Writes go to every live replica (in parallel: the cost is the
    slowest write, not the sum) and succeed as long as at least one
    replica accepts them.  Reads try replicas in order, failing over
    past dead, unreachable, or transiently erroring ones.

    Liveness has two sources: the manual ``fail_replica`` /
    ``recover_replica`` switches (a provider draining a node), and each
    replica's own :attr:`~repro.kv.KeyValueBackend.is_alive` — which a
    :class:`repro.faults.FaultyStore` wires to its fault plan, so
    crash / partition windows are skipped without paying a timeout.
    """

    def __init__(
        self,
        env: Environment,
        replicas: Sequence[KeyValueBackend],
        obs: Optional[Observability] = None,
    ) -> None:
        if not replicas:
            raise KVError("need at least one replica")
        super().__init__(env)
        self.replicas = list(replicas)
        self._alive = [True] * len(self.replicas)
        #: Per-replica keys whose newest acked write this replica
        #: missed (it was down or its write failed).  Reads skip a
        #: replica for such keys — a recovered replica must not serve
        #: the value it held *before* its outage window (stale read).
        #: A later successful write to the replica clears the key.
        self._stale: List[Set[int]] = [set() for _ in self.replicas]
        self.name = f"replicated-x{len(self.replicas)}"
        self.supports_partitions = all(
            replica.supports_partitions for replica in self.replicas
        )
        self.obs = obs if obs is not None else NULL_OBS
        self.counters = self.obs.counters_for(store=self.name)

    def _observe_failover(self, index: int, key: int, reason: str) -> None:
        """Record one read that had to skip past a replica."""
        if self.obs.enabled:
            self.obs.tracer.instant(
                "replica_failover", self.env.now, cat="resilience",
                track=self.name, replica=index, reason=reason,
                key=f"{key:#x}",
            )

    # -- failure injection / liveness ----------------------------------------

    def fail_replica(self, index: int) -> None:
        self._alive[index] = False

    def recover_replica(self, index: int) -> None:
        """Bring a replica back.  Keys written while it was out stay
        marked stale on it until re-replicated by a later write."""
        self._alive[index] = True

    def _replica_alive(self, index: int) -> bool:
        return self._alive[index] and self.replicas[index].is_alive

    @property
    def live_count(self) -> int:
        return sum(
            1 for index in range(len(self.replicas))
            if self._replica_alive(index)
        )

    @property
    def is_alive(self) -> bool:
        return self.live_count > 0

    def _live(self) -> List[KeyValueBackend]:
        live = [
            replica
            for index, replica in enumerate(self.replicas)
            if self._replica_alive(index)
        ]
        if not live:
            # Transient: a crashed/partitioned replica can recover.
            raise TransientStoreError("all replicas are down")
        return live

    # -- operations -------------------------------------------------------------

    def _write_live(self, items: List[WriteItem]) -> Generator:
        """Issue one batched write to every live replica in parallel.

        Succeeds when at least one replica made the batch durable;
        replicas that fail mid-write are counted and skipped (the read
        path's failover covers the gap until they re-replicate).

        Every replica that misses the batch — down, or failed
        mid-write — has the batch's keys marked stale: after it
        recovers it still holds the *pre-outage* values, and a read
        failing over onto it must not be served those.  A later
        successful write of a key clears its mark.
        """
        self._live()  # all-down is transient: raise before issuing
        keys = [item[0] for item in items]
        live_indexes = [
            index for index in range(len(self.replicas))
            if self._replica_alive(index)
        ]
        for index in range(len(self.replicas)):
            if index not in live_indexes:
                self._stale[index].update(keys)
        events = [
            (index, self.replicas[index].write_async(list(items)).event)
            for index in live_indexes
        ]
        survivors = 0
        last_error: Optional[Exception] = None
        for index, event in events:
            try:
                yield event
            except (TransientStoreError, KVError) as exc:
                last_error = exc
                self._stale[index].update(keys)
                self.counters.incr("replica_write_failures")
                continue
            self._stale[index].difference_update(keys)
            survivors += 1
        if survivors == 0:
            raise TransientStoreError(
                f"write failed on every replica: {last_error}"
            ) from last_error

    def put(self, key: int, value: Any, nbytes: int = PAGE_SIZE) -> Generator:
        yield from self._write_live([(key, value, nbytes)])
        self.counters.incr("writes")

    def multi_write(self, items: List[WriteItem]) -> Generator:
        if not items:
            return
        yield from self._write_live(list(items))
        self.counters.incr("writes", by=len(items))

    def get(self, key: int) -> Generator:
        transient: Optional[Exception] = None
        missing: Optional[KeyNotFoundError] = None
        for index, replica in enumerate(self.replicas):
            if not self._replica_alive(index):
                self.counters.incr("replicas_skipped")
                continue
            if key in self._stale[index]:
                # The replica missed this key's newest write while it
                # was out; its surviving copy must not be served.
                self.counters.incr("failovers")
                self._observe_failover(index, key, "stale")
                continue
            try:
                value = yield from replica.get(key)
            except KeyNotFoundError as exc:
                missing = exc
                self.counters.incr("failovers")
                self._observe_failover(index, key, "missing")
                continue
            except TransientStoreError as exc:
                transient = exc
                self.counters.incr("failovers")
                self._observe_failover(index, key, "transient")
                continue
            self.counters.incr("reads")
            return value
        if transient is not None:
            # The key may exist on a replica that errored: retryable.
            raise TransientStoreError(
                f"no replica could serve key {key:#x}: {transient}"
            ) from transient
        if missing is not None:
            raise missing
        raise TransientStoreError("all replicas are down")

    def multi_read(self, keys: List[int]) -> Generator:
        """One batched read against the first replica that can serve
        the *whole* batch; failover is all-or-nothing per replica (a
        replica missing one key is skipped the same as a dead one)."""
        if not keys:
            return []
        transient: Optional[Exception] = None
        missing: Optional[KeyNotFoundError] = None
        for index, replica in enumerate(self.replicas):
            if not self._replica_alive(index):
                self.counters.incr("replicas_skipped")
                continue
            if any(key in self._stale[index] for key in keys):
                # All-or-nothing per replica: one stale key skips it.
                self.counters.incr("failovers")
                self._observe_failover(index, keys[0], "stale")
                continue
            try:
                values = yield from replica.multi_read(list(keys))
            except KeyNotFoundError as exc:
                missing = exc
                self.counters.incr("failovers")
                self._observe_failover(index, keys[0], "missing")
                continue
            except TransientStoreError as exc:
                transient = exc
                self.counters.incr("failovers")
                self._observe_failover(index, keys[0], "transient")
                continue
            self.counters.incr("reads", by=len(keys))
            self.counters.incr("multi_reads")
            return values
        if transient is not None:
            raise TransientStoreError(
                f"no replica could serve the {len(keys)}-key batch: "
                f"{transient}"
            ) from transient
        if missing is not None:
            raise missing
        raise TransientStoreError("all replicas are down")

    def remove(self, key: int) -> Generator:
        self._live()  # all-down is transient, not key-not-found
        removed = False
        for index, replica in enumerate(self.replicas):
            if not self._replica_alive(index):
                # The replica keeps a copy the removal deleted: its
                # surviving value is stale by definition.
                self._stale[index].add(key)
                continue
            try:
                yield from replica.remove(key)
                removed = True
                self._stale[index].discard(key)
            except KeyNotFoundError:
                self._stale[index].discard(key)
            except TransientStoreError:
                self._stale[index].add(key)
                self.counters.incr("replica_remove_failures")
        if not removed:
            raise KeyNotFoundError(key)
        self.counters.incr("removes")

    def contains(self, key: int) -> bool:
        return any(
            replica.contains(key)
            for index, replica in enumerate(self.replicas)
            if self._replica_alive(index)
            and key not in self._stale[index]
        )

    def stored_keys(self) -> int:
        return max(
            (
                replica.stored_keys()
                for index, replica in enumerate(self.replicas)
                if self._replica_alive(index)
            ),
            default=0,
        )

    @property
    def used_bytes(self) -> int:
        return sum(
            replica.used_bytes
            for index, replica in enumerate(self.replicas)
            if self._replica_alive(index)
        )
