"""Virtual partitions for partition-less key-value stores (paper §IV).

Page keys are 64 bits: 52 bits of virtual page number + 12 bits of
partition index.  When the backend has no native partitions (Memcached),
FluidMem synthesizes a **virtual partition** per registered region.  The
index is derived from the QEMU process PID, a hypervisor ID, and a nonce,
"where global uniqueness is ensured by a replicated and globally
consistent table stored in Zookeeper".

:class:`VirtualPartitionRegistry` implements that table on the
mini-ZooKeeper: each allocation claims a free index in ``[0, 4095]`` and
records the owner identity, so two hypervisors can never collide even if
they race (ZooKeeper's create-is-exclusive gives the mutual exclusion).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from ..coord import ZooKeeperClient
from ..errors import NodeExistsError, PartitionError, SessionExpiredError
from ..mem import MAX_PARTITION, encode_page_key

__all__ = [
    "PartitionOwner",
    "PartitionLease",
    "VirtualPartitionRegistry",
    "PartitionedKeyCodec",
]


@dataclass(frozen=True)
class PartitionOwner:
    """Identity of a partition claimant."""

    hypervisor_id: str
    pid: int
    nonce: int

    def encode(self) -> bytes:
        return f"{self.hypervisor_id}:{self.pid}:{self.nonce}".encode()

    @classmethod
    def decode(cls, raw: bytes) -> "PartitionOwner":
        hypervisor_id, pid, nonce = raw.decode().rsplit(":", 2)
        return cls(hypervisor_id, int(pid), int(nonce))


class VirtualPartitionRegistry:
    """Globally consistent partition table over ZooKeeper."""

    BASE = "/fluidmem/partitions"

    def __init__(self, zk: ZooKeeperClient) -> None:
        self._zk = zk
        zk.ensure_path(self.BASE)

    def _slot_path(self, index: int) -> str:
        return f"{self.BASE}/slot-{index:04d}"

    def register(self, owner: PartitionOwner) -> int:
        """Claim a free index for ``owner``; returns the index.

        Deterministic first-probe: hash of the owner identity, then
        linear probing.  The ZooKeeper ``create`` is the atomic claim, so
        concurrent registrants from different hypervisors are safe.
        """
        # BLAKE2b, not builtin hash(): the probe start must agree
        # across hypervisor processes (PYTHONHASHSEED randomizes str
        # hashing per process, which would break determinism).
        digest = hashlib.blake2b(owner.encode(), digest_size=8).digest()
        start = int.from_bytes(digest, "little") & MAX_PARTITION
        for offset in range(MAX_PARTITION + 1):
            index = (start + offset) % (MAX_PARTITION + 1)
            try:
                self._zk.create(
                    self._slot_path(index),
                    owner.encode(),
                    ephemeral=True,
                )
                return index
            except NodeExistsError:
                existing = self.owner_of(index)
                if existing == owner:
                    # Re-registration by the same owner is idempotent.
                    return index
        raise PartitionError("all 4096 virtual partitions are in use")

    def release(self, index: int, owner: PartitionOwner) -> None:
        """Free ``index``; only its owner may release it."""
        current = self.owner_of(index)
        if current is None:
            raise PartitionError(f"partition {index} is not allocated")
        if current != owner:
            raise PartitionError(
                f"partition {index} is owned by {current}, not {owner}"
            )
        self._zk.delete(self._slot_path(index))

    def lease(self, owner: PartitionOwner) -> "PartitionLease":
        """Claim an index wrapped in a releasable lease.

        The lease is what a VM registration holds; releasing it on
        deregister/teardown is what keeps allocate/free cycles from
        exhausting the 4096-index space.
        """
        return PartitionLease(self, self.register(owner), owner)

    def owner_of(self, index: int) -> Optional[PartitionOwner]:
        if not 0 <= index <= MAX_PARTITION:
            raise PartitionError(f"partition index {index} out of range")
        if not self._zk.exists(self._slot_path(index)):
            return None
        raw, _version = self._zk.get(self._slot_path(index))
        return PartitionOwner.decode(raw)

    def allocated_count(self) -> int:
        return len(self._zk.children(self.BASE))


class PartitionLease:
    """A claimed partition index plus the handle that frees it.

    ``release`` is idempotent, and tolerates the slot having already
    vanished (the registry's znodes are ephemeral, so an expired
    ZooKeeper session frees them without our help) — but still refuses
    to free a slot some other owner has since claimed.
    """

    __slots__ = ("registry", "index", "owner", "_released")

    def __init__(
        self,
        registry: VirtualPartitionRegistry,
        index: int,
        owner: PartitionOwner,
    ) -> None:
        self.registry = registry
        self.index = index
        self.owner = owner
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        try:
            if self.registry.owner_of(self.index) is None:
                return  # expiry already cleaned the ephemeral slot
        except SessionExpiredError:
            # Our own session died: the ephemeral slot went with it.
            return
        self.registry.release(self.index, self.owner)

    def __repr__(self) -> str:
        state = "released" if self._released else "held"
        return f"<PartitionLease index={self.index} {state}>"


class PartitionedKeyCodec:
    """Turns faulting addresses into 64-bit store keys for one region.

    For backends with native partitions, ``partition`` stays 0 and the
    table id separates tenants; otherwise the virtual partition index is
    packed into the low 12 bits.
    """

    def __init__(self, partition: int = 0) -> None:
        if not 0 <= partition <= MAX_PARTITION:
            raise PartitionError(f"partition {partition} out of range")
        self.partition = partition

    def key_for(self, vaddr: int) -> int:
        return encode_page_key(vaddr, self.partition)
