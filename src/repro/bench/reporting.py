"""Result rendering: ASCII tables, CSV export, and text CDF plots."""

from __future__ import annotations

import csv
import os
from typing import Iterable, List, Sequence

from ..sim import Cdf

__all__ = ["render_table", "render_cdf", "write_csv", "format_ratio"]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Monospace table with right-aligned numeric columns."""
    materialized: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.rjust(widths[i]) if _numericish(cells[i]) else
            cell.ljust(widths[i])
            for i, cell in enumerate(cells)
        ).rstrip()

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    for row in materialized:
        out.append(line(row))
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell >= 1000:
            return f"{cell:,.1f}"
        return f"{cell:.2f}"
    return str(cell)


def _numericish(cell: str) -> bool:
    stripped = cell.replace(",", "").replace(".", "").replace("-", "")
    return stripped.isdigit()


def render_cdf(
    cdf: Cdf,
    width: int = 60,
    height: int = 12,
    label: str = "",
    log_x: bool = True,
) -> str:
    """A text rendering of a latency CDF (Figure 3 style, log x-axis)."""
    import math

    points = cdf.points(count=width)
    values = [v for v, _f in points]
    lo, hi = max(min(values), 1e-3), max(values)
    if log_x and hi > lo:
        positions = [
            int((math.log10(max(v, lo)) - math.log10(lo))
                / (math.log10(hi) - math.log10(lo) + 1e-12)
                * (width - 1))
            for v in values
        ]
    else:
        span = (hi - lo) or 1.0
        positions = [int((v - lo) / span * (width - 1)) for v in values]

    grid = [[" "] * width for _ in range(height)]
    for pos, (_v, frac) in zip(positions, points):
        row = height - 1 - int(frac * (height - 1))
        grid[row][pos] = "*"
    lines = []
    if label:
        lines.append(label)
    for row_index, row in enumerate(grid):
        frac = 1.0 - row_index / (height - 1)
        lines.append(f"{frac:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {lo:.1f}us" + " " * (width - 16) + f"{hi:.1f}us")
    return "\n".join(lines)


def write_csv(
    path: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)


def format_ratio(measured: float, paper: float) -> str:
    """'measured (paper x.xx, ratio y.yy)' for EXPERIMENTS.md rows."""
    if paper == 0:
        return f"{measured:.2f}"
    return f"{measured:.2f} (paper {paper:.2f}, x{measured / paper:.2f})"
