"""Cluster scale-out experiment: 1 → 8 shard nodes, then a crash.

The remote memory pool grows one node at a time while a fixed
population of pages lives in it.  After every join the rebalancer is
allowed to quiesce and we record how evenly the keys spread (max/min
keys per node), how many keys moved, and how long the migration took
in simulated time.  Then one node fail-stops and we measure recovery:
the time until every key is back at the target replication factor,
plus a full read-back proving no page was lost.

Everything runs on the simulated clock with sorted iteration orders,
so a same-seed run is bit-for-bit reproducible — the CI determinism
pin diffs two ``--metrics`` exports of this experiment byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..cluster import ClusterManager, ClusterStore, Rebalancer
from ..coord import ZooKeeperEnsemble
from ..kv import DramStore
from ..mem import PAGE_SIZE
from ..sim import Environment
from .platform import default_observability
from .reporting import render_table

__all__ = ["ClusterScaleRow", "ClusterScaleResult", "run_cluster"]


@dataclass
class ClusterScaleRow:
    nodes: int
    min_keys: int
    max_keys: int
    ratio: float
    keys_moved: int
    settle_us: float


@dataclass
class ClusterScaleResult:
    rows_data: List[ClusterScaleRow]
    total_keys: int
    replication: int
    crashed_node: str
    recovery_us: float
    keys_re_replicated: int
    keys_lost: int
    read_back_ok: bool

    def rows(self) -> List[Sequence[object]]:
        return [
            (row.nodes, row.min_keys, row.max_keys,
             f"{row.ratio:.2f}", row.keys_moved, f"{row.settle_us:.0f}")
            for row in self.rows_data
        ]

    def table_text(self) -> str:
        table = render_table(
            ("nodes", "min keys", "max keys", "max/min", "keys moved",
             "settle µs"),
            self.rows(),
            title=(
                f"Cluster scale-out: {self.total_keys} pages, "
                f"replication x{self.replication}"
            ),
        )
        recovery = (
            f"\nCrash of {self.crashed_node}: re-replicated "
            f"{self.keys_re_replicated} keys in {self.recovery_us:.0f} "
            f"µs, {self.keys_lost} lost, read-back "
            f"{'OK' if self.read_back_ok else 'FAILED'}."
        )
        return table + recovery


def run_cluster(
    pages: int = 2_000,
    max_nodes: int = 8,
    replication: int = 2,
    seed: int = 42,
) -> ClusterScaleResult:
    env = Environment()
    obs = default_observability()
    store = ClusterStore(env, replication=replication, obs=obs)
    rebalancer = Rebalancer(env, store, batch_keys=16, pause_us=100.0,
                            obs=obs)
    manager = ClusterManager(
        env, ZooKeeperEnsemble(), store, rebalancer, obs=obs
    )
    rebalancer.start()
    manager.start()

    rows: List[ClusterScaleRow] = []
    outcome = {}

    def snapshot(settle_us: float, moved_before: int) -> None:
        counts = sorted(store.shard_counts().values())
        moved_now = store.counters["keys_migrated"]
        rows.append(ClusterScaleRow(
            nodes=len(store.registered_nodes),
            min_keys=counts[0],
            max_keys=counts[-1],
            ratio=store.balance_ratio(),
            keys_moved=moved_now - moved_before,
            settle_us=settle_us,
        ))

    def experiment(env: Environment):
        manager.join("shard0", DramStore(env))
        for key in range(pages):
            # Value is (key, seed): enough to verify reads, no payload
            # bytes to drag the simulation down.
            yield from store.put(key, (key, seed), PAGE_SIZE)
        yield from rebalancer.wait_quiesce()
        snapshot(0.0, 0)
        # Scale out one node at a time.
        for index in range(1, max_nodes):
            moved_before = store.counters["keys_migrated"]
            started = env.now
            manager.join(f"shard{index}", DramStore(env))
            yield from rebalancer.wait_quiesce()
            snapshot(env.now - started, moved_before)
        # Fail-stop the fullest node and time the recovery.
        counts = store.shard_counts()
        victim = max(sorted(counts), key=lambda n: counts[n])
        moved_before = store.counters["keys_migrated"]
        started = env.now
        manager.crash(victim)
        yield from rebalancer.wait_quiesce()
        while store.under_replicated_keys():
            rebalancer.schedule()
            yield from rebalancer.wait_quiesce()
        outcome["crashed"] = victim
        outcome["recovery_us"] = env.now - started
        outcome["re_replicated"] = (
            store.counters["keys_migrated"] - moved_before
        )
        # Read every page back: nothing lost, nothing stale.
        ok = True
        for key in range(pages):
            value = yield from store.get(key)
            if value != (key, seed):
                ok = False
        outcome["read_back_ok"] = ok
        manager.stop()

    proc = env.process(experiment(env))
    env.run()
    if not proc.ok:  # pragma: no cover - surfaced to the caller
        raise proc.value

    if obs.enabled:
        obs.registry.gauge("cluster_balance_ratio_x100").set(
            int(round(rows[-1].ratio * 100))
        )
        obs.registry.gauge("cluster_recovery_us").set(
            int(outcome["recovery_us"])
        )
    return ClusterScaleResult(
        rows_data=rows,
        total_keys=pages,
        replication=replication,
        crashed_node=outcome["crashed"],
        recovery_us=outcome["recovery_us"],
        keys_re_replicated=outcome["re_replicated"],
        keys_lost=store.counters["keys_lost"],
        read_back_ok=outcome["read_back_ok"],
    )
