"""Table I: latencies of key parts of FluidMem code.

§VI-C: "We used [the built-in profiling] to profile key sections of
FluidMem code during synchronous page fault handling (without the
optimizations in Table II) ... with the RAMCloud backend."

Paper values (µs):

    code path               avg    stdev   p99
    UPDATE_PAGE_CACHE       2.56   0.25    3.32
    INSERT_PAGE_HASH_NODE   2.58   1.26    8.36
    INSERT_LRU_CACHE_NODE   2.87   0.47    3.65
    UFFD_ZEROPAGE           2.61   0.44    3.51
    UFFD_REMAP              1.65   2.57   18.03
    UFFD_COPY               3.89   0.77    5.43
    READ_PAGE              15.62  31.01   20.90
    WRITE_PAGE             14.70   1.52   17.45
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core import FluidMemConfig
from ..workloads import Pmbench, PmbenchConfig
from .platform import build_platform
from .reporting import render_table

__all__ = ["PAPER_TABLE1_US", "Table1Result", "run_table1"]

#: (avg, stdev, p99) per code path, from the paper.
PAPER_TABLE1_US: Dict[str, Tuple[float, float, float]] = {
    "UPDATE_PAGE_CACHE": (2.56, 0.25, 3.32),
    "INSERT_PAGE_HASH_NODE": (2.58, 1.26, 8.36),
    "INSERT_LRU_CACHE_NODE": (2.87, 0.47, 3.65),
    "UFFD_ZEROPAGE": (2.61, 0.44, 3.51),
    "UFFD_REMAP": (1.65, 2.57, 18.03),
    "UFFD_COPY": (3.89, 0.77, 5.43),
    "READ_PAGE": (15.62, 31.01, 20.90),
    "WRITE_PAGE": (14.70, 1.52, 17.45),
}


@dataclass
class Table1Result:
    """Measured code-path stats alongside the paper's."""

    measured: List[Tuple[str, float, float, float]]

    def row_for(self, path: str) -> Tuple[str, float, float, float]:
        for row in self.measured:
            if row[0] == path:
                return row
        raise KeyError(path)

    def rows(self) -> List[Sequence[object]]:
        out = []
        for path, avg, stdev, p99 in self.measured:
            paper_avg, paper_stdev, paper_p99 = PAPER_TABLE1_US[path]
            out.append(
                (
                    path,
                    round(avg, 2), paper_avg,
                    round(stdev, 2), paper_stdev,
                    round(p99, 2), paper_p99,
                )
            )
        return out

    def table_text(self) -> str:
        return render_table(
            ("code path", "avg", "paper", "stdev", "paper", "p99",
             "paper"),
            self.rows(),
            title="Table I: FluidMem code-path latencies (us, RAMCloud, "
                  "synchronous)",
        )


def run_table1(
    memory_scale: float = 1.0 / 1024,
    measured_accesses: int = 8_000,
    seed: int = 42,
) -> Table1Result:
    """Profile the monitor under synchronous (unoptimized) handling."""
    # "without the optimizations in Table II": sync reads + sync writes.
    config = FluidMemConfig.default_table2()
    platform = build_platform(
        "fluidmem-ramcloud",
        memory_scale=memory_scale,
        seed=seed,
        fluidmem_config=config,
    )
    bench = Pmbench(
        platform.env,
        platform.port,
        platform.workload_base,
        PmbenchConfig(
            wss_pages=platform.shape.wss_pages(4.0),
            measured_accesses=measured_accesses,
        ),
        rng=platform.streams.stream("pmbench"),
    )
    platform.run(bench.run())
    return Table1Result(measured=platform.monitor.profiler.table())
