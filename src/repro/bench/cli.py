"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.bench fig3            # Figure 3 latency CDFs
    python -m repro.bench table1          # Table I code paths
    python -m repro.bench table2          # Table II optimizations
    python -m repro.bench fig4            # Figure 4 Graph500
    python -m repro.bench fig5            # Figure 5 MongoDB/YCSB
    python -m repro.bench table3          # Table III footprint
    python -m repro.bench ablations       # design-choice ablations
    python -m repro.bench cluster         # shard scale-out + recovery
    python -m repro.bench market          # multi-tenant marketplace
    python -m repro.bench all             # everything
    python -m repro.bench fig3 table1     # any subset, in order

``--quick`` shrinks the runs for smoke testing; ``--csv DIR`` exports
each experiment's rows; ``--metrics PATH`` writes a machine-readable
metrics summary (per-code-path latency percentiles, op counts, retry
and failover tallies — the BENCH_*.json baseline format); ``--trace
PATH`` writes a ``chrome://tracing`` event trace keyed to simulated
time.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence, Tuple

from ..faults import NAMED_PLANS
from ..obs import EventTracer, Observability, export_chrome_trace
from .ablations import run_all_ablations
from .cluster_scaleout import run_cluster
from .fig3_latency_cdf import run_fig3
from .fig4_graph500 import run_fig4
from .fig5_mongodb import run_fig5
from .market_fleet import run_market
from .platform import set_default_fault_plan, set_default_observability
from .reporting import write_csv
from .table1_codepaths import run_table1
from .table2_optimizations import run_table2
from .table3_footprint import run_table3
from .tournament import run_tournament

__all__ = ["main", "METRICS_SCHEMA"]

#: Experiment name -> one-line description (``--list-experiments``).
EXPERIMENT_DESCRIPTIONS = {
    "fig3": "Figure 3 page-fault latency CDFs across backends",
    "table1": "Table I per-code-path latency breakdown",
    "table2": "Table II optimization ablations (bare processes)",
    "fig4": "Figure 4 Graph500 BFS under shrinking local memory",
    "fig5": "Figure 5 MongoDB/YCSB latency vs WiredTiger cache",
    "table3": "Table III VM footprint squeeze toward zero pages",
    "ablations": "Design-choice ablations (LRU, batching, policies)",
    "cluster": "Shard-cluster scale-out 1->8 nodes: key balance, "
               "crash recovery time",
    "market": "Multi-tenant memory marketplace: fleet-scale harvest/"
              "lease with per-tenant SLOs and an audited broker",
    "tournament": "Policy tournament: every alloc x prefetch x "
                  "handler-count combo raced over pmbench/graph500/"
                  "market workloads, ranked by fault p99",
}

EXPERIMENTS = ("fig3", "table1", "table2", "fig4", "fig5", "table3",
               "ablations", "cluster", "market", "tournament")

#: Version tag of the ``--metrics`` JSON document; bump on layout
#: changes so the CI regression gate can refuse mismatched baselines.
METRICS_SCHEMA = "repro-bench-metrics/1"


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Regenerate the FluidMem paper's tables and figures",
    )
    parser.add_argument(
        "experiment",
        nargs="*",
        metavar="EXPERIMENT",
        help="which tables/figures to regenerate: "
             + ", ".join(EXPERIMENTS)
             + ", or 'all' (any subset, run in canonical order)",
    )
    parser.add_argument(
        "--list-experiments",
        action="store_true",
        help="print every experiment name with a one-line description "
             "and exit",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller runs (smoke-test scale)",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each experiment's rows as CSV into DIR",
    )
    parser.add_argument(
        "--cdf",
        action="store_true",
        help="fig3: also print ASCII CDF plots per backend",
    )
    parser.add_argument(
        "--faults",
        metavar="PLAN",
        default=None,
        help="run the experiment under a named fault plan: FluidMem "
             "stores become 2 fault-injected replicas behind "
             "retry/failover (plans: "
             + ", ".join(sorted(NAMED_PLANS))
             + "); swap platforms are unaffected",
    )
    parser.add_argument(
        "--partitions",
        type=int,
        default=1,
        metavar="N",
        help="shard the market experiment's VM fleet over N processes "
             "(repro.parallel); results are byte-identical at any N. "
             "Other experiments run serially regardless",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan the tournament experiment's cells over N processes "
             "(repro.parallel); results are byte-identical at any N. "
             "Other experiments ignore it",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write a machine-readable metrics summary (counters, "
             "gauges, per-code-path latency percentiles) as JSON",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a chrome://tracing event trace (load in "
             "chrome://tracing or Perfetto; timestamps are simulated "
             "microseconds)",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const=25,
        type=int,
        default=None,
        metavar="N",
        help="wrap the selected experiments in cProfile and print the "
             "top-N functions by cumulative wall-clock time "
             "(default N: 25)",
    )
    return parser


def _maybe_csv(csv_dir: Optional[str], name: str, headers, rows) -> None:
    if csv_dir is None:
        return
    os.makedirs(csv_dir, exist_ok=True)
    write_csv(os.path.join(csv_dir, f"{name}.csv"), headers, rows)


def _run_one(name: str, args) -> None:
    quick = args.quick
    seed = args.seed
    if args.faults and name in ("table2", "ablations", "cluster", "market"):
        if name == "cluster":
            reason = "schedules its own node crashes"
        elif name == "market":
            reason = "schedules its own seeded fleet chaos"
        else:
            reason = "drives bare test processes, not full platforms"
        print(
            f"note: {name} {reason}; --faults {args.faults} has no "
            f"effect on it",
            file=sys.stderr,
        )
    if args.partitions > 1 and name != "market":
        print(
            f"note: {name} runs serially; --partitions "
            f"{args.partitions} only shards the market experiment",
            file=sys.stderr,
        )
    if args.workers > 1 and name != "tournament":
        print(
            f"note: {name} runs serially; --workers {args.workers} "
            f"only fans out the tournament experiment",
            file=sys.stderr,
        )
    if name == "fig3":
        result = run_fig3(
            measured_accesses=4000 if quick else 20000, seed=seed
        )
        print(result.table_text())
        if args.cdf:
            for platform in result.results:
                print()
                print(result.cdf_text(platform))
        print(
            "\nFluidMem->RAMCloud faults are "
            f"{100 * result.speedup_over('fluidmem-ramcloud', 'swap-nvmeof'):.0f}% "
            "faster than NVMeoF swap (paper: 40%) and "
            f"{100 * result.speedup_over('fluidmem-ramcloud', 'swap-ssd'):.0f}% "
            "faster than SSD swap (paper: 77%)."
        )
        _maybe_csv(args.csv, "fig3",
                   ("backend", "avg_us", "paper_us", "ratio", "hit_pct",
                    "sub10us_pct"),
                   result.rows())
    elif name == "table1":
        result = run_table1(
            measured_accesses=3000 if quick else 10000, seed=seed
        )
        print(result.table_text())
        _maybe_csv(args.csv, "table1",
                   ("path", "avg", "paper_avg", "stdev", "paper_stdev",
                    "p99", "paper_p99"),
                   result.rows())
    elif name == "table2":
        result = run_table2(
            accesses=1500 if quick else 5000, seed=seed
        )
        print(result.table_text())
        _maybe_csv(args.csv, "table2",
                   ("optimization", "dram_seq", "paper", "dram_rand",
                    "paper", "rc_seq", "paper", "rc_rand", "paper"),
                   result.rows())
    elif name == "fig4":
        result = run_fig4(
            graph_scale=11 if quick else 12,
            num_bfs_roots=1 if quick else 2,
            seed=seed,
        )
        print(result.table_text())
        print(
            "\nFluidMem overhead with an all-local working set: "
            f"{100 * result.overhead_at_local():.1f}% (paper: 2.6%)."
        )
        _maybe_csv(args.csv, "fig4",
                   ("wss", "graph_scale", *result.platforms),
                   result.rows())
    elif name == "fig5":
        result = run_fig5(
            operations=4000 if quick else 15000, seed=seed
        )
        print(result.table_text())
        headers = ["wt_cache"]
        for platform in result.platforms:
            headers += [f"{platform}_us", "paper_us", "cv"]
        _maybe_csv(args.csv, "fig5", headers, result.rows())
    elif name == "table3":
        result = run_table3(
            boot_scale=1.0 / 16 if quick else 1.0 / 8, seed=seed
        )
        print(result.table_text())
        _maybe_csv(args.csv, "table3",
                   ("configuration", "pages", "mib", "ssh", "icmp",
                    "revived"),
                   result.rows())
    elif name == "cluster":
        result = run_cluster(
            pages=400 if quick else 2_000,
            max_nodes=6 if quick else 8,
            seed=seed,
        )
        print(result.table_text())
        _maybe_csv(args.csv, "cluster",
                   ("nodes", "min_keys", "max_keys", "ratio",
                    "keys_moved", "settle_us"),
                   result.rows())
    elif name == "market":
        result = run_market(
            fleet_scale=2 if quick else 4,
            ticks=30 if quick else 90,
            seed=seed,
            partitions=args.partitions,
        )
        print(result.table_text())
        _maybe_csv(args.csv, "market",
                   ("tenant", "role", "vms", "priority", "slo_us",
                    "p99_us", "slo_violations", "faults", "remote_hits",
                    "swap_faults", "deaths"),
                   result.rows())
    elif name == "tournament":
        result = run_tournament(
            quick=quick, seed=seed, workers=args.workers,
            faults=args.faults,
        )
        print(result.table_text())
        print(
            f"\nWinner: {result.winner} over "
            f"{len(result.cells)} cells ({result.workers} worker(s))."
        )
        _maybe_csv(args.csv, "tournament",
                   ("rank", "combo", "mean_p99_us", "mean_p50_us",
                    "faults", "prefetch_hit_pct", "frame_occupancy"),
                   result.rows())
    elif name == "ablations":
        for ablation in run_all_ablations(seed=seed).values():
            print(ablation.table_text())
            print()
            _maybe_csv(
                args.csv,
                f"ablation-{ablation.name.split(' ')[0]}",
                ablation.headers,
                ablation.data,
            )
    else:  # pragma: no cover - guarded by argparse choices
        raise ValueError(name)


def _expand_targets(requested: Sequence[str]) -> Tuple[str, ...]:
    """Resolve 'all' and dedupe while keeping canonical order."""
    if "all" in requested:
        return EXPERIMENTS
    return tuple(name for name in EXPERIMENTS if name in requested)


def _write_json(path: str, document: object) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _validate_faults(parser: argparse.ArgumentParser, plan: str) -> None:
    if plan in NAMED_PLANS:
        return
    close = sorted(
        name for name in NAMED_PLANS
        if plan.lower() in name or name in plan.lower()
    )
    hint = f"  Did you mean {close[0]!r}?" if close else ""
    parser.error(
        f"unknown fault plan {plan!r}.{hint}\n"
        "Available plans:\n  "
        + "\n  ".join(sorted(NAMED_PLANS))
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _parser()
    args = parser.parse_args(argv)
    if args.list_experiments:
        width = max(len(name) for name in EXPERIMENTS)
        for name in EXPERIMENTS:
            print(f"{name:<{width}}  {EXPERIMENT_DESCRIPTIONS[name]}")
        return 0
    if not args.experiment:
        parser.error(
            "no experiment given (use --list-experiments to see them)"
        )
    known = set(EXPERIMENTS) | {"all"}
    for name in args.experiment:
        if name not in known:
            parser.error(
                f"unknown experiment {name!r} (use --list-experiments "
                "to see them)"
            )
    if args.faults is not None:
        _validate_faults(parser, args.faults)
    if args.profile is not None and args.profile < 1:
        parser.error("--profile needs a positive function count")
    if args.partitions < 1:
        parser.error("--partitions needs a positive process count")
    if args.workers < 1:
        parser.error("--workers needs a positive process count")
    targets = _expand_targets(args.experiment)
    observing = args.metrics is not None or args.trace is not None
    snapshots = {}
    tracers: List[Tuple[str, EventTracer]] = []
    set_default_fault_plan(args.faults)
    profiler = None
    if args.profile is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        for index, name in enumerate(targets):
            if index:
                print("\n" + "#" * 70 + "\n")
            obs = None
            if observing:
                # A fresh sink per experiment keeps the summaries and
                # trace tracks separable in one multi-experiment run.
                obs = Observability(enabled=True)
                set_default_observability(obs)
            try:
                _run_one(name, args)
            finally:
                if obs is not None:
                    set_default_observability(None)
            if obs is not None:
                snapshots[name] = obs.registry.snapshot()
                tracers.append((name, obs.tracer))
    finally:
        if profiler is not None:
            profiler.disable()
        set_default_fault_plan(None)

    if profiler is not None:
        import pstats

        print("\n" + "=" * 70)
        print(f"cProfile: top {args.profile} functions by cumulative "
              "wall-clock time")
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(
            args.profile
        )

    if args.metrics is not None:
        _write_json(args.metrics, {
            "schema": METRICS_SCHEMA,
            "quick": args.quick,
            "seed": args.seed,
            "faults": args.faults,
            "experiments": snapshots,
        })
        print(f"\nmetrics written to {args.metrics}", file=sys.stderr)
    if args.trace is not None:
        _write_json(args.trace, export_chrome_trace(tracers))
        print(f"trace written to {args.trace}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
