"""Policy tournament: race every (allocation x prefetch x handlers)
combo across three workloads and rank them.

The policy lab (``repro.policy``) makes the memory-management brain
pluggable; this experiment is the harness that decides which brain to
ship.  Every combo runs the same three workloads:

* **pmbench** — uniform-random accesses against ``fluidmem-dram``
  (Figure 3's microbenchmark; punishes wasteful prefetch).
* **graph500** — BFS over a Kronecker graph at WSS 120 % of DRAM
  (Figure 4's point (b); mixed locality).
* **market** — a custom 3-VM stack over ONE monitor: a Zipfian
  tenant, a strided scanner (stride 3 — Leap's majority-trend finds
  it, a fixed +1 prefetcher cannot), and a uniform mixer.  This is the
  cell where handler concurrency matters: three vCPUs fault at once.

Cells fan out over the :mod:`repro.parallel` pool (``--workers N``) and
are merged in task-key order, so the ranked report is **byte-identical
at any worker count**.  Each cell builds its whole simulation from the
payload (explicit seeds, no ambient observability), so a cell computes
the same bytes whether it runs in-process or in a worker.

Ranking: ascending mean fault-latency p99 across the three workloads,
ties broken by mean p50, then combo label.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core import FluidMemConfig, FluidMemoryPort, Monitor
from ..kernel import UffdLatency, UffdOps, Userfaultfd
from ..kv import DramStore, SlotTrackedStore
from ..mem import PAGE_SIZE, FrameAllocator
from ..obs import NULL_OBS
from ..parallel import run_tasks
from ..policy.registry import (
    ALLOCATION_POLICIES,
    PREFETCH_POLICIES,
    PolicyCombo,
    make_alloc_policy,
)
from ..sim import Environment, RandomStreams
from ..vm import GuestVM, QemuProcess
from ..workloads import Graph500, Graph500Config, KroneckerGraph, \
    Pmbench, PmbenchConfig
from .fig4_graph500 import memory_scale_for
from .platform import build_platform, default_fault_plan, \
    default_observability
from .reporting import render_table

__all__ = [
    "TOURNAMENT_WORKLOADS",
    "QUICK_ALLOCS",
    "FULL_ALLOCS",
    "HANDLER_COUNTS",
    "TournamentResult",
    "run_tournament_cell",
    "run_tournament",
]

TOURNAMENT_WORKLOADS = ("pmbench", "graph500", "market")

#: Quick mode races the two structurally extreme allocators; full mode
#: races all four registered ones.
QUICK_ALLOCS = ("lifo", "buddy")
FULL_ALLOCS = tuple(sorted(ALLOCATION_POLICIES))
HANDLER_COUNTS = (1, 4)

#: Remote-store slots the fragmentation wrapper accounts (pages).
SLOT_TRACK_SLOTS = 8192


def _cell_config(alloc: str, prefetch: str,
                 handlers: int) -> FluidMemConfig:
    return FluidMemConfig(
        alloc_policy=alloc,
        prefetch_policy=prefetch,
        prefetch_pages=0 if prefetch == "none" else 4,
        fault_handlers=handlers,
    )


def _slot_wrapper(alloc: str):
    """A ``build_platform`` store_wrapper interposing slot tracking."""
    holder: List[SlotTrackedStore] = []

    def wrap(store):
        tracked = SlotTrackedStore(
            store, ALLOCATION_POLICIES[alloc](), SLOT_TRACK_SLOTS
        )
        holder.append(tracked)
        return tracked

    return wrap, holder


def _collect(
    payload: Dict[str, object],
    monitor: Monitor,
    frames: FrameAllocator,
    slot_stores: Sequence[SlotTrackedStore],
    sim_time_us: float,
) -> Dict[str, object]:
    combo = PolicyCombo(
        alloc=payload["alloc"],  # type: ignore[arg-type]
        prefetch=payload["prefetch"],  # type: ignore[arg-type]
        handlers=payload["handlers"],  # type: ignore[arg-type]
    )
    counters = monitor.counters.as_dict()
    recorder = monitor.fault_latency
    frag = frames.fragmentation()
    slot_frags = [store.fragmentation() for store in slot_stores]
    slot_occ = (
        round(sum(f["occupancy"] for f in slot_frags) / len(slot_frags), 4)
        if slot_frags else 1.0
    )
    return {
        "workload": payload["workload"],
        "combo": combo.label,
        "alloc": combo.alloc,
        "prefetch": combo.prefetch,
        "handlers": combo.handlers,
        "faults": counters.get("faults", 0),
        "lru_hits": counters.get("lru_hits", 0),
        "p50_us": round(recorder.percentile(50.0), 3)
        if recorder.count else 0.0,
        "p99_us": round(recorder.percentile(99.0), 3)
        if recorder.count else 0.0,
        "prefetches_issued": counters.get("prefetches_issued", 0),
        "prefetch_hits": counters.get("prefetch_hits", 0),
        "prefetches_wasted": counters.get("prefetches_wasted", 0),
        "frame_occupancy": frag["occupancy"],
        "frame_runs": frag["allocated_runs"],
        "slot_occupancy": slot_occ,
        "slot_overflows": sum(f["slot_overflows"] for f in slot_frags),
        "sim_time_us": round(sim_time_us, 3),
    }


def _run_pmbench_cell(payload: Dict[str, object]) -> Dict[str, object]:
    quick = payload["quick"]
    seed = payload["seed"]
    config = _cell_config(
        payload["alloc"], payload["prefetch"], payload["handlers"]
    )
    wrapper, tracked = _slot_wrapper(payload["alloc"])
    platform = build_platform(
        "fluidmem-dram",
        memory_scale=1.0 / 1024,
        seed=seed,
        fluidmem_config=config,
        faults=payload["faults"],
        obs=NULL_OBS,
        store_wrapper=wrapper,
    )
    bench = Pmbench(
        platform.env,
        platform.port,
        platform.workload_base,
        PmbenchConfig(
            wss_pages=platform.shape.wss_pages(2.0),
            read_ratio=0.5,
            measured_accesses=400 if quick else 4000,
        ),
        rng=platform.streams.stream("pmbench"),
    )
    platform.run(bench.run())
    return _collect(
        payload, platform.monitor, platform.monitor.ops.frames,
        tracked, platform.env.now,
    )


def _run_graph500_cell(payload: Dict[str, object]) -> Dict[str, object]:
    quick = payload["quick"]
    seed = payload["seed"]
    config = _cell_config(
        payload["alloc"], payload["prefetch"], payload["handlers"]
    )
    scale = 8 if quick else 10
    edgefactor = 8 if quick else 16
    graph = KroneckerGraph(scale, edgefactor, seed=seed)
    wrapper, tracked = _slot_wrapper(payload["alloc"])
    platform = build_platform(
        "fluidmem-dram",
        memory_scale=memory_scale_for(graph, 1.2),
        seed=seed,
        fluidmem_config=config,
        faults=payload["faults"],
        obs=NULL_OBS,
        store_wrapper=wrapper,
    )
    bench = Graph500(
        platform.env,
        platform.port,
        platform.workload_base,
        Graph500Config(
            scale=scale,
            edgefactor=edgefactor,
            num_bfs_roots=1 if quick else 2,
            seed=seed,
        ),
        graph=graph,
    )
    platform.run(bench.run())
    return _collect(
        payload, platform.monitor, platform.monitor.ops.frames,
        tracked, platform.env.now,
    )


def _tenant(env, port, base: int, pattern, accesses: int):
    """One tenant vCPU: drive ``accesses`` page touches through the
    FluidMem port (fastpath on LRU hits, full fault path on misses)."""
    for index in range(accesses):
        page, is_write = pattern(index)
        vaddr = base + page * PAGE_SIZE
        if not port.try_access(vaddr, is_write=is_write):
            yield from port.access(vaddr, is_write=is_write)


def _run_market_cell(payload: Dict[str, object]) -> Dict[str, object]:
    """Three VMs on ONE monitor: the handler-concurrency showcase.

    This cell builds the stack by hand (not :func:`build_platform`,
    which is one-VM-per-monitor) and ignores fault plans — its point is
    contention, not resilience.
    """
    quick = payload["quick"]
    seed = payload["seed"]
    config = _cell_config(
        payload["alloc"], payload["prefetch"], payload["handlers"]
    )
    accesses = 300 if quick else 2500
    wss = 192 if quick else 384
    lru_cap = 96 if quick else 128

    env = Environment()
    streams = RandomStreams(seed=seed)
    uffd = Userfaultfd(env, UffdLatency(), streams.stream("uffd"))
    frames = FrameAllocator(
        16384, policy=make_alloc_policy(config.alloc_policy)
    )
    ops = UffdOps(env, UffdLatency(), streams.stream("ops"), frames)
    monitor = Monitor(
        env, uffd, ops,
        config=dataclasses.replace(config, lru_capacity_pages=lru_cap),
        rng=streams.stream("monitor"),
        name="tournament-market",
    )
    monitor.start()

    zipf_rng = streams.stream("zipf")
    mix_rng = streams.stream("mix")
    patterns = (
        # Zipfian-ish skew: most touches land on the lowest pages.
        lambda i: (int(wss * (zipf_rng.random() ** 4)), i % 4 == 0),
        # Stride-3 scan: Leap learns the +3 trend; sequential +1..+4
        # prefetch fetches mostly-wrong neighbours.
        lambda i: ((i * 3) % wss, False),
        # Uniform mixer.
        lambda i: (mix_rng.randrange(wss), i % 2 == 0),
    )
    tracked: List[SlotTrackedStore] = []
    processes = []
    for index, pattern in enumerate(patterns):
        vm = GuestVM(
            env, f"tenant{index}", memory_bytes=2 * wss * PAGE_SIZE
        )
        qemu = QemuProcess(vm)
        store = SlotTrackedStore(
            DramStore(env),
            ALLOCATION_POLICIES[payload["alloc"]](),
            SLOT_TRACK_SLOTS,
        )
        tracked.append(store)
        registration = monitor.register_vm(qemu, store, partition=index)
        port = FluidMemoryPort(env, vm, qemu, monitor, registration)
        vm.attach_port(port)
        processes.append(
            env.process(_tenant(env, port, 0, pattern, accesses))
        )
    env.run()
    return _collect(payload, monitor, frames, tracked, env.now)


_CELL_RUNNERS = {
    "pmbench": _run_pmbench_cell,
    "graph500": _run_graph500_cell,
    "market": _run_market_cell,
}


def run_tournament_cell(payload: Dict[str, object]) -> Dict[str, object]:
    """One (combo, workload) cell — module-level so the parallel pool
    can pickle it; a pure function of its payload."""
    return _CELL_RUNNERS[payload["workload"]](payload)


@dataclass
class TournamentResult:
    """Every cell plus the cross-workload ranking."""

    cells: List[Dict[str, object]]
    ranking: List[Dict[str, object]]
    quick: bool
    seed: int
    workers: int

    @property
    def winner(self) -> str:
        return self.ranking[0]["combo"]  # type: ignore[return-value]

    def rows(self) -> List[Sequence[object]]:
        out = []
        for entry in self.ranking:
            out.append((
                entry["rank"],
                entry["combo"],
                entry["mean_p99_us"],
                entry["mean_p50_us"],
                entry["faults"],
                entry["prefetch_hit_pct"],
                entry["frame_occupancy"],
            ))
        return out

    def table_text(self) -> str:
        return render_table(
            ("rank", "combo", "mean p99 us", "mean p50 us", "faults",
             "pf hit %", "frame occ"),
            self.rows(),
            title="Policy tournament: alloc+prefetch+handlers, ranked "
                  "by mean fault p99",
        )


def _rank(cells: List[Dict[str, object]]) -> List[Dict[str, object]]:
    per_combo: Dict[str, List[Dict[str, object]]] = {}
    for cell in cells:
        per_combo.setdefault(cell["combo"], []).append(cell)  # type: ignore[arg-type]
    entries = []
    for label, group in per_combo.items():
        count = len(group)
        issued = sum(c["prefetches_issued"] for c in group)
        hits = sum(c["prefetch_hits"] for c in group)
        entries.append({
            "combo": label,
            "mean_p99_us": round(
                sum(c["p99_us"] for c in group) / count, 3
            ),
            "mean_p50_us": round(
                sum(c["p50_us"] for c in group) / count, 3
            ),
            "faults": sum(c["faults"] for c in group),
            "prefetch_hit_pct": round(100.0 * hits / issued, 1)
            if issued else 0.0,
            "frame_occupancy": round(
                sum(c["frame_occupancy"] for c in group) / count, 4
            ),
        })
    entries.sort(
        key=lambda e: (e["mean_p99_us"], e["mean_p50_us"], e["combo"])
    )
    for rank, entry in enumerate(entries, 1):
        entry["rank"] = rank
    return entries


def run_tournament(
    quick: bool = False,
    seed: int = 42,
    workers: int = 1,
    faults: Optional[str] = None,
    workloads: Optional[Sequence[str]] = None,
) -> TournamentResult:
    """Race every policy combo; byte-identical at any ``workers``."""
    allocs = QUICK_ALLOCS if quick else FULL_ALLOCS
    if faults is None:
        # Capture the CLI's ambient plan here, in the parent, so
        # worker processes (which never see the ambient default) build
        # the same platforms the serial path does.
        faults = default_fault_plan()
    chosen = tuple(workloads) if workloads else TOURNAMENT_WORKLOADS
    payloads = [
        {
            "alloc": alloc,
            "prefetch": prefetch,
            "handlers": handlers,
            "workload": workload,
            "quick": quick,
            "seed": seed,
            "faults": faults,
        }
        for alloc in allocs
        for prefetch in PREFETCH_POLICIES
        for handlers in HANDLER_COUNTS
        for workload in chosen
    ]
    cells = run_tasks(
        run_tournament_cell, payloads, workers=workers, seed=seed
    )
    ranking = _rank(cells)

    obs = default_observability()
    if obs.enabled:
        registry = obs.registry
        registry.counter("tournament_cells").inc(len(cells))
        for cell in cells:
            labels = {
                "combo": cell["combo"], "workload": cell["workload"]
            }
            registry.counter("tournament_faults", **labels).inc(
                cell["faults"]
            )
            registry.counter("tournament_prefetches_issued", **labels).inc(
                cell["prefetches_issued"]
            )
            registry.counter("tournament_prefetch_hits", **labels).inc(
                cell["prefetch_hits"]
            )
            registry.gauge("tournament_p99_us", **labels).set(
                cell["p99_us"]
            )
            registry.gauge("tournament_slot_occupancy", **labels).set(
                cell["slot_occupancy"]
            )
        for entry in ranking:
            registry.gauge(
                "tournament_rank", combo=entry["combo"]
            ).set(entry["rank"])
            registry.gauge(
                "tournament_mean_p99_us", combo=entry["combo"]
            ).set(entry["mean_p99_us"])
    return TournamentResult(
        cells=cells,
        ranking=ranking,
        quick=quick,
        seed=seed,
        workers=workers,
    )
