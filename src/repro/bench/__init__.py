"""Benchmark harness: one module per table/figure of the paper."""

from .platform import (
    FLUIDMEM_PLATFORMS,
    PLATFORM_NAMES,
    SWAP_PLATFORMS,
    Platform,
    PlatformShape,
    build_platform,
)

__all__ = [
    "PLATFORM_NAMES",
    "FLUIDMEM_PLATFORMS",
    "SWAP_PLATFORMS",
    "Platform",
    "PlatformShape",
    "build_platform",
]
