"""Ablations of FluidMem's design choices (DESIGN.md §6).

Four studies, each isolating one mechanism the paper describes:

* **lru-reorder** — the paper's LRU never reorders on access (§V-A, a
  self-declared limitation).  What would true LRU ordering buy?
* **zero-page tracker** — §V-A's pagetracker avoids a remote read per
  first touch.  Without it, every first touch pays a wasted round trip.
* **write-list steal** — §V-B's shortcut: resolve a fault from the
  pending write list instead of two network round trips.
* **writeback batch size** — §V-B: batches amortize per-message cost,
  "most beneficial when slower network transports are used".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core import FluidMemConfig
from ..workloads import Graph500, Graph500Config, KroneckerGraph, \
    Pmbench, PmbenchConfig
from .fig4_graph500 import memory_scale_for
from .platform import build_platform
from .reporting import render_table

__all__ = [
    "AblationResult",
    "run_lru_reorder_ablation",
    "run_tracker_ablation",
    "run_steal_ablation",
    "run_batch_size_ablation",
    "run_all_ablations",
]


@dataclass
class AblationResult:
    name: str
    headers: Sequence[str]
    data: List[Sequence[object]]

    def table_text(self) -> str:
        return render_table(self.headers, self.data,
                            title=f"Ablation: {self.name}")


def run_lru_reorder_ablation(
    graph_scale: int = 11, seed: int = 42
) -> AblationResult:
    """Insertion-ordered (the paper's design) vs access-reordered LRU
    on the Figure 4 Graph500 workload at WSS 240 %."""
    graph = KroneckerGraph(graph_scale, 16, seed=seed)
    memory_scale = memory_scale_for(graph, 2.4)
    rows = []
    for reorder in (False, True):
        config = FluidMemConfig(lru_reorder_on_access=reorder)
        platform = build_platform(
            "fluidmem-dram",
            memory_scale=memory_scale,
            seed=seed,
            fluidmem_config=config,
            remote_factor=6,
        )
        bench = Graph500(
            platform.env, platform.port, platform.workload_base,
            Graph500Config(scale=graph_scale, edgefactor=16,
                           num_bfs_roots=1, seed=seed),
            graph=graph,
        )
        result = platform.run(bench.run())
        rows.append(
            (
                "reordered (true LRU)" if reorder else
                "insertion order (paper)",
                round(result.mean_teps_millions, 3),
                platform.monitor.counters["remote_reads"],
            )
        )
    return AblationResult(
        "LRU ordering (Graph500, WSS 240% of DRAM)",
        ("ordering", "MTEPS", "remote reads"),
        rows,
    )


def run_tracker_ablation(
    memory_scale: float = 1.0 / 1024, seed: int = 42
) -> AblationResult:
    """First-touch handling: zero-page tracker vs read-and-miss."""
    rows = []
    for tracker in (True, False):
        config = FluidMemConfig(zero_page_tracker=tracker)
        platform = build_platform(
            "fluidmem-ramcloud",
            memory_scale=memory_scale,
            seed=seed,
            fluidmem_config=config,
        )
        # The boot is the first-touch storm; measure its cost.
        boot_time_us = platform.env.now
        monitor = platform.monitor
        rows.append(
            (
                "pagetracker (paper)" if tracker else "no tracker",
                round(boot_time_us / 1000.0, 1),
                monitor.counters["zero_page_faults"],
                monitor.counters["tracker_miss_round_trips"],
            )
        )
    return AblationResult(
        "zero-page tracker (VM boot first-touch storm)",
        ("mode", "boot ms", "zero-page faults", "wasted round trips"),
        rows,
    )


def run_steal_ablation(
    memory_scale: float = 1.0 / 1024,
    accesses: int = 6000,
    seed: int = 42,
) -> AblationResult:
    """Write-list stealing on/off under a WSS just over the budget —
    the regime where recently evicted pages are re-touched quickly."""
    rows = []
    for steal in (True, False):
        config = FluidMemConfig(
            write_list_steal=steal,
            writeback_batch_pages=64,
        )
        platform = build_platform(
            "fluidmem-ramcloud",
            memory_scale=memory_scale,
            seed=seed,
            fluidmem_config=config,
        )
        bench = Pmbench(
            platform.env, platform.port, platform.workload_base,
            PmbenchConfig(
                wss_pages=platform.shape.wss_pages(1.3),
                measured_accesses=accesses,
            ),
            rng=platform.streams.stream("pmbench"),
        )
        result = platform.run(bench.run())
        monitor = platform.monitor
        rows.append(
            (
                "steal (paper)" if steal else "no steal",
                round(result.average_latency_us, 2),
                monitor.counters["steals_resolved_locally"]
                + monitor.counters["steals_after_wait"],
                monitor.counters["remote_reads"],
            )
        )
    return AblationResult(
        "write-list stealing (pmbench, WSS 130% of DRAM)",
        ("mode", "avg latency us", "steals", "remote reads"),
        rows,
    )


def run_batch_size_ablation(
    memory_scale: float = 1.0 / 1024,
    accesses: int = 5000,
    seed: int = 42,
) -> AblationResult:
    """Write-back batch sizes, on both remote backends.

    RAMCloud has a true multi-write (one round trip per batch), so
    bigger batches cut write traffic; Memcached lacks one, so batching
    only defers the same per-page messages — a useful contrast with the
    paper's observation that async write-back matters most on slow
    transports (the win there comes from *asynchrony*, not batching).
    """
    rows = []
    for backend in ("fluidmem-ramcloud", "fluidmem-memcached"):
        for batch in (1, 8, 32, 128):
            config = FluidMemConfig(writeback_batch_pages=batch)
            platform = build_platform(
                backend,
                memory_scale=memory_scale,
                seed=seed,
                fluidmem_config=config,
            )
            bench = Pmbench(
                platform.env, platform.port, platform.workload_base,
                PmbenchConfig(
                    wss_pages=platform.shape.wss_pages(4.0),
                    measured_accesses=accesses,
                ),
                rng=platform.streams.stream("pmbench"),
            )
            result = platform.run(bench.run())
            rows.append(
                (
                    backend.replace("fluidmem-", ""),
                    batch,
                    round(result.average_latency_us, 2),
                    platform.store.counters["multi_writes"],
                    platform.store.counters["writes"],
                )
            )
    return AblationResult(
        "write-back batch size (pmbench, WSS 400% of DRAM)",
        ("backend", "batch pages", "avg latency us", "multi-writes",
         "store writes"),
        rows,
    )


def run_prefetch_ablation(
    memory_scale: float = 1.0 / 1024,
    seed: int = 42,
) -> AblationResult:
    """The §V-A future-work extension: sequential-next prefetching.

    A sequential scan larger than the budget is the best case; uniform
    random pmbench is the worst (prefetched neighbours are rarely the
    next access).  Both are reported.
    """
    rows = []
    for pattern, wss_factor in (("sequential", 2.0), ("random", 4.0)):
        for prefetch in (0, 4):
            config = FluidMemConfig(prefetch_pages=prefetch)
            platform = build_platform(
                "fluidmem-ramcloud",
                memory_scale=memory_scale,
                seed=seed,
                fluidmem_config=config,
            )
            monitor = platform.monitor
            if pattern == "sequential":
                elapsed = _sequential_scan(platform, wss_factor)
            else:
                bench = Pmbench(
                    platform.env, platform.port, platform.workload_base,
                    PmbenchConfig(
                        wss_pages=platform.shape.wss_pages(wss_factor),
                        measured_accesses=4000,
                    ),
                    rng=platform.streams.stream("pmbench"),
                )
                before = platform.env.now
                platform.run(bench.run())
                elapsed = platform.env.now - before
            rows.append(
                (
                    pattern,
                    prefetch,
                    round(elapsed / 1000.0, 1),
                    monitor.counters["remote_reads"],
                    monitor.counters["prefetches_completed"],
                )
            )
    return AblationResult(
        "sequential prefetching (paper future work; off = shipped design)",
        ("pattern", "prefetch pages", "time ms", "demand reads",
         "prefetched"),
        rows,
    )


def _sequential_scan(platform, wss_factor: float) -> float:
    """Three passes of a sequential scan over wss_factor x DRAM."""
    from ..workloads import AccessDriver
    from ..mem import PAGE_SIZE

    pages = platform.shape.wss_pages(wss_factor)
    driver = AccessDriver(platform.env, platform.port)
    base = platform.workload_base

    def gen(env):
        started = env.now
        for _ in range(3):
            for index in range(pages):
                yield from driver.access(base + index * PAGE_SIZE,
                                         is_write=True)
        yield from driver.flush()
        return env.now - started

    return platform.run(gen(platform.env))


def run_compression_ablation(
    memory_scale: float = 1.0 / 1024,
    accesses: int = 4000,
    seed: int = 42,
) -> AblationResult:
    """§III's page-compression customization: latency vs remote bytes."""
    from ..kv import CompressedStore

    rows = []
    for compress in (False, True):
        platform = build_platform(
            "fluidmem-ramcloud",
            memory_scale=memory_scale,
            seed=seed,
            boot=False,
        )
        if compress:
            wrapped = CompressedStore(platform.env, platform.store)
            platform.registration.store = wrapped
            platform.store = wrapped
        platform.boot()
        platform.drain_writebacks()
        bench = Pmbench(
            platform.env, platform.port, platform.workload_base,
            PmbenchConfig(
                wss_pages=platform.shape.wss_pages(4.0),
                measured_accesses=accesses,
            ),
            rng=platform.streams.stream("pmbench"),
        )
        result = platform.run(bench.run())
        rows.append(
            (
                "compressed (2.2x)" if compress else "raw pages",
                round(result.average_latency_us, 2),
                round(platform.store.used_bytes / 1024.0, 0),
            )
        )
    return AblationResult(
        "page compression (pmbench on RAMCloud)",
        ("mode", "avg latency us", "remote KiB"),
        rows,
    )


def run_all_ablations(seed: int = 42) -> Dict[str, AblationResult]:
    return {
        "lru-reorder": run_lru_reorder_ablation(seed=seed),
        "tracker": run_tracker_ablation(seed=seed),
        "steal": run_steal_ablation(seed=seed),
        "batch-size": run_batch_size_ablation(seed=seed),
        "prefetch": run_prefetch_ablation(seed=seed),
        "compression": run_compression_ablation(seed=seed),
    }
