"""Figure 5: YCSB read latency over MongoDB/WiredTiger.

§VI-D2: a read-only YCSB workload (workload C, 1 KB records) against
MongoDB's WiredTiger engine.  The swap configuration runs the server in
a VM with 1 GB of DRAM plus NVMeoF-backed swap; the FluidMem
configuration gives the VM 4 GB (1 GB LRU) backed by RAMCloud.  The
WiredTiger cache is set to 1, 2, or 3 GB — the interesting cases exceed
DRAM.

Paper averages (µs):

    cache   swap (NVMeoF)    FluidMem (RAMCloud)
    1 GB        1040               534
    2 GB         905               494
    3 GB         631               463

and the qualitative claim: with swap "the storage engine has difficulty
establishing a stable working set in memory" (the time courses are
noisy and high), while FluidMem's stay low and smooth, 36–95 % apart.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..mem import PAGE_SIZE
from ..workloads import (
    GuestCacheFileReader,
    KernelFileReader,
    MongoConfig,
    MongoServer,
    YcsbClient,
    YcsbConfig,
    YcsbResult,
)
from .platform import Platform, build_platform
from .reporting import render_table

__all__ = [
    "PAPER_FIG5_US",
    "CACHE_FRACTIONS",
    "Fig5Result",
    "run_fig5",
]

#: WiredTiger cache sizes as fractions of local DRAM (1, 2, 3 GB).
CACHE_FRACTIONS = (1.0, 2.0, 3.0)

PAPER_FIG5_US: Dict[Tuple[str, float], float] = {
    ("swap-nvmeof", 1.0): 1040.0,
    ("swap-nvmeof", 2.0): 905.0,
    ("swap-nvmeof", 3.0): 631.0,
    ("fluidmem-ramcloud", 1.0): 534.0,
    ("fluidmem-ramcloud", 2.0): 494.0,
    ("fluidmem-ramcloud", 3.0): 463.0,
}

#: Collection size relative to local DRAM (paper: ~5 GB vs 1 GB).
DATASET_DRAM_FACTOR = 5.0


@dataclass
class Fig5Result:
    results: Dict[Tuple[str, float], YcsbResult]
    platforms: Sequence[str]
    cache_fractions: Sequence[float]

    def average(self, platform: str, cache_fraction: float) -> float:
        return self.results[(platform, cache_fraction)].average_latency_us

    def stability(self, platform: str, cache_fraction: float) -> float:
        """Coefficient of variation of the bucketed time course —
        the "stable working set" claim quantified."""
        result = self.results[(platform, cache_fraction)]
        buckets = result.timeline.bucketed(
            max(result.timeline.times[-1] / 20.0, 1.0)
        )
        values = [v for _t, v in buckets]
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        return (variance ** 0.5) / mean

    def rows(self) -> List[Sequence[object]]:
        out = []
        for fraction in self.cache_fractions:
            row: List[object] = [f"{fraction:.0f}x DRAM"]
            for platform in self.platforms:
                measured = self.average(platform, fraction)
                paper = PAPER_FIG5_US.get((platform, fraction))
                row.append(round(measured, 0))
                row.append(paper if paper is not None else "-")
                row.append(round(self.stability(platform, fraction), 3))
            out.append(row)
        return out

    def table_text(self) -> str:
        headers: List[str] = ["WT cache"]
        for platform in self.platforms:
            headers += [f"{platform} us", "paper", "cv"]
        return render_table(
            headers,
            self.rows(),
            title="Figure 5: YCSB-C read latency on MongoDB/WiredTiger",
        )


def _build_mongo(
    platform: Platform,
    cache_fraction: float,
    record_count: int,
    seed: int,
) -> MongoServer:
    shape = platform.shape
    wt_cache_bytes = int(shape.local_dram_bytes * cache_fraction)
    config = MongoConfig(
        record_count=record_count,
        wt_cache_bytes=wt_cache_bytes,
        record_bytes=1024,
    )
    cache_base = platform.workload_base
    cache_pages = wt_cache_bytes // PAGE_SIZE
    index_base = cache_base + (cache_pages + 16) * PAGE_SIZE
    after_index = index_base + (config.index_pages + 16) * PAGE_SIZE

    if platform.is_fluidmem:
        # Guest page cache: whatever VM memory the WT cache leaves.
        vm_pages = platform.vm.memory_bytes // PAGE_SIZE
        used = after_index // PAGE_SIZE
        capacity = max(32, int((vm_pages - used) * 0.7))
        reader = GuestCacheFileReader(
            platform.env,
            platform.port,
            platform.data_disk,
            region_base=after_index,
            capacity_pages=capacity,
        )
    else:
        reader = KernelFileReader(platform.mm)
    return MongoServer(
        platform.env,
        platform.port,
        reader,
        cache_region_base=cache_base,
        index_region_base=index_base,
        config=config,
        rng=random.Random(seed + 7),
    )


def run_fig5(
    memory_scale: float = 1.0 / 1024,
    operations: int = 4_000,
    seed: int = 42,
    platforms: Optional[Sequence[str]] = None,
    cache_fractions: Optional[Sequence[float]] = None,
) -> Fig5Result:
    chosen = tuple(platforms) if platforms else (
        "swap-nvmeof", "fluidmem-ramcloud"
    )
    fractions = tuple(cache_fractions) if cache_fractions \
        else CACHE_FRACTIONS
    results: Dict[Tuple[str, float], YcsbResult] = {}
    for fraction in fractions:
        for name in chosen:
            platform = build_platform(
                name,
                memory_scale=memory_scale,
                seed=seed,
                with_data_disk=True,
                remote_factor=6,
            )
            shape = platform.shape
            record_count = int(
                shape.local_dram_bytes * DATASET_DRAM_FACTOR / 1024
            )
            server = _build_mongo(platform, fraction, record_count, seed)
            client = YcsbClient(
                platform.env,
                server,
                YcsbConfig(
                    record_count=record_count,
                    operation_count=operations,
                    request_distribution="zipfian",
                ),
                rng=random.Random(seed + 11),
            )
            results[(name, fraction)] = platform.run(client.run())
    return Fig5Result(
        results=results,
        platforms=chosen,
        cache_fractions=fractions,
    )
