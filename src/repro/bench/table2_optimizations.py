"""Table II: average page fault latency under each optimization mix.

§VI-C: a simple test program linked with libuserfault (no VM) reads
from and writes to a FluidMem-registered region, sequentially or
randomly, while ``perf`` measures per-fault kernel time.  Four monitor
configurations are compared on DRAM and RAMCloud backends.

Paper values (µs):

                       FluidMem DRAM      FluidMem RAMCloud
    Optimization        Seq     Rand       Seq     Rand
    Default            27.25   28.15      66.71   58.70
    Async Read         25.26   25.00      51.08   49.33
    Async Write        23.67   30.26      42.88   43.40
    Async Read/Write   21.30   24.37      29.47   29.20
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Generator, List, Sequence, Tuple

from ..core import FluidMemConfig, Monitor, UserfaultApp
from ..kernel import UffdLatency, UffdOps, Userfaultfd
from ..kv import DramStore, RamCloudServer, RamCloudStore
from ..mem import MIB, FrameAllocator
from ..net import Fabric, RDMA_FDR
from ..sim import Environment, LatencyRecorder, RandomStreams
from .reporting import render_table

__all__ = [
    "PAPER_TABLE2_US",
    "OPTIMIZATION_MODES",
    "Table2Result",
    "run_table2",
]

#: (backend, mode, pattern) -> paper average fault latency.
PAPER_TABLE2_US: Dict[Tuple[str, str, str], float] = {
    ("dram", "default", "seq"): 27.25,
    ("dram", "default", "rand"): 28.15,
    ("dram", "async-read", "seq"): 25.26,
    ("dram", "async-read", "rand"): 25.00,
    ("dram", "async-write", "seq"): 23.67,
    ("dram", "async-write", "rand"): 30.26,
    ("dram", "async-rw", "seq"): 21.30,
    ("dram", "async-rw", "rand"): 24.37,
    ("ramcloud", "default", "seq"): 66.71,
    ("ramcloud", "default", "rand"): 58.70,
    ("ramcloud", "async-read", "seq"): 51.08,
    ("ramcloud", "async-read", "rand"): 49.33,
    ("ramcloud", "async-write", "seq"): 42.88,
    ("ramcloud", "async-write", "rand"): 43.40,
    ("ramcloud", "async-rw", "seq"): 29.47,
    ("ramcloud", "async-rw", "rand"): 29.20,
}

#: mode name -> (async_read, async_writeback)
OPTIMIZATION_MODES = {
    "default": (False, False),
    "async-read": (True, False),
    "async-write": (False, True),
    "async-rw": (True, True),
}


@dataclass
class Table2Result:
    measured: Dict[Tuple[str, str, str], float]

    def value(self, backend: str, mode: str, pattern: str) -> float:
        return self.measured[(backend, mode, pattern)]

    def rows(self) -> List[Sequence[object]]:
        out = []
        for mode in OPTIMIZATION_MODES:
            row: List[object] = [mode]
            for backend in ("dram", "ramcloud"):
                for pattern in ("seq", "rand"):
                    measured = self.measured[(backend, mode, pattern)]
                    paper = PAPER_TABLE2_US[(backend, mode, pattern)]
                    row.append(round(measured, 2))
                    row.append(paper)
            out.append(row)
        return out

    def table_text(self) -> str:
        return render_table(
            (
                "optimization",
                "dram seq", "paper", "dram rand", "paper",
                "rc seq", "paper", "rc rand", "paper",
            ),
            self.rows(),
            title="Table II: avg fault latency by optimization (us)",
        )


def _build_monitor(env: Environment, streams: RandomStreams,
                   mode: str, lru_pages: int) -> Monitor:
    async_read, async_write = OPTIMIZATION_MODES[mode]
    uffd = Userfaultfd(env, UffdLatency(), streams.stream("uffd"))
    ops = UffdOps(env, UffdLatency(), streams.stream("ops"),
                  FrameAllocator(lru_pages * 8 + 2048))
    config = FluidMemConfig(
        lru_capacity_pages=lru_pages,
        async_read=async_read,
        async_writeback=async_write,
    )
    monitor = Monitor(env, uffd, ops, config=config,
                      rng=streams.stream("monitor"))
    monitor.start()
    return monitor


def _make_backend(name: str, env: Environment,
                  streams: RandomStreams):
    if name == "dram":
        return DramStore(env)
    fabric = Fabric(env, streams)
    fabric.add_host("hypervisor")
    fabric.add_host("ramcloud")
    fabric.connect("hypervisor", "ramcloud", RDMA_FDR)
    server = RamCloudServer(memory_bytes=64 * MIB)
    return RamCloudStore(env, fabric, "hypervisor", "ramcloud", server)


def _measure(
    backend: str,
    mode: str,
    pattern: str,
    lru_pages: int,
    accesses: int,
    seed: int,
) -> float:
    env = Environment()
    streams = RandomStreams(seed=seed)
    monitor = _build_monitor(env, streams, mode, lru_pages)
    store = _make_backend(backend, env, streams)
    # Region twice the LRU: every revisit has been evicted (the paper's
    # WSS exceeds the buffer, so steady-state accesses fault).
    region_pages = lru_pages * 2
    app = UserfaultApp(env, monitor, store, region_pages=region_pages)
    rng = random.Random(seed + 1)
    recorder = LatencyRecorder("table2", max_samples=200_000)

    def workload(env) -> Generator:
        # Warm-up: touch every page once (zero-page path, not measured).
        for page in range(region_pages):
            yield from app.access(page, is_write=True)
        # Measured phase.
        for index in range(accesses):
            if pattern == "seq":
                page = index % region_pages
            else:
                page = rng.randrange(region_pages)
            if app.is_resident(page):
                continue  # perf measures fault handler time only
            started = env.now
            yield from app.access(page, is_write=rng.random() < 0.5)
            recorder.record(env.now - started)

    process = env.process(workload(env))
    env.run()
    if process.value is None and recorder.count == 0:
        raise RuntimeError("no faults measured")
    return recorder.mean


def run_table2(
    lru_pages: int = 256,
    accesses: int = 4_000,
    seed: int = 42,
) -> Table2Result:
    measured: Dict[Tuple[str, str, str], float] = {}
    for backend in ("dram", "ramcloud"):
        for mode in OPTIMIZATION_MODES:
            for pattern in ("seq", "rand"):
                measured[(backend, mode, pattern)] = _measure(
                    backend, mode, pattern, lru_pages, accesses, seed
                )
    return Table2Result(measured=measured)
