"""Figure 3: pmbench page-fault latency CDFs for all six backends.

Procedure (§VI-B): inside the VM, pmbench allocates a working set 4x
the local DRAM, warms it up, then issues uniformly random 4 KB accesses
at a 50 % read ratio; per-access latencies are plotted as CDFs and the
average is reported per backend.

Paper values (average fault latency, µs):

    FluidMem DRAM       24.84      Swap DRAM     26.34
    FluidMem RAMCloud   24.87      Swap NVMeoF   41.73
    FluidMem Memcached  65.79      Swap SSD     106.56

Plus the headline claims this experiment backs: FluidMem→RAMCloud is
40 % faster than NVMeoF swap and 77 % faster than SSD swap (§I).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..workloads import Pmbench, PmbenchConfig, PmbenchResult
from .platform import PLATFORM_NAMES, build_platform
from .reporting import render_cdf, render_table

__all__ = ["PAPER_FIG3_AVERAGES_US", "Fig3Result", "run_fig3"]

PAPER_FIG3_AVERAGES_US = {
    "fluidmem-dram": 24.84,
    "fluidmem-ramcloud": 24.87,
    "fluidmem-memcached": 65.79,
    "swap-dram": 26.34,
    "swap-nvmeof": 41.73,
    "swap-ssd": 106.56,
}


@dataclass
class Fig3Result:
    """Per-backend pmbench results plus the paper comparison."""

    results: Dict[str, PmbenchResult]
    memory_scale: float
    measured_accesses: int

    def average(self, platform: str) -> float:
        return self.results[platform].average_latency_us

    def speedup_over(self, fluidmem: str, swap: str) -> float:
        """1 - fluidmem/swap: the paper's '40% faster' style number."""
        return 1.0 - self.average(fluidmem) / self.average(swap)

    def rows(self) -> List[Sequence[object]]:
        rows = []
        for name in self.results:
            result = self.results[name]
            paper = PAPER_FIG3_AVERAGES_US[name]
            measured = result.average_latency_us
            rows.append(
                (
                    name,
                    round(measured, 2),
                    paper,
                    round(measured / paper, 2),
                    round(100 * result.hit_fraction, 1),
                    round(result.cdf().fraction_below(10.0) * 100, 1),
                )
            )
        return rows

    def table_text(self) -> str:
        return render_table(
            ("backend", "avg us", "paper us", "ratio",
             "hit %", "<10us %"),
            self.rows(),
            title="Figure 3: pmbench average page-fault latency",
        )

    def cdf_text(self, platform: str) -> str:
        return render_cdf(
            self.results[platform].cdf(),
            label=f"{platform} latency CDF (log x)",
        )


def run_fig3(
    memory_scale: float = 1.0 / 1024,
    measured_accesses: int = 20_000,
    seed: int = 42,
    platforms: Optional[Sequence[str]] = None,
) -> Fig3Result:
    """Run pmbench on each backend configuration."""
    chosen = tuple(platforms) if platforms else PLATFORM_NAMES
    results: Dict[str, PmbenchResult] = {}
    for name in chosen:
        platform = build_platform(
            name, memory_scale=memory_scale, seed=seed
        )
        wss_pages = platform.shape.wss_pages(4.0)  # 4 GiB vs 1 GiB DRAM
        bench = Pmbench(
            platform.env,
            platform.port,
            platform.workload_base,
            PmbenchConfig(
                wss_pages=wss_pages,
                read_ratio=0.5,
                measured_accesses=measured_accesses,
            ),
            rng=platform.streams.stream("pmbench"),
        )
        results[name] = platform.run(bench.run())
    return Fig3Result(
        results=results,
        memory_scale=memory_scale,
        measured_accesses=measured_accesses,
    )
