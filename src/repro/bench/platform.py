"""Test-platform builder: the six configurations of the evaluation.

§VI-A's testbed, as one factory: dual-socket hypervisor, FDR InfiniBand
fabric, a RAMCloud server (25 GB), a Memcached server over IPoIB, an
NVMeoF target exposing remote DRAM, and a local SSD.  The paper's six
memory configurations (Figure 3) are::

    fluidmem-dram        monitor evicting to a local DRAM table
    fluidmem-ramcloud    monitor evicting to RAMCloud over RDMA
    fluidmem-memcached   monitor evicting to Memcached over IPoIB
    swap-dram            guest swap on a local pmem block device
    swap-nvmeof          guest swap on an NVMeoF remote-DRAM target
    swap-ssd             guest swap on a local SSD

Every build takes a ``memory_scale``: the fraction of the paper's sizes
to use (1.0 = 1 GiB local DRAM, 4 GiB remote, 81 042 boot pages).  The
local:remote ratio, the boot-footprint share of DRAM, and all latency
constants are invariant under scaling, so the comparative results keep
their shape at a laptop-friendly 1/1024 scale.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Generator, Optional

from ..blockdev import BlockDevice, NvmeofDisk, PmemDisk, SsdDisk
from ..core import FluidMemConfig, FluidMemoryPort, Monitor, VmRegistration
from ..errors import BenchError
from ..faults import NAMED_PLANS, FaultyStore, named_plan
from ..kernel import (
    GuestMemoryManager,
    SwapPathLatency,
    UffdLatency,
    UffdOps,
    Userfaultfd,
)
from ..kv import (
    DramStore,
    KeyValueBackend,
    MemcachedServer,
    MemcachedStore,
    RamCloudServer,
    RamCloudStore,
    ReplicatedStore,
)
from ..mem import GIB, MIB, PAGE_SIZE, FrameAllocator
from ..net import Fabric, IPOIB, RDMA_FDR
from ..obs import NULL_OBS, Observability
from ..sim import Environment, RandomStreams
from ..vm import BootProfile, GuestVM, MemoryHotplug, QemuProcess, \
    SwapMemoryPort

__all__ = [
    "PLATFORM_NAMES",
    "FLUIDMEM_PLATFORMS",
    "SWAP_PLATFORMS",
    "PlatformShape",
    "Platform",
    "build_platform",
    "set_default_fault_plan",
    "default_fault_plan",
    "set_default_observability",
    "default_observability",
    "FAULT_REPLICAS",
]

#: Replicas a fault-injected platform spreads the store over; the
#: named plans keep at least one of them alive (except "blackout").
FAULT_REPLICAS = 2

#: Process-wide default fault plan name, set by the CLI's ``--faults``
#: so every build_platform() call inside an experiment runs under it.
_DEFAULT_FAULT_PLAN: Optional[str] = None


def set_default_fault_plan(name: Optional[str]) -> None:
    """Set (or clear, with None) the default fault plan for builds."""
    global _DEFAULT_FAULT_PLAN
    if name is not None and name not in NAMED_PLANS:
        raise BenchError(
            f"unknown fault plan {name!r}; choose from "
            f"{sorted(NAMED_PLANS)}"
        )
    _DEFAULT_FAULT_PLAN = name


def default_fault_plan() -> Optional[str]:
    return _DEFAULT_FAULT_PLAN


#: Process-wide default observability sink, set by the CLI's
#: ``--metrics`` / ``--trace`` so every build inside an experiment
#: feeds the same registry and tracer.
_DEFAULT_OBS: Observability = NULL_OBS


def set_default_observability(obs: Optional[Observability]) -> None:
    """Set (or clear, with None) the default observability for builds."""
    global _DEFAULT_OBS
    _DEFAULT_OBS = obs if obs is not None else NULL_OBS


def default_observability() -> Observability:
    return _DEFAULT_OBS

FLUIDMEM_PLATFORMS = (
    "fluidmem-dram",
    "fluidmem-ramcloud",
    "fluidmem-memcached",
)
SWAP_PLATFORMS = ("swap-dram", "swap-nvmeof", "swap-ssd")
PLATFORM_NAMES = FLUIDMEM_PLATFORMS + SWAP_PLATFORMS

#: The paper's full-size numbers (§VI-A / §VI-B).
PAPER_LOCAL_DRAM_BYTES = 1 * GIB
PAPER_REMOTE_BYTES = 4 * GIB
PAPER_SWAP_DEVICE_BYTES = 20 * GIB
PAPER_RAMCLOUD_BYTES = 25 * GIB


@dataclass(frozen=True)
class PlatformShape:
    """Concrete sizes after applying ``memory_scale``."""

    memory_scale: float
    local_dram_bytes: int
    remote_bytes: int
    swap_device_bytes: int
    boot_pages: int

    @classmethod
    def at_scale(
        cls, memory_scale: float, remote_factor: int = 4
    ) -> "PlatformShape":
        """``remote_factor`` x local of hotplugged remote memory (the
        paper uses 4; Figure 4's largest working set needs a little
        extra headroom because we enforce guest-physical bounds that
        the paper's 4.8 GiB-in-5 GiB configuration skirts)."""
        if not 0 < memory_scale <= 1.0:
            raise BenchError(
                f"memory_scale must be in (0, 1], got {memory_scale}"
            )
        if remote_factor < 1:
            raise BenchError(f"remote_factor must be >= 1: {remote_factor}")
        local = max(64 * PAGE_SIZE,
                    int(PAPER_LOCAL_DRAM_BYTES * memory_scale))
        local -= local % PAGE_SIZE
        return cls(
            memory_scale=memory_scale,
            local_dram_bytes=local,
            remote_bytes=remote_factor * local,
            swap_device_bytes=20 * local,
            boot_pages=max(16, int(81042 * memory_scale)),
        )

    @property
    def local_pages(self) -> int:
        return self.local_dram_bytes // PAGE_SIZE

    @property
    def total_vm_bytes(self) -> int:
        """1 GiB boot memory + 4 GiB hotplug at full scale."""
        return self.local_dram_bytes + self.remote_bytes

    def wss_pages(self, fraction_of_dram: float) -> int:
        """A working set sized relative to DRAM (Figure 4's x-axis)."""
        return max(1, int(self.local_pages * fraction_of_dram))


class Platform:
    """One built configuration, ready to run workloads."""

    def __init__(
        self,
        name: str,
        env: Environment,
        vm: GuestVM,
        shape: PlatformShape,
        port,
        monitor: Optional[Monitor] = None,
        mm: Optional[GuestMemoryManager] = None,
        store: Optional[KeyValueBackend] = None,
        swap_device: Optional[BlockDevice] = None,
        data_disk: Optional[BlockDevice] = None,
        registration: Optional[VmRegistration] = None,
        qemu: Optional[QemuProcess] = None,
        streams: Optional[RandomStreams] = None,
    ) -> None:
        self.name = name
        self.env = env
        self.vm = vm
        self.shape = shape
        self.port = port
        self.monitor = monitor
        self.mm = mm
        self.store = store
        self.swap_device = swap_device
        self.data_disk = data_disk
        self.registration = registration
        self.qemu = qemu
        self.streams = streams

    @property
    def is_fluidmem(self) -> bool:
        return self.monitor is not None

    @property
    def workload_base(self) -> int:
        return self.vm.first_free_guest_addr()

    def run(self, generator: Generator):
        """Drive one simulation generator to completion."""
        process = self.env.process(generator)
        self.env.run()
        return process.value

    def boot(self) -> None:
        self.run(self.vm.boot())

    def drain_writebacks(self) -> None:
        if self.monitor is not None:
            self.run(self.monitor.writeback.drain())

    def __repr__(self) -> str:
        return f"<Platform {self.name!r} scale={self.shape.memory_scale}>"


def _build_fabric(env: Environment, streams: RandomStreams) -> Fabric:
    fabric = Fabric(env, streams)
    fabric.add_host("hypervisor")
    fabric.add_host("ramcloud")
    fabric.add_host("memcached")
    fabric.add_host("nvmeof-target")
    fabric.connect("hypervisor", "ramcloud", RDMA_FDR)
    fabric.connect("hypervisor", "nvmeof-target", RDMA_FDR)
    fabric.connect("hypervisor", "memcached", IPOIB)
    return fabric


def _make_store(
    name: str,
    env: Environment,
    fabric: Fabric,
    shape: PlatformShape,
) -> KeyValueBackend:
    if name == "fluidmem-dram":
        return DramStore(env)
    if name == "fluidmem-ramcloud":
        server = RamCloudServer(
            memory_bytes=max(
                int(PAPER_RAMCLOUD_BYTES * shape.memory_scale),
                8 * MIB + shape.remote_bytes,
            )
        )
        return RamCloudStore(env, fabric, "hypervisor", "ramcloud", server)
    if name == "fluidmem-memcached":
        server = MemcachedServer(
            memory_bytes=max(2 * MIB + 2 * shape.remote_bytes, 4 * MIB)
        )
        return MemcachedStore(env, fabric, "hypervisor", "memcached", server)
    raise BenchError(f"unknown FluidMem backend {name!r}")


#: Concurrent requests a swap device actually services in parallel.
#: The target's engine largely serializes 4 KB requests; 2 models a
#: little pipelining.  Fault-path reads therefore queue behind kswapd's
#: write-back bursts — the congestion behind swap's latency spikes.
SWAP_DEVICE_CONCURRENCY = 2


def _make_swap_device(
    name: str,
    env: Environment,
    fabric: Fabric,
    shape: PlatformShape,
    streams: RandomStreams,
) -> BlockDevice:
    size = shape.swap_device_bytes
    if name == "swap-dram":
        return PmemDisk(env, size, streams.stream("swapdev"),
                        queue_depth=SWAP_DEVICE_CONCURRENCY)
    if name == "swap-nvmeof":
        return NvmeofDisk(
            env, size, streams.stream("swapdev"),
            fabric=fabric,
            initiator_host="hypervisor",
            target_host="nvmeof-target",
            queue_depth=SWAP_DEVICE_CONCURRENCY,
        )
    if name == "swap-ssd":
        return SsdDisk(env, size, streams.stream("swapdev"),
                       queue_depth=SWAP_DEVICE_CONCURRENCY)
    raise BenchError(f"unknown swap backend {name!r}")


def build_platform(
    name: str,
    memory_scale: float = 1.0 / 1024,
    seed: int = 42,
    boot: bool = True,
    with_data_disk: bool = False,
    fluidmem_config: Optional[FluidMemConfig] = None,
    boot_profile: Optional[BootProfile] = None,
    remote_factor: int = 4,
    faults: Optional[str] = None,
    obs: Optional[Observability] = None,
    store_wrapper=None,
) -> Platform:
    """Build one of the six named configurations.

    ``with_data_disk`` attaches the SSD holding MongoDB's collection
    (only the Figure 5 experiment needs it).

    ``faults`` names a :data:`repro.faults.NAMED_PLANS` plan: the
    FluidMem store is then built as :data:`FAULT_REPLICAS` independent
    replicas, each behind a fault-injecting wrapper driven by that plan
    (seed-derived, so runs stay reproducible).  When None, the
    process-wide default from :func:`set_default_fault_plan` applies.
    Swap platforms have no store and ignore fault plans.

    ``obs`` threads an observability sink through the monitor, LRU
    buffer, write-back queue, and (chaos builds) the fault-injecting
    store wrappers.  When None, the process-wide default from
    :func:`set_default_observability` applies (disabled by default,
    so unobserved builds pay only cheap ``enabled`` checks).

    ``store_wrapper`` (FluidMem platforms only) is called with the
    built store and must return the store to register — the policy
    tournament uses it to interpose :class:`~repro.kv.SlotTrackedStore`
    for remote-slot fragmentation accounting.
    """
    if name not in PLATFORM_NAMES:
        raise BenchError(
            f"unknown platform {name!r}; choose from {PLATFORM_NAMES}"
        )
    shape = PlatformShape.at_scale(memory_scale, remote_factor=remote_factor)
    env = Environment()
    streams = RandomStreams(seed=seed)
    fabric = _build_fabric(env, streams)
    profile = boot_profile or BootProfile().scaled(memory_scale)

    data_disk = None
    if with_data_disk:
        data_disk = SsdDisk(
            env, max(64 * MIB, 8 * shape.local_dram_bytes),
            streams.stream("datadisk"),
        )

    if faults is None:
        faults = _DEFAULT_FAULT_PLAN
    if obs is None:
        obs = _DEFAULT_OBS
    if name in FLUIDMEM_PLATFORMS:
        return _build_fluidmem(
            name, env, streams, fabric, shape, profile, data_disk,
            fluidmem_config, boot, faults=faults, seed=seed, obs=obs,
            store_wrapper=store_wrapper,
        )
    return _build_swap(
        name, env, streams, fabric, shape, profile, data_disk, boot,
    )


def _make_faulty_store(
    name: str,
    env: Environment,
    fabric: Fabric,
    shape: PlatformShape,
    plan_name: str,
    seed: int,
    obs: Observability = NULL_OBS,
) -> KeyValueBackend:
    """The chaos configuration: N replicas, each behind a FaultyStore."""
    from ..sim import derive_seed

    plan = named_plan(plan_name, seed=derive_seed(seed, "bench-faults"))
    replicas = [
        FaultyStore(
            env,
            _make_store(name, env, fabric, shape),
            plan,
            node=f"replica{index}",
            obs=obs,
        )
        for index in range(FAULT_REPLICAS)
    ]
    return ReplicatedStore(env, replicas, obs=obs)


def _build_fluidmem(
    name: str,
    env: Environment,
    streams: RandomStreams,
    fabric: Fabric,
    shape: PlatformShape,
    profile: BootProfile,
    data_disk: Optional[BlockDevice],
    config: Optional[FluidMemConfig],
    boot: bool,
    faults: Optional[str] = None,
    seed: int = 42,
    obs: Observability = NULL_OBS,
    store_wrapper=None,
) -> Platform:
    from ..policy.registry import make_alloc_policy

    uffd = Userfaultfd(env, UffdLatency(), streams.stream("uffd"))
    # Host DRAM: local budget + generous headroom for monitor buffers.
    # The frame pool placement policy follows the monitor's configured
    # allocation policy ("lifo" keeps the historical free stack).
    frame_policy = make_alloc_policy(
        (config or FluidMemConfig()).alloc_policy
    )
    host_frames = FrameAllocator(
        shape.local_pages * 4 + 4096, policy=frame_policy
    )
    ops = UffdOps(env, UffdLatency(), streams.stream("ops"), host_frames)
    if config is None:
        config = FluidMemConfig(lru_capacity_pages=shape.local_pages)
    else:
        # Keep every caller knob; only the LRU budget is the shape's.
        config = dataclasses.replace(
            config, lru_capacity_pages=shape.local_pages
        )
    monitor = Monitor(env, uffd, ops, config=config,
                      rng=streams.stream("monitor"), name=name, obs=obs)
    monitor.start()

    # "The VM was created with [local] memory, but ... an additional
    # 4 GB of hotplug memory was added" (§VI-B), all registered.
    vm = GuestVM(env, name, memory_bytes=shape.local_dram_bytes,
                 boot_profile=profile)
    qemu = QemuProcess(vm)
    if faults is not None:
        store = _make_faulty_store(
            name, env, fabric, shape, faults, seed, obs=obs
        )
    else:
        store = _make_store(name, env, fabric, shape)
    if store_wrapper is not None:
        store = store_wrapper(store)
    registration = monitor.register_vm(qemu, store)
    hotplug = MemoryHotplug(qemu)
    slot = hotplug.add_memory(shape.remote_bytes)
    monitor.register_region(registration, slot.host_region)
    # The guest now believes it has local+remote bytes of RAM.
    vm.memory_bytes = shape.total_vm_bytes

    port = FluidMemoryPort(env, vm, qemu, monitor, registration)
    vm.attach_port(port)
    platform = Platform(
        name, env, vm, shape, port,
        monitor=monitor, store=store, data_disk=data_disk,
        registration=registration, qemu=qemu, streams=streams,
    )
    if boot:
        platform.boot()
        platform.drain_writebacks()
    return platform


def _build_swap(
    name: str,
    env: Environment,
    streams: RandomStreams,
    fabric: Fabric,
    shape: PlatformShape,
    profile: BootProfile,
    data_disk: Optional[BlockDevice],
    boot: bool,
) -> Platform:
    swap_device = _make_swap_device(name, env, fabric, shape, streams)
    # §VI-D2: "vm.swappiness and disk readahead were set to 100 and 0"
    # — readahead off means page_cluster=1 (no speculative swap-ins).
    mm = GuestMemoryManager(
        env,
        streams.stream("guest-mm"),
        dram_bytes=shape.local_dram_bytes,
        latency=SwapPathLatency(page_cluster=1),
        swap_device=swap_device,
        data_disk=data_disk,
        swappiness=100,
    )
    vm = GuestVM(env, name, memory_bytes=shape.local_dram_bytes,
                 boot_profile=profile)
    port = SwapMemoryPort(mm)
    vm.attach_port(port)
    platform = Platform(
        name, env, vm, shape, port,
        mm=mm, swap_device=swap_device, data_disk=data_disk,
        streams=streams,
    )
    if boot:
        platform.boot()
    return platform
