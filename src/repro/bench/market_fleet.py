"""Market experiment: a fleet-scale multi-tenant memory marketplace.

Hundreds of VMs share one simulated cloud: an idle pool of producers
whose harvesters skim surplus DRAM onto the market, and three consumer
tenants — premium, standard, and spot — leasing that surplus to cover
working sets their local budgets cannot hold.  Zipfian access streams
give every VM a hot head and a long tail; a seeded chaos plan crashes
a slice of the fleet mid-run (broker teardown is invariant-checked)
and shifts some producers' working sets wholesale (the give-back
trigger).  Per-tenant p99 fault latency is scored against each
tenant's SLO every market round.

The broker runs with a live :class:`~repro.check.CorrectnessChecker`
on **every** run of this experiment, quick or full: the marketplace's
headline claims (granted <= harvested, no double-grant, leases freed
on VM death) are executable, not asserted.  Same seed, same bytes —
the experiment joins the CI determinism pin alongside ``cluster``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from ..check import CorrectnessChecker
from ..faults import FaultKind, FaultPlan, FaultWindow
from ..market import (
    Broker,
    HarvestConfig,
    MarketFleet,
    QosManager,
    TenantSlo,
    TenantSpec,
)
from ..sim import Environment, RandomStreams, derive_seed
from .platform import default_observability
from .reporting import render_table

__all__ = ["MarketRow", "MarketResult", "run_market", "market_specs"]


def market_specs(fleet_scale: int) -> List[TenantSpec]:
    """The tenant mix, ``fleet_scale`` copies of a 112-VM unit.

    One unit: 64 over-provisioned producers plus 48 consumers split
    across three QoS tiers whose SLOs only the market can reconcile —
    premium working sets exceed local DRAM, so without leases their
    tail faults land on swap.
    """
    if fleet_scale < 1:
        raise ValueError("fleet_scale must be >= 1")
    return [
        TenantSpec(
            "idle-pool", 64 * fleet_scale, "producer",
            footprint_pages=512, capacity_pages=512,
            slo=TenantSlo(500.0, priority=1),
            accesses_per_tick=12,
        ),
        TenantSpec(
            "premium-db", 12 * fleet_scale, "consumer",
            footprint_pages=320, capacity_pages=128,
            slo=TenantSlo(80.0, priority=2),
            accesses_per_tick=24, max_price=120.0,
        ),
        TenantSpec(
            "standard-web", 16 * fleet_scale, "consumer",
            footprint_pages=288, capacity_pages=128,
            slo=TenantSlo(250.0, priority=1),
            accesses_per_tick=20, max_price=60.0,
        ),
        TenantSpec(
            "spot-batch", 20 * fleet_scale, "consumer",
            footprint_pages=352, capacity_pages=96,
            slo=TenantSlo(2_000.0, priority=0),
            accesses_per_tick=16, max_price=25.0,
        ),
    ]


def market_chaos_plan(
    specs: Sequence[TenantSpec],
    seed: int,
    ticks: int,
    tick_us: float,
) -> FaultPlan:
    """A seeded chaos schedule over the fleet's VM names.

    Fleet convention (see :mod:`repro.market.fleet`): CRASH on a VM
    name is a fail-stop + cold reboot; SLOW on ``surge:<name>`` is a
    demand surge.  Roughly 3%% of VMs crash and 6%% of producers surge,
    all inside the middle of the run so both halves of each story —
    teardown and recovery, spike and give-back — happen on screen.
    """
    gen = random.Random(derive_seed(seed, "market-chaos"))
    horizon = ticks * tick_us
    windows: List[FaultWindow] = []
    for spec in specs:
        names = [f"{spec.name}-{index:03d}" for index in range(spec.vms)]
        for name in names:
            if gen.random() < 0.03:
                start = gen.uniform(0.2, 0.5) * horizon
                length = gen.uniform(0.1, 0.25) * horizon
                windows.append(FaultWindow(
                    FaultKind.CRASH, name, start,
                    min(start + length, horizon * 0.9),
                ))
        if spec.role != "producer":
            continue
        for name in names:
            if gen.random() < 0.06:
                start = gen.uniform(0.3, 0.6) * horizon
                length = gen.uniform(0.15, 0.3) * horizon
                windows.append(FaultWindow(
                    FaultKind.SLOW, f"surge:{name}", start,
                    min(start + length, horizon * 0.95),
                    param=10.0,
                ))
    return FaultPlan(windows, seed=seed)


@dataclass
class MarketRow:
    tenant: str
    role: str
    vms: int
    priority: int
    slo_us: float
    p99_us: float
    violations: int
    faults: int
    remote_hits: int
    swap_faults: int
    deaths: int


@dataclass
class MarketResult:
    rows_data: List[MarketRow]
    total_vms: int
    ticks: int
    pages_offered: int
    pages_granted: int
    grants: int
    revocations: int
    lease_rejections: int
    vm_crashes: int
    spot_price_final: float
    invariant_violations: int

    def rows(self) -> List[Sequence[object]]:
        return [
            (row.tenant, row.role, row.vms, row.priority,
             f"{row.slo_us:.0f}", f"{row.p99_us:.1f}", row.violations,
             row.faults, row.remote_hits, row.swap_faults, row.deaths)
            for row in self.rows_data
        ]

    def table_text(self) -> str:
        table = render_table(
            ("tenant", "role", "vms", "prio", "slo µs", "p99 µs",
             "slo viol", "faults", "remote", "swap", "deaths"),
            self.rows(),
            title=(
                f"Memory marketplace: {self.total_vms} VMs, "
                f"{self.ticks} ticks"
            ),
        )
        summary = (
            f"\nMarket: {self.pages_offered} pages offered, "
            f"{self.pages_granted} granted over {self.grants} leases, "
            f"{self.revocations} revocations, "
            f"{self.lease_rejections} admissions refused, "
            f"{self.vm_crashes} crashes; final spot price "
            f"{self.spot_price_final} mcr/page.  Broker ledger audited "
            f"every market round: {self.invariant_violations} "
            "conservation violations."
        )
        return table + summary


def run_market(
    fleet_scale: int = 4,
    ticks: int = 90,
    seed: int = 42,
    chaos: bool = True,
    partitions: int = 1,
) -> MarketResult:
    obs = default_observability()
    # The checker is NOT optional here — every run audits the ledger.
    check = CorrectnessChecker(enabled=True, obs=obs)
    specs = market_specs(fleet_scale)
    tick_us = 10_000.0
    plan = (
        market_chaos_plan(specs, seed, ticks, tick_us) if chaos else None
    )
    harvest_config = HarvestConfig(
        interval_us=3 * tick_us,
        spike_rate_per_ms=1.0,
        calm_rate_per_ms=0.4,
    )
    if partitions > 1:
        return _run_market_partitioned(
            specs, seed, ticks, tick_us, partitions, plan,
            harvest_config, obs, check,
        )
    env = Environment()
    streams = RandomStreams(derive_seed(seed, "market"))
    broker = Broker(env, obs=obs, check=check)
    qos = QosManager(obs=obs)
    fleet = MarketFleet(
        env, specs, streams, broker, qos,
        fault_plan=plan,
        harvest_config=harvest_config,
        obs=obs,
    )
    proc = env.process(
        fleet.run(ticks, tick_us=tick_us, market_every=3, check=check)
    )
    env.run()
    if not proc.ok:  # pragma: no cover - surfaced to the caller
        raise proc.value

    return _assemble_result(
        summary=fleet.tenant_summary(),
        ticks=ticks,
        broker_counters=dict(broker.counters.as_dict()),
        lease_rejections=fleet.lease_rejections,
        vm_crashes=fleet.counters.as_dict().get("vm_crashes", 0),
        total_vms=len(fleet.vms),
        spot_price_final=broker.spot_price(),
        obs=obs,
        check=check,
    )


def _run_market_partitioned(
    specs, seed, ticks, tick_us, partitions, plan, harvest_config,
    obs, check,
) -> MarketResult:
    """The sharded path: same books, N processes, identical bytes."""
    from ..parallel.fleet import run_partitioned_market

    outcome = run_partitioned_market(
        specs, seed, ticks,
        tick_us=tick_us,
        market_every=3,
        partitions=partitions,
        fault_plan=plan,
        harvest_config=harvest_config,
        obs=obs,
        check=check,
    )
    return _assemble_result(
        summary=outcome["summary"],
        ticks=ticks,
        broker_counters=outcome["broker_counters"],
        lease_rejections=outcome["lease_rejections"],
        vm_crashes=outcome["vm_crashes"],
        total_vms=outcome["total_vms"],
        spot_price_final=outcome["spot_price_final"],
        obs=obs,
        check=check,
    )


def _assemble_result(
    summary, ticks, broker_counters, lease_rejections, vm_crashes,
    total_vms, spot_price_final, obs, check,
) -> MarketResult:
    rows = [
        MarketRow(
            tenant=name,
            role=stats["role"],
            vms=stats["vms"],
            priority=stats["priority"],
            slo_us=stats["slo_us"],
            p99_us=stats["p99_us"],
            violations=stats["violations"],
            faults=stats["faults"],
            remote_hits=stats["remote_hits"],
            swap_faults=stats["swap_faults"],
            deaths=stats["deaths"],
        )
        for name, stats in summary.items()
    ]
    if obs.enabled:
        registry = obs.registry
        for row in rows:
            registry.gauge(
                "tenant_slo_violations_total", tenant=row.tenant
            ).set(row.violations)
        registry.gauge("market_lease_rejections").set(lease_rejections)
    return MarketResult(
        rows_data=rows,
        total_vms=total_vms,
        ticks=ticks,
        pages_offered=broker_counters.get("pages_offered", 0),
        pages_granted=broker_counters.get("pages_granted", 0),
        grants=broker_counters.get("grants", 0),
        revocations=broker_counters.get("revocations", 0),
        lease_rejections=lease_rejections,
        vm_crashes=vm_crashes,
        spot_price_final=spot_price_final,
        invariant_violations=len(check.violations),
    )
