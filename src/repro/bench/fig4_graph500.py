"""Figure 4: Graph500 TEPS across backends and working-set sizes.

§VI-D1: VMs with 2 vCPUs and 1 GB of local memory run the sequential
Graph500 reference at scale factors 20–23, i.e. working sets of 60 %,
120 %, 240 %, and 480 % of local DRAM; 64 BFS roots, harmonic-mean TEPS.

The paper's qualitative results this experiment must reproduce:

* (a) WSS 60 %: everything local; FluidMem's trap-to-user-space cost is
  a ~2.6 % slowdown vs swap.
* (b) WSS 120 %: FluidMem clearly wins — it evicts unused *OS* pages to
  remote memory, freeing DRAM for application pages, and even
  FluidMem→Memcached beats swap→NVMeoF and swap→SSD.
* (c)/(d) WSS 240–480 %: FluidMem→RAMCloud still beats swap→NVMeoF, but
  swap→DRAM edges out FluidMem→DRAM because guest kswapd's
  active/inactive lists pick better victims than FluidMem's
  insertion-ordered list.

Scale mapping: the graph scale is chosen per platform shape so that the
traced CSR footprint hits the paper's WSS/DRAM ratios; at the default
1/1024 memory scale the paper's scale-20..23 become roughly 11..14.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import BenchError
from ..workloads import Graph500, Graph500Config, KroneckerGraph
from .platform import PLATFORM_NAMES, PlatformShape, build_platform
from .reporting import render_table

__all__ = [
    "PAPER_FIG4_MTEPS",
    "WSS_FRACTIONS",
    "Fig4Result",
    "pick_graph_scale",
    "run_fig4",
]

#: The paper's four working-set points (fraction of local DRAM).
WSS_FRACTIONS = (0.6, 1.2, 2.4, 4.8)

#: Paper results in millions of TEPS, read off Figure 4's bars.
PAPER_FIG4_MTEPS: Dict[Tuple[float, str], float] = {
    (0.6, "fluidmem-dram"): 52.0,
    (0.6, "fluidmem-ramcloud"): 52.0,
    (0.6, "fluidmem-memcached"): 52.0,
    (0.6, "swap-dram"): 53.5,
    (0.6, "swap-nvmeof"): 53.5,
    (0.6, "swap-ssd"): 53.5,
    (1.2, "fluidmem-dram"): 15.0,
    (1.2, "fluidmem-ramcloud"): 14.0,
    (1.2, "fluidmem-memcached"): 7.5,
    (1.2, "swap-dram"): 11.0,
    (1.2, "swap-nvmeof"): 5.0,
    (1.2, "swap-ssd"): 2.5,
    (2.4, "fluidmem-dram"): 7.0,
    (2.4, "fluidmem-ramcloud"): 6.0,
    (2.4, "fluidmem-memcached"): 2.5,
    (2.4, "swap-dram"): 8.5,
    (2.4, "swap-nvmeof"): 4.0,
    (2.4, "swap-ssd"): 1.5,
    (4.8, "fluidmem-dram"): 4.5,
    (4.8, "fluidmem-ramcloud"): 4.0,
    (4.8, "fluidmem-memcached"): 1.5,
    (4.8, "swap-dram"): 5.5,
    (4.8, "swap-nvmeof"): 3.0,
    (4.8, "swap-ssd"): 1.0,
}


def pick_graph_scale(
    shape: PlatformShape, wss_fraction: float, edgefactor: int = 16
) -> int:
    """Smallest graph scale whose traced footprint >= the target WSS."""
    target_bytes = shape.local_dram_bytes * wss_fraction
    for scale in range(6, 26):
        probe = KroneckerGraph(scale, edgefactor, seed=1)
        if probe.memory_bytes() >= target_bytes:
            return scale
    raise BenchError("no graph scale reaches the target working set")


def memory_scale_for(graph: KroneckerGraph, wss_fraction: float) -> float:
    """The platform memory_scale making the graph exactly
    ``wss_fraction`` of local DRAM.

    The paper doubles the *graph* to sweep WSS/DRAM because its DRAM is
    fixed hardware; with a simulated platform it is cleaner to keep one
    canonical graph and size DRAM around it — the ratio is what the
    figure varies.
    """
    from .platform import PAPER_LOCAL_DRAM_BYTES

    local_bytes = graph.memory_bytes() / wss_fraction
    return min(1.0, local_bytes / PAPER_LOCAL_DRAM_BYTES)


@dataclass
class Fig4Result:
    """MTEPS per (wss_fraction, platform)."""

    mteps: Dict[Tuple[float, str], float]
    graph_scales: Dict[float, int]
    platforms: Sequence[str]
    wss_fractions: Sequence[float]

    def value(self, wss_fraction: float, platform: str) -> float:
        return self.mteps[(wss_fraction, platform)]

    def overhead_at_local(self) -> float:
        """FluidMem's slowdown vs swap when everything fits (paper 2.6%)."""
        fluid = self.value(self.wss_fractions[0], "fluidmem-dram")
        swap = self.value(self.wss_fractions[0], "swap-dram")
        return 1.0 - fluid / swap

    def rows(self) -> List[Sequence[object]]:
        out = []
        for fraction in self.wss_fractions:
            row: List[object] = [
                f"{int(fraction * 100)}%",
                self.graph_scales[fraction],
            ]
            for platform in self.platforms:
                row.append(round(self.mteps[(fraction, platform)], 2))
            out.append(row)
        return out

    def table_text(self) -> str:
        return render_table(
            ("WSS/DRAM", "graph scale", *self.platforms),
            self.rows(),
            title="Figure 4: Graph500 harmonic-mean MTEPS (simulated time)",
        )


def run_fig4(
    graph_scale: int = 12,
    num_bfs_roots: int = 2,
    seed: int = 42,
    platforms: Optional[Sequence[str]] = None,
    wss_fractions: Optional[Sequence[float]] = None,
    edgefactor: int = 16,
) -> Fig4Result:
    """Sweep WSS/DRAM with one canonical graph; all six platforms.

    ``graph_scale`` trades fidelity for runtime: 12 (the default) keeps
    the full sweep under a few minutes; larger values sharpen the
    statistics.
    """
    chosen = tuple(platforms) if platforms else PLATFORM_NAMES
    fractions = tuple(wss_fractions) if wss_fractions else WSS_FRACTIONS
    # One canonical graph shared by every cell of the figure.
    graph = KroneckerGraph(graph_scale, edgefactor, seed=seed)

    mteps: Dict[Tuple[float, str], float] = {}
    for fraction in fractions:
        memory_scale = memory_scale_for(graph, fraction)
        for name in chosen:
            platform = build_platform(
                name,
                memory_scale=memory_scale,
                seed=seed,
                remote_factor=6,  # headroom for WSS 480% + guest OS
            )
            config = Graph500Config(
                scale=graph_scale,
                edgefactor=edgefactor,
                num_bfs_roots=num_bfs_roots,
                seed=seed,
            )
            bench = Graph500(
                platform.env,
                platform.port,
                platform.workload_base,
                config,
                graph=graph,
            )
            result = platform.run(bench.run())
            mteps[(fraction, name)] = result.mean_teps_millions
    return Fig4Result(
        mteps=mteps,
        graph_scales={fraction: graph_scale for fraction in fractions},
        platforms=chosen,
        wss_fractions=fractions,
    )
