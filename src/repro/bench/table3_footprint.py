"""Table III: reducing a VM's footprint toward zero.

§VI-E: an idle-but-booted VM is squeezed and probed:

    configuration                  pages    MB       SSH   ICMP  revivable
    After startup                  81042    316.570  yes   yes   n/a
    Max VM balloon size            20480    64.750   yes   yes   n/a
    FluidMem (KVM)                 180      0.703    yes   yes   yes
    FluidMem (KVM)                 80       0.300    no    yes   yes
    FluidMem (full virtualization) 1        0.004    no    no    yes

(Note: the paper's "20480 pages / 64.750 MB" row is internally
inconsistent — 20480 x 4 KiB is 80 MiB; we keep the page count as
canonical.)

The FluidMem rows shrink the monitor's LRU at runtime and then attempt
an SSH login and an ICMP echo through the real paging machinery; the
"revived" column grows the LRU back and retries.  The KVM-at-1-page
deadlock and the full-virtualization escape hatch are exercised too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import VcpuDeadlockError
from ..kernel import GuestMemoryManager
from ..mem import MIB, PAGE_SIZE
from ..sim import Environment, RandomStreams
from ..vm import (
    BalloonDriver,
    BootProfile,
    IcmpService,
    PAPER_BOOT_PAGES,
    SshService,
    VirtMode,
)
from .platform import build_platform
from .reporting import render_table

__all__ = ["Table3Row", "Table3Result", "run_table3", "PAPER_TABLE3"]

PAPER_TABLE3 = (
    ("After startup", 81042, True, True, None),
    ("Max VM balloon size", 20480, True, True, None),
    ("FluidMem (KVM)", 180, True, True, True),
    ("FluidMem (KVM)", 80, False, True, True),
    ("FluidMem (full virtualization)", 1, False, False, True),
)


@dataclass
class Table3Row:
    configuration: str
    footprint_pages: int
    ssh: Optional[bool]
    icmp: Optional[bool]
    revived: Optional[bool]

    @property
    def footprint_mib(self) -> float:
        return self.footprint_pages * PAGE_SIZE / MIB


@dataclass
class Table3Result:
    rows_data: List[Table3Row]

    def row(self, configuration: str, pages: int) -> Table3Row:
        for row in self.rows_data:
            if row.configuration == configuration and \
                    row.footprint_pages == pages:
                return row
        raise KeyError((configuration, pages))

    def rows(self) -> List[Sequence[object]]:
        def yn(value: Optional[bool]) -> str:
            if value is None:
                return "n/a"
            return "yes" if value else "no"

        return [
            (
                row.configuration,
                row.footprint_pages,
                round(row.footprint_mib, 3),
                yn(row.ssh),
                yn(row.icmp),
                yn(row.revived),
            )
            for row in self.rows_data
        ]

    def table_text(self) -> str:
        return render_table(
            ("configuration", "pages", "MiB", "SSH", "ICMP", "revived"),
            self.rows(),
            title="Table III: VM footprint minimization",
        )


def _probe(platform, vm) -> tuple:
    """(ssh_ok, icmp_ok) through the live paging machinery."""

    def attempt(service):
        def gen(env):
            result = yield from service.attempt()
            return result

        return platform.run(gen(platform.env))

    ssh_ok = attempt(SshService(platform.env, vm))
    icmp_ok = attempt(IcmpService(platform.env, vm))
    return ssh_ok, icmp_ok


def _shrink(platform, pages: int) -> None:
    platform.monitor.set_lru_capacity(pages)

    def gen(env):
        yield from platform.monitor.shrink_to_capacity()

    platform.run(gen(platform.env))


def run_table3(
    boot_scale: float = 1.0 / 8,
    seed: int = 42,
) -> Table3Result:
    """Regenerate the table.  ``boot_scale`` shrinks only the *boot
    footprint simulation cost*; the FluidMem page thresholds (180 / 80 /
    1) and the balloon floor (20480) are absolute, as in the paper."""
    rows: List[Table3Row] = []
    boot_pages = max(600, int(PAPER_BOOT_PAGES * boot_scale))

    # Row 1 — after startup: what a booted VM pins with no management.
    streams = RandomStreams(seed=seed)
    env = Environment()
    from ..blockdev import PmemDisk

    mm = GuestMemoryManager(
        env,
        streams.stream("mm"),
        dram_bytes=(PAPER_BOOT_PAGES + 4096) * PAGE_SIZE,
        swap_device=PmemDisk(
            env, 2 * PAPER_BOOT_PAGES * PAGE_SIZE,
            streams.stream("swapdev"),
        ),
    )
    for vaddr, kind, mlocked in BootProfile().pages(0x100_0000):
        mm.populate_resident(vaddr, kind=kind, mlocked=mlocked)
    rows.append(
        Table3Row("After startup", mm.resident_pages, True, True, None)
    )

    # Row 2 — ballooning reclaims guest memory but bottoms out at its
    # floor while 20480 pages are still resident.
    balloon = BalloonDriver(mm)

    def inflate(env):
        taken = yield from balloon.inflate_with_reclaim(10**9)
        return taken

    process = env.process(inflate(env))
    env.run()
    rows.append(
        Table3Row(
            "Max VM balloon size",
            balloon.guest_footprint_pages,
            True,
            True,
            None,
        )
    )

    # Rows 3 and 4 — FluidMem under KVM at 180 and 80 pages.
    for target_pages in (180, 80):
        platform = build_platform(
            "fluidmem-ramcloud",
            memory_scale=boot_scale,
            seed=seed,
            boot_profile=BootProfile(total_pages=boot_pages),
        )
        vm = platform.vm
        _shrink(platform, target_pages)
        ssh_ok, icmp_ok = _probe(platform, vm)
        # Revive: grow the budget back and retry SSH.
        platform.monitor.set_lru_capacity(boot_pages)
        revived, _ = _probe(platform, vm)
        rows.append(
            Table3Row(
                "FluidMem (KVM)", target_pages, ssh_ok, icmp_ok, revived
            )
        )

    # Row 5 — 1 page needs full virtualization; KVM deadlocks.
    platform = build_platform(
        "fluidmem-ramcloud",
        memory_scale=boot_scale,
        seed=seed,
        boot=False,
        boot_profile=BootProfile(total_pages=boot_pages),
    )
    # Swap the VM's virtualization mode before boot.
    platform.vm.virt_mode = VirtMode.FULL_EMULATION
    platform.boot()
    platform.drain_writebacks()
    _shrink(platform, 1)
    ssh_ok, icmp_ok = _probe(platform, platform.vm)
    platform.monitor.set_lru_capacity(boot_pages)
    revived, _ = _probe(platform, platform.vm)
    rows.append(
        Table3Row(
            "FluidMem (full virtualization)", 1, ssh_ok, icmp_ok, revived
        )
    )
    return Table3Result(rows_data=rows)


def kvm_deadlocks_at_one_page(seed: int = 42) -> bool:
    """The footnote behaviour: KVM cannot run at a 1-page footprint."""
    platform = build_platform(
        "fluidmem-ramcloud",
        memory_scale=1.0 / 64,
        seed=seed,
        boot_profile=BootProfile(total_pages=600),
    )
    _shrink(platform, 1)
    vm = platform.vm

    def gen(env):
        yield from vm.require_port().access(vm.boot_page_addresses()[0])

    try:
        platform.run(gen(platform.env))
    except VcpuDeadlockError:
        return True
    return False
