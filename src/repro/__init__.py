"""FluidMem reproduction: full memory disaggregation, simulated end to end.

A Python reproduction of *FluidMem: Full, Flexible, and Fast Memory
Disaggregation for the Cloud* (ICDCS 2020).  See README.md for the
architecture tour, DESIGN.md for the substitution map (what the paper
ran on hardware vs. what is simulated here), and EXPERIMENTS.md for
paper-vs-measured results.

Quick start::

    from repro.bench.platform import build_platform

    platform = build_platform("fluidmem-ramcloud", seed=42)
    # platform.vm / platform.port / platform.monitor are live objects.
"""

from . import blockdev, coord, core, faults, kernel, kv, mem, net, obs, \
    sim, vm
from ._version import __version__

__all__ = [
    "__version__",
    "sim",
    "mem",
    "net",
    "kv",
    "faults",
    "coord",
    "blockdev",
    "kernel",
    "vm",
    "core",
    "obs",
]
