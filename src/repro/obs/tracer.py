"""Structured event tracing keyed to simulated time.

The tracer records typed events — fault spans, buffer resizes, batch
steals, replica failovers, quarantines — into a bounded in-memory ring
buffer.  Two exporters turn the ring into files:

* **JSONL** — one event object per line, for ad-hoc ``jq``/grep work;
* **Chrome trace** — the ``chrome://tracing`` / Perfetto JSON format,
  with the simulation's µs clock used directly as the trace clock and
  one named thread row per track (usually one per VM or component).

Durations use phase ``"X"`` (complete) events; point-in-time events use
phase ``"i"`` (instant).  When the ring overflows, the oldest events are
dropped and :attr:`EventTracer.dropped` counts how many.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, IO, List, Optional, Tuple, Union

__all__ = ["TraceEvent", "EventTracer", "export_chrome_trace"]

#: Default ring capacity: enough for every event of a quick bench run.
DEFAULT_CAPACITY = 65_536


class TraceEvent:
    """One typed event on the simulated timeline."""

    __slots__ = ("name", "cat", "ph", "ts", "dur", "track", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        ph: str,
        ts: float,
        dur: Optional[float],
        track: str,
        args: Dict[str, object],
    ) -> None:
        self.name = name
        self.cat = cat
        self.ph = ph
        self.ts = ts
        self.dur = dur
        self.track = track
        self.args = args

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": round(self.ts, 4),
            "track": self.track,
        }
        if self.dur is not None:
            out["dur"] = round(self.dur, 4)
        if self.args:
            out["args"] = {k: self.args[k] for k in sorted(self.args)}
        return out

    def __repr__(self) -> str:
        dur = f" dur={self.dur:.2f}us" if self.dur is not None else ""
        return (
            f"<TraceEvent {self.name!r} [{self.cat}] "
            f"ts={self.ts:.2f}us{dur} track={self.track!r}>"
        )


class EventTracer:
    """Bounded ring buffer of :class:`TraceEvent` objects."""

    def __init__(
        self,
        enabled: bool = True,
        capacity: int = DEFAULT_CAPACITY,
        default_track: str = "sim",
    ) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.default_track = default_track
        self._events: "deque[TraceEvent]" = deque(maxlen=capacity)
        self._emitted = 0

    # -- recording ----------------------------------------------------------

    def instant(
        self,
        name: str,
        ts: float,
        cat: str = "event",
        track: Optional[str] = None,
        **args: object,
    ) -> None:
        """A point-in-time event (resize, quarantine, failover, ...)."""
        if not self.enabled:
            return
        self._emitted += 1
        self._events.append(
            TraceEvent(name, cat, "i", ts, None,
                       track or self.default_track, args)
        )

    def complete(
        self,
        name: str,
        ts: float,
        dur: float,
        cat: str = "span",
        track: Optional[str] = None,
        **args: object,
    ) -> None:
        """A span with a known duration (fault handling, flushes, ...)."""
        if not self.enabled:
            return
        self._emitted += 1
        self._events.append(
            TraceEvent(name, cat, "X", ts, dur,
                       track or self.default_track, args)
        )

    # -- introspection -------------------------------------------------------

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def emitted(self) -> int:
        """Total events ever recorded (including since-dropped ones)."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Events lost to ring overflow."""
        return self._emitted - len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self._emitted = 0

    # -- export --------------------------------------------------------------

    def export_jsonl(self, target: Union[str, IO[str]]) -> None:
        """One JSON object per line, in ring order."""
        if isinstance(target, str):
            with open(target, "w") as handle:
                self.export_jsonl(handle)
            return
        for event in self._events:
            target.write(json.dumps(event.as_dict(), sort_keys=True))
            target.write("\n")

    def chrome_trace(self) -> Dict[str, object]:
        """The ``chrome://tracing`` JSON object for this ring."""
        return export_chrome_trace([(self.default_track, self)])

    def export_chrome(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            with open(target, "w") as handle:
                self.export_chrome(handle)
            return
        json.dump(self.chrome_trace(), target, sort_keys=True)


def export_chrome_trace(
    tracers: List[Tuple[str, EventTracer]],
) -> Dict[str, object]:
    """Merge named tracers into one Chrome-trace JSON object.

    Each ``(process_name, tracer)`` pair becomes one trace pid; each
    distinct event track within a tracer becomes a named thread.  The
    simulation clock is already in µs, which is exactly Chrome's ``ts``
    unit, so timestamps pass through untouched.
    """
    trace_events: List[Dict[str, object]] = []
    for pid, (process_name, tracer) in enumerate(tracers):
        trace_events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        })
        tids: Dict[str, int] = {}
        for event in tracer.events:
            tid = tids.get(event.track)
            if tid is None:
                tid = tids[event.track] = len(tids)
                trace_events.append({
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": event.track},
                })
            row: Dict[str, object] = {
                "name": event.name,
                "cat": event.cat,
                "ph": event.ph,
                "ts": round(event.ts, 4),
                "pid": pid,
                "tid": tid,
            }
            if event.ph == "X":
                row["dur"] = round(event.dur or 0.0, 4)
            if event.ph == "i":
                row["s"] = "t"  # instant scoped to its thread
            if event.args:
                row["args"] = {k: event.args[k] for k in sorted(event.args)}
            trace_events.append(row)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}
