"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the one sink every instrumented code path reports to —
the monitor's fault paths, the write-back flusher, the LRU buffer, the
fault-injection wrappers, and the retry loops all register instruments
here, keyed by metric name plus sorted ``key=value`` labels (typically
``vm`` and ``path``).  A snapshot of the whole registry is the
machine-readable summary the bench CLI writes with ``--metrics``, and
the committed ``benchmarks/baselines/*.json`` files are exactly such
snapshots.

Disabled mode is near-free: a registry constructed with
``enabled=False`` hands out shared no-op instruments, so call sites pay
one method call on a singleton and allocate nothing.
"""

from __future__ import annotations

import json
from bisect import bisect_left as _bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import FluidMemError
from ..sim import CounterSet, LatencyRecorder

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_US",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MirroredCounters",
    "label_key",
]

#: Log-spaced latency bucket upper edges in µs (an implicit +inf bucket
#: follows the last edge).  Spans sub-µs list operations up to the
#: retry deadline scale.
DEFAULT_LATENCY_BUCKETS_US: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0, 20_000.0, 50_000.0, 100_000.0,
)


def label_key(name: str, labels: Dict[str, object]) -> str:
    """Canonical instrument key: ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A named monotonic counter."""

    __slots__ = ("key", "_value")

    def __init__(self, key: str) -> None:
        self.key = key
        self._value = 0

    def inc(self, by: int = 1) -> None:
        if by < 0:
            raise FluidMemError(f"counter {self.key!r} cannot decrease")
        self._value += by

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A named point-in-time value (resident pages, capacity, ...)."""

    __slots__ = ("key", "_value")

    def __init__(self, key: str) -> None:
        self.key = key
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def add(self, delta: float) -> None:
        self._value += delta

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket latency histogram with exact summary statistics.

    Bucket edges are upper bounds; a sample lands in the first bucket
    whose edge is >= the sample, or the implicit overflow bucket past
    the last edge.  Alongside the bucket counts, a bounded
    :class:`~repro.sim.LatencyRecorder` keeps raw samples so p50/p95/p99
    are exact (not bucket-interpolated) as long as retention isn't
    capped — the bench's quick runs stay far below the cap.
    """

    __slots__ = ("key", "edges", "_bucket_counts", "_recorder", "_record")

    def __init__(
        self,
        key: str,
        edges: Sequence[float] = DEFAULT_LATENCY_BUCKETS_US,
        max_samples: Optional[int] = 100_000,
    ) -> None:
        if not edges:
            raise FluidMemError("histogram needs at least one bucket edge")
        ordered = tuple(float(e) for e in edges)
        if any(b <= a for a, b in zip(ordered, ordered[1:])):
            raise FluidMemError(
                f"bucket edges must be strictly increasing: {ordered}"
            )
        self.key = key
        self.edges = ordered
        self._bucket_counts = [0] * (len(ordered) + 1)
        self._recorder = LatencyRecorder(key, max_samples=max_samples)
        # Bound-method cache: observe() is the monitor's per-charge hot
        # path (one call per profiled code-path sample).
        self._record = self._recorder.record

    def observe(self, value: float) -> None:
        self._bucket_counts[_bisect_left(self.edges, value)] += 1
        # Inlined LatencyRecorder.record — statement-for-statement the
        # same update in the same order, so the running moments stay
        # bit-identical to the granular call; observe() runs once per
        # profiled charge, which makes the call dispatch worth shaving.
        recorder = self._recorder
        if value < 0:
            raise ValueError(
                f"negative latency {value} for {recorder.name!r}"
            )
        count = recorder._count + 1
        recorder._count = count
        recorder._sum += value
        delta = value - recorder._welford_mean
        mean = recorder._welford_mean + delta / count
        recorder._welford_mean = mean
        recorder._welford_m2 += delta * (value - mean)
        if value < recorder._min:
            recorder._min = value
        if value > recorder._max:
            recorder._max = value
        samples = recorder._samples
        max_samples = recorder.max_samples
        if max_samples is None or len(samples) < max_samples:
            samples.append(value)

    def observe_many(self, values) -> None:
        """Record a cohort of samples in one call (DESIGN.md §17).

        Strictly sequential — each sample goes through the exact same
        bucket increment and Welford update as :meth:`observe`, in
        cohort order, so the summary statistics are bit-identical to N
        individual calls (a pairwise/parallel merge would round
        differently).  The only saving is the per-sample call dispatch.
        """
        counts = self._bucket_counts
        edges = self.edges
        record = self._record
        for value in values:
            counts[_bisect_left(edges, value)] += 1
            record(value)

    # -- accessors ---------------------------------------------------------

    @property
    def count(self) -> int:
        return self._recorder.count

    @property
    def sum(self) -> float:
        if self._recorder.count == 0:
            return 0.0
        return self._recorder.mean * self._recorder.count

    @property
    def mean(self) -> float:
        return self._recorder.mean

    @property
    def stdev(self) -> float:
        return self._recorder.stdev

    @property
    def minimum(self) -> float:
        return self._recorder.minimum

    @property
    def maximum(self) -> float:
        return self._recorder.maximum

    def percentile(self, q: float) -> float:
        return self._recorder.percentile(q)

    @property
    def bucket_counts(self) -> Tuple[int, ...]:
        """Per-bucket counts; the last entry is the overflow bucket."""
        return tuple(self._bucket_counts)

    def cumulative_counts(self) -> Tuple[int, ...]:
        out: List[int] = []
        running = 0
        for count in self._bucket_counts:
            running += count
            out.append(running)
        return tuple(out)

    def export_state(self) -> Dict[str, object]:
        """Picklable snapshot: edges, bucket counts, recorder state."""
        return {
            "edges": list(self.edges),
            "bucket_counts": list(self._bucket_counts),
            "recorder": self._recorder.export_state(),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Install a state exported by :meth:`export_state` (fresh only)."""
        if self.count:
            raise FluidMemError(
                f"cannot restore state onto non-empty histogram {self.key!r}"
            )
        if tuple(float(e) for e in state["edges"]) != self.edges:
            raise FluidMemError(
                f"histogram {self.key!r}: bucket edges differ from state"
            )
        self._bucket_counts = [int(c) for c in state["bucket_counts"]]
        self._recorder.restore_state(state["recorder"])

    def summary(self, ndigits: int = 4) -> Dict[str, object]:
        """The snapshot row: op count plus the tracked percentiles."""
        return {
            "count": self.count,
            "mean": round(self.mean, ndigits),
            "p50": round(self.percentile(50.0), ndigits),
            "p95": round(self.percentile(95.0), ndigits),
            "p99": round(self.percentile(99.0), ndigits),
            "min": round(self.minimum, ndigits),
            "max": round(self.maximum, ndigits),
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, by: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class MetricsRegistry:
    """All instruments of one observed run, keyed by name + labels."""

    def __init__(
        self,
        enabled: bool = True,
        max_samples_per_histogram: Optional[int] = 100_000,
    ) -> None:
        self.enabled = enabled
        self._max_samples = max_samples_per_histogram
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        # Shared no-op instruments handed out while disabled: call
        # sites keep working and allocate nothing.
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null", edges=(1.0,))

    # -- instrument accessors (get-or-create) ------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        if not self.enabled:
            return self._null_counter
        key = label_key(name, labels)
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter(key)
        return counter

    def gauge(self, name: str, **labels: object) -> Gauge:
        if not self.enabled:
            return self._null_gauge
        key = label_key(name, labels)
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge(key)
        return gauge

    def histogram(
        self,
        name: str,
        edges: Sequence[float] = DEFAULT_LATENCY_BUCKETS_US,
        **labels: object,
    ) -> Histogram:
        if not self.enabled:
            return self._null_histogram
        key = label_key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(
                key, edges=edges, max_samples=self._max_samples
            )
        return histogram

    # -- export -------------------------------------------------------------

    def export_state(self) -> Dict[str, object]:
        """Picklable full-fidelity dump for cross-process merging.

        Unlike :meth:`snapshot` (rounded summaries for humans and JSON
        baselines), this carries exact counter/gauge values and complete
        histogram state, so a registry populated in a worker process can
        be folded into the parent's via :meth:`merge_state` without any
        loss — the merged :meth:`snapshot` is byte-identical to the one
        a single-process run would have produced.
        """
        return {
            "counters": {
                key: self._counters[key].value
                for key in sorted(self._counters)
            },
            "gauges": {
                key: self._gauges[key].value
                for key in sorted(self._gauges)
            },
            "histograms": {
                key: self._histograms[key].export_state()
                for key in sorted(self._histograms)
            },
        }

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold a :meth:`export_state` dump into this registry.

        Counters add; gauges overwrite (merge partitions in a fixed
        order so the last write is deterministic).  A histogram key not
        yet present is installed exactly, truncation and all; a key
        already present is merged by re-observing the source's raw
        samples in order, which is only exact while the source retained
        every sample — a truncated source merging into an existing key
        raises rather than silently dropping data.
        """
        if not self.enabled:
            return
        for key, value in state["counters"].items():
            counter = self._counters.get(key)
            if counter is None:
                counter = self._counters[key] = Counter(key)
            counter.inc(value)
        for key, value in state["gauges"].items():
            gauge = self._gauges.get(key)
            if gauge is None:
                gauge = self._gauges[key] = Gauge(key)
            gauge.set(value)
        for key, hist_state in state["histograms"].items():
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram(
                    key,
                    edges=tuple(hist_state["edges"]),
                    max_samples=self._max_samples,
                )
                histogram.restore_state(hist_state)
                continue
            recorder_state = hist_state["recorder"]
            samples = recorder_state["samples"]
            if len(samples) != recorder_state["count"]:
                raise FluidMemError(
                    f"histogram {key!r}: source dropped raw samples; "
                    "cannot merge into an existing histogram exactly"
                )
            for value in samples:
                histogram.observe(value)

    def snapshot(self) -> Dict[str, object]:
        """Deterministic dict of everything recorded (sorted keys)."""
        return {
            "counters": {
                key: self._counters[key].value
                for key in sorted(self._counters)
            },
            "gauges": {
                key: self._gauges[key].value
                for key in sorted(self._gauges)
            },
            "histograms": {
                key: self._histograms[key].summary()
                for key in sorted(self._histograms)
                if self._histograms[key].count
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


class MirroredCounters(CounterSet):
    """A :class:`~repro.sim.CounterSet` that also feeds a registry.

    The monitor, write-back queue, and store wrappers keep their
    existing ``counters`` attribute (tests and ``stats()`` read it);
    when observability is on, the same increments land in the shared
    registry under the component's labels.
    """

    def __init__(self, registry: MetricsRegistry, **labels: object) -> None:
        super().__init__()
        self._registry = registry
        self._labels = labels

    def incr(self, name: str, by: int = 1) -> None:
        super().incr(name, by)
        self._registry.counter(name, **self._labels).inc(by)
