"""Perf-regression gate over two bench metrics snapshots.

Usage::

    python -m repro.obs.compare baselines/quick-seed42.json out.json \
        [--threshold 0.20] [--min-count 50] [--min-us 1.0]

Compares every tracked latency statistic (p50 and p99 of each
histogram) of ``current`` against ``baseline`` and exits non-zero if
any regressed by more than ``--threshold`` (relative).  Histograms with
fewer than ``--min-count`` samples on either side are skipped (too
noisy to gate on), as are absolute differences below ``--min-us``.

To refresh the checked-in baseline after an intentional perf change::

    PYTHONPATH=src python -m repro.bench fig3 table1 cluster --quick \
        --metrics benchmarks/baselines/quick-seed42.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

__all__ = ["Regression", "compare_metrics", "main"]

#: The percentiles the gate tracks per histogram.
TRACKED_STATS = ("p50", "p99")


class Regression:
    """One tracked statistic that got slower than the gate allows."""

    __slots__ = ("experiment", "key", "stat", "baseline", "current")

    def __init__(
        self,
        experiment: str,
        key: str,
        stat: str,
        baseline: float,
        current: float,
    ) -> None:
        self.experiment = experiment
        self.key = key
        self.stat = stat
        self.baseline = baseline
        self.current = current

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")

    def __str__(self) -> str:
        return (
            f"{self.experiment}: {self.key} {self.stat} "
            f"{self.baseline:.2f}us -> {self.current:.2f}us "
            f"(x{self.ratio:.2f})"
        )


def _experiments(doc: Dict[str, object]) -> Dict[str, Dict]:
    """Accept both the multi-experiment file and a bare snapshot."""
    experiments = doc.get("experiments")
    if isinstance(experiments, dict):
        return experiments
    if "histograms" in doc:
        return {"(root)": doc}  # a bare registry snapshot
    return {}


def compare_metrics(
    baseline: Dict[str, object],
    current: Dict[str, object],
    threshold: float = 0.20,
    min_count: int = 50,
    min_us: float = 1.0,
) -> List[Regression]:
    """All tracked stats that regressed beyond ``threshold``."""
    regressions: List[Regression] = []
    base_experiments = _experiments(baseline)
    curr_experiments = _experiments(current)
    for experiment in sorted(base_experiments):
        if experiment not in curr_experiments:
            continue
        base_hists = base_experiments[experiment].get("histograms", {})
        curr_hists = curr_experiments[experiment].get("histograms", {})
        for key in sorted(base_hists):
            if key not in curr_hists:
                continue
            base_row, curr_row = base_hists[key], curr_hists[key]
            if (
                base_row.get("count", 0) < min_count
                or curr_row.get("count", 0) < min_count
            ):
                continue
            for stat in TRACKED_STATS:
                base_value = base_row.get(stat)
                curr_value = curr_row.get(stat)
                if base_value is None or curr_value is None:
                    continue
                if curr_value - base_value < min_us:
                    continue
                if curr_value > base_value * (1.0 + threshold):
                    regressions.append(
                        Regression(experiment, key, stat,
                                   base_value, curr_value)
                    )
    return regressions


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.compare",
        description="Fail if tracked bench latencies regressed",
    )
    parser.add_argument("baseline", help="checked-in baseline JSON")
    parser.add_argument("current", help="freshly produced metrics JSON")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative slowdown allowed (default 0.20)")
    parser.add_argument("--min-count", type=int, default=50,
                        help="skip histograms with fewer samples")
    parser.add_argument("--min-us", type=float, default=1.0,
                        help="ignore absolute diffs below this many us")
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.current) as handle:
        current = json.load(handle)

    regressions = compare_metrics(
        baseline, current,
        threshold=args.threshold,
        min_count=args.min_count,
        min_us=args.min_us,
    )
    if regressions:
        print(
            f"{len(regressions)} tracked latency stat(s) regressed more "
            f"than {100 * args.threshold:.0f}%:"
        )
        for regression in regressions:
            print(f"  {regression}")
        print(
            "\nIf this slowdown is intentional, refresh the baseline:\n"
            "  PYTHONPATH=src python -m repro.bench fig3 table1 "
            f"cluster --quick --metrics {args.baseline}"
        )
        return 1
    print("bench-baseline gate: no tracked latency regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
