"""Observability: metrics registry + structured event tracing.

This package is the measurement substrate behind the paper's latency
claims: the monitor's fault paths, the write-back flusher, the LRU
buffer, the retry loops, and the fault-injection wrappers all report
into one :class:`MetricsRegistry` (counters, gauges, fixed-bucket
latency histograms keyed by VM and code path) and one
:class:`EventTracer` (typed events on the simulated timeline, with
JSONL and ``chrome://tracing`` exporters).

An :class:`Observability` object bundles the two; :data:`NULL_OBS` is
the shared disabled instance every component defaults to, so the
instrumented hot paths cost one attribute check when nobody is looking.
"""

from __future__ import annotations

from typing import Optional

from .metrics import (
    DEFAULT_LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MirroredCounters,
    label_key,
)
from .tracer import EventTracer, TraceEvent, export_chrome_trace

__all__ = [
    "Observability",
    "NULL_OBS",
    "MetricsRegistry",
    "MirroredCounters",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS_US",
    "label_key",
    "EventTracer",
    "TraceEvent",
    "export_chrome_trace",
]


class Observability:
    """One registry + one tracer, switched on or off together."""

    def __init__(
        self,
        enabled: bool = True,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[EventTracer] = None,
        trace_capacity: int = 65_536,
    ) -> None:
        self.enabled = enabled
        self.registry = registry or MetricsRegistry(enabled=enabled)
        self.tracer = tracer or EventTracer(
            enabled=enabled, capacity=trace_capacity
        )

    def counters_for(self, **labels: object):
        """A CounterSet that mirrors into the registry when enabled."""
        from ..sim import CounterSet

        if not self.enabled:
            return CounterSet()
        return MirroredCounters(self.registry, **labels)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"<Observability {state} events={len(self.tracer)}>"


#: Shared disabled instance: the default for every instrumented component.
NULL_OBS = Observability(enabled=False)
