"""Memory substrate: pages, frames, page tables, regions.

These are the raw materials both competitors are built from — the kernel
swap path (:mod:`repro.kernel`) and FluidMem (:mod:`repro.core`) move the
same :class:`Page` objects between the same :class:`PageTable` and
:class:`FrameAllocator` structures, so comparisons are apples to apples.
"""

from .addr import (
    GIB,
    KIB,
    MAX_PARTITION,
    MIB,
    PAGE_SHIFT,
    PAGE_SIZE,
    decode_page_key,
    encode_page_key,
    is_page_aligned,
    page_address,
    page_align_down,
    page_align_up,
    page_number,
    pages_for_bytes,
)
from .frame import FrameAllocator
from .page import ZERO_PAGE_DATA, Page, PageKind
from .pagetable import PageTable, PageTableEntry
from .region import AddressSpace, MemoryRegion

__all__ = [
    "PAGE_SIZE",
    "PAGE_SHIFT",
    "KIB",
    "MIB",
    "GIB",
    "MAX_PARTITION",
    "page_align_down",
    "page_align_up",
    "is_page_aligned",
    "page_number",
    "page_address",
    "pages_for_bytes",
    "encode_page_key",
    "decode_page_key",
    "Page",
    "PageKind",
    "ZERO_PAGE_DATA",
    "FrameAllocator",
    "PageTable",
    "PageTableEntry",
    "MemoryRegion",
    "AddressSpace",
]
