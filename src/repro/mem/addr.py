"""Address arithmetic and page-key encoding.

FluidMem keys remote pages by a 64-bit integer: the first 52 bits are the
virtual page number of the faulting address (a 4 KB page in a 64-bit
address space needs exactly 52 bits), and the remaining 12 bits index a
*virtual partition* for key-value stores without native partition support
(paper §IV).
"""

from __future__ import annotations

__all__ = [
    "PAGE_SIZE",
    "PAGE_SHIFT",
    "KIB",
    "MIB",
    "GIB",
    "VPN_BITS",
    "PARTITION_BITS",
    "MAX_PARTITION",
    "page_align_down",
    "page_align_up",
    "is_page_aligned",
    "page_number",
    "page_address",
    "pages_for_bytes",
    "encode_page_key",
    "decode_page_key",
]

#: Bytes per page; the paper works exclusively in 4 KB pages.
PAGE_SIZE = 4096
PAGE_SHIFT = 12

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: 64-bit virtual address space / 4 KB pages -> 52-bit virtual page numbers.
VPN_BITS = 52
#: Remaining low bits index a virtual partition (paper §IV).
PARTITION_BITS = 12
MAX_PARTITION = (1 << PARTITION_BITS) - 1

_VPN_MASK = (1 << VPN_BITS) - 1
_ADDR_MASK = (1 << 64) - 1


def page_align_down(addr: int) -> int:
    """Largest page boundary <= ``addr``."""
    _check_addr(addr)
    return addr & ~(PAGE_SIZE - 1)


def page_align_up(addr: int) -> int:
    """Smallest page boundary >= ``addr``."""
    _check_addr(addr)
    return (addr + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1) & _ADDR_MASK


def is_page_aligned(addr: int) -> bool:
    """True when ``addr`` sits exactly on a page boundary."""
    _check_addr(addr)
    return addr & (PAGE_SIZE - 1) == 0


def page_number(addr: int) -> int:
    """Virtual page number containing ``addr``."""
    _check_addr(addr)
    return addr >> PAGE_SHIFT


def page_address(vpn: int) -> int:
    """Base virtual address of page number ``vpn``."""
    if not 0 <= vpn <= _VPN_MASK:
        raise ValueError(f"virtual page number {vpn:#x} outside 52 bits")
    return vpn << PAGE_SHIFT


def pages_for_bytes(nbytes: int) -> int:
    """Number of whole pages needed to hold ``nbytes``."""
    if nbytes < 0:
        raise ValueError(f"negative byte count {nbytes}")
    return (nbytes + PAGE_SIZE - 1) // PAGE_SIZE


def encode_page_key(addr: int, partition: int = 0) -> int:
    """Encode a faulting address + virtual partition into a 64-bit key.

    The upper 52 bits hold the page number of ``addr``; the lower 12 bits
    hold ``partition``.  This exactly follows paper §IV: "the key is a
    64-bit integer matching the first 52 bits of the virtual memory
    address ... we use the remaining 12 bits to index a virtual
    partition".
    """
    _check_addr(addr)
    if not 0 <= partition <= MAX_PARTITION:
        raise ValueError(
            f"partition {partition} outside [0, {MAX_PARTITION}]"
        )
    return (page_number(addr) << PARTITION_BITS) | partition


def decode_page_key(key: int) -> tuple:
    """Inverse of :func:`encode_page_key` -> (page_base_addr, partition)."""
    if not 0 <= key <= _ADDR_MASK:
        raise ValueError(f"key {key:#x} outside 64 bits")
    partition = key & MAX_PARTITION
    vpn = key >> PARTITION_BITS
    return page_address(vpn), partition


def _check_addr(addr: int) -> None:
    if not 0 <= addr <= _ADDR_MASK:
        raise ValueError(f"address {addr:#x} outside 64-bit space")
