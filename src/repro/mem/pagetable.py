"""Per-process page tables.

A :class:`PageTable` maps page-aligned virtual addresses to physical
frames.  A *fault* is simply an access to a non-present address — the
kernel model (:mod:`repro.kernel.faults`) decides what happens next
(regular anonymous fault, swap-in, or a userfaultfd event).

The table also models what ``UFFD_REMAP`` exploits: a mapping can be
*moved* between two tables (VM -> monitor buffer) by rewriting entries
without touching page contents (paper §V-B, zero-copy semantics).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..errors import PageTableError
from .addr import PAGE_SIZE, is_page_aligned
from .page import Page

__all__ = ["PageTableEntry", "PageTable"]

#: Low bits that must be clear on any page-aligned address.  The hot
#: methods test ``vaddr & _OFFSET_MASK or vaddr >> 64`` inline (aligned,
#: non-negative, within 64 bits) and only call the full checker — which
#: raises the precise error — when that guard trips.
_OFFSET_MASK = PAGE_SIZE - 1


class PageTableEntry:
    """One present PTE: frame plus the page metadata object."""

    __slots__ = ("frame", "page")

    def __init__(self, frame: int, page: Page) -> None:
        self.frame = frame
        self.page = page

    def __repr__(self) -> str:
        return f"<PTE frame={self.frame} page={self.page!r}>"


class PageTable:
    """Sparse map from page-aligned vaddr to :class:`PageTableEntry`."""

    def __init__(self, name: str = "pagetable") -> None:
        self.name = name
        self._entries: Dict[int, PageTableEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vaddr: int) -> bool:
        return vaddr in self._entries

    @property
    def present_pages(self) -> int:
        """Number of currently mapped pages (the resident footprint)."""
        return len(self._entries)

    def map(self, vaddr: int, frame: int, page: Page) -> None:
        """Install a mapping; the address must not already be present."""
        if vaddr & _OFFSET_MASK or vaddr >> 64:
            self._check_aligned(vaddr)
        if vaddr in self._entries:
            raise PageTableError(
                f"{self.name}: {vaddr:#x} is already mapped"
            )
        self._entries[vaddr] = PageTableEntry(frame, page)

    def unmap(self, vaddr: int) -> PageTableEntry:
        """Remove and return the mapping for ``vaddr``."""
        if vaddr & _OFFSET_MASK or vaddr >> 64:
            self._check_aligned(vaddr)
        try:
            return self._entries.pop(vaddr)
        except KeyError:
            raise PageTableError(
                f"{self.name}: {vaddr:#x} is not mapped"
            ) from None

    def lookup(self, vaddr: int) -> Optional[PageTableEntry]:
        """The PTE for ``vaddr``, or ``None`` if not present (a fault)."""
        if vaddr & _OFFSET_MASK or vaddr >> 64:
            self._check_aligned(vaddr)
        return self._entries.get(vaddr)

    def entry(self, vaddr: int) -> PageTableEntry:
        """Like :meth:`lookup` but raises when absent."""
        pte = self.lookup(vaddr)
        if pte is None:
            raise PageTableError(f"{self.name}: {vaddr:#x} is not mapped")
        return pte

    def remap_to(
        self, vaddr: int, other: "PageTable", other_vaddr: int
    ) -> PageTableEntry:
        """Move a mapping into another table (the ``UFFD_REMAP`` core).

        The frame and page object travel; no contents are copied.  After
        this, ``vaddr`` faults in this table and ``other_vaddr`` is
        present in ``other``.
        """
        pte = self.unmap(vaddr)
        try:
            other.map(other_vaddr, pte.frame, pte.page)
        except PageTableError:
            # Roll back so a failed remap leaves state unchanged.
            self._entries[vaddr] = pte
            raise
        return pte

    def items(self) -> Iterator[Tuple[int, PageTableEntry]]:
        return iter(self._entries.items())

    def addresses(self) -> Iterator[int]:
        return iter(self._entries.keys())

    @staticmethod
    def _check_aligned(vaddr: int) -> None:
        if not is_page_aligned(vaddr):
            raise PageTableError(
                f"address {vaddr:#x} is not page aligned"
            )

    def __repr__(self) -> str:
        return f"<PageTable {self.name!r} present={len(self._entries)}>"
