"""The page model.

Pages carry a *kind* because the full-vs-partial disaggregation argument
(paper §II) is entirely about kinds: Linux swap can only evict anonymous
pages, while FluidMem disaggregates file-backed, kernel, and unevictable
pages too.

A page optionally carries contents.  Functional tests use real bytes to
verify end-to-end data integrity through eviction / writeback / restore;
large benchmark runs leave ``data`` as ``None`` to stay fast, tracking a
``version`` counter instead so stale-read bugs are still detectable.
"""

from __future__ import annotations

import enum
from typing import Optional

from .addr import PAGE_SIZE, is_page_aligned

__all__ = ["PageKind", "Page", "ZERO_PAGE_DATA"]

#: Contents of the kernel's shared zero page.
ZERO_PAGE_DATA = bytes(PAGE_SIZE)

#: Inline alignment guard for the hot ``Page.__init__`` path: only call
#: the full (range-checking, exception-raising) helper when this trips.
_OFFSET_MASK = PAGE_SIZE - 1


class PageKind(enum.Enum):
    """What a page backs, which decides who may evict it.

    ============== ============================= =======================
    Kind           Example                       Swappable by Linux swap
    ============== ============================= =======================
    ANONYMOUS      heap, stack                   yes
    FILE_BACKED    mmap'ed files, page cache     no (written to its file)
    KERNEL         kernel text/data, slabs       no
    UNEVICTABLE    mlock'ed / pinned memory      no
    ============== ============================= =======================

    FluidMem can disaggregate *all* of them (paper §II), which is the
    paper's definition of full memory disaggregation.
    """

    ANONYMOUS = "anonymous"
    FILE_BACKED = "file-backed"
    KERNEL = "kernel"
    UNEVICTABLE = "unevictable"

    @property
    def swappable(self) -> bool:
        """Whether the Linux swap subsystem may move this page to swap."""
        return self is PageKind.ANONYMOUS


class Page:
    """One 4 KB page of a guest's (or process's) virtual memory.

    Identity is the page-aligned virtual address within one address
    space; callers key dictionaries by ``page.vaddr``.
    """

    __slots__ = (
        "vaddr",
        "kind",
        "dirty",
        "referenced",
        "mlocked",
        "version",
        "data",
    )

    def __init__(
        self,
        vaddr: int,
        kind: PageKind = PageKind.ANONYMOUS,
        data: Optional[bytes] = None,
        mlocked: bool = False,
    ) -> None:
        if (vaddr & _OFFSET_MASK or vaddr >> 64) and \
                not is_page_aligned(vaddr):
            raise ValueError(f"page address {vaddr:#x} is not page aligned")
        if data is not None and len(data) != PAGE_SIZE:
            raise ValueError(
                f"page data must be exactly {PAGE_SIZE} bytes, "
                f"got {len(data)}"
            )
        self.vaddr = vaddr
        self.kind = kind
        self.dirty = False
        self.referenced = False
        self.mlocked = mlocked
        #: Monotonic write counter for stale-read detection without bytes.
        self.version = 0
        self.data = data

    @property
    def evictable_by_swap(self) -> bool:
        """Linux swap eligibility: anonymous and not mlocked (paper §II)."""
        return self.kind.swappable and not self.mlocked

    def write(self, data: Optional[bytes] = None) -> None:
        """Record a store to this page (marks dirty, bumps version)."""
        if data is not None:
            if len(data) != PAGE_SIZE:
                raise ValueError(
                    f"page data must be exactly {PAGE_SIZE} bytes, "
                    f"got {len(data)}"
                )
            self.data = data
        self.dirty = True
        self.referenced = True
        self.version += 1

    def read(self) -> Optional[bytes]:
        """Record a load from this page; returns contents if tracked."""
        self.referenced = True
        return self.data

    def clear_referenced(self) -> bool:
        """Clear and return the referenced bit (kswapd's aging scan)."""
        was = self.referenced
        self.referenced = False
        return was

    def __repr__(self) -> str:
        flags = "".join(
            flag
            for flag, on in (
                ("D", self.dirty),
                ("R", self.referenced),
                ("L", self.mlocked),
            )
            if on
        )
        return (
            f"<Page {self.vaddr:#x} {self.kind.value}"
            f"{' ' + flags if flags else ''} v{self.version}>"
        )
