"""Memory regions and address spaces.

A :class:`MemoryRegion` is a contiguous, page-aligned range with a
default page kind (what QEMU would get back from one big ``mmap``).  An
:class:`AddressSpace` is an ordered, non-overlapping set of regions —
enough structure to model a QEMU process's guest-RAM mappings, hotplug
slots, and the monitor's user-space eviction buffer.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional

from ..errors import RegionError
from .addr import PAGE_SIZE, is_page_aligned
from .page import PageKind

__all__ = ["MemoryRegion", "AddressSpace"]


class MemoryRegion:
    """A page-aligned ``[start, end)`` range of one address space."""

    __slots__ = ("start", "length", "kind", "name")

    def __init__(
        self,
        start: int,
        length: int,
        kind: PageKind = PageKind.ANONYMOUS,
        name: str = "",
    ) -> None:
        if not is_page_aligned(start):
            raise RegionError(f"region start {start:#x} not page aligned")
        if length <= 0 or length % PAGE_SIZE != 0:
            raise RegionError(
                f"region length {length:#x} must be a positive page multiple"
            )
        self.start = start
        self.length = length
        self.kind = kind
        self.name = name

    @property
    def end(self) -> int:
        """One past the last byte (exclusive)."""
        return self.start + self.length

    @property
    def num_pages(self) -> int:
        return self.length // PAGE_SIZE

    def __contains__(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def overlaps(self, other: "MemoryRegion") -> bool:
        return self.start < other.end and other.start < self.end

    def pages(self) -> Iterator[int]:
        """Iterate the page-aligned addresses covered by the region."""
        return iter(range(self.start, self.end, PAGE_SIZE))

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<MemoryRegion{label} [{self.start:#x}, {self.end:#x}) "
            f"{self.kind.value} {self.num_pages}p>"
        )


class AddressSpace:
    """Ordered set of non-overlapping regions."""

    def __init__(self, name: str = "addrspace") -> None:
        self.name = name
        self._starts: List[int] = []
        self._regions: List[MemoryRegion] = []

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self) -> Iterator[MemoryRegion]:
        return iter(self._regions)

    def add(self, region: MemoryRegion) -> MemoryRegion:
        """Insert ``region``; rejects any overlap with existing regions."""
        index = bisect.bisect_left(self._starts, region.start)
        for neighbor_index in (index - 1, index):
            if 0 <= neighbor_index < len(self._regions):
                neighbor = self._regions[neighbor_index]
                if neighbor.overlaps(region):
                    raise RegionError(
                        f"{self.name}: {region!r} overlaps {neighbor!r}"
                    )
        self._starts.insert(index, region.start)
        self._regions.insert(index, region)
        return region

    def remove(self, region: MemoryRegion) -> None:
        try:
            index = self._regions.index(region)
        except ValueError:
            raise RegionError(
                f"{self.name}: {region!r} is not in this address space"
            ) from None
        del self._regions[index]
        del self._starts[index]

    def find(self, addr: int) -> Optional[MemoryRegion]:
        """The region containing ``addr``, or ``None``."""
        index = bisect.bisect_right(self._starts, addr) - 1
        if index >= 0 and addr in self._regions[index]:
            return self._regions[index]
        return None

    def total_pages(self) -> int:
        return sum(region.num_pages for region in self._regions)

    def allocate_gap(self, length: int, align: int = PAGE_SIZE) -> int:
        """Find the lowest free start >= align for a region of ``length``.

        A tiny mmap-style placement helper used when callers don't care
        where a region lives (e.g. the monitor's eviction buffers).
        """
        if length <= 0 or length % PAGE_SIZE != 0:
            raise RegionError(
                f"gap length {length:#x} must be a positive page multiple"
            )
        candidate = align
        for region in self._regions:
            if candidate + length <= region.start:
                return candidate
            candidate = max(candidate, region.end)
        return candidate

    def __repr__(self) -> str:
        return (
            f"<AddressSpace {self.name!r} regions={len(self._regions)} "
            f"pages={self.total_pages()}>"
        )
