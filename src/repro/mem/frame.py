"""Host physical-frame accounting.

The :class:`FrameAllocator` models the hypervisor's DRAM: a fixed pool of
4 KB frames.  What matters for the FluidMem experiments is *occupancy* —
how many frames a VM's footprint pins locally (Table III) and when memory
pressure starts (swap activation) — so frames are integer handles, not
byte arrays.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set

from ..errors import OutOfFramesError
from .addr import PAGE_SIZE

__all__ = ["FrameAllocator"]


class FrameAllocator:
    """Fixed pool of physical frames with O(1) allocate/free.

    Frames are recycled LIFO so long-running simulations keep the live
    handle set dense.
    """

    def __init__(self, total_frames: int) -> None:
        if total_frames <= 0:
            raise ValueError(f"total_frames must be > 0, got {total_frames}")
        self.total_frames = total_frames
        self._next_unused = 0
        self._free_stack: List[int] = []
        self._allocated: Set[int] = set()

    @classmethod
    def for_bytes(cls, nbytes: int) -> "FrameAllocator":
        """Allocator sized to hold ``nbytes`` of DRAM."""
        if nbytes < PAGE_SIZE:
            raise ValueError(f"need at least one page of DRAM, got {nbytes}")
        return cls(nbytes // PAGE_SIZE)

    @property
    def used_frames(self) -> int:
        return len(self._allocated)

    @property
    def free_frames(self) -> int:
        return self.total_frames - len(self._allocated)

    @property
    def used_bytes(self) -> int:
        return self.used_frames * PAGE_SIZE

    def allocate(self) -> int:
        """Take a free frame; raises :class:`OutOfFramesError` when full."""
        if self._free_stack:
            frame = self._free_stack.pop()
        elif self._next_unused < self.total_frames:
            frame = self._next_unused
            self._next_unused += 1
        else:
            raise OutOfFramesError(
                f"all {self.total_frames} frames are allocated"
            )
        self._allocated.add(frame)
        return frame

    def try_allocate(self) -> Optional[int]:
        """Like :meth:`allocate` but returns ``None`` when full."""
        try:
            return self.allocate()
        except OutOfFramesError:
            return None

    def free(self, frame: int) -> None:
        """Return ``frame`` to the pool."""
        try:
            self._allocated.remove(frame)
        except KeyError:
            raise OutOfFramesError(
                f"frame {frame} is not currently allocated"
            ) from None
        self._free_stack.append(frame)

    def is_allocated(self, frame: int) -> bool:
        return frame in self._allocated

    def allocated_frames(self) -> Iterator[int]:
        """Iterate over currently allocated frame handles."""
        return iter(sorted(self._allocated))

    def __repr__(self) -> str:
        return (
            f"<FrameAllocator {self.used_frames}/{self.total_frames} used>"
        )
