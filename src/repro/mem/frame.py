"""Host physical-frame accounting.

The :class:`FrameAllocator` models the hypervisor's DRAM: a fixed pool of
4 KB frames.  What matters for the FluidMem experiments is *occupancy* —
how many frames a VM's footprint pins locally (Table III) and when memory
pressure starts (swap activation) — so frames are integer handles, not
byte arrays.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from ..errors import OutOfFramesError
from .addr import PAGE_SIZE

__all__ = ["FrameAllocator"]


class FrameAllocator:
    """Fixed pool of physical frames with O(1) allocate/free.

    By default frames are recycled LIFO so long-running simulations
    keep the live handle set dense.  Pass ``policy`` (a
    :class:`repro.policy.AllocationPolicy`) to delegate *which* free
    frame is handed out next — the default ``None`` keeps the built-in
    free stack, byte-identical to the historical behaviour.
    """

    def __init__(self, total_frames: int, policy=None) -> None:
        if total_frames <= 0:
            raise ValueError(f"total_frames must be > 0, got {total_frames}")
        self.total_frames = total_frames
        self._next_unused = 0
        self._free_stack: List[int] = []
        self._allocated: Set[int] = set()
        self._policy = policy
        if policy is not None:
            policy.bind(total_frames)

    @classmethod
    def for_bytes(cls, nbytes: int) -> "FrameAllocator":
        """Allocator sized to hold ``nbytes`` of DRAM."""
        if nbytes < PAGE_SIZE:
            raise ValueError(f"need at least one page of DRAM, got {nbytes}")
        return cls(nbytes // PAGE_SIZE)

    @property
    def used_frames(self) -> int:
        return len(self._allocated)

    @property
    def free_frames(self) -> int:
        return self.total_frames - len(self._allocated)

    @property
    def used_bytes(self) -> int:
        return self.used_frames * PAGE_SIZE

    def allocate(self) -> int:
        """Take a free frame; raises :class:`OutOfFramesError` when full."""
        if self._policy is not None:
            frame = self._policy.take()
            if frame is None:
                raise OutOfFramesError(
                    f"all {self.total_frames} frames are allocated"
                )
        elif self._free_stack:
            frame = self._free_stack.pop()
        elif self._next_unused < self.total_frames:
            frame = self._next_unused
            self._next_unused += 1
        else:
            raise OutOfFramesError(
                f"all {self.total_frames} frames are allocated"
            )
        self._allocated.add(frame)
        return frame

    def try_allocate(self) -> Optional[int]:
        """Like :meth:`allocate` but returns ``None`` when full."""
        try:
            return self.allocate()
        except OutOfFramesError:
            return None

    def free(self, frame: int) -> None:
        """Return ``frame`` to the pool."""
        try:
            self._allocated.remove(frame)
        except KeyError:
            raise OutOfFramesError(
                f"frame {frame} is not currently allocated"
            ) from None
        if self._policy is not None:
            self._policy.give(frame)
        else:
            self._free_stack.append(frame)

    def is_allocated(self, frame: int) -> bool:
        return frame in self._allocated

    def allocated_frames(self) -> Iterator[int]:
        """Iterate over currently allocated frame handles."""
        return iter(sorted(self._allocated))

    @property
    def policy_name(self) -> str:
        return "lifo" if self._policy is None else self._policy.name

    def fragmentation(self) -> Dict[str, object]:
        """External fragmentation of the live handle set.

        ``span_frames`` is the extent from lowest to highest live
        handle; ``occupancy`` how densely that extent is filled (1.0 =
        perfectly packed); ``allocated_runs`` how many maximal
        contiguous runs the live set splinters into.  Computed from
        the allocated set alone, so every policy is measured by the
        same ruler.
        """
        used = len(self._allocated)
        if used == 0:
            return {
                "policy": self.policy_name,
                "used_frames": 0,
                "span_frames": 0,
                "occupancy": 1.0,
                "allocated_runs": 0,
            }
        ordered = sorted(self._allocated)
        span = ordered[-1] - ordered[0] + 1
        runs = 1 + sum(
            1 for lower, upper in zip(ordered, ordered[1:])
            if upper != lower + 1
        )
        return {
            "policy": self.policy_name,
            "used_frames": used,
            "span_frames": span,
            "occupancy": round(used / span, 4),
            "allocated_runs": runs,
        }

    def __repr__(self) -> str:
        return (
            f"<FrameAllocator {self.used_frames}/{self.total_frames} used>"
        )
