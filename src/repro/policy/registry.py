"""Named policy registries and tournament combo enumeration.

One place maps policy names (the strings carried in
:class:`~repro.core.FluidMemConfig` and the tournament's combo labels)
to factories.  Factories return *fresh* instances — policies hold
per-run state, so two monitors must never share one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..errors import FluidMemError
from .alloc import (
    AllocationPolicy,
    BuddyAllocationPolicy,
    FirstFitAllocationPolicy,
    LifoAllocationPolicy,
    SizeClassArenaAllocationPolicy,
)
from .prefetch import resolve_prefetcher  # noqa: F401  (re-exported)

__all__ = [
    "ALLOCATION_POLICIES",
    "PREFETCH_POLICIES",
    "DEFAULT_ALLOC_POLICY",
    "DEFAULT_PREFETCH_POLICY",
    "PolicyCombo",
    "make_alloc_policy",
    "validate_policy_names",
]

#: Allocation policy name -> zero-arg factory.
ALLOCATION_POLICIES: Dict[str, Callable[[], AllocationPolicy]] = {
    "lifo": LifoAllocationPolicy,
    "first-fit": FirstFitAllocationPolicy,
    "buddy": BuddyAllocationPolicy,
    "arena": SizeClassArenaAllocationPolicy,
}

#: Prefetch policy names understood by
#: :func:`repro.policy.prefetch.resolve_prefetcher`.
PREFETCH_POLICIES: Tuple[str, ...] = ("none", "sequential", "leap")

#: The shipped defaults (byte-identical to the pre-policy-lab code).
DEFAULT_ALLOC_POLICY = "lifo"
DEFAULT_PREFETCH_POLICY = "sequential"


def make_alloc_policy(name: str) -> Optional[AllocationPolicy]:
    """Fresh allocation policy for ``name``.

    Returns ``None`` for ``"lifo"`` — the owner's built-in free stack
    *is* the LIFO policy, and skipping the indirection keeps the
    default hot path (and its bytes) identical to the pre-policy code.
    """
    if name == DEFAULT_ALLOC_POLICY:
        return None
    factory = ALLOCATION_POLICIES.get(name)
    if factory is None:
        raise FluidMemError(
            f"unknown allocation policy {name!r}; choose from "
            f"{tuple(sorted(ALLOCATION_POLICIES))}"
        )
    return factory()


def validate_policy_names(alloc: str, prefetch: str) -> None:
    """Fail fast on a bad config knob (used at monitor build time)."""
    if alloc not in ALLOCATION_POLICIES:
        raise FluidMemError(
            f"unknown allocation policy {alloc!r}; choose from "
            f"{tuple(sorted(ALLOCATION_POLICIES))}"
        )
    if prefetch not in PREFETCH_POLICIES:
        raise FluidMemError(
            f"unknown prefetch policy {prefetch!r}; choose from "
            f"{PREFETCH_POLICIES}"
        )


@dataclass(frozen=True)
class PolicyCombo:
    """One tournament contestant: an (alloc, prefetch, handlers) triple."""

    alloc: str
    prefetch: str
    handlers: int

    def __post_init__(self) -> None:
        validate_policy_names(self.alloc, self.prefetch)
        if self.handlers < 1:
            raise FluidMemError(
                f"handlers must be >= 1, got {self.handlers}"
            )

    @property
    def label(self) -> str:
        return f"{self.alloc}+{self.prefetch}+h{self.handlers}"
