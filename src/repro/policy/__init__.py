"""Pluggable memory-management policies (the "policy lab").

Three families, each behind a small ABC with interchangeable
implementations, raced against each other by the ``tournament`` bench
experiment (``python -m repro.bench tournament``):

* :mod:`repro.policy.alloc` — where frames and remote-store slots are
  placed (LIFO stack, first-fit, buddy, size-class arenas),
* :mod:`repro.policy.prefetch` — which pages the monitor pulls ahead
  of demand (none, sequential, Leap majority-trend),
* :mod:`repro.policy.share` — which VM's page is evicted first
  (weighted proportional shares; previously ``repro.core.policy``).

``repro.policy.share`` imports from :mod:`repro.core` and is loaded
lazily here, so the allocation/prefetch half of the package stays
importable from inside ``repro.core`` itself without a cycle.
"""

from .alloc import (
    AllocationPolicy,
    BuddyAllocationPolicy,
    FirstFitAllocationPolicy,
    LifoAllocationPolicy,
    SizeClassArenaAllocationPolicy,
)
from .prefetch import (
    LeapPrefetcher,
    NoopPrefetcher,
    Prefetcher,
    SequentialPrefetcher,
    resolve_prefetcher,
)
from .registry import (
    ALLOCATION_POLICIES,
    DEFAULT_ALLOC_POLICY,
    DEFAULT_PREFETCH_POLICY,
    PREFETCH_POLICIES,
    PolicyCombo,
    make_alloc_policy,
    validate_policy_names,
)

__all__ = [
    "AllocationPolicy",
    "LifoAllocationPolicy",
    "FirstFitAllocationPolicy",
    "BuddyAllocationPolicy",
    "SizeClassArenaAllocationPolicy",
    "Prefetcher",
    "NoopPrefetcher",
    "SequentialPrefetcher",
    "LeapPrefetcher",
    "resolve_prefetcher",
    "ALLOCATION_POLICIES",
    "PREFETCH_POLICIES",
    "DEFAULT_ALLOC_POLICY",
    "DEFAULT_PREFETCH_POLICY",
    "PolicyCombo",
    "make_alloc_policy",
    "validate_policy_names",
    "SharePolicy",
    "ShareSpec",
]


def __getattr__(name):  # PEP 562: lazy share import (avoids a cycle
    # while repro.core's own __init__ is still executing).
    if name in ("SharePolicy", "ShareSpec"):
        from .share import SharePolicy, ShareSpec

        return {"SharePolicy": SharePolicy, "ShareSpec": ShareSpec}[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
