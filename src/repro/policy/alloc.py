"""Allocation strategies for frame and remote-slot placement.

The paper's monitor allocates host frames and remote-store slots with
one hard-coded scheme (a LIFO free stack — dense handles, zero search
cost).  The disaggregation follow-ups treat placement as a policy in
its own right: fragmentation of the remote slab determines how well a
provider can reclaim, compact, or hand back memory.  This module makes
the scheme pluggable behind a three-method ABC:

* :class:`LifoAllocationPolicy` — the shipped behaviour (free stack),
* :class:`FirstFitAllocationPolicy` — lowest free index first,
* :class:`BuddyAllocationPolicy` — power-of-two buddy system with
  split/coalesce (order-0 grants; higher orders kept for headroom),
* :class:`SizeClassArenaAllocationPolicy` — the pool partitioned into
  fixed arenas; grants come from the emptiest arena (most-free-first),
  which clusters frees and keeps whole arenas reclaimable.

Every policy is deterministic: the same take/give sequence produces
the same indices, whatever the host interpreter or hash seeds do.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set

from ..errors import FluidMemError

__all__ = [
    "AllocationPolicy",
    "LifoAllocationPolicy",
    "FirstFitAllocationPolicy",
    "BuddyAllocationPolicy",
    "SizeClassArenaAllocationPolicy",
]


class AllocationPolicy:
    """Placement strategy over a fixed pool of integer slots.

    Lifecycle: :meth:`bind` once with the pool size, then any
    interleaving of :meth:`take` / :meth:`give`.  ``take`` returns a
    free slot index in ``[0, total)`` or ``None`` when the pool is
    exhausted; ``give`` returns a previously taken slot.  The *owner*
    (:class:`~repro.mem.FrameAllocator`, the slot-tracked store
    wrapper, the monitor's eviction buffer) tracks which slots are
    live — policies only decide *which* free slot to hand out next.
    """

    name = "abstract"

    def bind(self, total: int) -> None:
        raise NotImplementedError

    def take(self) -> Optional[int]:
        raise NotImplementedError

    def give(self, index: int) -> None:
        raise NotImplementedError


class LifoAllocationPolicy(AllocationPolicy):
    """The shipped scheme: most-recently-freed slot first.

    Mirrors :class:`~repro.mem.FrameAllocator`'s built-in free stack
    exactly — same indices in the same order — so the default policy
    is byte-identical to a policy-free allocator.
    """

    name = "lifo"

    def __init__(self) -> None:
        self._total = 0
        self._next_unused = 0
        self._free_stack: List[int] = []

    def bind(self, total: int) -> None:
        if total <= 0:
            raise FluidMemError(f"pool size must be > 0, got {total}")
        self._total = total

    def take(self) -> Optional[int]:
        if self._free_stack:
            return self._free_stack.pop()
        if self._next_unused < self._total:
            index = self._next_unused
            self._next_unused += 1
            return index
        return None

    def give(self, index: int) -> None:
        self._free_stack.append(index)


class FirstFitAllocationPolicy(AllocationPolicy):
    """Lowest free index first (classic first-fit slab).

    Keeps the live set packed toward the bottom of the pool, so the
    high end stays contiguous and cheap to reclaim wholesale.
    """

    name = "first-fit"

    def __init__(self) -> None:
        self._total = 0
        self._next_unused = 0
        self._free_heap: List[int] = []

    def bind(self, total: int) -> None:
        if total <= 0:
            raise FluidMemError(f"pool size must be > 0, got {total}")
        self._total = total

    def take(self) -> Optional[int]:
        if self._free_heap and (
            self._next_unused >= self._total
            or self._free_heap[0] < self._next_unused
        ):
            return heapq.heappop(self._free_heap)
        if self._next_unused < self._total:
            index = self._next_unused
            self._next_unused += 1
            return index
        if self._free_heap:
            return heapq.heappop(self._free_heap)
        return None

    def give(self, index: int) -> None:
        heapq.heappush(self._free_heap, index)


class BuddyAllocationPolicy(AllocationPolicy):
    """Power-of-two buddy system granting order-0 slots.

    The pool is decomposed into maximal aligned power-of-two blocks;
    a ``take`` splits the smallest-order block available (lowest
    address on ties) down to order 0, and a ``give`` coalesces the
    freed slot with its buddy as far up as it can.  Higher-order free
    blocks are exactly the reclaimable contiguous extents — the
    fragmentation signal a provider compacting remote memory watches.
    """

    name = "buddy"

    def __init__(self, max_order: int = 12) -> None:
        if max_order < 0:
            raise FluidMemError(f"max_order must be >= 0, got {max_order}")
        self.max_order = max_order
        self._total = 0
        #: order -> set of free block base indices (sets give O(1)
        #: buddy lookup; the paired heap gives deterministic minima).
        self._free_sets: List[Set[int]] = []
        self._free_heaps: List[List[int]] = []

    def bind(self, total: int) -> None:
        if total <= 0:
            raise FluidMemError(f"pool size must be > 0, got {total}")
        self._total = total
        orders = self.max_order + 1
        self._free_sets = [set() for _ in range(orders)]
        self._free_heaps = [[] for _ in range(orders)]
        # Greedy decomposition of [0, total) into aligned blocks.
        base = 0
        remaining = total
        while remaining > 0:
            order = self.max_order
            while order > 0 and (
                (1 << order) > remaining or base % (1 << order) != 0
            ):
                order -= 1
            self._push(order, base)
            base += 1 << order
            remaining -= 1 << order

    def _push(self, order: int, base: int) -> None:
        self._free_sets[order].add(base)
        heapq.heappush(self._free_heaps[order], base)

    def _pop_min(self, order: int) -> int:
        # Lazy deletion: coalescing removes bases from the set only.
        heap = self._free_heaps[order]
        free = self._free_sets[order]
        while True:
            base = heapq.heappop(heap)
            if base in free:
                free.remove(base)
                return base

    def take(self) -> Optional[int]:
        order = 0
        while order <= self.max_order and not self._free_sets[order]:
            order += 1
        if order > self.max_order:
            return None
        base = self._pop_min(order)
        # Split down to order 0, freeing the upper halves.
        while order > 0:
            order -= 1
            self._push(order, base + (1 << order))
        return base

    def give(self, index: int) -> None:
        order = 0
        base = index
        while order < self.max_order:
            buddy = base ^ (1 << order)
            # A buddy straddling the pool end never existed as a block.
            if buddy + (1 << order) > self._total:
                break
            if buddy not in self._free_sets[order]:
                break
            self._free_sets[order].remove(buddy)
            base = min(base, buddy)
            order += 1
        self._push(order, base)

    def free_blocks(self) -> Dict[int, int]:
        """order -> count of free blocks (the coalescing telemetry)."""
        return {
            order: len(blocks)
            for order, blocks in enumerate(self._free_sets)
            if blocks
        }


class SizeClassArenaAllocationPolicy(AllocationPolicy):
    """Fixed arenas; grants come from the emptiest arena.

    The pool is split into ``arena_slots``-sized arenas.  A ``take``
    picks the arena with the most free slots (lowest index on ties)
    and hands out its lowest free slot — allocation pressure
    concentrates in few arenas, so lightly-used arenas drain to empty
    and become reclaimable as whole units.
    """

    name = "arena"

    def __init__(self, arena_slots: int = 64) -> None:
        if arena_slots < 1:
            raise FluidMemError(
                f"arena_slots must be >= 1, got {arena_slots}"
            )
        self.arena_slots = arena_slots
        self._total = 0
        self._arena_free: List[List[int]] = []  # min-heaps of free slots
        self._arena_free_count: List[int] = []

    def bind(self, total: int) -> None:
        if total <= 0:
            raise FluidMemError(f"pool size must be > 0, got {total}")
        self._total = total
        arenas = (total + self.arena_slots - 1) // self.arena_slots
        self._arena_free = []
        self._arena_free_count = []
        for arena in range(arenas):
            low = arena * self.arena_slots
            high = min(low + self.arena_slots, total)
            slots = list(range(low, high))
            self._arena_free.append(slots)  # already heap-ordered
            self._arena_free_count.append(len(slots))

    def take(self) -> Optional[int]:
        best = -1
        best_free = 0
        for arena, free in enumerate(self._arena_free_count):
            if free > best_free:
                best = arena
                best_free = free
        if best < 0:
            return None
        self._arena_free_count[best] -= 1
        return heapq.heappop(self._arena_free[best])

    def give(self, index: int) -> None:
        arena = index // self.arena_slots
        heapq.heappush(self._arena_free[arena], index)
        self._arena_free_count[arena] += 1

    def arena_occupancy(self) -> List[float]:
        """Per-arena fill fraction (the reclaimability telemetry)."""
        out = []
        for arena, free in enumerate(self._arena_free_count):
            low = arena * self.arena_slots
            high = min(low + self.arena_slots, self._total)
            size = high - low
            out.append((size - free) / size if size else 0.0)
        return out
