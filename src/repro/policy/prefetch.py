"""Prefetch policies for the monitor's async-read path.

The paper sketches prefetching as §V-A future work; the reproduction
shipped one hard-coded scheme (pull the next N sequential pages).
This module turns the *candidate generation* into a policy:

* :class:`NoopPrefetcher` — never prefetch (the paper's shipped
  design; the baseline every other policy races against),
* :class:`SequentialPrefetcher` — next ``depth`` pages, exactly the
  behaviour previously hard-coded in ``Monitor._maybe_prefetch``,
* :class:`LeapPrefetcher` — the majority-trend detector from Leap
  (Al Maruf & Chowdhury, ATC'20): keep a window of recent fault
  deltas, find the majority delta with Boyer–Moore voting, and
  prefetch ``depth`` pages along that stride.  A window with no
  majority yields nothing — random access patterns stop polluting
  the LRU with wasted reads.

The monitor stays the enforcement point: policies only *propose*
addresses (bounded to the faulting region); eligibility filters
(already resident, first touch, on the write list, not in the store,
already in flight) and the issue/complete bookkeeping live in
``Monitor._maybe_prefetch``, identically for every policy.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..errors import FluidMemError
from ..mem.addr import PAGE_SIZE

__all__ = [
    "Prefetcher",
    "NoopPrefetcher",
    "SequentialPrefetcher",
    "LeapPrefetcher",
    "resolve_prefetcher",
]


class Prefetcher:
    """Candidate generator keyed by registration token.

    ``token`` identifies one VM registration (the monitor passes
    ``id(registration)``); per-VM state must be keyed on it so two
    tenants' access streams never blur into one trend.
    """

    name = "abstract"

    def record_fault(self, token: int, addr: int) -> None:
        """Observe one demand miss (the swap-in stream)."""

    def candidates(self, token: int, addr: int, region) -> List[int]:
        """Propose prefetch addresses for the fault at ``addr``.

        Every returned address must lie inside ``region`` (membership
        via ``in``); order is the issue order.
        """
        raise NotImplementedError

    def forget(self, token: int) -> None:
        """Drop per-registration state (VM deregistered/detached)."""


class NoopPrefetcher(Prefetcher):
    """Never prefetch — the paper's shipped design."""

    name = "none"

    def candidates(self, token: int, addr: int, region) -> List[int]:
        return []


class SequentialPrefetcher(Prefetcher):
    """Next-``depth`` sequential pages (the previous built-in)."""

    name = "sequential"

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise FluidMemError(f"depth must be >= 1, got {depth}")
        self.depth = depth

    def candidates(self, token: int, addr: int, region) -> List[int]:
        out = []
        for step in range(1, self.depth + 1):
            candidate = addr + step * PAGE_SIZE
            if candidate not in region:
                break
            out.append(candidate)
        return out


def _majority(values: List[int]) -> Optional[int]:
    """Boyer–Moore majority vote: the element occurring in more than
    half of ``values``, or None when no such element exists."""
    if not values:
        return None
    candidate = values[0]
    count = 0
    for value in values:
        if count == 0:
            candidate = value
            count = 1
        elif value == candidate:
            count += 1
        else:
            count -= 1
    if sum(1 for value in values if value == candidate) * 2 > len(values):
        return candidate
    return None


class LeapPrefetcher(Prefetcher):
    """Leap's majority-trend window detector.

    Per registration, keep the last ``window`` fault addresses; the
    deltas between consecutive faults vote (Boyer–Moore) for a trend.
    A strict-majority delta ``d`` (in pages, any direction, including
    strides > 1) proposes ``addr + k*d`` for ``k`` in ``1..depth``;
    no majority — e.g. uniform random access — proposes nothing.
    """

    name = "leap"

    def __init__(self, depth: int, window: int = 32) -> None:
        if depth < 1:
            raise FluidMemError(f"depth must be >= 1, got {depth}")
        if window < 2:
            raise FluidMemError(f"window must be >= 2, got {window}")
        self.depth = depth
        self.window = window
        self._history: Dict[int, Deque[int]] = {}

    def record_fault(self, token: int, addr: int) -> None:
        history = self._history.get(token)
        if history is None:
            history = self._history[token] = deque(maxlen=self.window)
        history.append(addr)

    def trend(self, token: int) -> Optional[int]:
        """The majority inter-fault delta in bytes, or None."""
        history = self._history.get(token)
        if history is None or len(history) < 2:
            return None
        deltas = [
            later - earlier
            for earlier, later in zip(history, list(history)[1:])
        ]
        delta = _majority(deltas)
        if delta is None or delta == 0:
            return None
        return delta

    def candidates(self, token: int, addr: int, region) -> List[int]:
        delta = self.trend(token)
        if delta is None:
            return []
        out = []
        for step in range(1, self.depth + 1):
            candidate = addr + step * delta
            if candidate not in region:
                break
            out.append(candidate)
        return out

    def forget(self, token: int) -> None:
        self._history.pop(token, None)


def resolve_prefetcher(policy: str, depth: int) -> Optional[Prefetcher]:
    """Build the monitor's prefetcher from its config knobs.

    Returns ``None`` when no prefetching should happen — the "none"
    policy, or any policy at depth 0 (the shipped default, so a
    default config costs exactly one ``is None`` check per fault).
    """
    if policy == "none" or depth <= 0:
        return None
    if policy == "sequential":
        return SequentialPrefetcher(depth)
    if policy == "leap":
        return LeapPrefetcher(depth)
    raise FluidMemError(
        f"unknown prefetch policy {policy!r}; choose from "
        "('none', 'sequential', 'leap')"
    )
