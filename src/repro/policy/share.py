"""Provider memory policy: per-VM shares over the global LRU budget.

The paper motivates this exact control point (§III): because the
monitor sees *every* page of every VM, "an administrator can then
manage VM memory allocations in a fine-grained manner, dynamically
mapping VM memory between local and remote memory pages", implementing
"a provider's or application's custom memory usage policy" — something
swap fundamentally cannot do.

:class:`SharePolicy` is such a policy: each VM gets a weight, an
optional guaranteed minimum, and an optional cap of resident pages.
When the monitor must evict, the policy picks the victim VM with the
highest usage relative to its entitlement (capped VMs first, guaranteed
minima last) and evicts that VM's oldest page.

Historically this lived at ``repro.core.policy``; it moved here when
the :mod:`repro.policy` package collected every pluggable policy
family (allocation, prefetch, shares).  The old module remains as a
deprecation shim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from ..errors import FluidMemError

if TYPE_CHECKING:  # type-only: a runtime import of repro.core here
    # would cycle back into this module via repro.core/__init__.
    from ..core.lru_buffer import LruBuffer, LruEntry

__all__ = ["ShareSpec", "SharePolicy"]


@dataclass(frozen=True)
class ShareSpec:
    """One VM's entitlement."""

    weight: float = 1.0
    #: Pages the provider guarantees resident (best effort: the VM must
    #: actually use them).
    min_pages: int = 0
    #: Hard cap of resident pages (None = no cap).
    max_pages: Optional[int] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise FluidMemError(f"weight must be > 0, got {self.weight}")
        if self.min_pages < 0:
            raise FluidMemError("min_pages must be >= 0")
        if self.max_pages is not None and self.max_pages < self.min_pages:
            raise FluidMemError("max_pages must be >= min_pages")


class SharePolicy:
    """Weighted proportional-share victim selection."""

    def __init__(self, default: Optional[ShareSpec] = None) -> None:
        self.default = default or ShareSpec()
        self._specs: Dict[int, ShareSpec] = {}
        self._registrations: Dict[int, object] = {}

    def set_share(self, registration: object, spec: ShareSpec) -> None:
        self._specs[id(registration)] = spec
        self._registrations[id(registration)] = registration

    def spec_for(self, registration: object) -> ShareSpec:
        return self._specs.get(id(registration), self.default)

    def forget(self, registration: object) -> None:
        self._specs.pop(id(registration), None)
        self._registrations.pop(id(registration), None)

    # -- the monitor's eviction hook --------------------------------------------

    def select_victim(self, lru: "LruBuffer") -> Optional["LruEntry"]:
        """Pop the best victim under the share rules.

        Candidate ranking, best victim first:

        1. any VM above its ``max_pages`` cap,
        2. the VM with the highest ``resident / weight`` among those
           above their ``min_pages`` guarantee,
        3. fall back to global FIFO (everyone is within guarantees —
           overcommitted minima degrade gracefully).
        """
        # Seen registrations: those with entries right now.
        usage = {}
        for _vaddr, registration in lru:
            key = id(registration)
            if key not in usage:
                usage[key] = (registration, lru.count_for(registration))

        over_cap = None
        best = None
        best_score = -1.0
        for registration, resident in usage.values():
            spec = self.spec_for(registration)
            if spec.max_pages is not None and resident > spec.max_pages:
                over_cap = registration
                break
            if resident <= spec.min_pages:
                continue  # protected by its guarantee
            score = resident / spec.weight
            if score > best_score:
                best_score = score
                best = registration

        if over_cap is not None:
            return lru.pop_oldest_of(over_cap)
        if best is not None:
            return lru.pop_oldest_of(best)
        return lru.pop_eviction_candidate()

    def enforce_cap(self, lru: "LruBuffer", registration: object) -> int:
        """Pages a capped VM currently holds beyond its limit."""
        spec = self.spec_for(registration)
        if spec.max_pages is None:
            return 0
        return max(0, lru.count_for(registration) - spec.max_pages)
