"""Campaign driver: sweep seeds × schedules × scenarios, shrink failures.

The campaign is the harness's outer loop.  For every combination it
runs :func:`repro.check.scenarios.run_scenario`; a raised
:class:`~repro.errors.InvariantViolation` is shrunk to the smallest
operation count that still reproduces (the whole stack is
deterministic for a fixed (scenario, seed, schedule, ops, faults)
tuple, so binary search over ``ops`` is sound), then reported as a
pytest-ready one-liner::

    REPRO_CHECK_SCENARIO=kv REPRO_CHECK_SEED=2 ... \\
        PYTHONPATH=src python -m pytest tests/check/test_repro_entry.py -x -q

``tests/check/test_repro_entry.py`` reads those variables back and
replays exactly that run, so a CI campaign failure lands in a
debugger-friendly single test.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import InvariantViolation, ReproError
from ..parallel.pool import PoolStats, run_tasks
from .scenarios import DEFAULT_FAULTS, SCENARIOS, run_scenario

__all__ = ["CampaignFailure", "CampaignReport", "repro_command",
           "report_json", "run_campaign"]

#: Environment variables understood by tests/check/test_repro_entry.py.
ENV_PREFIX = "REPRO_CHECK"


@dataclass
class CampaignFailure:
    """One (shrunk) failing run."""

    scenario: str
    seed: int
    schedule: str
    faults: Optional[str]
    bug: Optional[str]
    ops: int                   # smallest op count that still fails
    original_ops: int          # op count the failure was found at
    invariant: str             # which invariant fired (or "error")
    message: str

    @property
    def command(self) -> str:
        return repro_command(
            self.scenario, self.seed, self.schedule, self.ops,
            self.faults, self.bug,
        )


@dataclass
class CampaignReport:
    """Aggregate outcome of one campaign."""

    runs: int = 0
    passed: int = 0
    failures: List[CampaignFailure] = field(default_factory=list)
    summaries: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def repro_command(
    scenario: str,
    seed: int,
    schedule: str,
    ops: int,
    faults: Optional[str],
    bug: Optional[str],
) -> str:
    """The pytest one-liner that replays one exact run."""
    parts = [
        f"{ENV_PREFIX}_SCENARIO={scenario}",
        f"{ENV_PREFIX}_SEED={seed}",
        f"{ENV_PREFIX}_SCHEDULE={schedule}",
        f"{ENV_PREFIX}_OPS={ops}",
    ]
    if faults:
        parts.append(f"{ENV_PREFIX}_FAULTS={faults}")
    if bug:
        parts.append(f"{ENV_PREFIX}_BUG={bug}")
    parts.append(
        "PYTHONPATH=src python -m pytest "
        "tests/check/test_repro_entry.py -x -q"
    )
    return " ".join(parts)


def _attempt(
    scenario: str, seed: int, schedule: str, ops: int,
    faults: Optional[str], bug: Optional[str],
) -> Optional[ReproError]:
    """One run; returns the failure (if any) instead of raising."""
    try:
        run_scenario(scenario, seed=seed, schedule=schedule, ops=ops,
                     faults=faults, bug=bug)
    except ReproError as exc:
        return exc
    return None


def shrink_ops(
    scenario: str, seed: int, schedule: str, start_ops: int,
    faults: Optional[str], bug: Optional[str],
    emit: Callable[[str], None],
) -> int:
    """Binary-search the smallest ``ops`` that still fails.

    Failures are not guaranteed monotone in ``ops`` (a shorter run is
    a different schedule), so the search keeps the best *verified*
    failing count and falls back to ``start_ops`` if nothing smaller
    reproduces.
    """
    best = start_ops
    lo, hi = 1, start_ops
    probes = 0
    while lo < hi and probes < 16:
        mid = (lo + hi) // 2
        probes += 1
        if _attempt(scenario, seed, schedule, mid, faults, bug):
            best = mid
            hi = mid
        else:
            lo = mid + 1
    if best != start_ops:
        emit(f"  shrunk: ops {start_ops} -> {best} "
             f"({probes} probe(s))")
    return best


def _campaign_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one (scenario, seed, schedule) cell; never raises.

    The unit of work the campaign hands to :func:`repro.parallel.pool.
    run_tasks`: fully self-contained, picklable in and out, and with
    all human-readable output captured as ``lines`` so the parent can
    replay it in *cell order* — the campaign transcript is therefore
    byte-identical at any worker count.
    """
    scenario = payload["scenario"]
    seed = payload["seed"]
    schedule = payload["schedule"]
    plan = payload["faults"]
    ops = payload["ops"]
    quick = payload["quick"]
    bug = payload["bug"]
    shrink = payload["shrink"]
    lines: List[str] = []
    tag = (f"{scenario} seed={seed} schedule={schedule}"
           + (f" faults={plan}" if plan else "")
           + (f" bug={bug}" if bug else ""))
    try:
        summary = run_scenario(
            scenario, seed=seed, schedule=schedule,
            ops=ops, faults=plan, quick=quick, bug=bug,
        )
    except ReproError as exc:
        lines.append(f"FAIL {tag}: {exc}")
        failed_ops = ops if ops is not None else \
            _default_ops(scenario, quick)
        final_ops = failed_ops
        if shrink:
            final_ops = shrink_ops(
                scenario, seed, schedule, failed_ops,
                plan, bug, lines.append,
            )
        invariant = getattr(exc, "invariant", "error")
        failure = CampaignFailure(
            scenario=scenario, seed=seed, schedule=schedule,
            faults=plan, bug=bug, ops=final_ops,
            original_ops=failed_ops, invariant=invariant,
            message=str(exc),
        )
        lines.append(f"  reproduce with:\n    {failure.command}")
        return {"ok": False, "failure": asdict(failure), "lines": lines}
    lines.append(f"ok   {tag}")
    return {"ok": True, "summary": summary, "lines": lines}


def run_campaign(
    scenarios: Sequence[str],
    seeds: Sequence[int],
    schedules: Sequence[str],
    faults: Any = "default",
    ops: Optional[int] = None,
    quick: bool = True,
    bug: Optional[str] = None,
    shrink: bool = True,
    emit: Optional[Callable[[str], None]] = None,
    workers: int = 1,
    pool_emit: Optional[Callable[[str], None]] = None,
    pool_stats: Optional[PoolStats] = None,
) -> CampaignReport:
    """Sweep the grid; shrink and report every failure found.

    ``workers > 1`` fans the grid cells out over that many processes
    via :mod:`repro.parallel`; results (and the ``emit`` transcript)
    are merged in grid order, so the returned report is identical at
    any worker count.  ``pool_emit`` receives worker-lifecycle notices
    (crash/retry), which are timing-dependent and deliberately kept
    out of the deterministic transcript.
    """
    emit = emit or (lambda line: None)
    cells: List[Dict[str, Any]] = []
    for scenario in scenarios:
        if scenario not in SCENARIOS:
            raise ReproError(
                f"unknown scenario {scenario!r}; choose from "
                f"{sorted(SCENARIOS)}"
            )
        plan = DEFAULT_FAULTS[scenario] if faults == "default" else faults
        for seed in seeds:
            for schedule in schedules:
                cells.append({
                    "scenario": scenario, "seed": seed,
                    "schedule": schedule, "faults": plan, "ops": ops,
                    "quick": quick, "bug": bug, "shrink": shrink,
                })
    results = run_tasks(
        _campaign_cell, cells, workers=workers,
        emit=pool_emit, stats=pool_stats,
    )
    report = CampaignReport()
    for outcome in results:
        report.runs += 1
        for line in outcome["lines"]:
            emit(line)
        if outcome["ok"]:
            report.passed += 1
            report.summaries.append(outcome["summary"])
        else:
            report.failures.append(CampaignFailure(**outcome["failure"]))
    return report


def report_json(report: CampaignReport) -> str:
    """Canonical JSON rendering of a campaign report.

    Sorted keys, fixed indentation, no timing or host information, and
    — critically — nothing about how many workers produced it: the
    bytes depend only on the grid and its outcomes, which is what the
    CI ``parallel-determinism`` job diffs.
    """
    doc = {
        "schema": "repro-check-report/1",
        "runs": report.runs,
        "passed": report.passed,
        "failures": [
            {**asdict(failure), "command": failure.command}
            for failure in report.failures
        ],
        "summaries": report.summaries,
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def _default_ops(scenario: str, quick: bool) -> int:
    from .scenarios import DEFAULT_OPS, FULL_MULTIPLIER

    return DEFAULT_OPS[scenario] * (1 if quick else FULL_MULTIPLIER)
