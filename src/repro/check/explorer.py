"""Deterministic schedule exploration for the discrete-event engine.

The engine orders same-timestamp events FIFO (by a monotonic sequence
number).  Real concurrency offers no such guarantee: the monitor's
flusher, a rebalancer migration, and a fault handler that become
runnable at the same instant may execute in any order.  A
:class:`SchedulePolicy` attached to :attr:`Environment.scheduler`
re-decides those ties — deterministically, from a seed — so the test
campaign can sweep many interleavings of the *same* seeded workload
and still shrink any failure to an exactly reproducible run.

Three knobs exist, all applied inside ``Environment._schedule``:

* **tiebreak** — replaces the FIFO sequence number used to order
  same-``(time, priority)`` events.  Urgent events (process init,
  interrupts) always keep FIFO order: reordering those would break
  engine semantics rather than model concurrency.
* **delay perturbation** — the adversarial policy stretches timeout
  delays by a bounded factor and injects sub-microsecond completion
  jitter, modeling slow callbacks and unfair wakeups.  Delays only
  ever grow, so causality (``Environment.advance``) is preserved.
* **determinism** — each policy draws from its own ``random.Random``
  seeded via :func:`repro.sim.derive_seed`; the same
  ``(seed, policy)`` pair yields the same trajectory.

``SCHEDULES`` maps the names accepted by ``python -m repro.check
--schedules`` to policy factories.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Tuple

from ..errors import KVError
from ..sim import derive_seed
from ..sim.core import PRIORITY_NORMAL

__all__ = [
    "SchedulePolicy",
    "FifoSchedule",
    "RandomSchedule",
    "InvertedSchedule",
    "AdversarialSchedule",
    "SCHEDULES",
    "make_schedule",
    "parse_schedules",
]


class SchedulePolicy:
    """Base policy: identical to the engine's built-in behavior."""

    name = "fifo"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(derive_seed(seed, f"sched-{self.name}"))

    def perturb_delay(self, delay: float, priority: int, event) -> float:
        """Hook: may stretch (never shrink) an event's delay."""
        return delay

    def tiebreak(self, when: float, priority: int, seq: int, event):
        """Hook: ordering token among same-``(when, priority)`` events.

        Must be unique per event (include ``seq``) and totally ordered
        within one priority class for the whole run.
        """
        return seq

    def __repr__(self) -> str:
        return f"<{type(self).__name__} seed={self.seed}>"


class FifoSchedule(SchedulePolicy):
    """The engine's native order, as an explicit policy."""

    name = "fifo"


class RandomSchedule(SchedulePolicy):
    """Uniformly shuffle same-timestamp normal-priority events."""

    name = "random"

    def tiebreak(self, when, priority, seq, event):
        if priority != PRIORITY_NORMAL:
            return (0.0, seq)
        return (self._rng.random(), seq)


class InvertedSchedule(SchedulePolicy):
    """LIFO among simultaneous events: the *latest*-scheduled work runs
    first, a classic priority inversion that starves old waiters."""

    name = "inverted"

    def tiebreak(self, when, priority, seq, event):
        if priority != PRIORITY_NORMAL:
            return seq
        return -seq


class AdversarialSchedule(SchedulePolicy):
    """Delay injection plus biased reordering.

    A fraction of timeouts are stretched (a slow store op, a descheduled
    thread), zero-delay completions occasionally pick up sub-µs jitter
    (late callback delivery), and ties are shuffled.  All perturbations
    strictly add time, so no event moves before one already scheduled.
    """

    name = "adversarial"

    #: Probability that a positive delay is stretched.
    STRETCH_P = 0.25
    #: Maximum stretch factor applied to a perturbed delay.
    STRETCH_MAX = 1.75
    #: Probability that an immediate completion picks up jitter.
    JITTER_P = 0.2
    #: Upper bound on injected completion jitter (µs).
    JITTER_MAX_US = 0.5

    def perturb_delay(self, delay, priority, event):
        if priority != PRIORITY_NORMAL:
            return delay
        if delay > 0.0:
            if self._rng.random() < self.STRETCH_P:
                delay *= 1.0 + (self.STRETCH_MAX - 1.0) * self._rng.random()
        elif self._rng.random() < self.JITTER_P:
            delay = self.JITTER_MAX_US * self._rng.random()
        return delay

    def tiebreak(self, when, priority, seq, event):
        if priority != PRIORITY_NORMAL:
            return (0.0, seq)
        return (self._rng.random(), seq)


SCHEDULES: Dict[str, Callable[[int], SchedulePolicy]] = {
    "fifo": FifoSchedule,
    "random": RandomSchedule,
    "inverted": InvertedSchedule,
    "adversarial": AdversarialSchedule,
}


def make_schedule(name: str, seed: int = 0) -> SchedulePolicy:
    """Instantiate a named schedule policy (KVError on a bad name)."""
    try:
        factory = SCHEDULES[name]
    except KeyError:
        raise KVError(
            f"unknown schedule {name!r}; choose from "
            f"{sorted(SCHEDULES)}"
        ) from None
    return factory(seed)


def parse_schedules(spec: str) -> Tuple[str, ...]:
    """Split a ``--schedules`` comma list, validating each name."""
    names = tuple(
        part.strip() for part in spec.split(",") if part.strip()
    )
    for name in names:
        if name not in SCHEDULES:
            raise KVError(
                f"unknown schedule {name!r}; choose from "
                f"{sorted(SCHEDULES)}"
            )
    return names
