"""Marketplace ledger invariants (``repro.market``'s safety net).

A memory marketplace is exactly the kind of subsystem where asserted
wins are worthless: the broker *claims* it never double-sells a byte,
that grants never exceed harvested capacity, and that a dead VM's
leases are freed — but only an independent shadow ledger fed by hooks
can prove it.  :class:`MarketInvariants` keeps that shadow: the broker
reports every offer, grant, close, and reclaim, and the monitor
re-derives the conservation laws on every step, raising a structured
:class:`~repro.errors.InvariantViolation` the moment one breaks.

Invariant catalog (see DESIGN.md §13):

``market-conservation``
    Capacity conservation: for every producer, ``0 <= granted <=
    harvested`` at every step, and therefore globally
    ``sum(granted) <= sum(harvested)``.  No byte is ever sold that was
    not first harvested, and no byte is sold twice.
``market-double-grant``
    Lease identity: a lease id is granted exactly once, closed at most
    once, and its per-producer backing sums exactly to its page count.
``market-lease-lifecycle``
    Teardown completeness: when a VM dies or deregisters, every lease
    it held (as consumer) or backed (as producer) must be closed and
    its producer account emptied — remote capacity never leaks past a
    death.
``market-steady``
    Steady-state agreement: the broker's own accounting must match the
    shadow ledger exactly (harvested, granted, and the active lease
    set), so a drifted internal counter cannot hide behind correct
    per-step reports.

The hooks are dict updates guarded by ``checker.enabled`` at the call
site — the same cost model as every other ``repro.check`` monitor, so
checker-off runs stay byte-identical.
"""

from __future__ import annotations

from typing import Dict, Mapping

__all__ = ["MarketInvariants"]


class MarketInvariants:
    """Shadow ledger for the broker's capacity accounting."""

    def __init__(self, checker) -> None:
        self._checker = checker
        #: Pages each producer currently has on offer (free + granted).
        self._harvested: Dict[str, int] = {}
        #: Pages of each producer's harvest currently granted out.
        self._granted: Dict[str, int] = {}
        #: Active leases: lease id -> {producer: pages} backing.
        self._leases: Dict[int, Dict[str, int]] = {}
        #: Consumer name per active lease (teardown accounting).
        self._lease_consumer: Dict[int, str] = {}
        #: Every lease id ever granted (double-grant detection).
        self._all_lease_ids: set = set()

    # -- introspection -------------------------------------------------------

    @property
    def total_harvested(self) -> int:
        return sum(self._harvested.values())

    @property
    def total_granted(self) -> int:
        return sum(self._granted.values())

    @property
    def active_leases(self) -> int:
        return len(self._leases)

    # -- broker-side hooks ----------------------------------------------------

    def on_offer(self, producer: str, pages: int) -> None:
        """A producer harvested ``pages`` and put them on the market."""
        if pages <= 0:
            self._checker.violation(
                "market-conservation",
                f"producer {producer!r} offered a non-positive amount "
                f"({pages} pages)",
                producer=producer, pages=pages,
            )
        self._harvested[producer] = self._harvested.get(producer, 0) + pages
        self._granted.setdefault(producer, 0)

    def on_grant(
        self, lease_id: int, consumer: str, pages: int,
        backing: Mapping[str, int],
    ) -> None:
        """The broker granted a lease backed by producer capacity."""
        if lease_id in self._all_lease_ids:
            self._checker.violation(
                "market-double-grant",
                f"lease {lease_id} granted twice (to {consumer!r})",
                lease_id=lease_id, consumer=consumer,
            )
        backed = sum(backing.values())
        if backed != pages or pages <= 0:
            self._checker.violation(
                "market-double-grant",
                f"lease {lease_id} for {pages} page(s) is backed by "
                f"{backed} page(s) across {len(backing)} producer(s)",
                lease_id=lease_id, pages=pages, backed=backed,
            )
        for producer in sorted(backing):
            share = backing[producer]
            if share <= 0:
                self._checker.violation(
                    "market-double-grant",
                    f"lease {lease_id} carries a non-positive backing "
                    f"share ({share}) from {producer!r}",
                    lease_id=lease_id, producer=producer, share=share,
                )
            granted = self._granted.get(producer, 0) + share
            if granted > self._harvested.get(producer, 0):
                self._checker.violation(
                    "market-conservation",
                    f"grant of lease {lease_id} oversells producer "
                    f"{producer!r}: {granted} granted > "
                    f"{self._harvested.get(producer, 0)} harvested",
                    lease_id=lease_id, producer=producer,
                    granted=granted,
                    harvested=self._harvested.get(producer, 0),
                )
            self._granted[producer] = granted
        self._all_lease_ids.add(lease_id)
        self._leases[lease_id] = dict(backing)
        self._lease_consumer[lease_id] = consumer

    def on_lease_closed(self, lease_id: int, reason: str) -> None:
        """A lease ended (released, revoked, or torn down with a VM)."""
        backing = self._leases.pop(lease_id, None)
        self._lease_consumer.pop(lease_id, None)
        if backing is None:
            self._checker.violation(
                "market-lease-lifecycle",
                f"lease {lease_id} closed ({reason}) but was not active "
                "(never granted, or closed twice)",
                lease_id=lease_id, reason=reason,
            )
            return
        for producer in sorted(backing):
            remaining = self._granted.get(producer, 0) - backing[producer]
            if remaining < 0:
                self._checker.violation(
                    "market-conservation",
                    f"closing lease {lease_id} drives producer "
                    f"{producer!r} to {remaining} granted pages",
                    lease_id=lease_id, producer=producer,
                    granted=remaining,
                )
            self._granted[producer] = remaining

    def on_reclaim(self, producer: str, pages: int) -> None:
        """A producer took ``pages`` back (give-back or withdrawal).

        Only *free* (un-granted) capacity may be reclaimed; the broker
        must revoke backing leases first.
        """
        harvested = self._harvested.get(producer, 0) - pages
        if pages <= 0 or harvested < self._granted.get(producer, 0):
            self._checker.violation(
                "market-conservation",
                f"reclaim of {pages} page(s) from {producer!r} would "
                f"leave {harvested} harvested < "
                f"{self._granted.get(producer, 0)} granted",
                producer=producer, pages=pages, harvested=harvested,
                granted=self._granted.get(producer, 0),
            )
        self._harvested[producer] = harvested

    def on_vm_removed(self, name: str) -> None:
        """A VM died or deregistered; nothing of it may linger."""
        leaked = sorted(
            lease_id
            for lease_id, consumer in self._lease_consumer.items()
            if consumer == name
        )
        if leaked:
            self._checker.violation(
                "market-lease-lifecycle",
                f"VM {name!r} removed with {len(leaked)} lease(s) still "
                f"active (first: {leaked[0]})",
                name=name, leases=leaked[:8],
            )
        backing = sorted(
            lease_id for lease_id, producers in self._leases.items()
            if name in producers
        )
        if backing:
            self._checker.violation(
                "market-lease-lifecycle",
                f"producer {name!r} removed while still backing "
                f"{len(backing)} lease(s) (first: {backing[0]})",
                name=name, leases=backing[:8],
            )
        if self._granted.get(name, 0):
            self._checker.violation(
                "market-lease-lifecycle",
                f"producer {name!r} removed with {self._granted[name]} "
                "page(s) still granted out",
                name=name, granted=self._granted[name],
            )
        self._harvested.pop(name, None)
        self._granted.pop(name, None)

    # -- steady-state -----------------------------------------------------------

    def check_steady(self, broker) -> None:
        """The broker's own books must match the shadow ledger exactly."""
        ledger = broker.ledger()
        shadow = {
            producer: (
                self._harvested[producer],
                self._granted.get(producer, 0),
            )
            for producer in sorted(self._harvested)
        }
        broker_view = {
            producer: (entry["harvested"], entry["granted"])
            for producer, entry in sorted(ledger["producers"].items())
        }
        if shadow != broker_view:
            self._checker.violation(
                "market-steady",
                "broker producer accounts disagree with the shadow "
                f"ledger: broker={broker_view} shadow={shadow}",
                broker=broker_view, shadow=shadow,
            )
        broker_leases = set(ledger["active_leases"])
        shadow_leases = set(self._leases)
        if broker_leases != shadow_leases:
            self._checker.violation(
                "market-steady",
                "broker active-lease set disagrees with the shadow "
                f"ledger: only-broker="
                f"{sorted(broker_leases - shadow_leases)[:8]} "
                f"only-shadow={sorted(shadow_leases - broker_leases)[:8]}",
                broker=len(broker_leases), shadow=len(shadow_leases),
            )
        if self.total_granted > self.total_harvested:
            self._checker.violation(
                "market-conservation",
                f"steady state oversold: {self.total_granted} granted > "
                f"{self.total_harvested} harvested",
                granted=self.total_granted, harvested=self.total_harvested,
            )
