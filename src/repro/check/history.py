"""Per-key read/write history checking (the KV consistency monitor).

:class:`RecordingStore` wraps any :class:`~repro.kv.KeyValueBackend`
at the *client* boundary (the monitor's — or a KV workload's — view),
records every operation's interval on the simulated clock, and checks
two properties the surveys call out as the hard part of remote-memory
consistency:

* **read-your-writes** — a read that *starts after* a write to the
  same key was acknowledged must observe that write (or a newer one);
* **no-stale-read-after-ack** — equivalently, a read may never return
  a value older than the newest write acked before the read began.
  Reads that overlap an in-flight write may legally return either the
  old or the new value.

Because the wrapper sits outside :class:`~repro.kv.ReplicatedStore`
failover and :class:`~repro.cluster.ClusterStore` migration, the
checks hold *across* replica crashes and shard rebalancing — exactly
the windows where a dropped forwarding rule or a lagging replica
would leak a stale page.

Values are tracked by identity: the simulation's stores move the same
Python objects end to end (pages are not serialized), so ``id()`` plus
a keep-alive reference is an exact, allocation-free fingerprint.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..kv.api import KeyValueBackend, WriteItem
from ..mem import PAGE_SIZE
from .invariants import NULL_CHECKER, CorrectnessChecker

__all__ = ["KvHistory", "RecordingStore"]

#: Sentinel value recorded when a key is removed.
_TOMBSTONE = object()

#: Acked writes retained per key (older ones can no longer be the
#: floor of any live read, because reads are bounded in duration).
_RETAIN_WRITES = 16


class _Write:
    __slots__ = ("value", "ack_us", "version")

    def __init__(self, value: Any, ack_us: float, version: int) -> None:
        self.value = value
        self.ack_us = ack_us
        self.version = version


class KvHistory:
    """Acked-write timelines for every key seen through one wrapper."""

    def __init__(self, checker: CorrectnessChecker) -> None:
        self._checker = checker
        self._writes: Dict[int, List[_Write]] = {}
        self._next_version = 0
        self.reads_checked = 0
        self.writes_recorded = 0

    def record_ack(self, key: int, value: Any, now: float) -> None:
        """A write (or remove, with the tombstone) became durable."""
        self._next_version += 1
        timeline = self._writes.setdefault(key, [])
        timeline.append(_Write(value, now, self._next_version))
        if len(timeline) > _RETAIN_WRITES:
            del timeline[0]
        self.writes_recorded += 1

    def check_read(
        self, key: int, value: Any, started_us: float, now: float
    ) -> None:
        """Validate one completed read against the key's timeline."""
        timeline = self._writes.get(key)
        if not timeline:
            return  # key never written through this wrapper
        self.reads_checked += 1
        # The floor: newest write acked before the read began.  Writes
        # acked during the read window are also legal outcomes.
        floor_index = -1
        for index, write in enumerate(timeline):
            if write.ack_us <= started_us:
                floor_index = index
        if floor_index < 0:
            # Every retained write overlaps or postdates the read;
            # any of their values is legal, as is the (unretained)
            # older state.
            legal = timeline
        else:
            legal = timeline[floor_index:]
        for write in legal:
            if write.value is value:
                return
        floor = timeline[floor_index] if floor_index >= 0 else None
        if floor is not None and floor.value is _TOMBSTONE:
            self._checker.violation(
                "kv-history",
                f"read of key {key:#x} returned a value although the "
                f"newest acked operation (t={floor.ack_us:.1f}) removed "
                "the key",
                key=f"{key:#x}", read_started=started_us,
                read_finished=now,
            )
        stale = any(
            write.value is value for write in timeline[:max(floor_index, 0)]
        )
        self._checker.violation(
            "kv-history",
            f"stale read of key {key:#x}: value predates the newest "
            f"write acked before the read began"
            if stale else
            f"read of key {key:#x} returned a value no acked or "
            f"in-flight write produced",
            key=f"{key:#x}", read_started=started_us, read_finished=now,
            floor_acked=None if floor is None else floor.ack_us,
        )


class RecordingStore(KeyValueBackend):
    """Transparent backend wrapper feeding a :class:`KvHistory`.

    Composes like every other wrapper (compression, replication, fault
    injection); place it outermost so failover and migration happen
    *inside* the recorded interval.
    """

    def __init__(
        self,
        inner: KeyValueBackend,
        checker: Optional[CorrectnessChecker] = None,
    ) -> None:
        super().__init__(inner.env)
        self.inner = inner
        self.check = checker if checker is not None else NULL_CHECKER
        self.history = KvHistory(self.check)
        self.name = f"recorded-{inner.name}"
        self.supports_partitions = inner.supports_partitions

    @property
    def is_alive(self) -> bool:
        return self.inner.is_alive

    # -- recorded operations -------------------------------------------------

    def get(self, key: int) -> Generator:
        started = self.env.now
        value = yield from self.inner.get(key)
        if self.check.enabled:
            self.history.check_read(key, value, started, self.env.now)
        return value

    def multi_read(self, keys: List[int]) -> Generator:
        started = self.env.now
        values = yield from self.inner.multi_read(list(keys))
        if self.check.enabled:
            for key, value in zip(keys, values):
                self.history.check_read(key, value, started, self.env.now)
        return values

    def put(self, key: int, value: Any, nbytes: int = PAGE_SIZE) -> Generator:
        yield from self.inner.put(key, value, nbytes)
        if self.check.enabled:
            self.history.record_ack(key, value, self.env.now)

    def multi_write(self, items: List[WriteItem]) -> Generator:
        yield from self.inner.multi_write(list(items))
        if self.check.enabled:
            for key, value, _nbytes in items:
                self.history.record_ack(key, value, self.env.now)

    def remove(self, key: int) -> Generator:
        yield from self.inner.remove(key)
        if self.check.enabled:
            self.history.record_ack(key, _TOMBSTONE, self.env.now)

    # read_async / write_async inherit the split-halves drivers from
    # KeyValueBackend, which call self.get / self.multi_write above —
    # so asynchronous operations are recorded with their true spans.

    # -- introspection pass-through ------------------------------------------

    def contains(self, key: int) -> bool:
        return self.inner.contains(key)

    def stored_keys(self) -> int:
        return self.inner.stored_keys()

    @property
    def used_bytes(self) -> int:
        return self.inner.used_bytes

    def __repr__(self) -> str:
        return (
            f"<RecordingStore over {self.inner!r} "
            f"writes={self.history.writes_recorded} "
            f"reads={self.history.reads_checked}>"
        )
