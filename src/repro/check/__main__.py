"""``python -m repro.check`` — run the correctness campaign.

Examples::

    # CI quick gate: 3 seeds, two perturbation policies, all scenarios
    python -m repro.check --seeds 3 --schedules random,adversarial --quick

    # Hunt one scenario harder
    python -m repro.check --scenarios kv --seeds 10 --full

    # Demonstrate the harness catches a seeded bug
    python -m repro.check --scenarios kv --bug drop-forwarding-window

Exit status: 0 when every run is clean, 1 when any invariant fired
(the report includes a pytest-ready reproducer per failure), 2 on
usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from .campaign import report_json, run_campaign
from .explorer import SCHEDULES, parse_schedules
from .scenarios import BUGS, DEFAULT_FAULTS, SCENARIOS


def _parse_args(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Deterministic correctness campaign for the "
                    "FluidMem reproduction.",
    )
    parser.add_argument(
        "--seeds", type=int, default=3, metavar="N",
        help="sweep seeds 0..N-1 (default 3)",
    )
    parser.add_argument(
        "--schedules", default="random,adversarial",
        help="comma-separated schedule policies "
             f"(available: {','.join(sorted(SCHEDULES))})",
    )
    parser.add_argument(
        "--scenarios", default=",".join(sorted(SCENARIOS)),
        help="comma-separated scenarios "
             f"(available: {','.join(sorted(SCENARIOS))})",
    )
    parser.add_argument(
        "--faults", default="default",
        help="fault plan name for fault-driven scenarios, 'none' to "
             "disable, 'default' for per-scenario defaults",
    )
    parser.add_argument(
        "--ops", type=int, default=None,
        help="override the per-scenario operation count",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true", default=True,
                      help="baseline op counts (default)")
    mode.add_argument("--full", dest="quick", action="store_false",
                      help="4x op counts")
    parser.add_argument(
        "--bug", default=None, choices=sorted(BUGS),
        help="inject a registered bug (harness self-test)",
    )
    parser.add_argument(
        "--no-shrink", dest="shrink", action="store_false",
        help="skip shrinking failures to a minimal op count",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the campaign grid (default 1 = "
             "serial; the report is identical at any worker count)",
    )
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the campaign report as canonical JSON to PATH "
             "('-' for stdout)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list scenarios, schedules, fault plans, and bugs",
    )
    return parser.parse_args(argv)


def main(argv: List[str] = None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)
    if args.list:
        from ..faults import NAMED_PLANS

        print("scenarios: ", ", ".join(
            f"{name} (default faults: {DEFAULT_FAULTS[name] or 'none'})"
            for name in sorted(SCENARIOS)
        ))
        print("schedules: ", ", ".join(sorted(SCHEDULES)))
        print("fault plans:", ", ".join(sorted(NAMED_PLANS)))
        print("bugs:      ", ", ".join(sorted(BUGS)))
        return 0
    try:
        schedules = parse_schedules(args.schedules)
        scenarios = [
            name for name in args.scenarios.split(",") if name
        ]
        for name in scenarios:
            if name not in SCENARIOS:
                raise ValueError(
                    f"unknown scenario {name!r}; choose from "
                    f"{sorted(SCENARIOS)}"
                )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    faults = {"default": "default", "none": None}.get(
        args.faults, args.faults
    )
    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 2
    report = run_campaign(
        scenarios=scenarios,
        seeds=range(args.seeds),
        schedules=schedules,
        faults=faults,
        ops=args.ops,
        quick=args.quick,
        bug=args.bug,
        shrink=args.shrink,
        emit=print,
        workers=args.workers,
        pool_emit=lambda line: print(line, file=sys.stderr),
    )
    if args.report:
        rendered = report_json(report)
        if args.report == "-":
            sys.stdout.write(rendered)
        else:
            with open(args.report, "w") as handle:
                handle.write(rendered)
    print(
        f"\n{report.runs} run(s): {report.passed} ok, "
        f"{len(report.failures)} failing"
    )
    for failure in report.failures:
        print(
            f"  [{failure.invariant}] {failure.scenario} "
            f"seed={failure.seed} schedule={failure.schedule} "
            f"ops={failure.ops}"
        )
        print(f"    {failure.command}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
