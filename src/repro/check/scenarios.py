"""Checked end-to-end scenarios for the correctness campaign.

Each scenario builds a full stack with the :class:`CorrectnessChecker`
enabled, attaches a schedule-perturbation policy to the simulation
clock, runs a seeded workload, and finishes with a steady-state sweep.
Any invariant violation surfaces as :class:`repro.errors.InvariantViolation`
out of :func:`run_scenario`.

Three scenarios cover the three invariant families:

``writeback``
    A FluidMem monitor paging through a two-replica store under a
    named fault plan — exercises the page state machine, the LRU
    accounting, and the no-lost-write ledger.

``cluster``
    A monitor paging through a :class:`~repro.cluster.ClusterStore`
    while nodes join, crash, and leave — exercises the placement
    directory / ring invariants and the rebalancer's post-pass audit.

``kv``
    Raw key-value clients over a :class:`RecordingStore`, with one
    phase on a replicated store under faults and one phase on a
    replication=1 cluster during live migration — exercises the
    read-your-writes history checker and the forwarding-window
    invariant (reads race migrations).

The module also hosts the **bug registry** used by tests and by
``python -m repro.check --bug ...``: each entry monkey-patches a known
correct code path into a subtly broken one (restored afterwards), so
the campaign can demonstrate that the explorer + invariants actually
catch the class of bug they were built for.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

from ..cluster import ClusterManager, ClusterStore, Rebalancer
from ..coord import ZooKeeperEnsemble
from ..core import FluidMemConfig, FluidMemoryPort, Monitor
from ..core.writeback import WritebackQueue
from ..errors import (
    KeyNotFoundError,
    KVError,
    StoreUnavailableError,
    TransientStoreError,
)
from ..faults import FaultyStore, RetryPolicy, named_plan, retry_call
from ..kernel import UffdLatency, UffdOps, Userfaultfd
from ..kv import DramStore, ReplicatedStore
from ..mem import MIB, PAGE_SIZE, FrameAllocator
from ..obs import Observability
from ..sim import Environment, RandomStreams, derive_seed
from ..vm import BootProfile, GuestVM, QemuProcess
from ..vm.qemu import GUEST_RAM_BASE
from .explorer import make_schedule
from .history import RecordingStore
from .invariants import CorrectnessChecker

__all__ = [
    "BUGS",
    "DEFAULT_FAULTS",
    "DEFAULT_OPS",
    "SCENARIOS",
    "inject_bug",
    "run_scenario",
]

#: Baseline operation counts per scenario (quick mode); ``--full``
#: multiplies these by :data:`FULL_MULTIPLIER`.
DEFAULT_OPS: Dict[str, int] = {
    "writeback": 48,
    "cluster": 64,
    "kv": 36,
}
FULL_MULTIPLIER = 4

#: Default fault plan per scenario (None = topology churn only).
DEFAULT_FAULTS: Dict[str, Optional[str]] = {
    "writeback": "chaos",
    "cluster": None,
    "kv": "flaky-fabric",
}

#: Sentinel: "use the scenario's default fault plan".
_DEFAULT = object()


# ---------------------------------------------------------------------------
# Shared stack plumbing
# ---------------------------------------------------------------------------


class _MonitorStack:
    """A minimal FluidMem stack (no fabric — DRAM-class backends only)."""

    def __init__(
        self,
        env: Environment,
        seed: int,
        checker: CorrectnessChecker,
        obs: Observability,
        lru_pages: int = 4,
    ) -> None:
        self.env = env
        streams = RandomStreams(seed=derive_seed(seed, "check-stack"))
        self.uffd = Userfaultfd(env, UffdLatency(), streams.stream("uffd"))
        self.ops = UffdOps(
            env, UffdLatency(), streams.stream("ops"),
            FrameAllocator.for_bytes(64 * MIB),
        )
        self.monitor = Monitor(
            env, self.uffd, self.ops,
            config=FluidMemConfig(
                lru_capacity_pages=lru_pages,
                writeback_batch_pages=4,
                retry_policy=RetryPolicy(),
            ),
            rng=streams.stream("monitor"),
            obs=obs,
            check=checker,
        )
        self.monitor.start()

    def make_vm(self, store, name: str = "check-vm"):
        vm = GuestVM(
            self.env, name, memory_bytes=32 * MIB,
            boot_profile=BootProfile(total_pages=4),
        )
        # Pin the RAM base: page keys must not depend on how many
        # QemuProcess instances earlier scenario runs created, or a
        # shrunk reproducer would not replay the same key stream.
        qemu = QemuProcess(vm, ram_base=GUEST_RAM_BASE)
        registration = self.monitor.register_vm(qemu, store)
        port = FluidMemoryPort(self.env, vm, qemu, self.monitor,
                               registration)
        vm.attach_port(port)
        return vm, qemu, port


def _pattern(index: int, version: int) -> bytes:
    stamp = (index * 41 + version * 17 + 3) % 199
    return bytes((stamp + offset) % 256 for offset in range(64)) \
        * (PAGE_SIZE // 64)


# ---------------------------------------------------------------------------
# Scenario: writeback (page machine + ledger + LRU under faults)
# ---------------------------------------------------------------------------


def _run_writeback(env, seed, ops, faults, checker, obs):
    stack = _MonitorStack(env, seed, checker, obs)
    if faults:
        plan = named_plan(faults, seed=derive_seed(seed, "check-plan"))
        replicas = [
            FaultyStore(env, DramStore(env), plan, node=f"replica{i}")
            for i in range(2)
        ]
        store = ReplicatedStore(env, replicas)
    else:
        store = DramStore(env)
    vm, qemu, port = stack.make_vm(store)
    base = vm.first_free_guest_addr()
    pages = 18
    expected: Dict[int, bytes] = {}
    wrng = random.Random(derive_seed(seed, "check-writeback-ops"))
    degraded: List[str] = []
    mismatched: List[int] = []

    def write_page(index: int, version: int) -> None:
        host = qemu.guest_to_host(base + index * PAGE_SIZE)
        data = _pattern(index, version)
        qemu.page_table.entry(host).page.write(data)
        expected[index] = data

    def workload(env):
        versions = [0] * pages
        try:
            for index in range(pages):
                yield from port.access(base + index * PAGE_SIZE,
                                       is_write=True)
                write_page(index, 0)
            for _step in range(ops):
                index = wrng.randrange(pages)
                is_write = wrng.random() < 0.4
                yield from port.access(base + index * PAGE_SIZE,
                                       is_write=is_write)
                if is_write:
                    versions[index] += 1
                    write_page(index, versions[index])
                if wrng.random() < 0.05:
                    # Squeeze/relax the DRAM budget mid-run (Table III
                    # style) so eviction pressure varies.
                    stack.monitor.set_lru_capacity(
                        wrng.choice([3, 4, 6, 8])
                    )
            stack.monitor.set_lru_capacity(4)
            yield from stack.monitor.writeback.drain()
            for index in range(pages):
                yield from port.access(base + index * PAGE_SIZE)
                host = qemu.guest_to_host(base + index * PAGE_SIZE)
                if qemu.page_table.entry(host).page.read() \
                        != expected[index]:
                    mismatched.append(index)
            yield from stack.monitor.writeback.drain()
        except StoreUnavailableError as exc:
            # The store stayed dark past the retry budget: the VM is
            # quarantined, not broken — end the workload gracefully so
            # the steady-state sweep still runs.
            degraded.append(str(exc))

    env.process(workload(env))
    env.run()
    if mismatched:
        checker.violation(
            "data-integrity",
            f"{len(mismatched)} page(s) read back the wrong bytes "
            f"after drain: {mismatched[:8]}",
            pages=tuple(mismatched),
        )
    checker.check_steady_state(monitor=stack.monitor)
    return {
        "pages": pages,
        "degraded": len(degraded),
        "page_records": len(checker.pages),
    }


# ---------------------------------------------------------------------------
# Scenario: cluster (placement directory + ring under topology churn)
# ---------------------------------------------------------------------------


def _run_cluster(env, seed, ops, faults, checker, obs):
    if faults:
        raise KVError(
            "the cluster scenario drives its own topology churn; "
            "fault plans apply to 'writeback' and 'kv'"
        )
    stack = _MonitorStack(env, seed, checker, obs)
    store = ClusterStore(env, replication=2, obs=obs, check=checker)
    rebalancer = Rebalancer(env, store, batch_keys=8, pause_us=50.0,
                            obs=obs, check=checker)
    manager = ClusterManager(env, ZooKeeperEnsemble(), store, rebalancer,
                             obs=obs)
    rebalancer.start()
    manager.start()
    for index in range(3):
        manager.join(f"node{index}", DramStore(env))
    vm, qemu, port = stack.make_vm(store)
    base = vm.first_free_guest_addr()
    pages = 20
    wrng = random.Random(derive_seed(seed, "check-cluster-ops"))
    mismatched: List[int] = []
    next_node = [3]

    def restore_rf(env):
        # Post-crash: poke the rebalancer until every key is back at
        # full replication (mirrors the cluster chaos test).
        for _ in range(64):
            if not store.under_replicated_keys():
                return
            rebalancer.schedule()
            yield from rebalancer.wait_quiesce()

    def churn(env):
        live = ["node0", "node1", "node2"]
        for _event in range(5):
            yield env.timeout(400.0 + wrng.uniform(0.0, 400.0))
            roll = wrng.random()
            if roll < 0.45 or len(live) <= 3:
                name = f"node{next_node[0]}"
                next_node[0] += 1
                manager.join(name, DramStore(env))
                live.append(name)
            elif roll < 0.75:
                victim = wrng.choice(live[1:])
                live.remove(victim)
                manager.crash(victim)
                yield from restore_rf(env)
            else:
                leaver = wrng.choice(live[1:])
                live.remove(leaver)
                yield from manager.leave(leaver)
        yield from rebalancer.wait_quiesce()

    def workload(env):
        for index in range(pages):
            yield from port.access(base + index * PAGE_SIZE,
                                   is_write=True)
            host = qemu.guest_to_host(base + index * PAGE_SIZE)
            qemu.page_table.entry(host).page.write(_pattern(index, 0))
        for step in range(ops):
            index = wrng.randrange(pages)
            yield from port.access(base + index * PAGE_SIZE)
            if step % 8 == 0:
                yield env.timeout(wrng.uniform(50.0, 250.0))
        yield from stack.monitor.writeback.drain()
        for index in range(pages):
            yield from port.access(base + index * PAGE_SIZE)
            host = qemu.guest_to_host(base + index * PAGE_SIZE)
            if qemu.page_table.entry(host).page.read() \
                    != _pattern(index, 0):
                mismatched.append(index)
        yield from stack.monitor.writeback.drain()

    churn_proc = env.process(churn(env))
    work_proc = env.process(workload(env))

    def supervise(env):
        # The manager's poll loop would keep the event heap busy
        # forever; stop it once the workload and churn have finished.
        yield env.all_of([churn_proc, work_proc])
        manager.stop()

    env.process(supervise(env))
    env.run()
    if mismatched:
        checker.violation(
            "data-integrity",
            f"{len(mismatched)} page(s) corrupted across migrations: "
            f"{mismatched[:8]}",
            pages=tuple(mismatched),
        )
    checker.check_steady_state(monitor=stack.monitor,
                               cluster_store=store)
    return {
        "pages": pages,
        "nodes": len(store.live_nodes()),
        "epoch": store.topology_epoch,
        "churn_done": churn_proc.value is None,
    }


# ---------------------------------------------------------------------------
# Scenario: kv (history checker across failover and live migration)
# ---------------------------------------------------------------------------


def _run_kv(env, seed, ops, faults, checker, obs):
    policy = RetryPolicy()
    stats = {"reads": 0, "writes": 0, "removes": 0,
             "not_found": 0, "abandoned": 0}

    # Phase A: replicated failover under a named plan.
    if faults:
        plan = named_plan(faults, seed=derive_seed(seed, "kv-plan"))
        replicas = [
            FaultyStore(env, DramStore(env), plan, node=f"replica{i}")
            for i in range(2)
        ]
    else:
        replicas = [DramStore(env), DramStore(env)]
    replicated = RecordingStore(ReplicatedStore(env, replicas), checker)

    # Phase B: a replication=1 cluster under live migration — with a
    # single holder per key, a dropped forwarding window has no second
    # copy to hide behind, so racing reads expose it.
    cluster = ClusterStore(env, replication=1, obs=obs,
                           check=checker, name="kv-cluster")
    rebalancer = Rebalancer(env, cluster, batch_keys=4, pause_us=25.0,
                            obs=obs, check=checker)
    rebalancer.start()
    for index in range(3):
        cluster.add_node(f"cnode{index}", DramStore(env))
    clustered = RecordingStore(cluster, checker)

    def client(store, label: str, key_base: int,
               write_bias: float) -> Generator:
        crng = random.Random(derive_seed(seed, f"kv-client-{label}"))
        keys = [key_base + index for index in range(8)]
        live: Dict[int, bool] = {}
        version = 0
        for _step in range(ops):
            key = crng.choice(keys)
            roll = crng.random()
            yield env.timeout(crng.uniform(1.0, 30.0))
            try:
                if roll < write_bias or not live.get(key):
                    version += 1
                    token = (label, key, version)
                    yield from retry_call(
                        env, lambda k=key, t=token: store.put(k, t),
                        policy, rng=crng, what=f"{label} put",
                    )
                    live[key] = True
                    stats["writes"] += 1
                elif roll < write_bias + 0.08:
                    yield from retry_call(
                        env, lambda k=key: store.remove(k),
                        policy, rng=crng, what=f"{label} remove",
                    )
                    live[key] = False
                    stats["removes"] += 1
                else:
                    try:
                        yield from retry_call(
                            env, lambda k=key: store.get(k),
                            policy, rng=crng, what=f"{label} get",
                        )
                        stats["reads"] += 1
                    except KeyNotFoundError:
                        stats["not_found"] += 1
            except (StoreUnavailableError, KeyNotFoundError):
                # The op's outcome is indeterminate (retries exhausted
                # mid-write, or a half-applied remove): the history can
                # no longer predict this key — stop using it.
                keys = [k for k in keys if k != key] or keys[:0]
                stats["abandoned"] += 1
                if not keys:
                    return

    def churn(env):
        # Every drain moves each of the leaver's keys through
        # migrate_key with a drop — one forwarding window per key.
        yield env.timeout(150.0)
        cluster.add_node("cnode3", DramStore(env))
        rebalancer.schedule()
        yield from rebalancer.wait_quiesce()
        for leaver in ("cnode0", "cnode1"):
            yield env.timeout(100.0)
            cluster.begin_drain(leaver)
            rebalancer.schedule()
            yield from rebalancer.wait_quiesce()
            if not cluster.keys_on(leaver):
                cluster.retire_node(leaver)

    def hammer(env):
        # Tight read loop racing the migration windows.  The cluster
        # phase is fault-free, so every value it sees must be explained
        # by the shared acked-write history — and with replication=1 a
        # dropped forwarding window turns directly into a
        # cluster-reachability violation inside ClusterStore.get.
        hrng = random.Random(derive_seed(seed, "kv-hammer"))
        targets = [
            0x9000 + 0x100 * index + offset
            for index in range(3) for offset in range(8)
        ]
        yield env.timeout(140.0)
        for _step in range(ops * 12):
            key = hrng.choice(targets)
            try:
                yield from clustered.get(key)
            except KeyNotFoundError:
                pass
            yield env.timeout(hrng.uniform(0.5, 2.0))

    for index, label in enumerate(("alpha", "beta")):
        env.process(client(replicated, f"rep-{label}",
                           0x1000 + 0x100 * index, 0.45))
    for index, label in enumerate(("gamma", "delta", "epsilon")):
        env.process(client(clustered, f"clu-{label}",
                           0x9000 + 0x100 * index, 0.35))
    env.process(churn(env))
    env.process(hammer(env))
    env.run()
    checker.check_steady_state(cluster_store=cluster)
    stats["reads_checked"] = (
        replicated.history.reads_checked
        + clustered.history.reads_checked
    )
    stats["writes_recorded"] = (
        replicated.history.writes_recorded
        + clustered.history.writes_recorded
    )
    return stats


SCENARIOS: Dict[str, Callable] = {
    "writeback": _run_writeback,
    "cluster": _run_cluster,
    "kv": _run_kv,
}


# ---------------------------------------------------------------------------
# Bug registry (for --bug and the harness's self-test)
# ---------------------------------------------------------------------------


def _buggy_migrate_key(
    self,
    key: int,
    add_nodes: Sequence[str] = (),
    drop_nodes: Sequence[str] = (),
) -> Generator:
    """migrate_key with the forwarding window dropped: old copies are
    deleted *before* the new ones are durable and before the directory
    flips.  The commit-time audit stays green (by commit time the new
    copies exist), so only a read racing the migration — found by the
    schedule explorer — observes the hole."""
    if self._inflight.get(key):
        return "busy"
    holders = self._placement.get(key)
    if holders is None:
        return "gone"
    gate = self.env.event()
    self._migrating[key] = gate
    try:
        adds = [
            node for node in add_nodes
            if node not in holders and self.node_is_live(node)
        ]
        value = None
        source = None
        for node in holders:
            if not self.node_is_live(node):
                continue
            try:
                value = yield from self._backends[node].get(key)
                source = node
                break
            except (KeyNotFoundError, TransientStoreError):
                continue
        if source is None:
            return "gone"
        nbytes = self._nbytes.get(key, PAGE_SIZE)
        # BUG under test: drops happen first.
        for node in drop_nodes:
            if node not in holders:
                continue
            backend = self._backends.get(node)
            if backend is None or not backend.is_alive:
                continue
            try:
                yield from backend.remove(key)
            except (KeyNotFoundError, TransientStoreError):
                pass
        survivors: List[str] = []
        if adds:
            failed = yield from self._issue_batches(
                {node: [(key, value, nbytes)] for node in adds}
            )
            survivors = [n for n in adds if n not in failed]
        new_holders = [
            node for node in holders if node not in drop_nodes
        ] + survivors
        if not new_holders:
            return "busy"
        self._commit_placement(key, nbytes, new_holders)
        if self.check.enabled:
            self.check.cluster.on_placement_committed(self, key)
        self.counters.incr("keys_migrated")
        return "done"
    finally:
        del self._migrating[key]
        gate.succeed(None)


def _inject_drop_forwarding_window() -> Callable[[], None]:
    original = ClusterStore.migrate_key
    ClusterStore.migrate_key = _buggy_migrate_key
    return lambda: setattr(ClusterStore, "migrate_key", original)


def _inject_drop_writeback_requeue() -> Callable[[], None]:
    """Retry-exhausted writeback batches are silently forgotten instead
    of re-enqueued — the no-lost-write ledger flags the vanished keys
    at the steady-state sweep."""
    original = WritebackQueue._requeue

    def dropping(self, batch):
        return None

    WritebackQueue._requeue = dropping
    return lambda: setattr(WritebackQueue, "_requeue", original)


BUGS: Dict[str, Callable[[], Callable[[], None]]] = {
    "drop-forwarding-window": _inject_drop_forwarding_window,
    "drop-writeback-requeue": _inject_drop_writeback_requeue,
}


def inject_bug(name: Optional[str]) -> Callable[[], None]:
    """Apply a registered bug; returns the restore callable."""
    if not name:
        return lambda: None
    try:
        injector = BUGS[name]
    except KeyError:
        raise KVError(
            f"unknown bug {name!r}; choose from {sorted(BUGS)}"
        ) from None
    return injector()


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def run_scenario(
    name: str,
    seed: int = 0,
    schedule: str = "fifo",
    ops: Optional[int] = None,
    faults: Any = _DEFAULT,
    quick: bool = True,
    bug: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one checked scenario; raises InvariantViolation on failure.

    Returns a summary dict (counters plus the effective parameters) on
    a clean run.  ``faults`` defaults per scenario; pass ``None`` for
    a fault-free run or a plan name from
    :data:`repro.faults.NAMED_PLANS`.
    """
    try:
        runner = SCENARIOS[name]
    except KeyError:
        raise KVError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    if faults is _DEFAULT:
        faults = DEFAULT_FAULTS[name]
    if ops is None:
        ops = DEFAULT_OPS[name] * (1 if quick else FULL_MULTIPLIER)
    obs = Observability(enabled=True)
    checker = CorrectnessChecker(enabled=True, obs=obs)
    env = Environment()
    env.scheduler = make_schedule(schedule, seed)
    restore = inject_bug(bug)
    try:
        summary = runner(env, seed, ops, faults, checker, obs)
    finally:
        restore()
    summary.update(
        scenario=name, seed=seed, schedule=schedule, ops=ops,
        faults=faults, bug=bug, violations=len(checker.violations),
    )
    return summary
