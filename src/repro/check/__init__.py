"""Correctness harness: invariant monitors, schedule explorer, history checks.

The package has two faces:

* **Library** — :class:`CorrectnessChecker` threads cheap invariant
  hooks through the monitor, writeback queue, LRU buffer, and cluster
  store (all guarded by ``check.enabled``; the shared
  :data:`NULL_CHECKER` keeps disabled runs byte-identical).
  :class:`RecordingStore` wraps any KV backend with read-your-writes
  history checking, and the schedule policies in :mod:`.explorer`
  perturb the simulation clock's event order deterministically.

* **Campaign** — ``python -m repro.check`` sweeps seeds × schedules ×
  scenarios and shrinks any violation to a pytest-ready reproducer
  (see :mod:`.campaign`).  The heavyweight scenario/campaign modules
  are *not* imported here: core components import
  ``repro.check.invariants`` directly, and pulling scenarios in at
  package import would cycle back into ``repro.core``.
"""

from .explorer import (
    SCHEDULES,
    AdversarialSchedule,
    FifoSchedule,
    InvertedSchedule,
    RandomSchedule,
    SchedulePolicy,
    make_schedule,
    parse_schedules,
)
from .history import KvHistory, RecordingStore
from .invariants import (
    NULL_CHECKER,
    ClusterInvariants,
    CorrectnessChecker,
    MarketInvariants,
    PageState,
    PageStateMachine,
    WritebackLedger,
)

__all__ = [
    "AdversarialSchedule",
    "ClusterInvariants",
    "CorrectnessChecker",
    "FifoSchedule",
    "InvertedSchedule",
    "KvHistory",
    "MarketInvariants",
    "NULL_CHECKER",
    "PageState",
    "PageStateMachine",
    "RandomSchedule",
    "RecordingStore",
    "SCHEDULES",
    "SchedulePolicy",
    "WritebackLedger",
    "make_schedule",
    "parse_schedules",
]
