"""Runtime invariant monitors (the ``repro.check`` tentpole).

FluidMem's correctness argument rests on concurrency invariants the
end-of-run integrity checks cannot see: a page must always be in
exactly one place (VM, write list, or remote store), the write list
must never lose a page, and the cluster's placement directory must
never point a reader at a node without the bytes.  This module makes
those invariants *executable*: cheap hooks threaded through the
monitor, write-back queue, LRU buffer, and cluster store feed a
:class:`CorrectnessChecker`, which raises a structured
:class:`~repro.errors.InvariantViolation` — carrying the observability
trace tail — the moment an illegal transition happens.

Every hook is guarded by ``checker.enabled`` at the call site (the
same pattern as :data:`repro.obs.NULL_OBS`), so production and bench
runs pay one attribute check per instrumented site and remain
byte-identical with the checker off.

Invariant catalog (see DESIGN.md §11):

``page-state``
    Per-page state machine.  Each page key is exactly one of
    ``zero`` (never touched), ``resident`` (in the VM), ``writelist``
    (evicted, parked on the write list), or ``remote`` (durable in the
    store), with an orthogonal count of in-flight reads.  Transitions
    only along the legal edges of the paper's Figure 2.
``lru-accounting``
    The LRU buffer's per-registration counts always sum to its length,
    are strictly positive, and (at steady state) length <= capacity.
``writeback-ledger``
    No lost writes: every key enqueued for write-back is discharged by
    exactly one of {durable flush, steal, forget}; at steady state the
    ledger matches the queue's pending + in-flight sets exactly.
``cluster-placement``
    Placement directory <-> shard accounting consistency: every
    directory holder is a registered node that agrees it holds the
    key, and the bytes are actually present on the holder.
``cluster-reachability``
    The forwarding window: while the directory lists holders for a
    key, at least one of them must physically hold the bytes — a read
    that finds the directory pointing only at empty nodes is a dropped
    forwarding window, not a transient failure.
``read-liveness``
    At steady state no reads are left in flight (a leaked read means a
    fault path lost track of an outstanding fetch).
``market-*``
    Marketplace ledger conservation (granted <= harvested, no
    double-grant, leases freed on VM death) — see :mod:`.market`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from ..errors import InvariantViolation
from ..obs import NULL_OBS, Observability
from .market import MarketInvariants

__all__ = [
    "PageState",
    "PageStateMachine",
    "WritebackLedger",
    "ClusterInvariants",
    "MarketInvariants",
    "CorrectnessChecker",
    "NULL_CHECKER",
]


class PageState:
    """The four authoritative page locations (string constants)."""

    ZERO = "zero"
    RESIDENT = "resident"
    WRITELIST = "writelist"
    REMOTE = "remote"


class _PageRecord:
    __slots__ = ("state", "reads_in_flight")

    def __init__(self, state: str) -> None:
        self.state = state
        self.reads_in_flight = 0


class PageStateMachine:
    """Per-page-key state machine fed by the monitor's fault paths.

    Tracking is lazy: the first hook observed for a key establishes
    its record (an adopted VM's pages enter as ``remote``), so the
    machine composes with migration and ``attach_vm`` without priming.
    """

    def __init__(self, checker: "CorrectnessChecker") -> None:
        self._checker = checker
        self._pages: Dict[int, _PageRecord] = {}

    def __len__(self) -> int:
        return len(self._pages)

    def state_of(self, key: int) -> Optional[str]:
        record = self._pages.get(key)
        return record.state if record is not None else None

    def _record(self, key: int, default_state: str) -> _PageRecord:
        record = self._pages.get(key)
        if record is None:
            record = _PageRecord(default_state)
            self._pages[key] = record
        return record

    def _transition(
        self, key: int, expect: Tuple[str, ...], to: str, edge: str,
        lazy_state: Optional[str] = None,
    ) -> None:
        record = self._record(
            key, lazy_state if lazy_state is not None else expect[0]
        )
        if record.state not in expect:
            self._checker.violation(
                "page-state",
                f"illegal edge {edge!r} for key {key:#x}: page is "
                f"{record.state!r}, expected one of {expect}",
                key=f"{key:#x}", edge=edge, state=record.state,
            )
        record.state = to

    # -- monitor-side hooks -------------------------------------------------

    def on_zero_fill(self, key: int) -> None:
        """First touch resolved with the zero page (Fig. 2 red path)."""
        self._transition(
            key, (PageState.ZERO,), PageState.RESIDENT, "zero_fill"
        )

    def on_read_issued(self, key: int) -> None:
        """A store read (fault path or prefetch) went out."""
        record = self._record(key, PageState.REMOTE)
        if record.state is not PageState.REMOTE:
            self._checker.violation(
                "page-state",
                f"read issued for key {key:#x} while page is "
                f"{record.state!r} (reads may only target remote pages)",
                key=f"{key:#x}", edge="read_issued", state=record.state,
            )
        record.reads_in_flight += 1

    def _finish_read(self, key: int, edge: str) -> _PageRecord:
        record = self._pages.get(key)
        if record is None or record.reads_in_flight <= 0:
            self._checker.violation(
                "page-state",
                f"{edge} for key {key:#x} with no read in flight",
                key=f"{key:#x}", edge=edge,
            )
            return self._record(key, PageState.REMOTE)
        record.reads_in_flight -= 1
        return record

    def on_read_installed(self, key: int) -> None:
        """The fetched page was COPY-installed into the VM."""
        record = self._finish_read(key, "read_installed")
        if record.state is not PageState.REMOTE:
            self._checker.violation(
                "page-state",
                f"read for key {key:#x} installed while page is "
                f"{record.state!r}",
                key=f"{key:#x}", edge="read_installed",
                state=record.state,
            )
        record.state = PageState.RESIDENT

    def on_read_dropped(self, key: int) -> None:
        """A completed read was discarded (page already installed)."""
        record = self._finish_read(key, "read_dropped")
        if record.state is not PageState.RESIDENT:
            self._checker.violation(
                "page-state",
                f"duplicate read for key {key:#x} dropped while page "
                f"is {record.state!r} (nothing installed it)",
                key=f"{key:#x}", edge="read_dropped", state=record.state,
            )

    def on_read_failed(self, key: int) -> None:
        """The read errored; the page is still remote."""
        self._finish_read(key, "read_failed")

    def on_probe_installed(self, key: int) -> None:
        """Tracker-ablation probe read found the page remote and
        installed it (no ``read_issued`` bracketing: the probe may
        legally miss on a true first touch)."""
        self._transition(
            key, (PageState.REMOTE,), PageState.RESIDENT,
            "probe_installed",
        )

    def on_evicted(self, key: int, durable: bool) -> None:
        """REMAP out of the VM: to the write list, or (sync path,
        migration push) directly durable in the store."""
        to = PageState.REMOTE if durable else PageState.WRITELIST
        self._transition(
            key, (PageState.RESIDENT,), to,
            "evict_durable" if durable else "evict_to_writelist",
        )

    # -- write-back-side hooks ----------------------------------------------

    def on_writeback_durable(self, key: int) -> None:
        """A write-list entry's batch flushed successfully."""
        self._transition(
            key, (PageState.WRITELIST,), PageState.REMOTE,
            "writeback_durable",
        )

    def on_steal_pending(self, key: int) -> None:
        """A pending write-list entry was stolen back into the VM."""
        self._transition(
            key, (PageState.WRITELIST,), PageState.RESIDENT,
            "steal_pending",
        )

    def on_steal_installed(self, key: int) -> None:
        """An in-flight steal completed: the (now durable) page was
        copied back into the VM."""
        self._transition(
            key, (PageState.REMOTE,), PageState.RESIDENT,
            "steal_installed",
        )

    def on_forget(self, key: int) -> None:
        """The VM deregistered or detached: stop tracking the key."""
        self._pages.pop(key, None)

    # -- steady-state -------------------------------------------------------

    def check_steady(self) -> None:
        """No reads may be left in flight once the system quiesces."""
        leaked = sorted(
            key for key, record in self._pages.items()
            if record.reads_in_flight
        )
        if leaked:
            self._checker.violation(
                "read-liveness",
                f"{len(leaked)} read(s) still in flight at steady "
                f"state (first key {leaked[0]:#x})",
                keys=[f"{key:#x}" for key in leaked[:8]],
            )

    def counts(self) -> Dict[str, int]:
        """Pages per state (diagnostics / campaign summary)."""
        out: Dict[str, int] = {}
        for record in self._pages.values():
            out[record.state] = out.get(record.state, 0) + 1
        return out


class WritebackLedger:
    """No-lost-write accounting for the asynchronous write list.

    Every enqueue creates a debt; only a durable flush, a steal, or a
    teardown forget may discharge it.  A flush of a key that was never
    enqueued, or a steady state where the ledger and the queue
    disagree, is a violation.
    """

    def __init__(self, checker: "CorrectnessChecker") -> None:
        self._checker = checker
        self._owed: Set[int] = set()

    @property
    def owed(self) -> Set[int]:
        return set(self._owed)

    def on_enqueued(self, key: int) -> None:
        if key in self._owed:
            self._checker.violation(
                "writeback-ledger",
                f"key {key:#x} enqueued for write-back twice",
                key=f"{key:#x}",
            )
        self._owed.add(key)

    def _discharge(self, key: int, how: str) -> None:
        if key not in self._owed:
            self._checker.violation(
                "writeback-ledger",
                f"write-back {how} for key {key:#x} that was never "
                "enqueued",
                key=f"{key:#x}", how=how,
            )
        self._owed.discard(key)

    def on_durable(self, key: int) -> None:
        self._discharge(key, "flush")

    def on_stolen(self, key: int) -> None:
        self._discharge(key, "steal")

    def on_forget(self, key: int) -> None:
        self._owed.discard(key)

    def on_requeued(self, keys: Iterable[int]) -> None:
        """A failed batch went back to pending: debts must still stand."""
        missing = [key for key in keys if key not in self._owed]
        if missing:
            self._checker.violation(
                "writeback-ledger",
                f"re-enqueued batch contains {len(missing)} key(s) "
                f"whose debt was already discharged "
                f"(first {missing[0]:#x})",
                keys=[f"{key:#x}" for key in missing[:8]],
            )

    def check_steady(self, queue) -> None:
        """The ledger must match the queue's own view exactly."""
        held = set(queue._pending) | set(queue._in_flight)
        lost = sorted(self._owed - held)
        if lost:
            self._checker.violation(
                "writeback-ledger",
                f"{len(lost)} enqueued page(s) vanished from the "
                f"write list without becoming durable "
                f"(first key {lost[0]:#x})",
                keys=[f"{key:#x}" for key in lost[:8]],
            )
        phantom = sorted(held - self._owed)
        if phantom:
            self._checker.violation(
                "writeback-ledger",
                f"write list holds {len(phantom)} page(s) the ledger "
                f"never saw enqueued (first key {phantom[0]:#x})",
                keys=[f"{key:#x}" for key in phantom[:8]],
            )


class ClusterInvariants:
    """Placement-directory and forwarding-window invariants."""

    def __init__(self, checker: "CorrectnessChecker") -> None:
        self._checker = checker

    def on_placement_committed(self, store, key: int) -> None:
        """After a directory flip every holder must really hold the
        bytes — the write/migration that committed it is durable."""
        holders = store._placement.get(key, ())
        if not holders:
            self._checker.violation(
                "cluster-placement",
                f"placement committed for key {key:#x} with no holders",
                key=f"{key:#x}",
            )
        for node in holders:
            backend = store._backends.get(node)
            if backend is None:
                self._checker.violation(
                    "cluster-placement",
                    f"directory lists unregistered node {node!r} for "
                    f"key {key:#x}",
                    key=f"{key:#x}", node=node,
                )
                continue
            if key not in store._node_keys.get(node, ()):
                self._checker.violation(
                    "cluster-placement",
                    f"directory lists {node!r} for key {key:#x} but "
                    "the node's key set disagrees",
                    key=f"{key:#x}", node=node,
                )
            if not backend.contains(key):
                self._checker.violation(
                    "cluster-placement",
                    f"directory lists {node!r} for key {key:#x} but "
                    "the node does not hold the bytes",
                    key=f"{key:#x}", node=node,
                )

    def on_unreachable(self, store, key: int) -> None:
        """Every directory holder failed a read.  Crashed holders are a
        legitimate transient; holders that simply lack the bytes mean
        the forwarding window was dropped."""
        holders = store._placement.get(key, ())
        if not holders:
            return  # raced with a remove: KeyNotFound is correct
        if not any(
            store._backends[node].contains(key)
            for node in holders if node in store._backends
        ):
            self._checker.violation(
                "cluster-reachability",
                f"key {key:#x} is unreachable: the directory lists "
                f"{holders} but no listed node holds the bytes "
                "(forwarding window dropped)",
                key=f"{key:#x}", holders=list(holders),
            )

    def check_steady(self, store) -> None:
        """Full directory <-> node accounting <-> ring consistency."""
        for key, holders in store._placement.items():
            for node in holders:
                if node not in store._backends:
                    self._checker.violation(
                        "cluster-placement",
                        f"directory lists unknown node {node!r} for "
                        f"key {key:#x}",
                        key=f"{key:#x}", node=node,
                    )
                elif key not in store._node_keys[node]:
                    self._checker.violation(
                        "cluster-placement",
                        f"key {key:#x} listed on {node!r} but missing "
                        "from its key set",
                        key=f"{key:#x}", node=node,
                    )
            self.on_unreachable(store, key)
        for node, keys in store._node_keys.items():
            for key in keys:
                if node not in store._placement.get(key, ()):
                    self._checker.violation(
                        "cluster-placement",
                        f"node {node!r} accounts key {key:#x} the "
                        "directory does not place there",
                        key=f"{key:#x}", node=node,
                    )
            if store._node_bytes.get(node, 0) < 0:
                self._checker.violation(
                    "cluster-placement",
                    f"negative byte accounting on node {node!r}",
                    node=node, bytes=store._node_bytes.get(node),
                )
        ring = store.ring
        if sorted(ring._owner_at) != ring._points:
            self._checker.violation(
                "cluster-placement",
                "hash ring points and ownership map disagree",
            )
        for node in ring.nodes:
            if node not in store._backends:
                self._checker.violation(
                    "cluster-placement",
                    f"ring member {node!r} has no registered backend",
                    node=node,
                )


class CorrectnessChecker:
    """Bundle of every invariant monitor, plus the violation raiser.

    One checker instance watches one simulation.  Components accept it
    as an optional ``check`` argument (defaulting to the shared
    disabled :data:`NULL_CHECKER`) and guard every hook with
    ``check.enabled`` — exactly the :data:`repro.obs.NULL_OBS` pattern,
    so disabled runs are untouched byte for byte.
    """

    def __init__(
        self,
        enabled: bool = True,
        obs: Optional[Observability] = None,
        trace_tail: int = 16,
    ) -> None:
        self.enabled = enabled
        self.obs = obs if obs is not None else NULL_OBS
        self.trace_tail = trace_tail
        self.pages = PageStateMachine(self)
        self.writeback = WritebackLedger(self)
        self.cluster = ClusterInvariants(self)
        self.market = MarketInvariants(self)
        #: Violations seen so far (each is also raised).
        self.violations = []

    def violation(self, invariant: str, message: str, **details) -> None:
        """Record and raise an :class:`InvariantViolation`."""
        tail = tuple(
            str(event) for event in
            tuple(self.obs.tracer.events)[-self.trace_tail:]
        )
        error = InvariantViolation(invariant, message, details, tail)
        self.violations.append(error)
        raise error

    def check_steady_state(
        self, monitor=None, cluster_store=None, broker=None
    ) -> None:
        """Quiesce-time sweep: called by scenarios and tests once the
        system has drained (no faults in flight, write list empty)."""
        if not self.enabled:
            return
        self.pages.check_steady()
        if monitor is not None:
            self.writeback.check_steady(monitor.writeback)
            lru = monitor.lru
            if len(lru) > lru.capacity:
                self.violation(
                    "lru-accounting",
                    f"LRU buffer over capacity at steady state: "
                    f"{len(lru)} > {lru.capacity}",
                    resident=len(lru), capacity=lru.capacity,
                )
        if cluster_store is not None:
            self.cluster.check_steady(cluster_store)
        if broker is not None:
            self.market.check_steady(broker)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"<CorrectnessChecker {state} pages={len(self.pages)} "
            f"violations={len(self.violations)}>"
        )


#: Shared disabled instance: the default ``check`` of every
#: instrumented component.
NULL_CHECKER = CorrectnessChecker(enabled=False)
