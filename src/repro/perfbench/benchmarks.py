"""Seeded wall-clock microbenchmarks for the simulation hot path.

Five measurements, smallest scope to largest:

* **engine** — raw event throughput of the discrete-event core: N
  processes looping on ``timeout(1.0)``, reported as events/sec.  This
  isolates :mod:`repro.sim.core` (heap, Timeout pooling, ``_resume``)
  from everything above it.
* **burst-resolve** — the batch-resolution primitives on their own:
  ``Store.put_nowait`` → ``Store.try_get_batch`` hand-offs with the
  cohort's accumulated cost committed through
  ``Environment.try_advance_batch`` (DESIGN.md §17), reported as
  ops/sec.  This is the layer the monitor's flat fault path stands on.
* **monitor** — the FluidMem fault path end to end: pmbench against the
  ``fluidmem-dram`` platform at a tiny memory scale so every access
  faults, reported as accesses/sec.  Exercises uffd delivery, the
  monitor's charge/ioctl/wake sequence, LRU eviction, and the DRAM
  store.
* **fig3-quick** — one full ``run_fig3`` quick experiment, reported in
  wall-clock seconds.  The closest proxy for "how long does a bench
  run take".
* **prefetcher** — the Leap majority-trend prefetcher's decision loop
  (``record_fault`` + ``candidates``) on a synthetic strided/random
  fault stream, reported as ops/sec.  This code runs after *every*
  resolved read fault when prefetching is on, so its throughput bounds
  the policy lab's overhead.

Unlike every other number in this repo, these are *wall-clock*
measurements: they depend on the machine and on ambient load.  The
suite therefore reports best-of-N (max rate / min seconds), and the CI
gate compares with a deliberately generous 2x threshold.  Simulated
results are pinned elsewhere (the byte-identical ``--metrics``
determinism tests); this suite only watches speed.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..parallel.pool import run_tasks
from ..sim import Environment

__all__ = [
    "PERFBENCH_SCHEMA",
    "FULL_SIZES",
    "QUICK_SIZES",
    "bench_engine",
    "bench_burst_resolve",
    "bench_monitor",
    "bench_fig3_quick",
    "bench_prefetcher",
    "run_suite",
    "run_sweep",
    "bench_sweep_scaling",
]

#: Version tag of the perfbench JSON document; bump on layout changes
#: so the CI gate can refuse mismatched baselines.
PERFBENCH_SCHEMA = "repro-perfbench-metrics/1"

#: Workload sizes for the recorded (BENCH_WALLCLOCK.json) protocol.
FULL_SIZES = {
    "engine_events": 800_000,
    "engine_procs": 4,
    "burst_ops": 600_000,
    "monitor_accesses": 30_000,
    "fig3_accesses": 4_000,
    "prefetcher_ops": 400_000,
}

#: CI-sized runs: same shape, a few seconds total.
QUICK_SIZES = {
    "engine_events": 200_000,
    "engine_procs": 4,
    "burst_ops": 150_000,
    "monitor_accesses": 8_000,
    "fig3_accesses": 1_500,
    "prefetcher_ops": 100_000,
}

#: Best-of-N repetitions per benchmark (noise rejection).
FULL_REPS = {
    "engine": 3, "burst": 2, "monitor": 2, "fig3": 2, "prefetcher": 2,
}
QUICK_REPS = {
    "engine": 2, "burst": 1, "monitor": 1, "fig3": 1, "prefetcher": 1,
}


def bench_engine(total_events: int = 800_000, procs: int = 4) -> float:
    """Raw engine throughput in events/sec.

    ``procs`` concurrent loopers each yield ``total_events / procs``
    unit timeouts — the dominant fire-once Timeout pattern the pool
    and drain fast path are built for.
    """
    per = total_events // procs
    env = Environment()

    def looper(env: Environment, n: int):
        timeout = env.timeout
        for _ in range(n):
            yield timeout(1.0)

    for _ in range(procs):
        env.process(looper(env, per))
    started = time.perf_counter()
    env.run()
    return total_events / (time.perf_counter() - started)


def bench_burst_resolve(ops: int = 600_000) -> float:
    """Burst-resolution primitive throughput in ops/sec.

    One op = one ``put_nowait`` enqueue immediately drained through the
    guarded ``try_get_batch``, with the cohort's clock cost committed
    as one ``try_advance_batch`` call every 64 ops — the exact
    primitive sequence the monitor's flat fault path (DESIGN.md §17)
    issues while a burst window is open.  With the batch switches off
    the guarded calls fall back to their granular equivalents, so the
    spread between the two runs is the batch layer's own contribution.
    """
    from ..sim.resources import Store

    env = Environment()
    store = Store(env)
    put_nowait = store.put_nowait
    try_get_batch = store.try_get_batch
    try_get = store.try_get
    try_advance_batch = env.try_advance_batch
    sync_to = env.sync_to
    clock = 0.0
    cohort = 0
    started = time.perf_counter()
    for index in range(ops):
        put_nowait(index)
        item = try_get_batch()
        if item is None:  # batch switch off: granular fallback
            item = try_get()
        clock += 0.05
        cohort += 1
        if cohort == 64:
            if not try_advance_batch(clock):
                sync_to(clock)
            cohort = 0
    if cohort and not try_advance_batch(clock):
        sync_to(clock)
    return ops / (time.perf_counter() - started)


def bench_monitor(accesses: int = 30_000, seed: int = 42) -> float:
    """Monitor fault-path throughput in accesses/sec.

    pmbench against ``fluidmem-dram`` at 1/1024 memory scale: the
    working set dwarfs local memory, so nearly every access walks the
    full fault path (uffd event, charge, read/zero-fill, wake, evict).
    """
    from ..bench.platform import build_platform
    from ..workloads import Pmbench, PmbenchConfig

    platform = build_platform(
        "fluidmem-dram", memory_scale=1.0 / 1024, seed=seed
    )
    wss_pages = platform.shape.wss_pages(4.0)
    bench = Pmbench(
        platform.env,
        platform.port,
        platform.workload_base,
        PmbenchConfig(
            wss_pages=wss_pages,
            read_ratio=0.5,
            measured_accesses=accesses,
        ),
        rng=platform.streams.stream("pmbench"),
    )
    started = time.perf_counter()
    platform.run(bench.run())
    return accesses / (time.perf_counter() - started)


def bench_fig3_quick(measured_accesses: int = 4_000, seed: int = 42) -> float:
    """One quick Figure 3 run, in wall-clock seconds (lower is better)."""
    from ..bench.fig3_latency_cdf import run_fig3

    started = time.perf_counter()
    run_fig3(measured_accesses=measured_accesses, seed=seed)
    return time.perf_counter() - started


class _FlatRegion:
    """Just enough region protocol for candidate filtering."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = hi

    def __contains__(self, addr: int) -> bool:
        return self.lo <= addr < self.hi


def bench_prefetcher(ops: int = 400_000, seed: int = 42) -> float:
    """Leap decision-loop throughput in ops/sec.

    One op = one ``record_fault`` + one ``candidates`` call.  The
    stream alternates strided scans (a majority trend exists, so the
    vote and candidate generation both run) with uniform jumps (no
    majority: the vote runs, generation short-circuits) — both shapes
    the monitor feeds it in production.
    """
    import random

    from ..mem import PAGE_SIZE
    from ..policy.prefetch import LeapPrefetcher

    rng = random.Random(seed)
    prefetcher = LeapPrefetcher(depth=4)
    region = _FlatRegion(0, 1 << 30)
    span_pages = (1 << 30) // PAGE_SIZE
    addrs = []
    cursor = 0
    for index in range(ops):
        if (index // 64) % 2 == 0:
            cursor = (cursor + 3) % span_pages  # strided scan burst
        else:
            cursor = rng.randrange(span_pages)  # random burst
        addrs.append(cursor * PAGE_SIZE)
    record_fault = prefetcher.record_fault
    candidates = prefetcher.candidates
    started = time.perf_counter()
    for addr in addrs:
        record_fault(0, addr)
        candidates(0, addr, region)
    return ops / (time.perf_counter() - started)


def run_suite(
    quick: bool = False,
    seed: int = 42,
    reps: Optional[int] = None,
    sizes: Optional[Dict[str, int]] = None,
) -> Dict[str, object]:
    """Run all five benchmarks; returns the perfbench JSON document.

    ``reps`` overrides the per-benchmark best-of-N count (handy for
    tests); ``sizes`` overrides individual workload sizes.
    """
    chosen = dict(QUICK_SIZES if quick else FULL_SIZES)
    if sizes:
        chosen.update(sizes)
    repetitions = dict(QUICK_REPS if quick else FULL_REPS)
    if reps is not None:
        repetitions = {name: reps for name in repetitions}

    engine = max(
        bench_engine(chosen["engine_events"], chosen["engine_procs"])
        for _ in range(repetitions["engine"])
    )
    burst = max(
        bench_burst_resolve(chosen["burst_ops"])
        for _ in range(repetitions["burst"])
    )
    monitor = max(
        bench_monitor(chosen["monitor_accesses"], seed=seed)
        for _ in range(repetitions["monitor"])
    )
    fig3 = min(
        bench_fig3_quick(chosen["fig3_accesses"], seed=seed)
        for _ in range(repetitions["fig3"])
    )
    prefetcher = max(
        bench_prefetcher(chosen["prefetcher_ops"], seed=seed)
        for _ in range(repetitions["prefetcher"])
    )
    return {
        "schema": PERFBENCH_SCHEMA,
        "mode": "quick" if quick else "full",
        "seed": seed,
        "sizes": chosen,
        "engine_events_per_sec": engine,
        "burst_resolve_ops_per_sec": burst,
        "monitor_ops_per_sec": monitor,
        "fig3_quick_seconds": fig3,
        "prefetcher_ops_per_sec": prefetcher,
    }


def _sweep_one(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One seed's sweep cell: monitor + fig3 at the given sizes.

    Module-level so :func:`repro.parallel.pool.run_tasks` can ship it
    to worker processes.
    """
    seed = payload["seed"]
    sizes = payload["sizes"]
    return {
        "seed": seed,
        "monitor_ops_per_sec": bench_monitor(
            sizes["monitor_accesses"], seed=seed
        ),
        "fig3_quick_seconds": bench_fig3_quick(
            sizes["fig3_accesses"], seed=seed
        ),
    }


def run_sweep(
    seeds: Sequence[int],
    quick: bool = False,
    workers: int = 1,
    sizes: Optional[Dict[str, int]] = None,
    emit: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Sweep the seeded benchmarks (monitor, fig3) over ``seeds``.

    The sweep is the perfbench path that parallelizes: each seed's
    cell is an independent simulation, fanned out over ``workers``
    processes via :mod:`repro.parallel` and merged back in seed order.
    Rows are wall-clock rates and therefore host-dependent; the *row
    order and structure* are deterministic at any worker count.
    """
    chosen = dict(QUICK_SIZES if quick else FULL_SIZES)
    if sizes:
        chosen.update(sizes)
    payloads: List[Dict[str, Any]] = [
        {"seed": seed, "sizes": chosen} for seed in seeds
    ]
    started = time.perf_counter()
    rows = run_tasks(_sweep_one, payloads, workers=workers, emit=emit)
    elapsed = time.perf_counter() - started
    return {
        "schema": PERFBENCH_SCHEMA,
        "mode": "sweep",
        "quick": quick,
        "workers": max(1, workers),
        "seeds": [int(seed) for seed in seeds],
        "sizes": chosen,
        "wall_seconds": elapsed,
        "rows": rows,
    }


def bench_sweep_scaling(
    seeds: int = 8,
    workers: int = 4,
    quick: bool = True,
    emit: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Measure the multi-core speedup of the parallel seed sweep.

    Runs the same ``seeds``-cell sweep twice — serially and with
    ``workers`` processes — and reports the wall-clock ratio.  The
    achievable speedup is bounded by the host's cores (recorded as
    ``host_cpus``): on a 1-core host the parallel run degenerates to
    time-slicing and the ratio measures pool overhead instead.
    """
    try:
        host_cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        host_cpus = os.cpu_count() or 1
    serial = run_sweep(range(seeds), quick=quick, workers=1, emit=emit)
    parallel = run_sweep(
        range(seeds), quick=quick, workers=workers, emit=emit
    )
    serial_s = serial["wall_seconds"]
    parallel_s = parallel["wall_seconds"]
    return {
        "schema": PERFBENCH_SCHEMA,
        "mode": "sweep-scaling",
        "quick": quick,
        "sweep_seeds": seeds,
        "workers": workers,
        "host_cpus": host_cpus,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else 0.0,
    }
