"""Command-line entry point for the wall-clock perfbench suite.

Usage::

    python -m repro.perfbench                  # full suite, table out
    python -m repro.perfbench --quick          # CI-sized runs
    python -m repro.perfbench --json out.json  # also write the document
    python -m repro.perfbench --compare BENCH_WALLCLOCK.json
    python -m repro.perfbench --no-fastpath    # fast paths forced off

``--compare`` checks the fresh numbers against the most recent
matching-mode entry of a BENCH_WALLCLOCK.json trajectory (or a bare
result document) and exits non-zero when any metric regressed by more
than ``--max-regression`` (default 2x — generous on purpose: these are
wall-clock numbers on shared runners).  ``--no-fastpath`` measures the
engine with every fast path disabled, the same configuration a
schedule-exploration policy forces; the spread between the two runs is
the batching layer's contribution.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence, Tuple

from ..sim import set_fastpath
from .benchmarks import (
    PERFBENCH_SCHEMA,
    bench_sweep_scaling,
    run_suite,
    run_sweep,
)

__all__ = [
    "main",
    "compare",
    "missing_metrics",
    "load_reference",
    "METRIC_DIRECTIONS",
]

#: metric name -> "higher" (rates) or "lower" (seconds) is better.
METRIC_DIRECTIONS = (
    ("engine_events_per_sec", "higher"),
    ("burst_resolve_ops_per_sec", "higher"),
    ("monitor_ops_per_sec", "higher"),
    ("fig3_quick_seconds", "lower"),
    ("prefetcher_ops_per_sec", "higher"),
)


def _comparable(document: dict, metric: str) -> bool:
    value = document.get(metric)
    return isinstance(value, (int, float)) and value > 0


def load_reference(path: str, mode: str) -> Optional[dict]:
    """The baseline entry to compare against.

    Accepts either a BENCH_WALLCLOCK.json trajectory (``entries`` list:
    picks the newest entry whose ``mode`` matches, else the newest of
    any mode) or a bare perfbench result document.
    """
    with open(path) as handle:
        document = json.load(handle)
    schema = document.get("schema")
    if schema != PERFBENCH_SCHEMA:
        raise ValueError(
            f"{path}: schema {schema!r} != {PERFBENCH_SCHEMA!r}"
        )
    entries = document.get("entries")
    if entries is None:
        return document
    matching = [e for e in entries if e.get("mode") == mode] or entries
    return matching[-1] if matching else None


def compare(
    current: dict, reference: dict, max_regression: float
) -> List[Tuple[str, float, float, float, bool]]:
    """Per-metric ``(name, current, reference, factor, ok)`` rows.

    ``factor`` > 1 means the current run is worse by that factor (in
    the metric's own direction); ``ok`` is ``factor <= max_regression``.
    """
    rows = []
    for metric, direction in METRIC_DIRECTIONS:
        if not _comparable(reference, metric) or \
                not _comparable(current, metric):
            continue
        ref = reference[metric]
        cur = current[metric]
        factor = ref / cur if direction == "higher" else cur / ref
        rows.append((metric, cur, ref, factor, factor <= max_regression))
    return rows


def missing_metrics(current: dict, reference: dict) -> List[Tuple[str, str]]:
    """``(metric, side)`` pairs :func:`compare` had to skip.

    ``side`` names the document the metric is absent from (``"current
    run"`` or ``"baseline"``) while the other side has it — e.g. a
    baseline recorded before a benchmark existed.  Metrics absent from
    both documents are not reported.  Surfacing these keeps a skipped
    comparison visible instead of silently shrinking the gate.
    """
    rows = []
    for metric, _direction in METRIC_DIRECTIONS:
        cur_ok = _comparable(current, metric)
        ref_ok = _comparable(reference, metric)
        if cur_ok and not ref_ok:
            rows.append((metric, "baseline"))
        elif ref_ok and not cur_ok:
            rows.append((metric, "current run"))
    return rows


def _format_value(metric: str, value: float) -> str:
    if metric.endswith("_seconds"):
        return f"{value:.4f} s"
    return f"{value:,.0f}/s"


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.perfbench",
        description="Seeded wall-clock microbenchmarks for the "
                    "simulation hot path",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized runs (seconds, not tens of seconds)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--reps",
        type=int,
        default=None,
        metavar="N",
        help="override the best-of-N repetition count per benchmark",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the result document as JSON",
    )
    parser.add_argument(
        "--compare",
        metavar="PATH",
        default=None,
        help="compare against a BENCH_WALLCLOCK.json trajectory (or a "
             "bare result file); exit 1 on regression",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        metavar="FACTOR",
        help="fail --compare when any metric is worse by more than "
             "this factor (default: 2.0)",
    )
    parser.add_argument(
        "--no-fastpath",
        action="store_true",
        help="disable every engine fast path for this run (the "
             "configuration a schedule explorer forces)",
    )
    parser.add_argument(
        "--sweep-seeds",
        type=int,
        default=None,
        metavar="N",
        help="run the seeded benchmarks over seeds 0..N-1 instead of "
             "the three-metric suite",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="M",
        help="worker processes for --sweep-seeds (default 1 = serial)",
    )
    parser.add_argument(
        "--scaling",
        action="store_true",
        help="measure the sweep's multi-core speedup (serial vs "
             "--workers processes over --sweep-seeds cells)",
    )
    return parser


def _write_json(path: str, document: object) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _main_sweep(args: argparse.Namespace) -> int:
    """The --sweep-seeds / --scaling modes."""
    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 2
    seeds = args.sweep_seeds if args.sweep_seeds is not None else 8
    pool_emit = lambda line: print(line, file=sys.stderr)  # noqa: E731
    if args.scaling:
        result = bench_sweep_scaling(
            seeds=seeds, workers=args.workers, quick=args.quick,
            emit=pool_emit,
        )
        print(f"sweep scaling ({result['sweep_seeds']} seed(s), "
              f"{result['workers']} worker(s), "
              f"{result['host_cpus']} host cpu(s))")
        print(f"  serial    {result['serial_seconds']:.2f} s")
        print(f"  parallel  {result['parallel_seconds']:.2f} s")
        print(f"  speedup   {result['speedup']:.2f}x")
    else:
        result = run_sweep(
            range(seeds), quick=args.quick, workers=args.workers,
            emit=pool_emit,
        )
        print(f"seed sweep ({len(result['rows'])} seed(s), "
              f"{result['workers']} worker(s), "
              f"{result['wall_seconds']:.2f} s wall)")
        for row in result["rows"]:
            print(f"  seed {row['seed']:>3}  "
                  f"monitor {row['monitor_ops_per_sec']:,.0f}/s  "
                  f"fig3 {row['fig3_quick_seconds']:.4f} s")
    if args.json is not None:
        _write_json(args.json, result)
        print(f"results written to {args.json}", file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)

    if args.sweep_seeds is not None or args.scaling:
        return _main_sweep(args)

    previous = None
    if args.no_fastpath:
        previous = set_fastpath(False)
    try:
        result = run_suite(
            quick=args.quick, seed=args.seed, reps=args.reps
        )
    finally:
        if previous is not None:
            set_fastpath(previous)
    if args.no_fastpath:
        result["fastpath"] = False

    width = max(len(name) for name, _ in METRIC_DIRECTIONS)
    print(f"perfbench ({result['mode']}, seed {result['seed']}"
          + (", fastpath off" if args.no_fastpath else "") + ")")
    for metric, _direction in METRIC_DIRECTIONS:
        if metric in result:
            print(f"  {metric:<{width}}  "
                  f"{_format_value(metric, result[metric])}")

    if args.json is not None:
        _write_json(args.json, result)
        print(f"results written to {args.json}", file=sys.stderr)

    if args.compare is not None:
        reference = load_reference(args.compare, result["mode"])
        if reference is None:
            print(f"{args.compare}: no baseline entries", file=sys.stderr)
            return 2
        failed = False
        print(f"\nvs {args.compare} "
              f"(mode {reference.get('mode', '?')}, "
              f"max regression {args.max_regression:g}x):")
        for metric, cur, ref, factor, ok in compare(
            result, reference, args.max_regression
        ):
            verdict = "ok" if ok else "REGRESSION"
            print(f"  {metric:<{width}}  "
                  f"{_format_value(metric, cur)} vs "
                  f"{_format_value(metric, ref)}  "
                  f"({factor:.2f}x {'worse' if factor > 1 else 'of'} "
                  f"baseline)  {verdict}")
            failed = failed or not ok
        for metric, side in missing_metrics(result, reference):
            print(f"  {metric:<{width}}  missing from {side} "
                  "-- not compared")
        if failed:
            print("perfbench: wall-clock regression beyond threshold",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
