"""Wall-clock performance benchmarks (``python -m repro.perfbench``).

Everything else in this repo measures *simulated* time; this package
measures how fast the simulator itself runs.  See
:mod:`repro.perfbench.benchmarks` for the three measurements and the
noise-rejection protocol, and ``BENCH_WALLCLOCK.json`` at the repo
root for the recorded trajectory the CI gate compares against.
"""

from .benchmarks import (
    FULL_SIZES,
    PERFBENCH_SCHEMA,
    QUICK_SIZES,
    bench_burst_resolve,
    bench_engine,
    bench_fig3_quick,
    bench_monitor,
    run_suite,
)
from .cli import compare, load_reference, main, missing_metrics

__all__ = [
    "PERFBENCH_SCHEMA",
    "FULL_SIZES",
    "QUICK_SIZES",
    "bench_engine",
    "bench_burst_resolve",
    "bench_monitor",
    "bench_fig3_quick",
    "run_suite",
    "compare",
    "missing_metrics",
    "load_reference",
    "main",
]
