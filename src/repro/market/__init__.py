"""The multi-tenant memory marketplace (Memtrade over FluidMem).

FluidMem makes a VM's memory footprint a provider-controlled knob
(§III); this package closes the loop the related work opened
(Memtrade, arXiv 2108.06893): if footprints can shrink on demand, the
reclaimed DRAM is a *sellable commodity*.  Three cooperating parts:

* :class:`Harvester` (:mod:`.harvester`) — per-producer control loop:
  estimate the working set from kernel page-access stats, skim the
  surplus onto the market, give everything back fast when the
  producer's fault rate spikes.
* :class:`Broker` (:mod:`.broker`) — spot pricing, admission control,
  and the lease ledger.  Every mutation reports into
  :class:`repro.check.MarketInvariants`, whose shadow ledger proves
  capacity conservation (granted <= harvested, no double-grant, leases
  freed on VM death) rather than asserting it.
* :class:`QosManager` (:mod:`.qos`) — per-tenant p99 fault-latency
  SLOs enforced by throttling spot tenants and steering the broker's
  revocation order.

:mod:`.fleet` scales the three to hundreds of lightweight VMs on one
deterministic timeline — the substrate of the ``market`` bench
experiment (``python -m repro.bench market``).
"""

from .broker import Broker, Lease, SpotPricing
from .fleet import (
    FIRST_TOUCH_US,
    REMOTE_FAULT_US,
    SWAP_FAULT_US,
    MarketFleet,
    MarketVM,
    TenantSpec,
)
from .harvester import HarvestConfig, Harvester, MonitorHarvestTarget
from .qos import QosManager, TenantSlo

__all__ = [
    "Broker",
    "FIRST_TOUCH_US",
    "HarvestConfig",
    "Harvester",
    "Lease",
    "MarketFleet",
    "MarketVM",
    "MonitorHarvestTarget",
    "QosManager",
    "REMOTE_FAULT_US",
    "SWAP_FAULT_US",
    "SpotPricing",
    "TenantSlo",
    "TenantSpec",
]
