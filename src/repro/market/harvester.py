"""The per-producer harvester: shrink toward the WSS, give back fast.

Memtrade calls this component the *harvester*: a control loop on each
producer VM that estimates the working set, skims the idle memory
above it onto the market, and — the part that makes the whole scheme
tenable — returns it *immediately* when the producer's own fault rate
spikes.  Harvesting is speculative; give-back is a contract.

The loop samples on a fixed interval (the :class:`repro.core.autoscale`
idiom) and on each tick does one of three things:

* **spike** — the fault rate crossed ``spike_rate_per_ms``: reclaim
  everything outstanding from the broker (which revokes consumer
  leases as needed, spot first) and give it back to the VM in one
  step.  A cooldown then suppresses harvesting while the VM recovers.
* **calm** — the fault rate is under ``calm_rate_per_ms`` and capacity
  exceeds the WSS estimate plus a reserve: harvest the surplus (capped
  per tick) and offer it to the broker.
* **neither** — hold position.

The harvester is generic over a :class:`HarvestTarget`-shaped object so
the same loop drives a full FluidMem :class:`~repro.core.Monitor` (via
:class:`MonitorHarvestTarget`, which reuses the monitor's resizable LRU
as the actuator) or the lightweight fleet VMs in :mod:`.fleet` (which
estimate WSS straight from the kernel's
:meth:`~repro.kernel.ActiveInactiveLists.wss_estimate` page-access
stats).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from ..errors import InterruptError, MarketError
from ..obs import NULL_OBS, Observability
from .broker import Broker

__all__ = ["HarvestConfig", "Harvester", "MonitorHarvestTarget"]


@dataclass(frozen=True)
class HarvestConfig:
    """Control-loop parameters."""

    #: Sampling interval (µs).
    interval_us: float = 50_000.0
    #: Pages kept above the WSS estimate as headroom.
    reserve_pages: int = 32
    #: Surpluses smaller than this are not worth a market round-trip.
    min_harvest_pages: int = 16
    #: Per-tick harvest cap — shrink gradually, never in one cliff.
    max_step_pages: int = 128
    #: Faults/ms at or above which everything outstanding is given back.
    spike_rate_per_ms: float = 2.0
    #: Faults/ms below which harvesting is allowed.
    calm_rate_per_ms: float = 0.5
    #: Ticks after a spike during which harvesting stays suppressed.
    cooldown_ticks: int = 3

    def __post_init__(self) -> None:
        if self.interval_us <= 0:
            raise MarketError("interval must be positive")
        if self.calm_rate_per_ms >= self.spike_rate_per_ms:
            raise MarketError("calm rate must be below spike rate")
        if self.min_harvest_pages < 1 or self.max_step_pages < 1:
            raise MarketError("harvest step bounds must be >= 1 page")
        if self.reserve_pages < 0 or self.cooldown_ticks < 0:
            raise MarketError("reserve and cooldown must be >= 0")


class MonitorHarvestTarget:
    """Adapts a FluidMem :class:`~repro.core.Monitor` to the harvester.

    The monitor's resizable LRU is the actuator (its
    :meth:`~repro.core.Monitor.harvest` / ``give_back`` hooks); resident
    pages stand in for the WSS — the monitor's user-space LRU has no
    referenced bits, so what a VM keeps resident is the best estimate
    its provider can see without guest cooperation (§III).
    """

    def __init__(self, monitor) -> None:
        self.monitor = monitor

    @property
    def capacity(self) -> int:
        return self.monitor.lru.capacity

    def wss_estimate(self) -> int:
        return self.monitor.resident_pages()

    def fault_count(self) -> int:
        return self.monitor.counters["faults"]

    def harvest(self, pages: int) -> Generator:
        taken = yield from self.monitor.harvest(pages)
        return taken

    def give_back(self, pages: int) -> int:
        return self.monitor.give_back(pages)


class Harvester:
    """One producer VM's market-facing control loop."""

    def __init__(
        self,
        env,
        producer: str,
        target,
        broker: Broker,
        config: Optional[HarvestConfig] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.env = env
        self.producer = producer
        self.target = target
        self.broker = broker
        self.config = config or HarvestConfig()
        self.obs = obs if obs is not None else NULL_OBS
        self._obs_on = self.obs.enabled
        self.counters = self.obs.counters_for(
            component="harvester", vm=producer
        )
        self._process = None
        self._last_faults = 0
        self._cooldown = 0
        #: (time_us, fault_rate_per_ms, outstanding_pages) per tick.
        self.history: List[Tuple[float, float, int]] = []

    @property
    def running(self) -> bool:
        return self._process is not None and self._process.is_alive

    @property
    def outstanding(self) -> int:
        """Pages this producer currently has on the market."""
        return self.broker.outstanding_of(self.producer)

    def start(self) -> None:
        if self.running:
            raise MarketError(f"harvester {self.producer!r} already running")
        self._last_faults = self.target.fault_count()
        self._process = self.env.process(self._run())

    def stop(self) -> None:
        if self.running:
            self._process.interrupt("stop")

    # -- one tick, callable directly by lightweight fleets -------------------------

    def tick(self) -> Generator:
        """Sample the fault rate and harvest or give back accordingly."""
        config = self.config
        faults = self.target.fault_count()
        rate_per_ms = (
            (faults - self._last_faults) / (config.interval_us / 1000.0)
        )
        self._last_faults = faults
        if rate_per_ms >= config.spike_rate_per_ms and self.outstanding > 0:
            self._give_back_all()
            self._cooldown = config.cooldown_ticks
        elif self._cooldown > 0:
            self._cooldown -= 1
        elif rate_per_ms < config.calm_rate_per_ms:
            surplus = (
                self.target.capacity
                - self.target.wss_estimate()
                - config.reserve_pages
            )
            if surplus >= config.min_harvest_pages:
                want = min(surplus, config.max_step_pages)
                taken = yield from self.target.harvest(want)
                if taken > 0:
                    self.broker.offer(self.producer, taken)
                    self.counters.incr("harvests")
                    self.counters.incr("pages_harvested", by=taken)
        self.history.append((self.env.now, rate_per_ms, self.outstanding))
        if self._obs_on:
            self.obs.registry.gauge(
                "harvester_outstanding_pages", vm=self.producer
            ).set(self.outstanding)

    def _give_back_all(self) -> None:
        """Fast path: pull every outstanding page back in one step."""
        reclaimed, revoked = self.broker.reclaim(
            self.producer, self.outstanding
        )
        if reclaimed > 0:
            restored = self.target.give_back(reclaimed)
            if restored != reclaimed:
                raise MarketError(
                    f"{self.producer!r} reclaimed {reclaimed} page(s) but "
                    f"the target only re-absorbed {restored}"
                )
            self.counters.incr("give_backs")
            self.counters.incr("pages_given_back", by=reclaimed)
            if revoked:
                self.counters.incr("leases_revoked", by=len(revoked))

    def shutdown(self) -> None:
        """Producer leaves the market gracefully: stop the loop, pull
        everything back."""
        self.stop()
        if self.outstanding > 0:
            self._give_back_all()

    def _run(self) -> Generator:
        try:
            while True:
                yield self.env.timeout(self.config.interval_us)
                yield from self.tick()
        except InterruptError:
            return

    def __repr__(self) -> str:
        return (
            f"<Harvester {self.producer!r} outstanding={self.outstanding} "
            f"cooldown={self._cooldown}>"
        )
