"""Per-tenant QoS: fault-latency SLOs, windowed p99, throttling.

Harvesting is only acceptable in a multi-tenant cloud if it is
*invisible to the tenants who paid for better*: a premium VM's p99
page-fault latency must hold its SLO even while spot consumers churn
the same market.  This module is the enforcement arm:

* :class:`TenantSlo` — the contract: a p99 fault-latency bound (µs)
  and a priority class (0=spot, 1=standard, 2=premium).  Priority
  feeds the broker's revocation order — spot leases are the first
  casualties of a give-back.
* :class:`QosManager` — collects every tenant's fault latencies into
  the current evaluation window, computes windowed p99s on
  :meth:`evaluate`, counts SLO violations (``slo_violations{tenant=}``
  in :mod:`repro.obs`), and converts protected-tier violations into a
  throttle penalty charged to spot tenants' remote faults — shedding
  the load that is squeezing the tenants with contracts.

Everything is deterministic: windows are plain lists, p99 is the
nearest-rank statistic on a sorted copy, throttles move in fixed
doubling/halving steps, and iteration is sorted by tenant name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import MarketError
from ..obs import NULL_OBS, Observability

__all__ = ["TenantSlo", "QosManager"]


@dataclass(frozen=True)
class TenantSlo:
    """A tenant's latency contract with the platform."""

    #: Windowed p99 page-fault latency must stay at or under this (µs).
    p99_fault_latency_us: float
    #: 0 = spot (revoke/throttle first), 1 = standard, 2 = premium.
    priority: int = 1

    def __post_init__(self) -> None:
        if self.p99_fault_latency_us <= 0:
            raise MarketError(
                "SLO latency bound must be positive, got "
                f"{self.p99_fault_latency_us}"
            )
        if self.priority < 0:
            raise MarketError(
                f"priority must be non-negative, got {self.priority}"
            )


def _p99(samples: List[float]) -> float:
    """Nearest-rank p99 — deterministic, no interpolation."""
    ordered = sorted(samples)
    rank = max(0, -(-99 * len(ordered) // 100) - 1)  # ceil(0.99n) - 1
    return ordered[rank]


class QosManager:
    """Windowed SLO evaluation and spot-tenant throttling."""

    #: First throttle step charged per remote fault of a spot tenant
    #: while a protected tenant is violating (µs).
    BASE_THROTTLE_US = 25.0
    #: Throttle ceiling — beyond this, shedding more spot traffic
    #: cannot help and only distorts the spot tenants' own latencies.
    MAX_THROTTLE_US = 400.0

    def __init__(
        self,
        obs: Optional[Observability] = None,
        min_samples: int = 1,
    ) -> None:
        if min_samples < 1:
            raise MarketError(
                f"min_samples must be >= 1, got {min_samples}"
            )
        self.obs = obs if obs is not None else NULL_OBS
        self._obs_on = self.obs.enabled
        #: A window with fewer faults than this yields no p99 verdict —
        #: one straggler fault is not statistical evidence of an SLO
        #: breach (a p99 over two samples is just their max).
        self.min_samples = min_samples
        self._slos: Dict[str, TenantSlo] = {}
        self._window: Dict[str, List[float]] = {}
        #: p99 per tenant from the most recent evaluate().
        self.last_p99: Dict[str, float] = {}
        #: Tenants violating their SLO as of the last evaluate().
        self.violating: Dict[str, bool] = {}
        #: Cumulative violation windows per tenant.
        self.violation_counts: Dict[str, int] = {}
        #: Per-window p99 maps, one entry per evaluate() call — the
        #: time series regression tests assert recovery against.
        self.p99_history: List[Dict[str, float]] = []
        self._throttle_us = 0.0
        self.windows_evaluated = 0

    # -- registration ------------------------------------------------------------

    def register(self, tenant: str, slo: TenantSlo) -> None:
        if tenant in self._slos:
            raise MarketError(f"tenant {tenant!r} already registered")
        self._slos[tenant] = slo
        self._window[tenant] = []
        self.violating[tenant] = False
        self.violation_counts[tenant] = 0

    def deregister(self, tenant: str) -> None:
        self._slos.pop(tenant, None)
        self._window.pop(tenant, None)
        self.last_p99.pop(tenant, None)
        self.violating.pop(tenant, None)

    def slo_of(self, tenant: str) -> TenantSlo:
        return self._slos[tenant]

    def priority_of(self, tenant: str) -> int:
        """Eviction/revocation priority class (for the broker)."""
        slo = self._slos.get(tenant)
        return slo.priority if slo is not None else 1

    # -- sample ingestion ----------------------------------------------------------

    def record_fault(self, tenant: str, latency_us: float) -> None:
        """One page fault completed for ``tenant`` at ``latency_us``."""
        window = self._window.get(tenant)
        if window is None:
            return
        window.append(latency_us)
        if self._obs_on:
            self.obs.registry.histogram(
                "tenant_fault_latency_us", tenant=tenant
            ).observe(latency_us)

    def throttle_delay_us(self, tenant: str) -> float:
        """Extra delay charged to this tenant's next remote fault."""
        slo = self._slos.get(tenant)
        if slo is None or slo.priority > 0:
            return 0.0
        return self._throttle_us

    # -- evaluation ----------------------------------------------------------------

    def evaluate(self) -> Dict[str, float]:
        """Close the window: p99s, violations, throttle adjustment.

        Returns the per-tenant windowed p99 map (tenants with no
        faults this window are absent — no faults cannot violate a
        fault-latency SLO).

        Split into :meth:`close_windows` (per-tenant, shardable) and
        :meth:`apply_throttle_decision` (fleet-global) so a partitioned
        runner can evaluate local tenants in each shard, combine the
        protected-violating verdicts, and replay the identical throttle
        trajectory everywhere.
        """
        p99s, protected_violating = self.close_windows()
        self.apply_throttle_decision(protected_violating)
        self.p99_history.append(dict(p99s))
        return p99s

    def close_windows(self) -> "tuple[Dict[str, float], bool]":
        """Phase 1 of :meth:`evaluate`: per-tenant p99s and violations.

        Touches only per-tenant state (windows, violation counts, the
        per-tenant ``slo_violations`` counter); the one fleet-wide
        output — whether any protected tenant violated — is *returned*,
        not applied, so shards can vote before the throttle moves.
        """
        self.windows_evaluated += 1
        p99s: Dict[str, float] = {}
        protected_violating = False
        for tenant in sorted(self._slos):
            samples = self._window[tenant]
            slo = self._slos[tenant]
            if len(samples) < self.min_samples:
                self.violating[tenant] = False
                self._window[tenant] = []
                continue
            p99 = _p99(samples)
            p99s[tenant] = p99
            self.last_p99[tenant] = p99
            violated = p99 > slo.p99_fault_latency_us
            self.violating[tenant] = violated
            if violated:
                self.violation_counts[tenant] += 1
                if slo.priority > 0:
                    protected_violating = True
                if self._obs_on:
                    self.obs.registry.counter(
                        "slo_violations", tenant=tenant
                    ).inc()
            self._window[tenant] = []
        return p99s, protected_violating

    def apply_throttle_decision(self, protected_violating: bool) -> None:
        """Phase 2 of :meth:`evaluate`: the global throttle update.

        ``protected_violating`` must be the OR across *every* tenant in
        the fleet (all shards), or throttle trajectories diverge.
        """
        if protected_violating:
            self._throttle_us = min(
                self.MAX_THROTTLE_US,
                max(self.BASE_THROTTLE_US, self._throttle_us * 2.0),
            )
        else:
            self._throttle_us = (
                self._throttle_us / 2.0
                if self._throttle_us >= self.BASE_THROTTLE_US
                else 0.0
            )
        if self._obs_on:
            self.obs.registry.gauge("qos_spot_throttle_us").set(
                self._throttle_us
            )

    def total_violations(self) -> int:
        return sum(self.violation_counts.values())

    def __repr__(self) -> str:
        return (
            f"<QosManager tenants={len(self._slos)} "
            f"windows={self.windows_evaluated} "
            f"violations={self.total_violations()} "
            f"throttle={self._throttle_us}us>"
        )
